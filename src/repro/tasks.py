"""Task descriptions shared by every runtime in the reproduction.

A *task* is the paper's unit of work: a narrow kernel (typically
< 500 threads) with its launch geometry, resource needs, and two
executable views:

- a **timing kernel** — per-warp generator yielding
  :class:`~repro.gpu.phases.Phase` and ``BLOCK_SYNC`` markers; drives
  the simulated GPU/CPU clocks;
- an optional **functional kernel** — NumPy computation run through the
  device API (:class:`repro.core.device_api.DeviceContext` for Pagoda)
  so correctness can be checked against reference implementations.

Runtimes (Pagoda, CUDA-HyperQ, GeMTC, static fusion, PThreads) all
consume the same :class:`TaskSpec`, which is what makes the paper's
apples-to-apples comparison reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.gpu.occupancy import warps_per_block
from repro.gpu.phases import Phase, total_cost

#: Timing-kernel signature: (task, block_id, warp_id) -> phase generator.
TimingKernel = Callable[["TaskSpec", int, int], Generator]


@dataclass
class TaskSpec:
    """Everything a runtime needs to launch one task (Table 1's
    ``taskSpawn`` arguments plus the cost/functional models)."""

    name: str
    threads_per_block: int
    num_blocks: int
    kernel: TimingKernel
    shared_mem_bytes: int = 0
    needs_sync: bool = False
    regs_per_thread: int = 32
    input_bytes: int = 0
    output_bytes: int = 0
    #: Size of the TaskTable entry payload (kernel pointer + args).
    param_bytes: int = 128
    #: Workload-specific payload (input sizes, seeds, arrays).
    work: Any = None
    #: Functional computation; signature ``func(device_ctx) -> None``.
    func: Optional[Callable[[Any], None]] = None
    #: CPU inefficiency multiplier: how many x more work the scalar CPU
    #: port does per lane-op than the SIMT kernel (1.0 for typical
    #: numeric code; >1 for GPU-friendly bit manipulation like DES,
    #: where scalar permutations cost far more than warp-wide table
    #: lookups).
    cpu_inst_factor: float = 1.0
    #: Scheduling priority (extension beyond the paper): higher values
    #: are picked first when a scheduler warp has several schedulable
    #: TaskTable rows.  0 = the paper's FIFO-by-row behaviour.
    priority: int = 0
    #: Warps per threadblock (threads rounded up to 32).  Derived from
    #: ``threads_per_block`` once at construction: schedulers and
    #: per-warp loops read it millions of times per run, and launch
    #: geometry is immutable after a task is spawned.
    warps_per_block: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.threads_per_block < 1:
            raise ValueError("threads_per_block must be >= 1")
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        self.warps_per_block = warps_per_block(self.threads_per_block)

    @property
    def total_warps(self) -> int:
        """Warps across all of the task's threadblocks."""
        return self.warps_per_block * self.num_blocks

    @property
    def total_threads(self) -> int:
        """Threads across all of the task's threadblocks."""
        return self.threads_per_block * self.num_blocks

    def warp_phases(self, block_id: int, warp_id: int) -> Generator:
        """Phase stream for one warp of one block."""
        return self.kernel(self, block_id, warp_id)

    def cpu_cost(self) -> Phase:
        """Aggregate cost of running the whole task on one CPU core.

        Sums every warp's phases; barriers are free in a sequential
        execution.
        """
        inst = 0.0
        mem = 0.0
        for block in range(self.num_blocks):
            for warp in range(self.warps_per_block):
                agg = total_cost(self.warp_phases(block, warp))
                inst += agg.inst
                mem += agg.mem_bytes
        return Phase(inst * self.cpu_inst_factor, mem)


@dataclass
class TaskResult:
    """Per-task timestamps collected by every runtime.

    All times are simulated nanoseconds.  ``latency`` is the paper's
    Fig. 10 metric: spawn-to-completion as observed by the host.
    """

    task_id: int
    name: str
    spawn_time: float = 0.0
    post_time: float = 0.0  # host finished posting the entry (PCIe store)
    sched_time: float = 0.0  # when a runtime picked it for execution
    start_time: float = 0.0  # first warp began executing
    end_time: float = 0.0  # last warp finished
    #: ``file:line`` of the taskSpawn call (diagnostics for TaskError)
    spawn_site: str = ""

    @property
    def latency(self) -> float:
        """Spawn-to-completion time (the Fig. 10 metric)."""
        return self.end_time - self.spawn_time

    @property
    def exec_time(self) -> float:
        """First-warp-start to last-warp-end duration."""
        return self.end_time - self.start_time


@dataclass
class RunStats:
    """Outcome of one experiment run under one runtime."""

    runtime: str
    makespan: float  # total wall time incl. data copies
    results: list = field(default_factory=list)
    copy_time: float = 0.0  # total PCIe busy time
    compute_time: float = 0.0  # makespan minus exposed copy-only time
    mean_occupancy: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def mean_latency(self) -> float:
        """Average task latency over all results."""
        if not self.results:
            return 0.0
        return sum(r.latency for r in self.results) / len(self.results)

    def latency_percentile(self, pct: float) -> float:
        """Latency percentile over all tasks (e.g. 50, 99)."""
        if not self.results:
            raise ValueError("no results")
        if not 0 <= pct <= 100:
            raise ValueError("percentile must be in [0, 100]")
        lats = sorted(r.latency for r in self.results)
        index = min(len(lats) - 1, int(round(pct / 100 * (len(lats) - 1))))
        return lats[index]

    def throughput_tasks_per_ms(self) -> float:
        """Completed tasks per simulated millisecond."""
        if self.makespan <= 0:
            raise ValueError("non-positive makespan")
        return len(self.results) / (self.makespan / 1e6)

    def speedup_over(self, other: "RunStats") -> float:
        """This runtime's speedup relative to ``other`` (same workload)."""
        if self.makespan <= 0:
            raise ValueError("non-positive makespan")
        return other.makespan / self.makespan
