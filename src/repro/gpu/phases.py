"""Units of simulated kernel work.

A task kernel (Pagoda __device__ function or a CUDA __global__ kernel)
is a generator that yields :class:`Phase` objects — "this warp now
executes ``inst`` warp-instructions touching ``mem_bytes`` of DRAM" —
and barrier markers.  The executing runtime (Pagoda executor warp, CUDA
block context, or CPU core) turns each phase into time on the modelled
resources.

SIMT semantics live in the *cost models* that produce phases: a
divergent warp's phase carries the sum of both branch paths' costs, a
lockstep warp the max over its 32 lanes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Phase:
    """One scheduling quantum of warp work.

    ``inst`` is in warp-instructions (one instruction issued for all 32
    lanes); ``mem_bytes`` is DRAM traffic attributable to the phase.
    """

    inst: float
    mem_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.inst < 0 or self.mem_bytes < 0:
            raise ValueError("phase costs must be non-negative")

    def scaled(self, factor: float) -> "Phase":
        """A phase with both costs multiplied by ``factor``."""
        return Phase(self.inst * factor, self.mem_bytes * factor)


class BlockSync:
    """Marker yielded by kernels to request a threadblock barrier.

    Under native CUDA this is ``__syncthreads()``; under Pagoda it is
    ``syncBlock()`` on the task's named barrier.  The interpreting
    runtime supplies the actual synchronization.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "BlockSync()"


BLOCK_SYNC = BlockSync()


def total_cost(phases) -> Phase:
    """Fold a phase iterable into one aggregate (for CPU execution,
    where barriers are free within a sequential task)."""
    inst = 0.0
    mem = 0.0
    for p in phases:
        if isinstance(p, Phase):
            inst += p.inst
            mem += p.mem_bytes
    return Phase(inst, mem)
