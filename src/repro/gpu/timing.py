"""Calibrated cost constants for the timing model.

All times are nanoseconds; at the Titan X's 1 GHz, one cycle == 1 ns so
instruction counts read directly as nanoseconds when a warp runs at its
issue cap.

Calibration policy (DESIGN.md §4): constants were set once from public
hardware characteristics (launch overheads, PCIe latencies, DRAM
bandwidth) plus the paper's own measurements (e.g. Table 3's data-copy
fractions imply the copy-vs-compute balance), then frozen.  Experiments
vary *workloads and runtimes*, never these constants.

This module also hosts the **vectorized timing kernels** for the fast
lane (docs/INTERNALS.md §10): numpy array passes that replace per-warp
Python loops in the processor-sharing hot path while remaining
bit-identical to the scalar math.  They change *how fast* numbers are
computed, never *which* numbers — the differential suite
(``tests/differential/``) pins that down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

try:  # numpy ships with the repo's toolchain; degrade gracefully without
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on bare installs
    _np = None

#: Below this many elements the numpy call overhead exceeds the scalar
#: loop; the kernels fall back to plain Python.
_VECTOR_MIN = 16


def batch_finish_tags(v: float, amounts: Sequence[float]) -> List[float]:
    """Finish tags ``[v + a for a in amounts]`` in one array pass.

    This is the vectorized kernel a :class:`~repro.sim.resources.\
ProcessorSharing` pool calls when a coalesced arrival batch joins
    (sibling warps of a threadblock issuing identical
    latency-then-demand patterns).  IEEE-754 float64 addition is the
    same operation elementwise in numpy as in the Python scalar loop,
    so the tags are bit-identical; results are converted back to Python
    floats so no ``np.float64`` leaks into the engine's clocks.
    """
    if _np is None or len(amounts) < _VECTOR_MIN:
        return [v + a for a in amounts]
    return (_np.asarray(amounts, dtype=_np.float64) + v).tolist()


def ps_completion_times(
    now: float,
    v: float,
    finish_tags: Sequence[float],
    rate: float,
    per_job_cap: float,
) -> List[float]:
    """Closed-form completion times of every resident job of a
    processor-sharing pool, assuming no further arrivals.

    Jobs are described by their virtual-time finish tags (ascending);
    job ``k`` completes when the pool's virtual clock reaches its tag.
    While ``n`` jobs remain the clock advances at ``min(cap, rate/n)``,
    so completions are computed tag-by-tag with a vectorized prefix
    pass over the per-interval service increments.

    This is the fast lane's *oracle* for per-SMM warp completion: one
    array pass instead of stepping the event loop per warp.  The
    differential suite bit-compares it against the scalar recurrence
    (`_ps_completion_times_scalar`) and against event-loop timings.
    """
    tags = sorted(finish_tags)
    n = len(tags)
    if n == 0:
        return []
    if _np is None or n < _VECTOR_MIN:
        return _ps_completion_times_scalar(now, v, tags, rate, per_job_cap)
    arr = _np.asarray(tags, dtype=_np.float64)
    # per-interval virtual-service gap while k jobs have completed:
    # tags[k] - tags[k-1] (tags[0] - v for the first interval)
    gaps = _np.empty(n, dtype=_np.float64)
    gaps[0] = arr[0] - v
    gaps[1:] = arr[1:] - arr[:-1]
    remaining = _np.arange(n, 0, -1, dtype=_np.float64)
    rates = _np.minimum(per_job_cap, rate / remaining)
    vals = gaps / rates
    # seed the running sum with ``now`` so every partial sum associates
    # exactly like the scalar recurrence ``t = t + gap/r`` (cumsum is a
    # sequential accumulation; a trailing ``now + cumsum`` would round
    # in a different order)
    vals[0] += now
    return _np.cumsum(vals).tolist()


def _ps_completion_times_scalar(
    now: float,
    v: float,
    tags: Sequence[float],
    rate: float,
    per_job_cap: float,
) -> List[float]:
    """Reference recurrence for :func:`ps_completion_times`."""
    out = []
    t = now
    prev = v
    n = len(tags)
    for k, tag in enumerate(tags):
        r = min(per_job_cap, rate / (n - k))
        t = t + (tag - prev) / r
        prev = tag
        out.append(t)
    return out


@dataclass(frozen=True)
class TimingModel:
    """Cost constants shared by all runtimes on the simulated node."""

    # --- GPU kernel machinery -------------------------------------------
    #: Host-side cost to push one asynchronous kernel launch into the
    #: CUDA runtime (driver call, command buffer write).
    kernel_launch_ns: float = 2_000.0
    #: Hardware delay for the GigaThread engine to place one threadblock
    #: on an SMM once resources are free.
    block_dispatch_ns: float = 80.0
    #: Fixed per-phase issue latency a warp pays besides its instruction
    #: stream (pipeline fill, dependency stalls).
    phase_overhead_ns: float = 20.0
    #: Per-phase DRAM access latency a warp exposes when the phase
    #: touches memory.  This stall is private to the warp — *other*
    #: resident warps keep issuing — which is exactly why occupancy
    #: matters (§2): a GPU with few resident warps cannot hide it.
    mem_latency_ns: float = 350.0
    #: Dependency-stall cycles per issued instruction, private to the
    #: warp (RAW hazards, pipeline latency).  A lone warp sustains an
    #: IPC of 1/(1+ratio); an SMM needs ~(1+ratio) x 4 resident warps
    #: to saturate its 4 issue slots.  At 2.0, HyperQ's 32 narrow
    #: kernels (~5 warps/SMM) reach ~44 % of peak issue while the
    #: MasterKernel's 62 warps/SMM saturate it — reproducing Fig. 7's
    #: ~2.3x compute-side gap.
    warp_stall_ratio: float = 2.0

    # --- PCIe ------------------------------------------------------------
    #: Per-cudaMemcpyAsync fixed cost (driver + DMA setup, pipelined on
    #: the copy engine).
    pcie_transaction_ns: float = 1_200.0
    #: Host-side driver time to *issue* one cudaMemcpyAsync.  Charged
    #: to whichever host thread makes the call — per-task in+out copies
    #: put 2 x this on HyperQ's launch thread, while Pagoda's second
    #: host thread absorbs the output-copy issues (Fig. 1a's two
    #: OpenMP tasks).
    memcpy_issue_ns: float = 1_200.0
    #: Sustained PCIe gen3 x16 bandwidth, bytes per ns (== GB/s).
    pcie_bandwidth_bpns: float = 12.0
    #: One-way visibility latency of a zero-copy (mapped, volatile)
    #: store, e.g. a TaskTable flag update observed by the polling GPU.
    mapped_write_ns: float = 900.0
    #: Serialization cost per posted TaskTable entry write on the
    #: host->device path.  Entry spawns are small mapped-memory writes,
    #: pipelined back-to-back — not DMA transactions — which is what
    #: gives Pagoda its high spawn rate (§4.2).
    entry_post_ns: float = 300.0

    # --- Pagoda / persistent-kernel software costs -----------------------
    #: Scheduler-warp cost to examine one TaskTable entry (load + branch
    #: over PCIe-visible memory).
    poll_iteration_ns: float = 120.0
    #: Cost of one pSched pass finding executor warps (Algorithm 2):
    #: warp-wide ballot + shared-memory atomics.
    psched_pass_ns: float = 180.0
    #: Buddy-tree shared memory alloc/dealloc, performed warp-parallel
    #: over the 128-node tree (§5.1).
    smem_alloc_ns: float = 90.0
    #: Acquire/release of a named barrier ID (§5.2).
    barrier_mgmt_ns: float = 40.0
    #: Cost per syncBlock() arrival (bar.sync on a named barrier).
    named_barrier_ns: float = 30.0
    #: Native __syncthreads() arrival cost, for CUDA-side kernels.
    syncthreads_ns: float = 20.0

    # --- GeMTC ------------------------------------------------------------
    #: Cost of one pop from GeMTC's single FIFO work queue: a
    #: global-memory atomic under contention from every worker block
    #: (the "significant task scheduling overhead" of §7).
    gemtc_pop_ns: float = 500.0
    #: Host-side cost to assemble and submit one GeMTC batch.
    gemtc_batch_submit_ns: float = 4_000.0
    #: Host-side cost per task to marshal its descriptor and device
    #: buffers into a GeMTC batch (GeMTC manages device memory per
    #: task, unlike HyperQ's single launch call).
    gemtc_task_setup_ns: float = 1_200.0
    #: Host-side cost per sub-task to marshal its parameters into the
    #: statically fused kernel's argument arrays (§6.3's fusion still
    #: gathers every task's inputs before the one launch).
    fusion_task_setup_ns: float = 1_000.0

    # --- CPU --------------------------------------------------------------
    #: Xeon E5-2660 v3 at 2.6 GHz; effective scalar+SIMD throughput in
    #: "warp-instruction equivalents" per ns.  A warp instruction is 32
    #: lanes of work; a CPU core retires ~4 scalar ops/cycle with AVX
    #: giving roughly 10 lane-ops/ns -> ~0.33 warp-inst-equivalents.
    cpu_core_warpinst_per_ns: float = 0.33
    #: Per-task overhead of a PThreads pool dispatch (mutex + wakeup).
    pthread_dispatch_ns: float = 1_500.0
    #: Serialized pthread_create cost per task in the spawning thread.
    #: The paper's strongest CPU contender is "PThreads-based task
    #: parallelism" (§6.2) — a thread per task; creation is the serial
    #: bottleneck that keeps 20 cores from scaling on narrow tasks.
    pthread_create_ns: float = 15_000.0
    #: Host DRAM bandwidth available to one core, bytes per ns.
    cpu_mem_bandwidth_bpns: float = 8.0
    #: Host-side cost of the Pagoda taskSpawn path (find entry, fill
    #:  parameters) excluding the PCIe copy itself.
    spawn_cpu_ns: float = 700.0
    #: Timeout after which wait()/waitAll() force a TaskTable copy-back
    #: (§4.2.2: "these functions therefore use a timeout").
    wait_timeout_ns: float = 50_000.0
    #: Host back-off between copy-back retries while hunting for a free
    #: TaskTable entry.
    host_retry_ns: float = 3_000.0

    def dram_bytes_per_ns(self, bandwidth_gbps: float) -> float:
        """GB/s -> bytes/ns (numerically identical; named for clarity)."""
        return bandwidth_gbps


DEFAULT_TIMING = TimingModel()
