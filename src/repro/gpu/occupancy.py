"""The CUDA occupancy calculator (§2 of the paper).

Resident blocks per SMM are limited by four independent resources:
block slots, warp slots, registers, and shared memory.  Occupancy is
resident warps divided by the warp-slot capacity — the paper's §2 worked
examples (0.52 % for one 256-thread task, 16.67 % under HyperQ) fall out
of these functions and are asserted in the test suite.

All results are memoized on ``(spec, threads, regs, smem)``: benchmark
sweeps re-launch thousands of kernels with identical shapes, and
:class:`~repro.gpu.spec.GpuSpec` is a frozen (hashable) dataclass, so
the calculator collapses to a dict hit on the launch hot path.  The
cache is unbounded by design — the key space is the handful of distinct
launch shapes an experiment uses.
"""

from __future__ import annotations

from functools import lru_cache

from repro.gpu.spec import WARP_SIZE, GpuSpec


def warps_per_block(threads_per_block: int) -> int:
    """Warps needed to host a block (threads rounded up to warp size)."""
    if threads_per_block < 1:
        raise ValueError("threads_per_block must be >= 1")
    return -(-threads_per_block // WARP_SIZE)


@lru_cache(maxsize=None)
def registers_per_block(
    spec: GpuSpec, threads_per_block: int, regs_per_thread: int
) -> int:
    """Register file footprint of one block.

    Registers are allocated per warp in units of
    ``spec.register_alloc_unit`` (warp allocation granularity on
    Maxwell/Kepler).
    """
    if regs_per_thread < 0:
        raise ValueError("regs_per_thread must be >= 0")
    per_warp = regs_per_thread * WARP_SIZE
    unit = spec.register_alloc_unit
    per_warp_rounded = -(-per_warp // unit) * unit
    return per_warp_rounded * warps_per_block(threads_per_block)


@lru_cache(maxsize=None)
def blocks_per_smm(
    spec: GpuSpec,
    threads_per_block: int,
    regs_per_thread: int = 32,
    shared_mem_per_block: int = 0,
) -> int:
    """Concurrent resident blocks of this shape on one SMM (0 if none fit)."""
    if threads_per_block > spec.max_threads_per_block:
        return 0
    if shared_mem_per_block > spec.max_shared_mem_per_block:
        return 0
    wpb = warps_per_block(threads_per_block)
    limit_slots = spec.max_blocks_per_smm
    limit_warps = spec.max_warps_per_smm // wpb
    rpb = registers_per_block(spec, threads_per_block, regs_per_thread)
    limit_regs = spec.registers_per_smm // rpb if rpb > 0 else limit_slots
    limit_smem = (
        spec.shared_mem_per_smm // shared_mem_per_block
        if shared_mem_per_block > 0
        else limit_slots
    )
    return max(0, min(limit_slots, limit_warps, limit_regs, limit_smem))


@lru_cache(maxsize=None)
def occupancy(
    spec: GpuSpec,
    threads_per_block: int,
    regs_per_thread: int = 32,
    shared_mem_per_block: int = 0,
    concurrent_blocks: int | None = None,
) -> float:
    """Fraction of the GPU's warp slots filled by blocks of this shape.

    ``concurrent_blocks`` caps the number of blocks available to run
    simultaneously (e.g. 32 narrow tasks under HyperQ each contributing
    one block); ``None`` means unlimited supply.
    """
    per_smm = blocks_per_smm(
        spec, threads_per_block, regs_per_thread, shared_mem_per_block
    )
    resident = per_smm * spec.num_smms
    if concurrent_blocks is not None:
        resident = min(resident, concurrent_blocks)
    wpb = warps_per_block(threads_per_block)
    return (resident * wpb) / spec.total_warp_slots
