"""The CUDA occupancy calculator (§2 of the paper).

Resident blocks per SMM are limited by four independent resources:
block slots, warp slots, registers, and shared memory.  Occupancy is
resident warps divided by the warp-slot capacity — the paper's §2 worked
examples (0.52 % for one 256-thread task, 16.67 % under HyperQ) fall out
of these functions and are asserted in the test suite.

All results are memoized on ``(spec, threads, regs, smem)``: benchmark
sweeps re-launch thousands of kernels with identical shapes, and
:class:`~repro.gpu.spec.GpuSpec` is a frozen (hashable) dataclass, so
the calculator collapses to a dict hit on the launch hot path.  The
cache is unbounded by design — the key space is the handful of distinct
launch shapes an experiment uses.
"""

from __future__ import annotations

from functools import lru_cache

from repro.gpu.spec import WARP_SIZE, GpuSpec


def warps_per_block(threads_per_block: int) -> int:
    """Warps needed to host a block (threads rounded up to warp size)."""
    if threads_per_block < 1:
        raise ValueError("threads_per_block must be >= 1")
    return -(-threads_per_block // WARP_SIZE)


@lru_cache(maxsize=None)
def registers_per_block(
    spec: GpuSpec, threads_per_block: int, regs_per_thread: int
) -> int:
    """Register file footprint of one block.

    Registers are allocated per warp in units of
    ``spec.register_alloc_unit`` (warp allocation granularity on
    Maxwell/Kepler).
    """
    if regs_per_thread < 0:
        raise ValueError("regs_per_thread must be >= 0")
    per_warp = regs_per_thread * WARP_SIZE
    unit = spec.register_alloc_unit
    per_warp_rounded = -(-per_warp // unit) * unit
    return per_warp_rounded * warps_per_block(threads_per_block)


@lru_cache(maxsize=None)
def blocks_per_smm(
    spec: GpuSpec,
    threads_per_block: int,
    regs_per_thread: int = 32,
    shared_mem_per_block: int = 0,
) -> int:
    """Concurrent resident blocks of this shape on one SMM (0 if none fit)."""
    if threads_per_block > spec.max_threads_per_block:
        return 0
    if shared_mem_per_block > spec.max_shared_mem_per_block:
        return 0
    wpb = warps_per_block(threads_per_block)
    limit_slots = spec.max_blocks_per_smm
    limit_warps = spec.max_warps_per_smm // wpb
    rpb = registers_per_block(spec, threads_per_block, regs_per_thread)
    limit_regs = spec.registers_per_smm // rpb if rpb > 0 else limit_slots
    limit_smem = (
        spec.shared_mem_per_smm // shared_mem_per_block
        if shared_mem_per_block > 0
        else limit_slots
    )
    return max(0, min(limit_slots, limit_warps, limit_regs, limit_smem))


@lru_cache(maxsize=None)
def occupancy(
    spec: GpuSpec,
    threads_per_block: int,
    regs_per_thread: int = 32,
    shared_mem_per_block: int = 0,
    concurrent_blocks: int | None = None,
) -> float:
    """Fraction of the GPU's warp slots filled by blocks of this shape.

    ``concurrent_blocks`` caps the number of blocks available to run
    simultaneously (e.g. 32 narrow tasks under HyperQ each contributing
    one block); ``None`` means unlimited supply.
    """
    per_smm = blocks_per_smm(
        spec, threads_per_block, regs_per_thread, shared_mem_per_block
    )
    resident = per_smm * spec.num_smms
    if concurrent_blocks is not None:
        resident = min(resident, concurrent_blocks)
    wpb = warps_per_block(threads_per_block)
    return (resident * wpb) / spec.total_warp_slots


# ---------------------------------------------------------------------------
# Vectorized variants (the fast lane's one-array-pass occupancy kernel)
# ---------------------------------------------------------------------------

try:  # degrade gracefully on bare installs; the scalar path always works
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None


def blocks_per_smm_array(spec: GpuSpec, threads, regs, smem):
    """:func:`blocks_per_smm` for many launch shapes in one array pass.

    ``threads``/``regs``/``smem`` are equal-length sequences; returns a
    list of ints bit-identical to mapping the scalar function.  All
    arithmetic is exact int64 (floor divisions and mins), so there is
    no float drift to worry about — the differential suite still pins
    the equality.  Falls back to the memoized scalar calculator when
    numpy is unavailable.
    """
    if _np is None:
        return [blocks_per_smm(spec, int(t), int(r), int(s))
                for t, r, s in zip(threads, regs, smem)]
    t = _np.asarray(threads, dtype=_np.int64)
    r = _np.asarray(regs, dtype=_np.int64)
    s = _np.asarray(smem, dtype=_np.int64)
    if _np.any(t < 1) or _np.any(r < 0):
        raise ValueError("threads must be >= 1 and regs >= 0")
    wpb = -(-t // WARP_SIZE)
    unit = spec.register_alloc_unit
    rpb = (-(-(r * WARP_SIZE) // unit) * unit) * wpb
    limit_slots = _np.full_like(t, spec.max_blocks_per_smm)
    limit_warps = spec.max_warps_per_smm // wpb
    limit_regs = _np.where(rpb > 0, spec.registers_per_smm // _np.maximum(rpb, 1),
                           limit_slots)
    limit_smem = _np.where(s > 0, spec.shared_mem_per_smm // _np.maximum(s, 1),
                           limit_slots)
    blocks = _np.minimum(_np.minimum(limit_slots, limit_warps),
                         _np.minimum(limit_regs, limit_smem))
    blocks = _np.maximum(blocks, 0)
    blocks = _np.where(t > spec.max_threads_per_block, 0, blocks)
    blocks = _np.where(s > spec.max_shared_mem_per_block, 0, blocks)
    return blocks.tolist()


def occupancy_array(spec: GpuSpec, threads, regs, smem, concurrent=None):
    """:func:`occupancy` for many launch shapes in one array pass.

    ``concurrent`` is an optional sequence of per-shape block-supply
    caps (``None`` entries mean unlimited).  The final division is one
    IEEE-754 float64 op per shape — the same single rounding the scalar
    path performs — so results are bit-identical.
    """
    blocks = blocks_per_smm_array(spec, threads, regs, smem)
    if _np is None:
        out = []
        for i, (t, b) in enumerate(zip(threads, blocks)):
            resident = b * spec.num_smms
            if concurrent is not None and concurrent[i] is not None:
                resident = min(resident, concurrent[i])
            out.append((resident * warps_per_block(int(t)))
                       / spec.total_warp_slots)
        return out
    t = _np.asarray(threads, dtype=_np.int64)
    resident = _np.asarray(blocks, dtype=_np.int64) * spec.num_smms
    if concurrent is not None:
        caps = _np.asarray(
            [resident[i] if c is None else c
             for i, c in enumerate(concurrent)], dtype=_np.int64)
        resident = _np.minimum(resident, caps)
    wpb = -(-t // WARP_SIZE)
    return ((resident * wpb) / float(spec.total_warp_slots)).tolist()


# ---------------------------------------------------------------------------
# Memo observability (repro.obs: gpu.occupancy.memo_hits / .misses)
# ---------------------------------------------------------------------------

#: The memoized calculator entry points, in reporting order.
_MEMOIZED = (registers_per_block, blocks_per_smm, occupancy)


def memo_stats() -> dict:
    """Aggregate ``lru_cache`` counters across the calculator memos.

    Returned keys: ``hits``, ``misses``, ``size`` (current cached
    entries).  Counters are process-global; call
    :func:`reset_memo_counters` at session start for per-run numbers
    (``repro.core.runtime`` does this when an obs registry is
    attached, so snapshot counts are deterministic).
    """
    infos = [f.cache_info() for f in _MEMOIZED]
    return {
        "hits": sum(i.hits for i in infos),
        "misses": sum(i.misses for i in infos),
        "size": sum(i.currsize for i in infos),
    }


def reset_memo_counters() -> None:
    """Clear the calculator memos (and their hit/miss counters)."""
    for f in _MEMOIZED:
        f.cache_clear()
