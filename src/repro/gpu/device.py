"""The whole GPU: SMM array plus device-wide shared pools."""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.gpu.smm import Smm
from repro.gpu.spec import GpuSpec, titan_x
from repro.gpu.timing import DEFAULT_TIMING, TimingModel, batch_finish_tags
from repro.sim import Engine, ProcessorSharing


class Gpu:
    """A simulated GPU attached to an engine.

    Holds the SMMs and the DRAM bandwidth pool they share.  Placement
    policy (which SMM hosts which block) belongs to the runtimes — the
    hardware dispatcher in :mod:`repro.cuda` or Pagoda's static MTB
    layout — not to this class.
    """

    def __init__(
        self,
        engine: Engine,
        spec: Optional[GpuSpec] = None,
        timing: Optional[TimingModel] = None,
        obs=None,
    ) -> None:
        self.engine = engine
        self.spec = spec or titan_x()
        self.timing = timing or DEFAULT_TIMING
        self.smms: List[Smm] = [
            Smm(engine, self.spec, self.timing, i, obs=obs)
            for i in range(self.spec.num_smms)
        ]
        self.dram = ProcessorSharing(
            engine,
            rate=self.timing.dram_bytes_per_ns(self.spec.dram_bandwidth_gbps),
            name="dram",
        )
        # device-wide pool sees the largest coalesced arrival batches
        # (every warp of a dispatched block hits DRAM together); same
        # bit-identical vectorized kernel as the SMM issue pools
        self.dram.tag_kernel = batch_finish_tags

    def find_smm(
        self,
        warps: int,
        registers: int,
        shared_mem: int,
        mask: Optional[Iterable[int]] = None,
    ) -> Optional[Smm]:
        """Least-loaded SMM that can host the block, or ``None``.

        Mirrors the GigaThread engine's load balancing: prefer the SMM
        with the most free warp slots.  ``mask`` restricts the scan to a
        subset of SMM indices (a compute partition); ``None`` scans the
        whole device.  Both the legacy shared dispatcher and the
        partition path go through this single placement loop.
        """
        if mask is None:
            candidates = self.smms
        else:
            candidates = [self.smms[i] for i in sorted(mask)]
        best: Optional[Smm] = None
        for smm in candidates:
            if smm.can_host(warps, registers, shared_mem):
                if best is None or smm.free_warps > best.free_warps:
                    best = smm
        return best

    def resident_warps(self) -> int:
        """Warps currently resident across the device."""
        return sum(
            self.spec.max_warps_per_smm - smm.free_warps for smm in self.smms
        )

    def mean_occupancy(self, end: Optional[float] = None) -> float:
        """Device-wide time-averaged occupancy (the paper's §2 metric)."""
        end = self.engine.now if end is None else end
        total = sum(smm.resident_warps.average(end) for smm in self.smms)
        return total / self.spec.total_warp_slots
