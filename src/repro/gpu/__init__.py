"""GPU hardware model (NVIDIA Maxwell Titan X by default).

Models the machine the paper runs on, at the granularity Pagoda cares
about: warps, SMM issue bandwidth, shared memory / register occupancy
accounting, and DRAM bandwidth.  The CUDA *runtime* on top of this
hardware lives in :mod:`repro.cuda`; Pagoda itself in :mod:`repro.core`.

Public surface:

- :class:`~repro.gpu.spec.GpuSpec` — architectural limits, with
  :func:`~repro.gpu.spec.titan_x` and :func:`~repro.gpu.spec.tesla_k40`
  presets.
- :class:`~repro.gpu.timing.TimingModel` — calibrated cost constants.
- :func:`~repro.gpu.occupancy.blocks_per_smm` /
  :func:`~repro.gpu.occupancy.occupancy` — the CUDA occupancy
  calculator.
- :class:`~repro.gpu.device.Gpu` and :class:`~repro.gpu.smm.Smm` — the
  event-driven device.
- :class:`~repro.gpu.phases.Phase` — one unit of warp work (instructions
  + memory traffic).
"""

from repro.gpu.spec import GpuSpec, pascal_gtx1080, tesla_k40, titan_x
from repro.gpu.timing import TimingModel
from repro.gpu.occupancy import blocks_per_smm, occupancy, warps_per_block
from repro.gpu.phases import Phase
from repro.gpu.smm import Smm
from repro.gpu.device import Gpu

__all__ = [
    "GpuSpec",
    "titan_x",
    "tesla_k40",
    "pascal_gtx1080",
    "TimingModel",
    "blocks_per_smm",
    "occupancy",
    "warps_per_block",
    "Phase",
    "Smm",
    "Gpu",
]
