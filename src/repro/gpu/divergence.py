"""SIMT divergence cost helpers.

Warps execute in lockstep: a warp retires only when its deepest lane
does, so irregular per-lane work inflates warp cost relative to the
mean.  Irregular workloads (MB's escape-time loop, Table 3's
"Irregular" rows) use these helpers to turn per-lane work estimates
into warp costs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.gpu.spec import WARP_SIZE


def warp_costs_from_lane_work(lane_work: Sequence[float],
                              warp_size: int = WARP_SIZE) -> np.ndarray:
    """Per-warp cost = max over each warp's lanes (lockstep retire).

    ``lane_work`` is per-thread work in any unit; threads are grouped
    into warps in order; a trailing partial warp still costs its max.
    """
    lanes = np.asarray(lane_work, dtype=np.float64)
    if lanes.size == 0:
        raise ValueError("lane_work must be non-empty")
    if lanes.min() < 0:
        raise ValueError("lane work must be non-negative")
    pad = (-lanes.size) % warp_size
    if pad:
        lanes = np.concatenate([lanes, np.zeros(pad)])
    return lanes.reshape(-1, warp_size).max(axis=1)


def divergence_factor(lane_work: Sequence[float],
                      warp_size: int = WARP_SIZE) -> float:
    """Lockstep inflation: total warp-cost over perfectly-packed cost.

    1.0 means the lanes are uniform; MB boundary tiles commonly land
    between 1.3 and 3.
    """
    lanes = np.asarray(lane_work, dtype=np.float64)
    ideal = lanes.sum() / warp_size
    if ideal <= 0:
        return 1.0
    actual = warp_costs_from_lane_work(lanes, warp_size).sum()
    return float(actual / ideal)


def expected_lognormal_divergence(sigma: float, warp_size: int = WARP_SIZE,
                                  samples: int = 20_000,
                                  seed: int = 0) -> float:
    """Monte-Carlo estimate of the divergence factor for lognormally
    distributed lane work — used to justify the constant in the MB
    cost model."""
    rng = np.random.default_rng(seed)
    lanes = rng.lognormal(0.0, sigma, samples)
    return divergence_factor(lanes, warp_size)
