"""Architectural limits of the modelled GPUs.

Numbers follow §2 of the paper (Maxwell Titan X terminology): 24 SMMs,
128 CUDA cores per SMM, 64 resident warps, 32 resident threadblocks,
96 KB shared memory and 64K 32-bit registers per SMM.
"""

from __future__ import annotations

from dataclasses import dataclass

WARP_SIZE = 32


@dataclass(frozen=True)
class GpuSpec:
    """Immutable description of one GPU's resource limits."""

    name: str
    num_smms: int
    cores_per_smm: int
    max_warps_per_smm: int
    max_blocks_per_smm: int
    max_threads_per_block: int
    registers_per_smm: int
    shared_mem_per_smm: int  # bytes
    max_shared_mem_per_block: int  # bytes
    register_alloc_unit: int  # registers rounded up per-warp to this multiple
    clock_ghz: float
    dram_bandwidth_gbps: float  # GB/s
    hyperq_connections: int  # concurrent kernel limit

    def __post_init__(self) -> None:
        if self.max_threads_per_block % WARP_SIZE != 0:
            raise ValueError("max_threads_per_block must be a multiple of 32")
        if self.max_warps_per_smm * WARP_SIZE < self.max_threads_per_block:
            raise ValueError("an SMM must be able to host a maximal block")

    @property
    def max_threads_per_smm(self) -> int:
        """Thread capacity of one SMM (warps x 32)."""
        return self.max_warps_per_smm * WARP_SIZE

    @property
    def total_warp_slots(self) -> int:
        """Denominator of the paper's occupancy metric (64 x #SMMs)."""
        return self.max_warps_per_smm * self.num_smms

    @property
    def warp_schedulers_per_smm(self) -> int:
        """Warp instructions an SMM can issue per cycle (128 cores / 32)."""
        return self.cores_per_smm // WARP_SIZE

    @property
    def cycle_ns(self) -> float:
        """Nanoseconds per clock cycle."""
        return 1.0 / self.clock_ghz


def titan_x() -> GpuSpec:
    """NVIDIA Maxwell Titan X — the paper's evaluation GPU (§6.1)."""
    return GpuSpec(
        name="Maxwell Titan X",
        num_smms=24,
        cores_per_smm=128,
        max_warps_per_smm=64,
        max_blocks_per_smm=32,
        max_threads_per_block=1024,
        registers_per_smm=64 * 1024,
        shared_mem_per_smm=96 * 1024,
        max_shared_mem_per_block=48 * 1024,
        register_alloc_unit=256,
        clock_ghz=1.0,
        dram_bandwidth_gbps=336.0,
        hyperq_connections=32,
    )


def pascal_gtx1080() -> GpuSpec:
    """Pascal GTX 1080 — a then-future architecture, exercising §7's
    claim that Pagoda "could be applied to any future GPU hardware
    that supports the CUDA programming model"."""
    return GpuSpec(
        name="Pascal GTX 1080",
        num_smms=20,
        cores_per_smm=128,
        max_warps_per_smm=64,
        max_blocks_per_smm=32,
        max_threads_per_block=1024,
        registers_per_smm=64 * 1024,
        shared_mem_per_smm=96 * 1024,
        max_shared_mem_per_block=48 * 1024,
        register_alloc_unit=256,
        clock_ghz=1.6,
        dram_bandwidth_gbps=320.0,
        hyperq_connections=32,
    )


def tesla_k40() -> GpuSpec:
    """Kepler Tesla K40 — the second architecture the paper's TaskTable
    coherence micro-benchmarking covered (§4.2.2)."""
    return GpuSpec(
        name="Tesla K40",
        num_smms=15,
        cores_per_smm=192,
        max_warps_per_smm=64,
        max_blocks_per_smm=16,
        max_threads_per_block=1024,
        registers_per_smm=64 * 1024,
        shared_mem_per_smm=48 * 1024,
        max_shared_mem_per_block=48 * 1024,
        register_alloc_unit=256,
        clock_ghz=0.745,
        dram_bandwidth_gbps=288.0,
        hyperq_connections=32,
    )
