"""One Streaming Multiprocessor: issue bandwidth + resource accounting.

The SMM is where warp-granularity contention happens.  Instruction
issue is a :class:`~repro.sim.resources.ProcessorSharing` pool: up to
``warp_schedulers_per_smm`` warp-instructions per cycle for the SMM,
at most one per cycle for any single warp.  With four schedulers, 1–4
resident warps each run at full speed; beyond four they share —
exactly the contention profile occupancy arguments rely on.

Registers, shared memory, block slots, and warp slots are counted
(not timed) resources claimed when a block is placed and returned when
it retires.
"""

from __future__ import annotations

from typing import Generator

from repro.gpu.phases import Phase
from repro.gpu.spec import GpuSpec
from repro.gpu.timing import TimingModel, batch_finish_tags
from repro.sim import Engine, ProcessorSharing, TimeWeighted


class Smm:
    """Event-driven model of one SMM."""

    def __init__(
        self, engine: Engine, spec: GpuSpec, timing: TimingModel, index: int,
        obs=None,
    ) -> None:
        self.engine = engine
        self.spec = spec
        self.timing = timing
        self.index = index
        issue_rate = spec.warp_schedulers_per_smm * spec.clock_ghz
        self.issue = ProcessorSharing(
            engine, rate=issue_rate, per_job_cap=spec.clock_ghz,
            name=f"smm{index}.issue",
        )
        # vectorized finish-tag kernel for coalesced sibling-warp
        # arrivals (bit-identical to the scalar path; see
        # repro.gpu.timing and docs/INTERNALS.md §10)
        self.issue.tag_kernel = batch_finish_tags
        self.free_warps = spec.max_warps_per_smm
        self.free_blocks = spec.max_blocks_per_smm
        self.free_registers = spec.registers_per_smm
        self.free_shared_mem = spec.shared_mem_per_smm
        self.resident_warps = TimeWeighted()
        #: optional :class:`repro.obs.Obs`: the per-SMM occupancy
        #: timeline (resident warps over virtual time, a Perfetto
        #: counter track).  ``None`` costs nothing.
        self.obs = obs
        self._obs_resident = (
            obs.timeline(f"gpu.smm{index}.resident_warps")
            if obs is not None else None
        )

    # -- block placement -------------------------------------------------

    def can_host(self, warps: int, registers: int, shared_mem: int) -> bool:
        """Whether a block needing these resources fits right now."""
        return (
            self.free_blocks >= 1
            and self.free_warps >= warps
            and self.free_registers >= registers
            and self.free_shared_mem >= shared_mem
        )

    def reserve_block(self, warps: int, registers: int, shared_mem: int) -> None:
        """Claim resources for one resident block (must fit)."""
        if not self.can_host(warps, registers, shared_mem):
            raise RuntimeError(
                f"SMM {self.index}: block does not fit "
                f"(warps={warps}, regs={registers}, smem={shared_mem})"
            )
        self.free_blocks -= 1
        self.free_warps -= warps
        self.free_registers -= registers
        self.free_shared_mem -= shared_mem
        self.resident_warps.add(self.engine.now, warps)
        if self._obs_resident is not None:
            self._obs_resident.add(self.engine.now, warps)

    def release_block(self, warps: int, registers: int, shared_mem: int) -> None:
        """Return a retired block's resources."""
        self.free_blocks += 1
        self.free_warps += warps
        self.free_registers += registers
        self.free_shared_mem += shared_mem
        if (
            self.free_blocks > self.spec.max_blocks_per_smm
            or self.free_warps > self.spec.max_warps_per_smm
            or self.free_registers > self.spec.registers_per_smm
            or self.free_shared_mem > self.spec.shared_mem_per_smm
        ):
            raise RuntimeError(f"SMM {self.index}: resource over-release")
        self.resident_warps.add(self.engine.now, -warps)
        if self._obs_resident is not None:
            self._obs_resident.add(self.engine.now, -warps)

    # -- warp execution ----------------------------------------------------

    def execute_phase(self, phase: Phase, dram: ProcessorSharing) -> Generator:
        """Subroutine: one warp runs one phase on this SMM.

        Instruction issue contends on this SMM's schedulers; memory
        traffic first exposes the DRAM access latency (a stall private
        to this warp — other warps keep issuing, so occupancy hides it)
        and then contends on the GPU-wide DRAM bandwidth pool.
        """
        overhead = self.timing.phase_overhead_ns
        stall = 0.0
        if phase.inst:
            # the fixed issue overhead immediately precedes the issue
            # demand, so the warp parks on one event for both
            yield self.issue.consume_after(overhead, phase.inst)
            if self.timing.warp_stall_ratio:
                # dependency stalls: private to this warp, hidden only
                # when enough *other* warps are resident (occupancy)
                stall = (phase.inst * self.timing.warp_stall_ratio
                         / self.spec.clock_ghz)
        elif overhead:
            yield overhead
        if phase.mem_bytes:
            # the stall and the DRAM access latency are both private
            # sleeps with nothing observable in between — fuse them
            # with the bandwidth demand into one parked wait
            yield dram.consume_after(stall + self.timing.mem_latency_ns,
                                     phase.mem_bytes)
        elif stall:
            yield stall

    def mean_occupancy(self, end: float | None = None) -> float:
        """Time-averaged resident warps / warp slots."""
        end = self.engine.now if end is None else end
        return self.resident_warps.average(end) / self.spec.max_warps_per_smm
