"""The task server: ingress, admission, dispatch, and collection.

This is the serve layer's engine room.  It turns a
:class:`~repro.core.MultiGpuPagoda` node (one stack for the common
single-GPU case) into a request server wired from four kinds of sim
processes:

- one **load generator** per tenant, replaying that tenant's seeded
  :class:`~repro.serve.arrivals.ArrivalProcess` (open-loop: arrivals
  track the schedule regardless of progress; closed-loop: each arrival
  waits for the previous response);
- the **admission gate** (:mod:`repro.serve.policies`), consulted at
  every arrival against the bounded ingress queue — drops are counted
  and answered immediately, backpressure blocks the source;
- one **dispatcher**, which pops queue-front batches (optionally fused
  by the :mod:`repro.serve.batcher`), remaps priorities through the
  SLO shim, picks the shortest-queue GPU, and drives the Table 1
  ``taskSpawn`` path;
- one **collector per GPU**, pulling completions back via the
  TaskTable's push-based ``drain_completions`` and stamping the
  per-stage latency breakdown into the accountant's histograms
  (ingress wait → PCIe post → TaskTable ready → warp exec).

Determinism: every source of variation — arrival schedules, admission
state, fault plans — is fixed before ``engine.run()``; the report of
:func:`serve` is a pure function of ``(tenants, config)`` and
byte-identical across repeated runs with the same seeds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.core.errors import CudaLaunchError, RetryPolicy
from repro.core.multigpu import MultiGpuPagoda
from repro.core.runtime import PagodaConfig
from repro.gpu.spec import GpuSpec
from repro.gpu.timing import TimingModel
from repro.pcie.bus import Direction
from repro.serve.arrivals import ArrivalProcess
from repro.serve.batcher import BatchPolicy, fuse_key, fuse_specs
from repro.serve.histogram import LatencyHistogram
from repro.serve.policies import ADMIT, DROP, WAIT, AdmissionPolicy
from repro.serve.slo import SloClass, apply_slo
from repro.sim import Event, Signal
from repro.tasks import TaskResult, TaskSpec

#: latency pipeline stages, in order (report + trace rows use these).
STAGES = ("ingress_wait", "pcie_post", "table_ready", "warp_exec")


@dataclass
class TenantSpec:
    """One traffic source: its tasks, arrival process, and contract."""

    name: str
    #: task specs issued in order, one per arrival; the tenant's
    #: request count is ``len(tasks)``.
    tasks: List[TaskSpec]
    arrivals: ArrivalProcess
    slo: SloClass = field(default_factory=SloClass)
    #: closed-loop tenants wait for each response (or drop) before
    #: clocking the next inter-arrival gap; open-loop tenants track
    #: their absolute schedule no matter how the server is doing.
    closed_loop: bool = False
    #: name of the compute partition serving this tenant, when the
    #: pagoda config carries a :class:`repro.partition.PartitionPlan`.
    #: Required whenever the plan has more than one partition; ignored
    #: (and must be None) on unpartitioned runs.
    partition: Optional[str] = None


@dataclass
class Request:
    """One in-flight unit of service with its stage timestamps."""

    index: int
    tenant: str
    spec: TaskSpec
    slo: SloClass
    arrival_ns: float
    done: Event
    status: str = "pending"  # queued | inflight | done | failed | dropped
    admit_ns: float = -1.0
    dispatch_ns: float = -1.0
    observed_ns: float = -1.0
    gpu_index: int = -1
    batch_size: int = 1
    result: Optional[TaskResult] = None

    @property
    def latency_ns(self) -> float:
        """Arrival-to-completion latency (meaningful once done)."""
        if self.result is None:
            return 0.0
        return self.result.end_time - self.arrival_ns


class IngressQueue:
    """Bounded-by-policy ingress buffer: global FIFO or per-tenant
    round-robin (when the admission policy asks for fair dequeue)."""

    def __init__(self, tenants: List[TenantSpec], fair: bool = False) -> None:
        self.fair = fair
        self._names = [t.name for t in tenants]
        self._per_tenant: Dict[str, deque] = {n: deque() for n in self._names}
        self._fifo: deque = deque()
        self._rr = 0
        self._len = 0
        self.max_depth_seen = 0

    def __len__(self) -> int:
        return self._len

    def tenant_names(self) -> List[str]:
        """All registered tenants (so fair policies can size slices)."""
        return list(self._names)

    def depth(self, tenant: str) -> int:
        """Queued requests of one tenant."""
        if self.fair:
            return len(self._per_tenant[tenant])
        return sum(1 for r in self._fifo if r.tenant == tenant)

    def append(self, request: Request) -> None:
        if self.fair:
            self._per_tenant[request.tenant].append(request)
        else:
            self._fifo.append(request)
        self._len += 1
        if self._len > self.max_depth_seen:
            self.max_depth_seen = self._len

    def _pick_queue(self) -> deque:
        if not self.fair:
            return self._fifo
        n = len(self._names)
        for step in range(n):
            q = self._per_tenant[self._names[(self._rr + step) % n]]
            if q:
                self._rr = (self._rr + step + 1) % n
                return q
        raise IndexError("pop from empty ingress queue")

    def clear(self) -> List[Request]:
        """Empty the queue, returning the evicted requests in queue
        order (the node-death failover path; ``max_depth_seen`` is
        deliberately preserved for the post-mortem report)."""
        evicted: List[Request] = []
        if self.fair:
            n = len(self._names)
            while self._len:
                q = self._per_tenant[self._names[self._rr % n]]
                self._rr = (self._rr + 1) % n
                while q:
                    evicted.append(q.popleft())
                    self._len -= 1
        else:
            evicted.extend(self._fifo)
            self._fifo.clear()
            self._len = 0
        return evicted

    def pop_batch(self, policy: BatchPolicy) -> List[Request]:
        """Pop the next request plus any fusable run behind it.

        Only consecutive requests at the *front* of the picked queue
        are considered — coalescing never reorders service.
        """
        if self._len == 0:
            raise IndexError("pop from empty ingress queue")
        q = self._pick_queue()
        head = q.popleft()
        batch = [head]
        if policy.enabled:
            key = fuse_key(head.spec)
            blocks = head.spec.num_blocks
            while (key is not None and q
                   and policy.can_extend(batch, q[0].spec, key, blocks)):
                nxt = q.popleft()
                blocks += nxt.spec.num_blocks
                batch.append(nxt)
        self._len -= len(batch)
        return batch


@dataclass
class ServeConfig:
    """Knobs for one serving run."""

    #: admission policy at the ingress queue.
    policy: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    #: same-kernel coalescing ahead of the TaskTable (off by default).
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    #: the underlying runtime's configuration (fault plans, watchdog,
    #: deferred scheduling for SLO priorities, ... all plug in here).
    #: Serving defaults to the **fast engine lane** (bit-identical to
    #: the default lane by the differential contract, ~2x on wide
    #: fans); pass ``PagodaConfig(lane="default")`` to opt out.
    pagoda: PagodaConfig = field(
        default_factory=lambda: PagodaConfig(lane="fast"))
    #: Pagoda stacks behind the one ingress queue (shortest-queue
    #: placement; ``gpu.die`` fault specs are not served — device
    #: failover stays with :func:`repro.core.run_multi_gpu_pagoda`).
    num_gpus: int = 1
    #: histogram resolution: percentiles are exact to 2**-bits.
    precision_bits: int = 10
    #: report label.
    label: str = "serve"


class TaskServer:
    """One serving run over a live Pagoda node."""

    #: remote frontends (:class:`repro.serve.remote.NodeFrontend`)
    #: receive their tasks by injection instead of local generators.
    remote = False
    #: prefix for this server's process names — set by multiplexing
    #: frontends (one server per partition) to keep traces readable.
    _name_prefix = ""

    def __init__(self, tenants: List[TenantSpec],
                 config: Optional[ServeConfig] = None,
                 spec: Optional[GpuSpec] = None,
                 timing: Optional[TimingModel] = None,
                 node=None) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        for t in tenants:
            if not t.tasks and not self.remote:
                raise ValueError(f"tenant {t.name!r} has no tasks")
        self.tenants = list(tenants)
        self.config = config or ServeConfig()
        #: the Pagoda node served against — built here for the common
        #: case, or injected prebuilt (a partition of a shared stack,
        #: in which case several servers share one engine and the
        #: caller owns ``engine.run``).
        self.node = node if node is not None else MultiGpuPagoda(
            self.config.num_gpus, spec, timing, self.config.pagoda)
        self.engine = self.node.engine
        self.timing = self.node.sessions[0].timing
        self.policy = self.config.policy
        self.queue = IngressQueue(self.tenants,
                                  fair=self.policy.fair_dequeue)

        #: optional :class:`repro.obs.Obs`, inherited from the pagoda
        #: config so one context spans the whole stack.  The report
        #: stays byte-identical either way; obs data rides separately.
        self.obs = self.config.pagoda.obs
        if self.obs is not None:
            obs = self.obs
            self._obs_offered = obs.counter("serve.offered")
            self._obs_admitted = obs.counter("serve.admitted")
            self._obs_dropped = obs.counter("serve.dropped")
            self._obs_completed = obs.counter("serve.completed")
            self._obs_failed = obs.counter("serve.failed")
            self._obs_queue = obs.timeline("serve.queue_depth")
            self._obs_inflight = obs.timeline("serve.inflight")

        #: every request ever created, in global arrival order.
        self.requests: List[Request] = []
        self.offered = 0
        self.admitted = 0
        self.dropped = 0
        self.completed = 0
        self.failed = 0
        self.spawns = 0  # taskSpawn calls (== batches dispatched)
        self.makespan = 0.0
        self.max_inflight = 0

        #: latency accountant: total + per-stage + per-tenant.
        bits = self.config.precision_bits
        self.hist_total = LatencyHistogram(bits)
        self.stage_hists = {s: LatencyHistogram(bits) for s in STAGES}
        self.tenant_stats: Dict[str, Dict] = {
            t.name: {"offered": 0, "dropped": 0, "completed": 0,
                     "failed": 0, "good": 0,
                     "hist": LatencyHistogram(bits)}
            for t in self.tenants
        }
        #: counter timeline: (t_ns, queue_depth, inflight, dropped,
        #: finished) — one row per state change (same-instant rows
        #: coalesced), feeding the traceviz counter export.
        self.timeline: List[tuple] = []

        self._work = Signal()
        self._space = Signal()
        self._dispatch_idle = False
        self._inflight: List[Dict[int, List[Request]]] = [
            {} for _ in range(self.config.num_gpus)
        ]
        self._inflight_count = 0
        self._gen_procs: List = []
        self._dispatch_proc = None
        self._collector_procs: List = []
        self._finish_ns = 0.0

    # -- bookkeeping ----------------------------------------------------------

    def _sample(self) -> None:
        row = (self.engine.now, len(self.queue), self._inflight_count,
               self.dropped, self.completed + self.failed)
        if self._inflight_count > self.max_inflight:
            self.max_inflight = self._inflight_count
        if self.timeline and self.timeline[-1][0] == row[0]:
            self.timeline[-1] = row
        else:
            self.timeline.append(row)
        if self.obs is not None:
            self._obs_queue.set(row[0], row[1])
            self._obs_inflight.set(row[0], row[2])

    def _note_terminal(self, req: Request) -> None:
        """Hook: ``req`` just reached a terminal status (``done`` /
        ``failed`` / ``dropped``).  The remote node frontend overrides
        this to log the answer for the cluster's reliability ledger;
        the local server needs nothing."""

    def _generators_done(self) -> bool:
        return not any(p.alive for p in self._gen_procs)

    def _all_done(self) -> bool:
        return (self._generators_done()
                and self._dispatch_proc is not None
                and self._dispatch_proc._done
                and len(self.queue) == 0
                and self._inflight_count == 0)

    # -- the sim processes ----------------------------------------------------

    def _new_request(self, tenant: TenantSpec, spec: TaskSpec,
                     arrival_ns: float) -> Request:
        req = Request(index=len(self.requests), tenant=tenant.name,
                      spec=spec, slo=tenant.slo, arrival_ns=arrival_ns,
                      done=Event())
        self.requests.append(req)
        self.offered += 1
        self.tenant_stats[tenant.name]["offered"] += 1
        if self.obs is not None:
            self._obs_offered.inc()
        return req

    def _offer(self, req: Request) -> Generator:
        """Put one request through the admission gate (may block the
        caller under a backpressure policy)."""
        while True:
            decision = self.policy.admit(req, self.queue, self.engine.now)
            if decision == ADMIT:
                req.admit_ns = self.engine.now
                req.status = "queued"
                self.admitted += 1
                self.queue.append(req)
                if self.obs is not None:
                    self._obs_admitted.inc()
                self._sample()
                self._work.pulse()
                return
            if decision == DROP:
                req.status = "dropped"
                self.dropped += 1
                self.tenant_stats[req.tenant]["dropped"] += 1
                if self.obs is not None:
                    self._obs_dropped.inc()
                    self.obs.instant("serve", "drop", self.engine.now,
                                     tenant=req.tenant, index=req.index)
                self._sample()
                self._note_terminal(req)
                req.done.fire(None)
                return
            if decision != WAIT:
                raise ValueError(
                    f"admission policy returned {decision!r}"
                )
            yield self._space.wait()

    def _generate(self, tenant: TenantSpec) -> Generator:
        engine = self.engine
        n = len(tenant.tasks)
        if tenant.closed_loop:
            for spec, gap in zip(tenant.tasks, tenant.arrivals.gaps(n)):
                if gap:
                    yield gap
                req = self._new_request(tenant, spec, engine.now)
                yield from self._offer(req)
                yield req.done
        else:
            for spec, at in zip(tenant.tasks, tenant.arrivals.schedule(n)):
                if engine.now < at:
                    yield at - engine.now
                # the arrival instant is the *offered-load* schedule
                # point even if backpressure delayed the previous offer
                req = self._new_request(tenant, spec, at)
                yield from self._offer(req)
        # wake the dispatcher so "generators done" is re-evaluated —
        # deferred one engine step, because a pulse fired from inside
        # this generator's final send() would wake the dispatcher
        # while this process still counts as alive
        engine.call_after(0.0, self._work.pulse)

    def _dispatch(self) -> Generator:
        engine = self.engine
        retry_policy = RetryPolicy()
        while True:
            if len(self.queue) == 0:
                if self._generators_done():
                    return
                self._dispatch_idle = True
                yield self._work.wait()
                self._dispatch_idle = False
                continue
            batch = self.queue.pop_batch(self.config.batch)
            self._space.pulse()
            head = batch[0]
            now = engine.now
            for r in batch:
                r.dispatch_ns = now
                r.status = "inflight"
                r.batch_size = len(batch)
            spec = (fuse_specs([r.spec for r in batch])
                    if len(batch) > 1 else head.spec)
            spec = apply_slo(spec, head.slo, head.arrival_ns, now)
            claim = yield from self._acquire_slot(spec)
            gpu_idx = self.node.pick_gpu()
            session = self.node.sessions[gpu_idx]
            result = TaskResult(0, spec.name)
            if self.config.pagoda.copy_inputs and spec.input_bytes:
                yield self.timing.memcpy_issue_ns
                engine.spawn(
                    session.bus.transfer(spec.input_bytes, Direction.H2D),
                    f"serve-incopy.{head.index}",
                )
            attempt = 0
            while True:
                try:
                    task_id = yield from session.host.task_spawn(spec, result)
                    break
                except CudaLaunchError:
                    attempt += 1
                    if attempt >= retry_policy.max_attempts:
                        raise
                    yield retry_policy.backoff_ns(attempt - 1)
            # latency is measured from arrival, not from when the host
            # got around to posting the entry
            result.spawn_time = head.arrival_ns
            self.spawns += 1
            self._note_claim(task_id, claim)
            for r in batch:
                r.result = result
                r.gpu_index = gpu_idx
            self.node._outstanding[gpu_idx] += len(batch)
            self._inflight[gpu_idx][task_id] = batch
            self._inflight_count += len(batch)
            self._sample()

    def _record_latency(self, req: Request) -> None:
        res = req.result
        arrival = req.arrival_ns
        stages = (
            ("ingress_wait", req.dispatch_ns - arrival),
            ("pcie_post", res.post_time - req.dispatch_ns),
            ("table_ready", res.sched_time - res.post_time),
            ("warp_exec", res.end_time - res.sched_time),
        )
        for name, dur in stages:
            self.stage_hists[name].record(max(0.0, dur))
        total = max(0.0, res.end_time - arrival)
        self.hist_total.record(total)
        stats = self.tenant_stats[req.tenant]
        stats["hist"].record(total)
        deadline = req.slo.deadline_ns
        if deadline is None or total <= deadline:
            stats["good"] += 1

    # -- resource-admission hooks ---------------------------------------------
    # Default implementations are observational no-ops that add ZERO
    # engine events, keeping unpartitioned reports byte-identical.
    # The partition server overrides them with quota-ledger claims.

    def _acquire_slot(self, spec: TaskSpec) -> Generator:
        """Hook: block until the backend may admit ``spec``; returns an
        opaque claim handle (``None`` here)."""
        return None
        yield  # pragma: no cover - unreachable; makes this a generator

    def _note_claim(self, task_id: int, claim) -> None:
        """Hook: associate a claim handle with the spawned task."""

    def _release_slot(self, task_id: int) -> None:
        """Hook: the task finished; return its claim."""

    def _finish_batch(self, gpu_idx: int, task_id: int,
                      batch: List[Request], transfers: List) -> Generator:
        session = self.node.sessions[gpu_idx]
        self._release_slot(task_id)
        err = session.table.errors.get(task_id)
        now = self.engine.now
        self._inflight_count -= len(batch)
        self.node._outstanding[gpu_idx] -= len(batch)
        for r in batch:
            r.observed_ns = now
            if err is not None:
                r.status = "failed"
                self.failed += 1
                self.tenant_stats[r.tenant]["failed"] += 1
                if self.obs is not None:
                    self._obs_failed.inc()
            else:
                r.status = "done"
                self.completed += 1
                self.tenant_stats[r.tenant]["completed"] += 1
                if self.obs is not None:
                    self._obs_completed.inc()
                self._record_latency(r)
            self._note_terminal(r)
            r.done.fire(r)
        self._sample()
        out_bytes = sum(r.spec.output_bytes for r in batch)
        if self.config.pagoda.copy_outputs and out_bytes and err is None:
            yield self.timing.memcpy_issue_ns
            transfers.append(self.engine.spawn(
                session.bus.transfer(out_bytes, Direction.D2H),
                f"serve-outcopy.{gpu_idx}.{task_id}",
            ))

    def _collect(self, gpu_idx: int) -> Generator:
        session = self.node.sessions[gpu_idx]
        host, table = session.host, session.table
        transfers: List = []
        while not self._all_done():
            if self._dispatch_idle or (
                    self._dispatch_proc is not None
                    and self._dispatch_proc._done):
                # no spawn is imminent: promote the pipeline tail so the
                # last posted task cannot wedge at (-1, 0) (§4.2.2)
                yield from host.finalize_last()
            yield self.timing.wait_timeout_ns
            yield from table.copy_back()
            for task_id in table.drain_completions():
                batch = self._inflight[gpu_idx].pop(task_id, None)
                if batch is None:
                    continue
                yield from self._finish_batch(gpu_idx, task_id, batch,
                                              transfers)
        for proc in transfers:
            yield proc
        self._finish_ns = max(self._finish_ns, self.engine.now)

    # -- driver ---------------------------------------------------------------

    def start(self) -> List:
        """Spawn this server's sim processes (no engine.run).

        Returns the processes whose completion marks the run done, so a
        caller multiplexing several servers onto one engine (the
        partitioned frontend) can drive and check them itself.
        """
        engine = self.engine
        pre = self._name_prefix
        for tenant in self.tenants:
            self._gen_procs.append(engine.spawn(
                self._generate(tenant), f"{pre}serve-gen.{tenant.name}"))
        self._dispatch_proc = engine.spawn(self._dispatch(),
                                           f"{pre}serve-dispatch")
        self._collector_procs = [
            engine.spawn(self._collect(i), f"{pre}serve-collect.{i}")
            for i in range(self.config.num_gpus)
        ]
        return [self._dispatch_proc] + self._collector_procs

    def finish(self):
        """Post-run checks + report (engine already drained)."""
        for proc in [self._dispatch_proc] + self._collector_procs:
            if not proc._done:
                raise RuntimeError(
                    f"serving run did not complete ({proc.name} stuck)"
                )
        self.makespan = self._finish_ns
        self.node.shutdown()
        if (self.completed + self.failed) != self.admitted:
            raise RuntimeError(
                f"served {self.completed}+{self.failed} of "
                f"{self.admitted} admitted requests"
            )
        from repro.serve.report import build_report
        return build_report(self)

    def run(self):
        """Run to quiescence and return the :class:`ServeReport`."""
        self.start()
        self.engine.run(raise_on_deadlock=True)
        return self.finish()

    def faults_injected(self) -> int:
        """Faults fired across every session's injector."""
        return sum(s.faults.injected_count
                   for s in self.node.sessions if s.faults is not None)


def serve(tenants: List[TenantSpec],
          config: Optional[ServeConfig] = None,
          spec: Optional[GpuSpec] = None,
          timing: Optional[TimingModel] = None):
    """Run one serving experiment.

    Returns a :class:`~repro.serve.report.ServeReport` — or, when the
    pagoda config carries a :class:`repro.partition.PartitionPlan`, a
    dict of per-partition reports from the partitioned frontend.
    """
    if config is not None and config.pagoda.partition is not None:
        from repro.partition.serve import serve_partitioned
        return serve_partitioned(tenants, config, spec, timing)
    for t in tenants:
        if t.partition is not None:
            raise ValueError(
                f"tenant {t.name!r} names partition {t.partition!r} but "
                "the pagoda config carries no PartitionPlan"
            )
    return TaskServer(tenants, config, spec, timing).run()
