"""Admission control: what happens to a request at the ingress queue.

Under overload something has to give; the policy decides *what*.  Each
policy sees a request at its arrival instant together with the current
ingress queue and answers one of:

- ``ADMIT`` — enqueue it;
- ``DROP``  — reject it now (counted, never spawned);
- ``WAIT``  — backpressure: the *source* blocks until the queue drains
  (only meaningful for closed-loop tenants; an open-loop source that
  waits simply shifts its whole schedule).

The stock policies cover the classic overload envelope:

==================  =====================================================
policy              degradation mode under sustained overload
==================  =====================================================
AlwaysAdmit         unbounded queue -> unbounded p99 (the baseline)
DropTail            bounded queue depth; excess requests dropped
Backpressure        bounded queue depth; sources slowed to service rate
TokenBucket         bounded *admitted rate* -> bounded p99; excess dropped
TenantFairQueue     per-tenant depth bounds; heavy tenants cannot starve
                    light ones (pairs with round-robin dequeue)
==================  =====================================================

Policies are deterministic state machines over virtual time — no RNG,
no wall clock — so an admission trace is replayable from the run's
seeds alone.
"""

from __future__ import annotations

from typing import Dict, Optional

#: admission decisions
ADMIT = "admit"
DROP = "drop"
WAIT = "wait"


class AdmissionPolicy:
    """Base policy: admit everything (the no-admission baseline)."""

    #: dequeue order hint for the server: True -> round-robin across
    #: tenants instead of global FIFO.
    fair_dequeue = False

    def admit(self, request, queue, now: float) -> str:
        """Decide one request's fate at its arrival instant."""
        return ADMIT

    def describe(self) -> str:
        """Stable one-line description (goes into the report JSON)."""
        return "always-admit"


#: alias with a name that reads as what it is in configs
AlwaysAdmit = AdmissionPolicy


class DropTail(AdmissionPolicy):
    """Bound the ingress queue: drop arrivals once it is full."""

    def __init__(self, max_depth: int) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth

    def admit(self, request, queue, now: float) -> str:
        return DROP if len(queue) >= self.max_depth else ADMIT

    def describe(self) -> str:
        return f"drop-tail(max_depth={self.max_depth})"


class Backpressure(AdmissionPolicy):
    """Bound the queue by *blocking the source* instead of dropping."""

    def __init__(self, max_depth: int) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth

    def admit(self, request, queue, now: float) -> str:
        return WAIT if len(queue) >= self.max_depth else ADMIT

    def describe(self) -> str:
        return f"backpressure(max_depth={self.max_depth})"


class TokenBucket(AdmissionPolicy):
    """Admit at most ``rate_per_s`` sustained, ``burst`` instantaneous.

    Tokens refill continuously in virtual time (lazy accounting: the
    balance is settled at each admission decision), so the admitted
    stream never exceeds the configured rate for longer than one burst
    — which is what keeps the *served* queue, and therefore p99, within
    a fixed bound no matter how hard the offered load overshoots.
    """

    def __init__(self, rate_per_s: float, burst: int = 16) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be > 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate_per_ns = rate_per_s / 1e9
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_ns = 0.0

    def admit(self, request, queue, now: float) -> str:
        self._tokens = min(
            self.burst,
            self._tokens + (now - self._last_ns) * self.rate_per_ns,
        )
        self._last_ns = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return ADMIT
        return DROP

    def describe(self) -> str:
        return (f"token-bucket(rate_per_s={self.rate_per_ns * 1e9:g}, "
                f"burst={self.burst:g})")


class TenantFairQueue(AdmissionPolicy):
    """Per-tenant depth bounds plus round-robin dequeue.

    Each tenant gets its own slice of the ingress queue
    (``max_depth * weight / total_weight``, at least 1); a tenant that
    floods only fills its own slice.  ``fair_dequeue`` makes the server
    pick tenants round-robin, so a backlogged heavy tenant cannot
    head-of-line-block a light latency-sensitive one.
    """

    fair_dequeue = True

    def __init__(self, max_depth: int,
                 weights: Optional[Dict[str, float]] = None) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.weights = dict(weights or {})

    def _tenant_cap(self, tenant: str, queue) -> int:
        weights = self.weights
        if not weights:
            tenants = queue.tenant_names() or [tenant]
            share = self.max_depth / max(1, len(tenants))
        else:
            total = sum(weights.values()) or 1.0
            share = self.max_depth * weights.get(tenant, 0.0) / total
        return max(1, int(share))

    def admit(self, request, queue, now: float) -> str:
        if queue.depth(request.tenant) >= self._tenant_cap(
                request.tenant, queue):
            return DROP
        return ADMIT

    def describe(self) -> str:
        weights = ",".join(f"{k}={v:g}"
                           for k, v in sorted(self.weights.items()))
        return (f"tenant-fair(max_depth={self.max_depth}"
                + (f", weights[{weights}]" if weights else "") + ")")
