"""Seeded arrival processes — the serve layer's load generators.

An arrival process is drawn *up front* from one seeded RNG, exactly
like :class:`repro.faults.FaultPlan`: the whole schedule is fixed
before the simulation starts, so a serving run is a pure function of
``(tenants, config)`` and every latency report replays byte-identically
from its seeds.  ``schedule(n)`` returns the absolute arrival instants
(ns); ``gaps(n)`` the inter-arrival gaps.  Gaps are rounded to 1/1000
ns so schedules are stable, printable numbers rather than raw float
noise.

The generators here model the paper's §1 traffic shapes:

- :class:`DeterministicArrivals` — a metronome feed (the existing
  ``spawn_gap_ns`` behaviour of the figure experiments);
- :class:`PoissonArrivals` — memoryless open-loop traffic, the standard
  model for aggregated independent request sources;
- :class:`BurstyArrivals` — an on/off source: bursts of back-to-back
  tasks separated by (optionally jittered) idle periods, the shape that
  stresses admission control hardest;
- :class:`TraceArrivals` — replay of a fixed schedule of arrival
  instants, the bridge from production traces (see
  :mod:`repro.scenarios.trace`) into the serve layer.

Generators are **idempotent**: ``gaps``/``schedule`` build a fresh
``random.Random(seed)`` per call, so repeated calls on one instance —
or calls on a pickled copy in another process — return the exact same
numbers.  ``tests/serve/test_arrivals.py`` locks this in.
"""

from __future__ import annotations

import math
import random
from typing import List


def _cumsum(gaps: List[float]) -> List[float]:
    out: List[float] = []
    t = 0.0
    for g in gaps:
        t = round(t + g, 3)
        out.append(t)
    return out


class ArrivalProcess:
    """Base class: a deterministic factory of arrival schedules."""

    def gaps(self, n: int) -> List[float]:
        """The first ``n`` inter-arrival gaps in ns."""
        raise NotImplementedError

    def schedule(self, n: int) -> List[float]:
        """Absolute arrival instants (ns) for ``n`` requests."""
        if n < 0:
            raise ValueError("n must be >= 0")
        return _cumsum(self.gaps(n))

    def describe(self) -> str:
        """Stable one-line description (goes into the report JSON)."""
        raise NotImplementedError


class DeterministicArrivals(ArrivalProcess):
    """One request every ``gap_ns`` — a metronome feed."""

    def __init__(self, gap_ns: float) -> None:
        if gap_ns < 0:
            raise ValueError("gap_ns must be >= 0")
        self.gap_ns = float(gap_ns)

    def gaps(self, n: int) -> List[float]:
        return [self.gap_ns] * n

    def describe(self) -> str:
        return f"deterministic(gap_ns={self.gap_ns:g})"


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate_per_s`` requests per second.

    Gaps are drawn as ``-mean * ln(1 - u)`` from ``random.Random(seed)``
    directly (not :func:`random.expovariate`) so the schedule depends
    only on the documented cross-version stability of ``random()``.
    """

    def __init__(self, rate_per_s: float, seed: int = 0) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be > 0")
        self.rate_per_s = float(rate_per_s)
        self.seed = seed

    @property
    def mean_gap_ns(self) -> float:
        """Mean inter-arrival gap implied by the rate."""
        return 1e9 / self.rate_per_s

    def gaps(self, n: int) -> List[float]:
        rng = random.Random(self.seed)
        mean = self.mean_gap_ns
        return [round(-mean * math.log(1.0 - rng.random()), 3)
                for _ in range(n)]

    def describe(self) -> str:
        return f"poisson(rate_per_s={self.rate_per_s:g}, seed={self.seed})"


class BurstyArrivals(ArrivalProcess):
    """On/off traffic: bursts of ``burst_size`` requests spaced
    ``gap_in_burst_ns`` apart, bursts separated by ``idle_gap_ns``.

    ``jitter`` > 0 multiplies each idle gap by a seeded uniform draw in
    ``[1 - jitter, 1 + jitter]`` so consecutive bursts do not beat
    against periodic service effects.

    The first burst starts at ~t=0 like every other generator: the
    gap at index 0 is 0.0, not an idle period.  (Until repro.serve/1
    reports generated after this fix, ``gaps`` emitted a full idle gap
    before the first request, which delayed the whole schedule by one
    idle period and skewed the offered rate against
    :class:`PoissonArrivals` at equal configured mean rates — golden
    seeded schedules recorded before the fix shift back by that first
    idle gap, and jittered schedules additionally re-index their idle
    draws since the leading gap no longer consumes one.)
    """

    def __init__(self, burst_size: int, gap_in_burst_ns: float,
                 idle_gap_ns: float, jitter: float = 0.0,
                 seed: int = 0) -> None:
        if burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if gap_in_burst_ns < 0 or idle_gap_ns < 0:
            raise ValueError("gaps must be >= 0")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.burst_size = burst_size
        self.gap_in_burst_ns = float(gap_in_burst_ns)
        self.idle_gap_ns = float(idle_gap_ns)
        self.jitter = float(jitter)
        self.seed = seed

    def gaps(self, n: int) -> List[float]:
        rng = random.Random(self.seed)
        out: List[float] = []
        for i in range(n):
            if i == 0:
                # first arrival lands at ~t=0; no idle period (and no
                # RNG draw) before traffic exists
                out.append(0.0)
            elif i % self.burst_size == 0:
                idle = self.idle_gap_ns
                if self.jitter:
                    idle *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
                out.append(round(idle, 3))
            else:
                out.append(round(self.gap_in_burst_ns, 3))
        return out

    @property
    def mean_gap_ns(self) -> float:
        """Long-run mean inter-arrival gap implied by the shape: one
        idle period plus ``burst_size - 1`` in-burst gaps per burst."""
        return (self.idle_gap_ns
                + (self.burst_size - 1) * self.gap_in_burst_ns
                ) / self.burst_size

    def describe(self) -> str:
        return (f"bursty(burst={self.burst_size}, "
                f"in_burst_ns={self.gap_in_burst_ns:g}, "
                f"idle_ns={self.idle_gap_ns:g}, jitter={self.jitter:g}, "
                f"seed={self.seed})")


class TraceArrivals(ArrivalProcess):
    """Replay of a fixed, pre-computed schedule of arrival instants.

    This is how production-shaped traffic enters the serve layer: the
    trace loader (:mod:`repro.scenarios.trace`) converts trace rows
    into a strictly-increasing list of instants (ns, rounded to 1/1000
    ns like every other generator) and wraps it here.  The instants
    *are* the schedule — there is no RNG at replay time, so a trace
    tenant is byte-stable by construction.

    ``cycle_ns`` > 0 lets ``schedule(n)`` ask for more arrivals than
    the trace holds: the instants repeat shifted by whole multiples of
    the cycle (an infinite periodic extension of the trace window).
    Without it, over-asking raises — silently looping a trace is a
    workload change the caller must opt into.
    """

    def __init__(self, instants: List[float], cycle_ns: float = 0.0,
                 label: str = "trace") -> None:
        if not instants:
            raise ValueError("need at least one arrival instant")
        rounded = [round(float(t), 3) for t in instants]
        if rounded[0] < 0.0:
            raise ValueError("arrival instants must be >= 0")
        for a, b in zip(rounded, rounded[1:]):
            if b <= a:
                raise ValueError(
                    f"arrival instants must be strictly increasing "
                    f"({a} then {b})"
                )
        if cycle_ns and cycle_ns <= rounded[-1]:
            raise ValueError(
                f"cycle_ns={cycle_ns:g} must exceed the last instant "
                f"({rounded[-1]:g}) for the extension to stay increasing"
            )
        self.instants = tuple(rounded)
        self.cycle_ns = float(cycle_ns)
        self.label = str(label)

    def signature(self) -> str:
        """Short blake2b digest of the replayed instants — names the
        exact trace content in reports."""
        import hashlib
        payload = ",".join(f"{t:.3f}" for t in self.instants)
        return hashlib.blake2b(payload.encode("utf-8"),
                               digest_size=6).hexdigest()

    def schedule(self, n: int) -> List[float]:
        if n < 0:
            raise ValueError("n must be >= 0")
        m = len(self.instants)
        if n <= m:
            return list(self.instants[:n])
        if not self.cycle_ns:
            raise ValueError(
                f"trace {self.label!r} holds {m} arrivals but {n} were "
                "requested; pass cycle_ns to replay it periodically"
            )
        return [round(self.instants[k % m] + (k // m) * self.cycle_ns, 3)
                for k in range(n)]

    def gaps(self, n: int) -> List[float]:
        sched = self.schedule(n)
        return [round(b - a, 3)
                for a, b in zip([0.0] + sched[:-1], sched)]

    def describe(self) -> str:
        return (f"trace(label={self.label}, n={len(self.instants)}, "
                f"span_ns={self.instants[-1]:g}, "
                f"cycle_ns={self.cycle_ns:g}, sig={self.signature()})")
