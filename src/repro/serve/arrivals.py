"""Seeded arrival processes — the serve layer's load generators.

An arrival process is drawn *up front* from one seeded RNG, exactly
like :class:`repro.faults.FaultPlan`: the whole schedule is fixed
before the simulation starts, so a serving run is a pure function of
``(tenants, config)`` and every latency report replays byte-identically
from its seeds.  ``schedule(n)`` returns the absolute arrival instants
(ns); ``gaps(n)`` the inter-arrival gaps.  Gaps are rounded to 1/1000
ns so schedules are stable, printable numbers rather than raw float
noise.

The generators here model the paper's §1 traffic shapes:

- :class:`DeterministicArrivals` — a metronome feed (the existing
  ``spawn_gap_ns`` behaviour of the figure experiments);
- :class:`PoissonArrivals` — memoryless open-loop traffic, the standard
  model for aggregated independent request sources;
- :class:`BurstyArrivals` — an on/off source: bursts of back-to-back
  tasks separated by (optionally jittered) idle periods, the shape that
  stresses admission control hardest.
"""

from __future__ import annotations

import math
import random
from typing import List


def _cumsum(gaps: List[float]) -> List[float]:
    out: List[float] = []
    t = 0.0
    for g in gaps:
        t = round(t + g, 3)
        out.append(t)
    return out


class ArrivalProcess:
    """Base class: a deterministic factory of arrival schedules."""

    def gaps(self, n: int) -> List[float]:
        """The first ``n`` inter-arrival gaps in ns."""
        raise NotImplementedError

    def schedule(self, n: int) -> List[float]:
        """Absolute arrival instants (ns) for ``n`` requests."""
        if n < 0:
            raise ValueError("n must be >= 0")
        return _cumsum(self.gaps(n))

    def describe(self) -> str:
        """Stable one-line description (goes into the report JSON)."""
        raise NotImplementedError


class DeterministicArrivals(ArrivalProcess):
    """One request every ``gap_ns`` — a metronome feed."""

    def __init__(self, gap_ns: float) -> None:
        if gap_ns < 0:
            raise ValueError("gap_ns must be >= 0")
        self.gap_ns = float(gap_ns)

    def gaps(self, n: int) -> List[float]:
        return [self.gap_ns] * n

    def describe(self) -> str:
        return f"deterministic(gap_ns={self.gap_ns:g})"


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate_per_s`` requests per second.

    Gaps are drawn as ``-mean * ln(1 - u)`` from ``random.Random(seed)``
    directly (not :func:`random.expovariate`) so the schedule depends
    only on the documented cross-version stability of ``random()``.
    """

    def __init__(self, rate_per_s: float, seed: int = 0) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be > 0")
        self.rate_per_s = float(rate_per_s)
        self.seed = seed

    @property
    def mean_gap_ns(self) -> float:
        """Mean inter-arrival gap implied by the rate."""
        return 1e9 / self.rate_per_s

    def gaps(self, n: int) -> List[float]:
        rng = random.Random(self.seed)
        mean = self.mean_gap_ns
        return [round(-mean * math.log(1.0 - rng.random()), 3)
                for _ in range(n)]

    def describe(self) -> str:
        return f"poisson(rate_per_s={self.rate_per_s:g}, seed={self.seed})"


class BurstyArrivals(ArrivalProcess):
    """On/off traffic: bursts of ``burst_size`` requests spaced
    ``gap_in_burst_ns`` apart, bursts separated by ``idle_gap_ns``.

    ``jitter`` > 0 multiplies each idle gap by a seeded uniform draw in
    ``[1 - jitter, 1 + jitter]`` so consecutive bursts do not beat
    against periodic service effects.
    """

    def __init__(self, burst_size: int, gap_in_burst_ns: float,
                 idle_gap_ns: float, jitter: float = 0.0,
                 seed: int = 0) -> None:
        if burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if gap_in_burst_ns < 0 or idle_gap_ns < 0:
            raise ValueError("gaps must be >= 0")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.burst_size = burst_size
        self.gap_in_burst_ns = float(gap_in_burst_ns)
        self.idle_gap_ns = float(idle_gap_ns)
        self.jitter = float(jitter)
        self.seed = seed

    def gaps(self, n: int) -> List[float]:
        rng = random.Random(self.seed)
        out: List[float] = []
        for i in range(n):
            if i % self.burst_size == 0:
                idle = self.idle_gap_ns
                if self.jitter:
                    idle *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
                out.append(round(idle, 3))
            else:
                out.append(round(self.gap_in_burst_ns, 3))
        return out

    def describe(self) -> str:
        return (f"bursty(burst={self.burst_size}, "
                f"in_burst_ns={self.gap_in_burst_ns:g}, "
                f"idle_ns={self.idle_gap_ns:g}, jitter={self.jitter:g}, "
                f"seed={self.seed})")
