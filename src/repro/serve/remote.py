"""Remote-node ingress: a steppable serve frontend for cluster shards.

A :class:`NodeFrontend` is a :class:`~repro.serve.server.TaskServer`
whose requests arrive over a (simulated) network instead of from local
load generators.  Two things change:

- **Ingress is injection.**  :meth:`NodeFrontend.inject` schedules a
  request at an absolute virtual arrival instant; the admission gate,
  queue, dispatcher, collectors, and latency accountant downstream are
  exactly the single-box serve pipeline.
- **Execution is stepped.**  Instead of one ``engine.run()`` to
  quiescence, the owner advances the node epoch by epoch with
  :meth:`step_until` (conservative lockstep — see
  ``docs/INTERNALS.md`` §12), injecting each epoch's deliveries before
  stepping into it.  :meth:`close_and_drain` ends the run: no further
  injections, drain to quiescence, build the canonical
  :class:`~repro.serve.report.ServeReport`.

A frontend can also :meth:`abort` mid-run — the node died (a
node-scoped ``gpu.die``): every request not yet answered is handed
back to the caller for cross-shard failover and the partial report is
still built, byte-deterministically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.serve.arrivals import ArrivalProcess
from repro.serve.server import TaskServer, TenantSpec
from repro.tasks import TaskSpec

#: request states that count as "unanswered" when a node dies (the
#: caller never got a completion, a failure, or a drop for them).
_UNANSWERED = ("pending", "queued", "inflight")


class RemoteArrivals(ArrivalProcess):
    """Placeholder arrival process for remotely fed tenants.

    A remote tenant's schedule belongs to the cluster router, not the
    node, so this process cannot be sampled — it exists to give the
    per-node report a stable ``arrivals`` description.
    """

    def __init__(self, via: str = "fabric") -> None:
        self.via = via

    def gaps(self, n: int) -> List[float]:
        raise TypeError("remote tenants receive arrivals by injection")

    def describe(self) -> str:
        return f"remote(via={self.via})"


def remote_tenants(names_slos) -> List[TenantSpec]:
    """Build the task-less :class:`TenantSpec` list a frontend needs
    for per-tenant accounting.  ``names_slos`` is an iterable of
    ``(name, SloClass)`` pairs."""
    return [
        TenantSpec(name=name, tasks=[], arrivals=RemoteArrivals(), slo=slo)
        for name, slo in names_slos
    ]


class NodeFrontend(TaskServer):
    """A serve frontend driven by injected arrivals and epoch steps."""

    remote = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._tenant_by_name: Dict[str, TenantSpec] = {
            t.name: t for t in self.tenants
        }
        #: injections scheduled but not yet resolved by the admission
        #: gate (the frontend is "busy" while any are outstanding).
        self._pending_arrivals = 0
        #: rid -> (tenant, spec, at_ns) for injections whose arrival
        #: instant has not been reached yet (needed for failover).
        self._undelivered: Dict[int, Tuple[str, TaskSpec, float]] = {}
        #: request index -> rid (cluster-global request id).
        self._rid_of_index: Dict[int, int] = {}
        self._closed = False
        self._started = False
        self.aborted = False
        #: requests handed back for cross-shard failover by `abort`.
        self.failed_over = 0
        self._collectors: List = []
        #: rids ever injected here — at-least-once delivery upstream
        #: (fabric retransmits, hedged re-placements) must stay
        #: exactly-once at the frontend.
        self._seen_rids: set = set()
        #: duplicate injections refused (fleet metric).
        self.dup_suppressed = 0
        #: ``(when_ns, rid, outcome)`` terminal events not yet drained
        #: by the owning shard (the cluster answer ledger's feed).
        self.answered_log: List[Tuple[float, int, str]] = []

    # -- lifecycle ------------------------------------------------------------

    def run(self):  # pragma: no cover - misuse guard
        raise TypeError(
            "NodeFrontend is stepped (start/step_until/close_and_drain); "
            "use TaskServer for run-to-quiescence serving"
        )

    def start(self) -> None:
        """Bring up the dispatcher and collectors (no load generators:
        every request arrives through :meth:`inject`)."""
        if self._started:
            raise RuntimeError("frontend already started")
        self._started = True
        self._dispatch_proc = self.engine.spawn(self._dispatch(),
                                                "serve-dispatch")
        self._collectors = [
            self.engine.spawn(self._collect(i), f"serve-collect.{i}")
            for i in range(self.config.num_gpus)
        ]

    def _generators_done(self) -> bool:
        # remote mode: "the load is over" means the owner closed the
        # frontend and every injected arrival has cleared admission.
        return self._closed and self._pending_arrivals == 0

    # -- ingress --------------------------------------------------------------

    def inject(self, rid: int, tenant: str, spec: TaskSpec,
               at_ns: float) -> bool:
        """Schedule one remote request to arrive at ``at_ns``.

        ``rid`` is the cluster-global request id (used to identify the
        request if it must be failed over to another node).  Injection
        order at equal ``at_ns`` is preserved (engine sequence
        numbers), so the caller's delivery order is the arrival order.

        Returns ``False`` (and changes nothing) when ``rid`` was
        already injected here — an unreliable fabric can present the
        same request twice (retransmit races, a dead-letter re-route
        landing next to the original), and the frontend is the
        exactly-once boundary.
        """
        if self._closed or self.aborted:
            raise RuntimeError("cannot inject into a closed frontend")
        if tenant not in self._tenant_by_name:
            raise KeyError(f"unknown tenant {tenant!r}")
        if rid in self._seen_rids:
            self.dup_suppressed += 1
            return False
        self._seen_rids.add(rid)
        self._pending_arrivals += 1
        self._undelivered[rid] = (tenant, spec, at_ns)
        self.engine.call_at(at_ns, lambda: self._arrive(rid))
        return True

    def _arrive(self, rid: int) -> None:
        tenant_name, spec, at_ns = self._undelivered.pop(rid)
        tenant = self._tenant_by_name[tenant_name]
        req = self._new_request(tenant, spec, at_ns)
        self._rid_of_index[req.index] = rid
        self.engine.spawn(self._ingress(req), f"serve-ingress.{rid}")

    def _ingress(self, req):
        yield from self._offer(req)
        self._pending_arrivals -= 1

    def _note_terminal(self, req) -> None:
        # feed the cluster answer ledger: "done" reads as "completed"
        # fleet-side (the ledger's outcome vocabulary)
        outcome = "completed" if req.status == "done" else req.status
        self.answered_log.append(
            (self.engine.now, self._rid_of_index[req.index], outcome))

    def drain_answered(self) -> List[Tuple[float, int, str]]:
        """Hand over (and clear) the terminal events logged since the
        last drain — the shard turns them into ``ANSWER`` messages."""
        out = self.answered_log
        self.answered_log = []
        return out

    # -- stepping -------------------------------------------------------------

    def step_until(self, when: float) -> float:
        """Advance this node's virtual time to ``when`` (one epoch)."""
        if not self._started:
            raise RuntimeError("start() the frontend before stepping")
        return self.engine.run_until(when)

    def busy(self) -> bool:
        """Whether any request is still somewhere in the pipeline."""
        return (self._pending_arrivals > 0 or len(self.queue) > 0
                or self._inflight_count > 0)

    def status(self) -> Dict[str, int]:
        """Plain-int load/health digest shipped to the router every
        epoch (the routing policies' entire view of this node)."""
        return {
            "alive": 0 if self.aborted else 1,
            "queued": len(self.queue),
            "inflight": self._inflight_count,
            "pending": self._pending_arrivals,
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "dropped": self.dropped,
            "failed_over": self.failed_over,
            "dup_suppressed": self.dup_suppressed,
        }

    # -- teardown -------------------------------------------------------------

    def close_and_drain(self):
        """No more injections; drain to quiescence and build the
        node's canonical :class:`~repro.serve.report.ServeReport`."""
        if self.aborted:
            raise RuntimeError("frontend already aborted")
        if self._pending_arrivals:
            raise RuntimeError(
                f"closing with {self._pending_arrivals} arrivals pending"
            )
        self._closed = True
        self._work.pulse()
        self.engine.run(raise_on_deadlock=True)
        for proc in [self._dispatch_proc] + self._collectors:
            if not proc._done:
                raise RuntimeError(
                    f"node drain did not complete ({proc.name} stuck)"
                )
        self.makespan = self._finish_ns
        self.node.shutdown()
        if (self.completed + self.failed) != self.admitted:
            raise RuntimeError(
                f"served {self.completed}+{self.failed} of "
                f"{self.admitted} admitted requests"
            )
        from repro.serve.report import build_report
        return build_report(self)

    def abort(self, at_ns: float):
        """The node died at ``at_ns``: stop the engine right there and
        hand back every unanswered request for cross-shard failover.

        Returns ``(report, respawns)`` where ``respawns`` is a list of
        ``(rid, tenant, spec)`` in deterministic (rid) order.  The
        report is the node's partial ledger — requests that were
        failed over stay visible as admitted-but-unanswered.
        """
        if self.aborted:
            raise RuntimeError("frontend already aborted")
        self.engine.run_until(at_ns)
        self.aborted = True
        self._closed = True
        respawns = []
        # injections whose arrival instant was never reached
        for rid, (tenant, spec, _at) in self._undelivered.items():
            respawns.append((rid, tenant, spec))
        self._undelivered.clear()
        # requests stuck in admission, the queue, or on the dead GPU
        for req in self.requests:
            if req.status in _UNANSWERED:
                req.status = "failed_over"
                respawns.append(
                    (self._rid_of_index[req.index], req.tenant, req.spec))
        respawns.sort(key=lambda r: r[0])
        self.failed_over = len(respawns)
        self._pending_arrivals = 0
        self._inflight_count = 0
        self.queue.clear()
        self.makespan = at_ns
        self.node.shutdown()
        from repro.serve.report import build_report
        return build_report(self), respawns
