"""The latency accountant's output: a replayable serving report.

A :class:`ServeReport` is the single deliverable of a serving run:
admission counters, goodput, and per-stage/per-tenant latency
histograms, serializable as JSON.  Serialization is deliberately
canonical — sorted keys, fixed separators, all floats rounded at the
source — so that two runs with the same seeds produce *byte-identical*
``to_json()`` output (asserted by ``tests/serve``), which is what makes
a report diffable evidence rather than a log file.

The report also keeps the raw material richer consumers need: the full
request list (for per-request trace spans) and the counter timeline
(queue depth / in-flight / drops over virtual time, for the
:mod:`repro.traceviz` counter rows).  Neither is part of the JSON
digest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.serve.histogram import LatencyHistogram
from repro.tasks import RunStats

#: JSON schema tag (bump when the digest's shape changes).
SCHEMA = "repro.serve/1"


@dataclass
class ServeReport:
    """Everything one serving run produced."""

    label: str
    policy: str
    batch: str
    num_gpus: int
    tenants_desc: Dict[str, str]
    makespan_ns: float
    offered: int
    admitted: int
    dropped: int
    completed: int
    failed: int
    spawns: int
    max_queue_depth: int
    max_inflight: int
    faults_injected: int
    hist_total: LatencyHistogram
    stage_hists: Dict[str, LatencyHistogram]
    tenant_stats: Dict[str, Dict]
    #: counter timeline rows: (t_ns, queue_depth, inflight, dropped,
    #: finished).  Not serialized into the JSON digest.
    timeline: List[tuple] = field(default_factory=list, repr=False)
    #: every request, in arrival order.  Not serialized.
    requests: List = field(default_factory=list, repr=False)

    # -- headline metrics -----------------------------------------------------

    @property
    def p99_us(self) -> float:
        """Tail latency of completed requests, microseconds."""
        return self.hist_total.percentile(99) / 1e3

    @property
    def drop_pct(self) -> float:
        """Share of offered requests rejected at admission."""
        return 100.0 * self.dropped / self.offered if self.offered else 0.0

    @property
    def goodput_per_s(self) -> float:
        """Deadline-meeting completions per (virtual) second."""
        if self.makespan_ns <= 0:
            return 0.0
        good = sum(s["good"] for s in self.tenant_stats.values())
        return good * 1e9 / self.makespan_ns

    @property
    def throughput_per_s(self) -> float:
        """All completions per (virtual) second."""
        if self.makespan_ns <= 0:
            return 0.0
        return self.completed * 1e9 / self.makespan_ns

    def deadline_met_pct(self, tenant: str) -> float:
        """Share of a tenant's *offered* requests served in deadline —
        drops count against the SLO, exactly as a caller sees them."""
        stats = self.tenant_stats[tenant]
        if not stats["offered"]:
            return 0.0
        return 100.0 * stats["good"] / stats["offered"]

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict:
        """The canonical JSON-ready digest."""
        tenants = {}
        for name, stats in sorted(self.tenant_stats.items()):
            tenants[name] = {
                "offered": stats["offered"],
                "dropped": stats["dropped"],
                "completed": stats["completed"],
                "failed": stats["failed"],
                "deadline_met_pct": round(self.deadline_met_pct(name), 3),
                "latency_us": stats["hist"].summary_us(),
            }
        return {
            "schema": SCHEMA,
            "label": self.label,
            "policy": self.policy,
            "batch": self.batch,
            "num_gpus": self.num_gpus,
            "arrivals": dict(sorted(self.tenants_desc.items())),
            "makespan_ms": round(self.makespan_ns / 1e6, 6),
            "totals": {
                "offered": self.offered,
                "admitted": self.admitted,
                "dropped": self.dropped,
                "completed": self.completed,
                "failed": self.failed,
                "spawns": self.spawns,
                "drop_pct": round(self.drop_pct, 3),
                "goodput_per_s": round(self.goodput_per_s, 3),
                "throughput_per_s": round(self.throughput_per_s, 3),
            },
            "queue": {
                "max_depth": self.max_queue_depth,
                "max_inflight": self.max_inflight,
            },
            "faults_injected": self.faults_injected,
            "latency_us": {
                "total": self.hist_total.summary_us(),
                "stages": {
                    name: hist.summary_us()
                    for name, hist in sorted(self.stage_hists.items())
                },
            },
            "tenants": tenants,
        }

    def to_json(self) -> str:
        """Canonical serialization: byte-identical across identical
        runs (sorted keys, fixed separators, pre-rounded floats)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def write_json(self, path: str) -> None:
        """Write the canonical digest (with a trailing newline)."""
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    # -- trace bridging -------------------------------------------------------

    def run_stats(self) -> RunStats:
        """The completed requests as a :class:`RunStats` (one result
        per request, batched requests sharing their fused task's
        timestamps) so every RunStats consumer — traceviz spans,
        percentile helpers — works on a serving run unchanged."""
        results = []
        for req in self.requests:
            if req.status != "done" or req.result is None:
                continue
            res = req.result
            # per-request copy: fused members share timestamps but keep
            # their own identity and arrival-based spawn_time
            from repro.tasks import TaskResult
            results.append(TaskResult(
                task_id=req.index, name=req.spec.name,
                spawn_time=req.arrival_ns, post_time=res.post_time,
                sched_time=res.sched_time, start_time=res.start_time,
                end_time=res.end_time, spawn_site=res.spawn_site,
            ))
        return RunStats(
            runtime=self.label, makespan=self.makespan_ns,
            results=results,
            meta={"policy": self.policy, "dropped": self.dropped},
        )


def build_report(server) -> ServeReport:
    """Assemble the report from a finished :class:`TaskServer`."""
    return ServeReport(
        label=server.config.label,
        policy=server.policy.describe(),
        batch=server.config.batch.describe(),
        num_gpus=server.config.num_gpus,
        tenants_desc={t.name: t.arrivals.describe() for t in server.tenants},
        makespan_ns=server.makespan,
        offered=server.offered,
        admitted=server.admitted,
        dropped=server.dropped,
        completed=server.completed,
        failed=server.failed,
        spawns=server.spawns,
        max_queue_depth=server.queue.max_depth_seen,
        max_inflight=server.max_inflight,
        faults_injected=server.faults_injected(),
        hist_total=server.hist_total,
        stage_hists=server.stage_hists,
        tenant_stats=server.tenant_stats,
        timeline=server.timeline,
        requests=server.requests,
    )
