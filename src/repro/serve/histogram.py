"""Log-linear latency histograms (HDR-style) over virtual time.

The latency accountant records hundreds of thousands of per-request,
per-stage samples; keeping them all and sorting at report time would
dominate the serve layer's memory.  Instead samples land in an
HdrHistogram-style *log-linear* bucket array: values below
``2**precision_bits`` are recorded exactly, larger values share one
bucket per ``2**-precision_bits`` of relative width, so any percentile
read back is within ``2**-precision_bits`` (~0.1% at the default 10
bits) of the true sample — bounded relative error at O(1) memory per
decade of dynamic range.

Percentile reads return the *upper edge* of the rank's bucket (the
convention of HdrHistogram's ``highestEquivalentValue``): conservative
for tail metrics, and integral ns, which is what keeps serialized
reports byte-stable.  Everything here is integer arithmetic on
deterministic inputs — two identical runs produce identical
histograms, bucket for bucket.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple


class LatencyHistogram:
    """Sparse log-linear histogram of non-negative ns values."""

    __slots__ = ("precision_bits", "_exact_limit", "counts", "total",
                 "sum", "min_value", "max_value")

    def __init__(self, precision_bits: int = 10) -> None:
        if not 1 <= precision_bits <= 20:
            raise ValueError("precision_bits must be in [1, 20]")
        self.precision_bits = precision_bits
        self._exact_limit = 1 << precision_bits
        #: bucket index -> sample count (sparse; most stages cluster).
        self.counts: Dict[int, int] = {}
        self.total = 0
        self.sum = 0
        self.min_value = None  # type: ignore[assignment]
        self.max_value = None  # type: ignore[assignment]

    # -- recording -----------------------------------------------------------

    def _index(self, value: int) -> int:
        if value < self._exact_limit:
            return value
        shift = value.bit_length() - 1 - self.precision_bits
        return (shift << self.precision_bits) + (value >> shift)

    def _bucket_high(self, index: int) -> int:
        """Largest value mapping to ``index`` (what percentiles report)."""
        if index < self._exact_limit:
            return index
        shift = (index >> self.precision_bits) - 1
        mantissa = index - (shift << self.precision_bits)
        return ((mantissa + 1) << shift) - 1

    def record(self, value_ns: float, count: int = 1) -> None:
        """Record ``count`` samples of ``value_ns`` (rounded to int ns)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        value = int(round(value_ns))
        if value < 0:
            raise ValueError(f"negative latency sample: {value_ns!r}")
        idx = self._index(value)
        self.counts[idx] = self.counts.get(idx, 0) + count
        self.total += count
        self.sum += value * count
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram (same precision)."""
        if other.precision_bits != self.precision_bits:
            raise ValueError("cannot merge histograms of differing precision")
        for idx, count in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + count
        self.total += other.total
        self.sum += other.sum
        for value in (other.min_value, other.max_value):
            if value is None:
                continue
            if self.min_value is None or value < self.min_value:
                self.min_value = value
            if self.max_value is None or value > self.max_value:
                self.max_value = value

    # -- reading -------------------------------------------------------------

    @property
    def mean(self) -> float:
        """Mean of the recorded samples (0.0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    #: rank math resolution: percentiles are exact to 1e-7 of a point
    #: (p99.9999999 still distinct from p100) while staying in integers.
    _PCT_SCALE = 10 ** 7

    def _rank(self, pct: float) -> int:
        """Nearest-rank target for ``pct``, in exact integer arithmetic.

        ``pct`` is scaled to an integer fraction *before* any product,
        so the ceil never operates on an already-truncated float: the
        seed's ``int(pct * total)`` chopped the fractional part ahead
        of the ceil-divide and reported boundary percentiles one rank
        low (e.g. p99.9 of 995 samples -> rank 994 instead of 995).
        """
        if not 0 <= pct <= 100:
            raise ValueError("percentile must be in [0, 100]")
        scaled = round(pct * self._PCT_SCALE)
        return max(1, -(-(scaled * self.total) // (100 * self._PCT_SCALE)))

    def percentile(self, pct: float) -> int:
        """Value (ns) at the given percentile, upper-bucket-edge
        convention; max relative error ``2**-precision_bits``."""
        if self.total == 0:
            raise ValueError("empty histogram")
        target = self._rank(pct)
        cumulative = 0
        for idx in sorted(self.counts):
            cumulative += self.counts[idx]
            if cumulative >= target:
                # never report past the true maximum (the top bucket's
                # upper edge can exceed it)
                return min(self._bucket_high(idx), self.max_value)
        return self.max_value  # unreachable: rank <= total

    def percentiles(self, pcts: Iterable[float]) -> List[Tuple[float, int]]:
        """Batch percentile read in ONE cumulative walk.

        Results match :meth:`percentile` exactly (asserted by the test
        suite) but the sorted bucket array is traversed once for the
        whole batch instead of once per entry.
        """
        pcts = list(pcts)
        if self.total == 0:
            raise ValueError("empty histogram")
        # ranks are monotone in pct, but the *input* order is the
        # caller's: resolve in rank order, answer in input order
        targets = sorted((self._rank(p), i) for i, p in enumerate(pcts))
        out: List[int] = [0] * len(pcts)
        k = 0
        cumulative = 0
        for idx in sorted(self.counts):
            if k == len(targets):
                break
            cumulative += self.counts[idx]
            value = None
            while k < len(targets) and cumulative >= targets[k][0]:
                if value is None:
                    value = min(self._bucket_high(idx), self.max_value)
                out[targets[k][1]] = value
                k += 1
        return [(p, out[i]) for i, p in enumerate(pcts)]

    def summary_us(self) -> Dict[str, float]:
        """The report-facing digest, in microseconds."""
        if self.total == 0:
            return {"count": 0}
        tail = dict(self.percentiles((50, 95, 99, 99.9)))
        return {
            "count": self.total,
            "mean": round(self.mean / 1e3, 3),
            "min": round(self.min_value / 1e3, 3),
            "max": round(self.max_value / 1e3, 3),
            "p50": round(tail[50] / 1e3, 3),
            "p95": round(tail[95] / 1e3, 3),
            "p99": round(tail[99] / 1e3, 3),
            "p99.9": round(tail[99.9] / 1e3, 3),
        }
