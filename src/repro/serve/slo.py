"""SLO classes and the deadline-to-priority shim.

The Pagoda scheduler understands one thing beyond FIFO: an integer
per-task ``priority`` consulted by the deferred-scheduling extension.
The serve layer's deadlines and tenant tiers have to be *mapped onto*
that single knob at spawn time — this module is that mapping.

A :class:`SloClass` names a tenant's contract (deadline + base
priority).  At dispatch, :func:`slo_priority` adds an urgency boost
when a request has already burned more than ``urgency_fraction`` of
its deadline waiting in the ingress queue — a coarse, deterministic
EDF approximation that needs no new scheduler machinery.  The boost
only matters when the underlying :class:`~repro.core.PagodaConfig`
enables ``deferred_scheduling``; under plain FIFO the priorities ride
along unused, exactly like the paper's base scheduler.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.tasks import TaskSpec


@dataclasses.dataclass(frozen=True)
class SloClass:
    """One tenant's service-level contract."""

    name: str = "best-effort"
    #: soft deadline for goodput accounting (None = every completion
    #: counts as good).
    deadline_ns: Optional[float] = None
    #: base scheduling priority (higher = scheduled first when the
    #: runtime runs with deferred scheduling).
    priority: int = 0
    #: extra priority once a request has waited past
    #: ``urgency_fraction`` of its deadline.
    urgency_boost: int = 1
    urgency_fraction: float = 0.5

    def describe(self) -> str:
        """Stable one-line description (goes into the report JSON)."""
        deadline = (f"{self.deadline_ns:g}ns" if self.deadline_ns
                    else "none")
        return (f"slo({self.name}, deadline={deadline}, "
                f"priority={self.priority})")


def slo_priority(slo: SloClass, arrival_ns: float, now: float) -> int:
    """Effective priority of a request dispatched at ``now``."""
    priority = slo.priority
    if slo.deadline_ns:
        waited = now - arrival_ns
        if waited >= slo.urgency_fraction * slo.deadline_ns:
            priority += slo.urgency_boost
    return priority


def apply_slo(spec: TaskSpec, slo: SloClass, arrival_ns: float,
              now: float) -> TaskSpec:
    """The spec to actually spawn: priority remapped per the SLO.

    Returns the input spec unchanged when the priority already matches
    (the common case — no copy on the hot path).
    """
    priority = slo_priority(slo, arrival_ns, now)
    if priority == spec.priority:
        return spec
    return dataclasses.replace(spec, priority=priority)
