"""`repro.serve` — an SLO-aware task-serving frontend for Pagoda.

The paper's whole argument is that a GPU should stay saturated under
*streams* of narrow tasks; this package is the layer that produces and
disciplines those streams.  It sits above the runtime
(:mod:`repro.core.runtime` / :mod:`repro.core.multigpu`) and below the
experiments (:mod:`repro.bench`), and composes with
:mod:`repro.faults` (serving under chaos is just a
:class:`~repro.core.PagodaConfig` with a fault plan).

Pieces, in pipeline order:

- :mod:`~repro.serve.arrivals` — seeded open/closed-loop load
  generators (Poisson, deterministic, bursty);
- :mod:`~repro.serve.policies` — admission control at a bounded
  ingress queue (drop-tail, backpressure, token bucket, per-tenant
  fair queueing) so overload degrades p99 gracefully;
- :mod:`~repro.serve.batcher` — opportunistic same-kernel coalescing
  ahead of the TaskTable;
- :mod:`~repro.serve.slo` — deadlines and tenant tiers mapped onto the
  scheduler's priority knob;
- :mod:`~repro.serve.server` — the sim processes wiring it together;
- :mod:`~repro.serve.histogram` / :mod:`~repro.serve.report` — the
  latency accountant: HDR-style per-stage histograms and a canonical,
  byte-replayable JSON report.

Quick start::

    from repro.serve import (PoissonArrivals, ServeConfig, TenantSpec,
                             TokenBucket, serve)
    from repro.workloads import DES3

    report = serve(
        [TenantSpec("packets", DES3.make_tasks(512, 128, seed=7),
                    PoissonArrivals(rate_per_s=400_000, seed=1))],
        ServeConfig(policy=TokenBucket(rate_per_s=250_000, burst=32)),
    )
    print(report.p99_us, report.drop_pct)
"""

from repro.serve.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.serve.batcher import BatchPolicy, fuse_key, fuse_specs
from repro.serve.histogram import LatencyHistogram
from repro.serve.policies import (
    ADMIT,
    DROP,
    WAIT,
    AdmissionPolicy,
    AlwaysAdmit,
    Backpressure,
    DropTail,
    TenantFairQueue,
    TokenBucket,
)
from repro.serve.remote import NodeFrontend, RemoteArrivals, remote_tenants
from repro.serve.report import ServeReport, build_report
from repro.serve.server import (
    STAGES,
    IngressQueue,
    Request,
    ServeConfig,
    TaskServer,
    TenantSpec,
    serve,
)
from repro.serve.slo import SloClass, apply_slo, slo_priority

__all__ = [
    "ArrivalProcess",
    "DeterministicArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "DropTail",
    "Backpressure",
    "TokenBucket",
    "TenantFairQueue",
    "ADMIT",
    "DROP",
    "WAIT",
    "BatchPolicy",
    "fuse_key",
    "fuse_specs",
    "SloClass",
    "slo_priority",
    "apply_slo",
    "LatencyHistogram",
    "NodeFrontend",
    "RemoteArrivals",
    "remote_tenants",
    "ServeReport",
    "build_report",
    "STAGES",
    "IngressQueue",
    "Request",
    "ServeConfig",
    "TaskServer",
    "TenantSpec",
    "serve",
]
