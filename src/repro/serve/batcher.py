"""Same-kernel task coalescing ahead of the TaskTable.

Pagoda's spawn path costs one TaskTable entry and one PCIe posted
write per task (§4.2.1).  When a backlog of *identical-shape* narrow
tasks sits at the ingress queue front, posting them one by one wastes
table entries and host time: the tasks run the same kernel with the
same per-block geometry, so k of them are indistinguishable from one
task with k times the blocks.  The batcher fuses such runs into a
single spawn and fans the completion timestamps back out to every
member request.

Fusion is *opportunistic*: only consecutive queue-front requests are
considered (never reordering), and only when the fusion is exact —
same timing kernel, same geometry, same ``work`` payload, no
functional kernel.  Anything else would change simulated timing or
functional outputs, which a serving shim must never do.  ``max_batch=1``
(the default) disables batching entirely.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.tasks import TaskSpec


def fuse_key(spec: TaskSpec) -> Optional[Tuple]:
    """Coalescing identity of a spec, or ``None`` if unbatchable.

    Two specs may fuse only when running either of them as extra
    blocks of the other is *exactly* the same simulated work: same
    kernel callable, same per-block geometry and resources, same
    ``work`` payload object, and no functional kernel (functional
    outputs land in per-task arrays that a fused run would conflate).
    """
    if spec.func is not None:
        return None
    return (
        spec.kernel, spec.threads_per_block, spec.shared_mem_bytes,
        spec.regs_per_thread, spec.needs_sync, id(spec.work),
        spec.cpu_inst_factor,
    )


def fuse_specs(specs: List[TaskSpec]) -> TaskSpec:
    """One spec equivalent to running ``specs`` back-to-back.

    Blocks and payload bytes are summed; priority is the members' max
    (the fused task must not be scheduled later than its most urgent
    member would have been).
    """
    if len(specs) == 1:
        return specs[0]
    head = specs[0]
    return dataclasses.replace(
        head,
        name=f"{head.name}+x{len(specs)}",
        num_blocks=sum(s.num_blocks for s in specs),
        input_bytes=sum(s.input_bytes for s in specs),
        output_bytes=sum(s.output_bytes for s in specs),
        param_bytes=max(s.param_bytes for s in specs),
        priority=max(s.priority for s in specs),
    )


class BatchPolicy:
    """How aggressively the dispatcher coalesces queue-front runs."""

    def __init__(self, max_batch: int = 1,
                 max_blocks: int = 64) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_blocks < 1:
            raise ValueError("max_blocks must be >= 1")
        #: cap on requests fused into one spawn.
        self.max_batch = max_batch
        #: cap on the fused task's total blocks — a fused task still
        #: has to fit one MTB's resources, and a huge fused task would
        #: serialize behind itself (latency, not throughput).
        self.max_blocks = max_blocks

    @property
    def enabled(self) -> bool:
        """Whether any coalescing can happen at all."""
        return self.max_batch > 1

    def describe(self) -> str:
        """Stable one-line description (goes into the report JSON)."""
        if not self.enabled:
            return "off"
        return f"batch(max={self.max_batch}, max_blocks={self.max_blocks})"

    def can_extend(self, batch: List, candidate_spec: TaskSpec,
                   key: Tuple, blocks: int) -> bool:
        """Whether ``candidate_spec`` may join the current batch."""
        if len(batch) >= self.max_batch:
            return False
        candidate_key = fuse_key(candidate_spec)
        if candidate_key is None or candidate_key != key:
            return False
        return blocks + candidate_spec.num_blocks <= self.max_blocks
