"""Zero-copy mapped memory with asynchronous store visibility.

Models the volatile, host-mapped device memory the TaskTable lives in
(§4.2.2: "we marked the TaskTable as volatile, and performed extensive
micro-benchmarking to ascertain that the in-flight writes by the CPU …
are visible to the GPU and vice-versa").

Semantics provided:

- a write becomes visible to the other side ``mapped_write_ns`` later;
- two writes issued *together* (one transaction payload, via
  :meth:`write_unordered`) may become visible in either order — the
  §4.2.1 hazard that rules out "copy parameters + ready flag in one
  cudamemcopy";
- writes issued as *separate* posted writes (:meth:`write`) stay
  ordered, which is what the pipelined taskID protocol relies on.

A deterministic ``hazard_reorder`` switch makes the unordered case
adversarial (flag lands first) so tests can demonstrate the failure the
paper describes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.gpu.timing import TimingModel
from repro.sim import Engine, Signal


class MappedRegion:
    """A key-value region mirrored over the bus with visibility latency.

    ``on_change`` is a :class:`~repro.sim.events.Signal` pulsed whenever
    a remote write lands; pollers (scheduler warps, the host spawner)
    wait on it instead of burning simulated poll cycles.
    """

    def __init__(
        self,
        engine: Engine,
        timing: TimingModel,
        name: str = "",
        hazard_reorder: bool = False,
    ) -> None:
        self.engine = engine
        self.timing = timing
        self.name = name
        self.hazard_reorder = hazard_reorder
        self._data: Dict[Any, Any] = {}
        self.on_change = Signal()
        self.write_count = 0

    # -- reads are local (the region is mapped on both sides) -------------

    def read(self, key: Any, default: Any = None) -> Any:
        """Read a key from the mapped region (local, immediate)."""
        return self._data.get(key, default)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    # -- writes ------------------------------------------------------------

    def _land(self, key: Any, value: Any) -> None:
        self._data[key] = value
        self.on_change.pulse(key)

    def write(self, key: Any, value: Any,
              on_visible: Optional[Callable[[], None]] = None) -> None:
        """Posted write: visible after ``mapped_write_ns``.

        Successive calls retain program order (posted writes to the same
        endpoint are ordered on PCIe).
        """
        self.write_count += 1
        delay = self.timing.mapped_write_ns

        def deliver() -> None:
            self._land(key, value)
            if on_visible is not None:
                on_visible()

        self.engine.call_after(delay, deliver)

    def write_local(self, key: Any, value: Any) -> None:
        """Write by the side that owns the mirror: visible immediately."""
        self._land(key, value)

    def write_unordered(self, payload: Dict[Any, Any], flag_key: Any,
                        flag_value: Any) -> None:
        """One-transaction bulk write of ``payload`` plus a ready flag.

        PCIe gives no intra-payload ordering guarantee, so with
        ``hazard_reorder`` the flag lands *before* the payload — the
        §4.2.1 failure mode.  Without it the payload happens to land
        first (the benign case that makes the bug intermittent on real
        hardware).
        """
        self.write_count += 1
        base = self.timing.mapped_write_ns
        if self.hazard_reorder:
            self.engine.call_after(base * 0.5, lambda: self._land(flag_key, flag_value))
            self.engine.call_after(
                base, lambda: [self._land(k, v) for k, v in payload.items()]
            )
        else:
            self.engine.call_after(
                base * 0.5,
                lambda: [self._land(k, v) for k, v in payload.items()],
            )
            self.engine.call_after(base, lambda: self._land(flag_key, flag_value))

    def snapshot(self) -> Dict[Any, Any]:
        """Copy of current contents (test/diagnostic aid)."""
        return dict(self._data)
