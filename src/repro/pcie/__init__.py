"""PCIe interconnect model.

The bus is where Pagoda's TaskTable design earns its keep: every
``cudaMemcpy`` pays a fixed multi-microsecond transaction cost, the bus
has no atomic operations, and delivery order *within* one transaction's
payload is not guaranteed (§4.2.1's ready-flag hazard).  This package
models all three properties.

- :class:`~repro.pcie.bus.PcieBus` — full-duplex link, one DMA engine
  per direction, per-transaction overhead + bandwidth.
- :class:`~repro.pcie.mapped.MappedRegion` — zero-copy (volatile mapped)
  memory with store-visibility latency, for doorbell-style flags.
"""

from repro.pcie.bus import Direction, PcieBus
from repro.pcie.mapped import MappedRegion

__all__ = ["PcieBus", "Direction", "MappedRegion"]
