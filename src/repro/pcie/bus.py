"""PCIe link with per-transaction overhead and DMA engine serialization.

A transfer costs ``pcie_transaction_ns + bytes / pcie_bandwidth_bpns``
and holds the direction's single DMA engine for its duration, so many
small copies queue behind each other — the overhead regime the paper's
"1 cudamemcopy per task table entry" pipelining (§4.2.1) and lazy
aggregate copy-backs (§4.2.2) are designed around.  The two directions
are independent (PCIe is full duplex), letting H2D input copies overlap
D2H result copies exactly as CUDA streams allow.

With ``coalesce=True`` the link models a DMA engine that keeps a
direction's stream open across back-to-back transactions: a transfer
that starts the instant its predecessor finished (i.e. it was already
queued on the engine) pays only wire time, not a fresh
``pcie_transaction_ns`` setup.  The flag defaults to **off** so every
figure-reproduction number is produced by the paper's per-transaction
cost model; it exists to quantify how much of Pagoda's spawn overhead
is PCIe transaction setup rather than payload.
"""

from __future__ import annotations

import enum
from typing import Generator

from repro.gpu.timing import TimingModel
from repro.sim import Engine, FifoResource, Recorder


class Direction(enum.Enum):
    """Transfer direction over the link."""

    H2D = "host_to_device"
    D2H = "device_to_host"


class PcieBus:
    """Full-duplex PCIe link with one DMA engine per direction."""

    def __init__(self, engine: Engine, timing: TimingModel,
                 coalesce: bool = False, faults=None, obs=None) -> None:
        self.engine = engine
        self.timing = timing
        #: merge back-to-back same-direction transactions (off by
        #: default: the paper's model charges setup per transaction).
        self.coalesce = coalesce
        #: optional :class:`repro.faults.FaultInjector`; hook points
        #: below draw ``pcie.drop`` / ``pcie.dup`` / ``pcie.delay``.
        self.faults = faults
        #: optional :class:`repro.obs.Obs`: per-direction byte and
        #: transaction counters plus DMA-queue-wait distributions.
        #: ``None`` (the default) costs nothing beyond this attribute.
        self.obs = obs
        if obs is not None:
            self._obs_bytes = {
                d: obs.counter(f"pcie.{d.name.lower()}.bytes")
                for d in Direction
            }
            self._obs_txns = {
                d: obs.counter(f"pcie.{d.name.lower()}.transactions")
                for d in Direction
            }
            self._obs_wait = {
                d: obs.distribution(f"pcie.{d.name.lower()}.queue_wait_ns")
                for d in Direction
            }
        self._engines = {
            Direction.H2D: FifoResource(engine, 1, "pcie.h2d"),
            Direction.D2H: FifoResource(engine, 1, "pcie.d2h"),
        }
        self.recorder = Recorder()
        self.bytes_moved = {Direction.H2D: 0, Direction.D2H: 0}
        self.transactions = {Direction.H2D: 0, Direction.D2H: 0}
        #: transactions that rode an already-open stream (coalesce on).
        self.coalesced = {Direction.H2D: 0, Direction.D2H: 0}
        #: injected-fault tallies (always present; non-zero only when a
        #: fault injector is attached).
        self.dropped = {Direction.H2D: 0, Direction.D2H: 0}
        self.duplicated = {Direction.H2D: 0, Direction.D2H: 0}
        # when each direction's DMA engine last went idle; a transfer
        # starting exactly then was queued behind its predecessor,
        # which is the "back-to-back same stream" condition
        self._last_end = {Direction.H2D: -1.0, Direction.D2H: -1.0}

    def transfer_time(self, nbytes: int) -> float:
        """Service time of one transaction of ``nbytes`` (excl. queueing
        and coalescing)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return (
            self.timing.pcie_transaction_ns
            + nbytes / self.timing.pcie_bandwidth_bpns
        )

    def transfer(self, nbytes: int, direction: Direction) -> Generator:
        """Subroutine: perform one cudaMemcpy-style transaction.

        Use as ``yield from bus.transfer(n, Direction.H2D)``.  Returns
        after the payload is fully delivered.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        dma = self._engines[direction]
        obs = self.obs
        queued_at = self.engine.now if obs is not None else 0.0
        yield dma.acquire()
        if obs is not None:
            self._obs_wait[direction].record(self.engine.now - queued_at)
        duration = nbytes / self.timing.pcie_bandwidth_bpns
        if self.coalesce and self._last_end[direction] == self.engine.now:
            # the engine never went idle between the predecessor and
            # us: the stream is still open, skip the setup cost
            self.coalesced[direction] += 1
        else:
            duration += self.timing.pcie_transaction_ns
        faults = self.faults
        if faults is not None:
            site = direction.value
            delay = faults.draw("pcie.delay", site)
            if delay is not None:
                # congestion / link retraining: the payload is intact
                # but arrives late
                duration += delay.magnitude_ns
            while faults.draw("pcie.drop", site) is not None:
                # the transaction is lost and replayed: pay the full
                # service time again (a replayed TLP after CRC error)
                self.dropped[direction] += 1
                yield duration
            if faults.draw("pcie.dup", site) is not None:
                # delivered twice: the second copy is harmless but
                # occupies the engine for another service time
                self.duplicated[direction] += 1
                duration *= 2.0
        yield duration
        self._last_end[direction] = self.engine.now
        dma.release()
        self.bytes_moved[direction] += nbytes
        self.transactions[direction] += 1
        if obs is not None:
            self._obs_bytes[direction].inc(nbytes)
            self._obs_txns[direction].inc()
        self.recorder.sample(
            f"transfer.{direction.value}", self.engine.now, float(nbytes)
        )

    def busy_time(self, direction: Direction) -> float:
        """Total service time charged so far in one direction.

        Used by Table 3's "% time spent in data copy" measurement.
        Coalesced transactions paid no setup cost, so they contribute
        only wire time.
        """
        n = self.transactions[direction] - self.coalesced[direction]
        payload = self.bytes_moved[direction] / self.timing.pcie_bandwidth_bpns
        return n * self.timing.pcie_transaction_ns + payload

    def total_busy_time(self) -> float:
        """Busy time summed over both bus directions."""
        return self.busy_time(Direction.H2D) + self.busy_time(Direction.D2H)
