"""Post-run analysis of RunStats and live sessions.

Everything a downstream user asks right after a run: the latency
distribution, where time went, how evenly the MTBs were loaded, and a
side-by-side of several runtimes.  All text/arrays — no plotting
dependency (feed `latency_cdf` to your plotter of choice).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bench.harness import copy_fraction
from repro.bench.reporting import format_table
from repro.tasks import RunStats


def latency_cdf(stats: RunStats, points: int = 100
                ) -> List[Tuple[float, float]]:
    """(latency_ns, fraction ≤ latency) pairs, ``points`` quantiles."""
    if not stats.results:
        raise ValueError("no results")
    if points < 2:
        raise ValueError("points must be >= 2")
    lats = np.sort([r.latency for r in stats.results])
    fracs = np.linspace(0.0, 1.0, points)
    idx = np.minimum((fracs * (len(lats) - 1)).round().astype(int),
                     len(lats) - 1)
    return [(float(lats[i]), float(f)) for i, f in zip(idx, fracs)]


def summarize(stats: RunStats) -> str:
    """One human-readable block per run."""
    lines = [
        f"runtime:        {stats.runtime}",
        f"tasks:          {len(stats.results)}",
        f"makespan:       {stats.makespan / 1e6:.3f} ms",
    ]
    if stats.results:
        lines += [
            f"throughput:     {stats.throughput_tasks_per_ms():.1f} tasks/ms",
            f"latency p50:    {stats.latency_percentile(50) / 1e3:.1f} us",
            f"latency p99:    {stats.latency_percentile(99) / 1e3:.1f} us",
        ]
    lines += [
        f"copy fraction:  {100 * copy_fraction(stats):.1f} %",
        f"occupancy:      {100 * stats.mean_occupancy:.1f} %",
    ]
    return "\n".join(lines)


def mtb_load_balance(session) -> Dict[str, float]:
    """How evenly the 48 MTBs shared the work (live/finished session).

    Returns per-MTB executed-task statistics; a coefficient of
    variation near 0 means the column-interleaved free-entry queue did
    its load-balancing job (§4.2).
    """
    counts = np.array([m.tasks_executed for m in session.master.mtbs],
                      dtype=float)
    if counts.sum() == 0:
        raise ValueError("no tasks executed yet")
    return {
        "mtbs": int(len(counts)),
        "total": int(counts.sum()),
        "min": float(counts.min()),
        "max": float(counts.max()),
        "mean": float(counts.mean()),
        "cv": float(counts.std() / counts.mean()),
    }


def compare(runs: Sequence[RunStats], baseline: int = 0) -> str:
    """Side-by-side table of several runs of the same task set."""
    if not runs:
        raise ValueError("nothing to compare")
    base = runs[baseline]
    rows = []
    for stats in runs:
        rows.append([
            stats.runtime,
            round(stats.makespan / 1e6, 3),
            round(base.makespan / stats.makespan, 2),
            round(stats.mean_latency / 1e3, 1),
            round(100 * copy_fraction(stats), 1),
        ])
    return format_table(
        ["runtime", "makespan_ms", f"speedup_vs_{base.runtime}",
         "mean_latency_us", "copy_%"],
        rows, title="RUN COMPARISON",
    )
