"""``repro.cluster`` — process-sharded fleet simulation.

The cluster layer scales the single-box serve stack out to a fleet:
``N`` GPU nodes, each a self-contained engine + Pagoda runtime +
serve frontend (its own :class:`~repro.cluster.node.NodeShard`),
coupled *only* through a simulated network fabric with explicit
per-link latency.  Shards advance in conservative lockstep epochs
(epoch length <= the fabric lookahead), exchanging messages at epoch
boundaries only — which makes the run exact, deterministic, and
byte-replayable from ``(tenants, topology, router, seeds)`` no matter
how many worker processes host the shards.

Entry point: :func:`run_cluster`.  Routing policies live in
:mod:`repro.cluster.router`; see ``docs/INTERNALS.md`` §12 for the
synchronization protocol and the determinism argument, and
``docs/EXTENDING.md`` for the custom-router recipe.
"""

from repro.cluster.driver import run_cluster
from repro.cluster.fabric import FORWARD, RESPAWN, Fabric, Message
from repro.cluster.node import NodeShard
from repro.cluster.report import FleetReport
from repro.cluster.report import SCHEMA as FLEET_SCHEMA
from repro.cluster.router import (
    ConsistentHashRouter,
    FleetView,
    LeastLoadedRouter,
    RouteRequest,
    RouterPolicy,
    SloAwareRouter,
)
from repro.cluster.topology import ROUTER, NodeSpec, Topology
from repro.cluster.worker import InProcessHost, WorkerPoolHost

__all__ = [
    "run_cluster",
    "FleetReport",
    "FLEET_SCHEMA",
    "Topology",
    "NodeSpec",
    "ROUTER",
    "Fabric",
    "Message",
    "FORWARD",
    "RESPAWN",
    "NodeShard",
    "RouterPolicy",
    "RouteRequest",
    "FleetView",
    "ConsistentHashRouter",
    "LeastLoadedRouter",
    "SloAwareRouter",
    "InProcessHost",
    "WorkerPoolHost",
]
