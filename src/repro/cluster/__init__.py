"""``repro.cluster`` — process-sharded fleet simulation.

The cluster layer scales the single-box serve stack out to a fleet:
``N`` GPU nodes, each a self-contained engine + Pagoda runtime +
serve frontend (its own :class:`~repro.cluster.node.NodeShard`),
coupled *only* through a simulated network fabric with explicit
per-link latency.  Shards advance in conservative lockstep epochs
(epoch length <= the fabric lookahead), exchanging messages at epoch
boundaries only — which makes the run exact, deterministic, and
byte-replayable from ``(tenants, topology, router, seeds)`` no matter
how many worker processes host the shards.

The fabric doesn't have to be reliable: arm a seeded ``fabric.*``
:class:`~repro.faults.FaultPlan` (drops, duplicates, delay spikes,
partitions, gray-failure pauses) and the coordinator switches to
at-least-once messaging with ack/retransmit, an answer ledger,
digest-visibility health suspicion (suspect → quarantine →
probation, :mod:`repro.cluster.health`), and hedged re-routing —
still byte-identical for any worker count.

Entry point: :func:`run_cluster`.  Routing policies live in
:mod:`repro.cluster.router`; see ``docs/INTERNALS.md`` §12-§13 for
the synchronization protocol, the determinism argument, and the
fault/self-healing machinery, and ``docs/EXTENDING.md`` for the
custom-router and fabric-fault recipes.
"""

from repro.cluster.driver import run_cluster
from repro.cluster.fabric import (ACK, ANSWER, FORWARD, RESPAWN, Fabric,
                                  FabricPolicy, Message)
from repro.cluster.health import (DegradationEvent, HealthPolicy,
                                  HealthTracker)
from repro.cluster.node import NodeShard
from repro.cluster.report import FleetReport
from repro.cluster.report import SCHEMA as FLEET_SCHEMA
from repro.cluster.report import SCHEMA_RELIABLE as FLEET_SCHEMA_RELIABLE
from repro.cluster.router import (
    ConsistentHashRouter,
    FleetView,
    LeastLoadedRouter,
    RouteRequest,
    RouterPolicy,
    SloAwareRouter,
)
from repro.cluster.topology import ROUTER, NodeSpec, Topology
from repro.cluster.worker import (ClusterWorkerError, InProcessHost,
                                  WorkerPoolHost)

__all__ = [
    "run_cluster",
    "FleetReport",
    "FLEET_SCHEMA",
    "FLEET_SCHEMA_RELIABLE",
    "Topology",
    "NodeSpec",
    "ROUTER",
    "Fabric",
    "FabricPolicy",
    "Message",
    "FORWARD",
    "RESPAWN",
    "ANSWER",
    "ACK",
    "NodeShard",
    "HealthPolicy",
    "HealthTracker",
    "DegradationEvent",
    "RouterPolicy",
    "RouteRequest",
    "FleetView",
    "ConsistentHashRouter",
    "LeastLoadedRouter",
    "SloAwareRouter",
    "InProcessHost",
    "WorkerPoolHost",
    "ClusterWorkerError",
]
