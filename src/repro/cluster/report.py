"""The fleet's canonical deliverable: one merged cluster report.

A :class:`FleetReport` folds every node's
:class:`~repro.serve.report.ServeReport` plus the coordinator's own
ledgers (routing counts, fabric traffic, epochs) into a single
JSON-serializable digest with the same canonicalization discipline as
the serve layer: sorted keys, fixed separators, floats rounded at the
source.  The contract extends across processes:

    ``to_json()`` bytes are a pure function of
    ``(tenants, topology, router, seeds)`` — the **worker count never
    appears** in (or influences) the digest, so a 1-process run and an
    N-worker run of the same fleet are byte-identical
    (asserted by ``tests/cluster``).

Two schemas share this class.  A legacy-lane run (no fabric fault
plan) emits ``repro.cluster/1`` — byte-for-byte the pre-fault digest,
so zero-fault runs stay comparable across repo versions.  A
reliable-lane run (any non-zero ``fabric.*`` plan) emits
``repro.cluster/2``, which adds the fabric reliability ledger
(retransmits, acks, dedup, faults fired), the self-healing routing
counters (hedges, re-routes, deferrals), the answer-ledger frontier,
and the health state machine's final states + degradation event log.

Latency histograms merge exactly (:meth:`LatencyHistogram.merge` is
bucket-wise integer addition), so fleet-level percentiles are computed
over the union of every node's samples, not averaged from per-node
percentiles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.health import DegradationEvent
from repro.serve.histogram import LatencyHistogram
from repro.serve.report import ServeReport

#: JSON schema tag of the legacy (reliable=False) digest.
SCHEMA = "repro.cluster/1"
#: JSON schema tag of the reliable-lane digest.
SCHEMA_RELIABLE = "repro.cluster/2"

#: totals summed across nodes into the fleet ledger.
_SUM_FIELDS = ("offered", "admitted", "dropped", "completed", "failed",
               "spawns", "faults_injected")

#: degradation events serialized verbatim before the log is truncated
#: (the total count is always exact).
_EVENT_CAP = 1000


@dataclass
class FleetReport:
    """Everything one fleet run produced."""

    label: str
    router: str
    topology: str
    epoch_ns: float
    epochs: int
    #: node name -> that node's full ServeReport (order-stable by name).
    node_reports: Dict[str, ServeReport]
    #: node name -> requests the router placed there (first placement).
    routed: Dict[str, int]
    #: requests re-routed after a node death.
    respawned: int
    #: deliveries refused by an already-dead node.
    bounced: int
    fabric_posted: int
    fabric_delivered: int
    fabric_latency_sum_ns: float
    #: merged per-node obs snapshots (``None`` unless obs was on).
    obs: Optional[dict] = None
    #: reliable fabric lane (non-zero fault plan)?  Selects the schema.
    reliable: bool = False
    fabric_retransmits: int = 0
    fabric_dead_lettered: int = 0
    fabric_acked: int = 0
    fabric_dup_suppressed: int = 0
    fabric_abandoned: int = 0
    fabric_wire_dropped: int = 0
    fabric_wire_held: int = 0
    #: fault kind -> times it fired on the wire.
    fabric_faults: Dict[str, int] = field(default_factory=dict)
    fabric_plan_desc: str = ""
    fabric_policy_desc: str = ""
    hedges: int = 0
    hedge_dups: int = 0
    rerouted: int = 0
    deferred: int = 0
    #: answer-ledger conservation: offered == completed+failed+dropped.
    frontier: Dict[str, int] = field(default_factory=dict)
    health_policy_desc: str = ""
    #: node -> final health state.
    health_final: Dict[str, str] = field(default_factory=dict)
    #: every self-healing action, in occurrence order.
    degradations: List[DegradationEvent] = field(default_factory=list)

    # -- headline metrics -----------------------------------------------------

    @property
    def makespan_ns(self) -> float:
        """Fleet makespan: the slowest node's makespan."""
        return max(r.makespan_ns for r in self.node_reports.values())

    def totals(self) -> Dict[str, int]:
        out = {f: sum(getattr(r, f) for r in self.node_reports.values())
               for f in _SUM_FIELDS}
        out["failed_over"] = self.respawned
        out["bounced"] = self.bounced
        return out

    def merged_hist(self) -> LatencyHistogram:
        """All nodes' end-to-end samples, merged exactly."""
        merged = LatencyHistogram()
        for name in sorted(self.node_reports):
            merged.merge(self.node_reports[name].hist_total)
        return merged

    def merged_stage_hists(self) -> Dict[str, LatencyHistogram]:
        """Per-stage merged histograms, **key-sorted**: the stage set
        varies with what actually happened on each node (degradation
        stages appear on some nodes only), so insertion order would
        depend on node iteration — sorting here pins the report bytes
        regardless of which node contributed a stage first."""
        stages: Dict[str, LatencyHistogram] = {}
        for name in sorted(self.node_reports):
            for stage, hist in self.node_reports[name].stage_hists.items():
                stages.setdefault(stage, LatencyHistogram()).merge(hist)
        return dict(sorted(stages.items()))

    @property
    def p99_us(self) -> float:
        """Fleet-wide tail latency (merged samples), microseconds."""
        return self.merged_hist().percentile(99) / 1e3

    @property
    def throughput_per_s(self) -> float:
        """Fleet completions per virtual second of makespan."""
        span = self.makespan_ns
        if span <= 0:
            return 0.0
        return self.totals()["completed"] * 1e9 / span

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict:
        """The canonical JSON-ready digest (worker-count-free)."""
        totals = self.totals()
        totals["drop_pct"] = round(
            100.0 * totals["dropped"] / totals["offered"], 3
        ) if totals["offered"] else 0.0
        totals["throughput_per_s"] = round(self.throughput_per_s, 3)
        mean_link = (self.fabric_latency_sum_ns / self.fabric_posted
                     if self.fabric_posted else 0.0)
        digest = {
            "schema": SCHEMA_RELIABLE if self.reliable else SCHEMA,
            "label": self.label,
            "router": self.router,
            "topology": self.topology,
            "sync": {
                "epoch_ns": round(self.epoch_ns, 3),
                "epochs": self.epochs,
            },
            "fabric": {
                "posted": self.fabric_posted,
                "delivered": self.fabric_delivered,
                "mean_link_ns": round(mean_link, 3),
            },
            "routing": {
                "placed": dict(sorted(self.routed.items())),
                "respawned": self.respawned,
                "bounced": self.bounced,
            },
            "makespan_ms": round(self.makespan_ns / 1e6, 6),
            "totals": totals,
            "latency_us": {
                "total": self.merged_hist().summary_us(),
                "stages": {
                    stage: hist.summary_us()
                    for stage, hist in
                    sorted(self.merged_stage_hists().items())
                },
            },
            "nodes": {
                name: self.node_reports[name].to_dict()
                for name in sorted(self.node_reports)
            },
        }
        if self.reliable:
            digest["fabric"]["reliable"] = {
                "policy": self.fabric_policy_desc,
                "retransmits": self.fabric_retransmits,
                "dead_lettered": self.fabric_dead_lettered,
                "acked": self.fabric_acked,
                "dup_suppressed": self.fabric_dup_suppressed,
                "abandoned": self.fabric_abandoned,
                "wire_dropped": self.fabric_wire_dropped,
                "wire_held": self.fabric_wire_held,
            }
            digest["fabric"]["faults"] = {
                "plan": self.fabric_plan_desc,
                "fired": dict(sorted(self.fabric_faults.items())),
            }
            digest["routing"]["hedged"] = self.hedges
            digest["routing"]["rerouted"] = self.rerouted
            digest["routing"]["deferred"] = self.deferred
            digest["frontier"] = dict(sorted(self.frontier.items()))
            digest["health"] = {
                "policy": self.health_policy_desc,
                "final": dict(sorted(self.health_final.items())),
                "events_total": len(self.degradations),
                "events": [e.to_dict()
                           for e in self.degradations[:_EVENT_CAP]],
            }
        if self.obs is not None:
            digest["obs"] = self.obs
        return digest

    def to_json(self) -> str:
        """Canonical serialization: byte-identical for any worker
        count (sorted keys, fixed separators, pre-rounded floats)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")
