"""The simulated network fabric: typed messages, explicit latency.

Shards never share state; everything that crosses a node boundary is a
:class:`Message` posted to the :class:`Fabric`.  The fabric stamps the
arrival instant (``send_ns`` + link latency), buckets messages by the
epoch that contains that instant, and hands each epoch's deliveries
out in one deterministic order — ``(arrive_ns, seq)``, with ``seq``
the global post order.  Because every link is at least one lookahead
long, a message posted during epoch ``e`` always lands in a bucket
``>= e+1``: delivery at epoch boundaries is exact, not approximate.

Messages must pickle (they cross process boundaries in worker mode);
payloads are task specs, plain tuples, and ints only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.cluster.topology import Topology

#: message kinds on the wire.
FORWARD = "forward"    # router -> node: one routed request
RESPAWN = "respawn"    # node -> router: failover re-spawn of a request


@dataclass(frozen=True)
class Message:
    """One unit crossing the fabric."""

    kind: str
    src: str
    dst: str
    send_ns: float
    arrive_ns: float
    seq: int
    payload: Any = field(default=None, compare=False)


class Fabric:
    """Latency-stamping, epoch-bucketing message switch."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.epoch_ns = topology.epoch_length_ns
        self._seq = 0
        #: epoch index -> [Message, ...] in post order.
        self._buckets: Dict[int, List[Message]] = {}
        self.posted = 0
        self.delivered = 0
        #: total ns spent on the wire (for the fleet report).
        self.latency_sum_ns = 0.0

    def epoch_of(self, t_ns: float) -> int:
        """Index of the epoch window containing ``t_ns``."""
        return int(t_ns // self.epoch_ns)

    def post(self, kind: str, src: str, dst: str, send_ns: float,
             payload: Any = None) -> Message:
        """Put one message on the wire; returns the stamped message."""
        latency = self.topology.latency_ns(src, dst)
        self._seq += 1
        msg = Message(kind=kind, src=src, dst=dst, send_ns=send_ns,
                      arrive_ns=round(send_ns + latency, 3),
                      seq=self._seq, payload=payload)
        self._buckets.setdefault(self.epoch_of(msg.arrive_ns),
                                 []).append(msg)
        self.posted += 1
        self.latency_sum_ns += latency
        return msg

    def deliver(self, epoch: int) -> List[Message]:
        """Every message arriving during ``epoch``, in
        ``(arrive_ns, seq)`` order.  Consumes the bucket."""
        msgs = self._buckets.pop(epoch, [])
        msgs.sort(key=lambda m: (m.arrive_ns, m.seq))
        self.delivered += len(msgs)
        return msgs

    def pending(self) -> int:
        """Messages still in flight (posted, not yet delivered)."""
        return self.posted - self.delivered

    def next_pending_epoch(self) -> int:
        """Earliest epoch with undelivered messages (-1 when empty)."""
        return min(self._buckets) if self._buckets else -1
