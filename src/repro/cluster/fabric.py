"""The simulated network fabric: typed messages, explicit latency.

Shards never share state; everything that crosses a node boundary is a
:class:`Message` posted to the :class:`Fabric`.  The fabric stamps the
arrival instant (``send_ns`` + link latency), buckets messages by the
epoch that contains that instant, and hands each epoch's deliveries
out in one deterministic order — ``(arrive_ns, seq)``, with ``seq``
the global post order.  Because every link is at least one lookahead
long, a message posted during epoch ``e`` always lands in a bucket
``>= e+1``: delivery at epoch boundaries is exact, not approximate.

A fabric built with a :class:`~repro.faults.injector.FabricInjector`
(any non-zero ``fabric.*`` plan) runs the **reliable lane**: data
kinds (:data:`FORWARD`/:data:`RESPAWN`/:data:`ANSWER`) carry a stable
message id (``mid``, the seq of the first post) and attempt number,
the receiver acks every delivery, and unacked messages are
retransmitted with capped exponential backoff by the coordinator's
per-epoch :meth:`Fabric.sweep` — at-least-once on the wire, kept
exactly-once at the receiver by :meth:`Fabric.first_delivery` dedup.
A fabric with no injector is the legacy lane and behaves
bit-identically to the pre-fault fabric: no mids, no acks, no
reliability state ever touched.

Messages must pickle (they cross process boundaries in worker mode);
payloads are task specs, plain tuples, and ints only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.cluster.topology import Topology
from repro.faults.injector import DROP, HOLD, FabricInjector

#: message kinds on the wire.
FORWARD = "forward"    # router -> node: one routed request
RESPAWN = "respawn"    # node -> router: failover re-spawn of a request
ANSWER = "answer"      # node -> router: terminal outcome of a request
ACK = "ack"            # receiver -> sender: delivery ack of one mid

#: kinds carried reliably (ack + retransmit) on a faulted fabric.
#: Acks themselves are fire-and-forget — a lost ack just costs one
#: redundant retransmit, which the receiver dedups.
DATA_KINDS = (FORWARD, RESPAWN, ANSWER)


@dataclass(frozen=True)
class Message:
    """One unit crossing the fabric.

    ``mid`` is the message's stable identity across retransmits (the
    ``seq`` of its first post); ``attempt`` counts transmissions of
    that identity.  Legacy-lane messages keep the defaults.
    """

    kind: str
    src: str
    dst: str
    send_ns: float
    arrive_ns: float
    seq: int
    payload: Any = field(default=None, compare=False)
    mid: int = -1
    attempt: int = 1


@dataclass(frozen=True)
class FabricPolicy:
    """Reliability knobs of the fabric's at-least-once lane.

    ``rto_factor``
        Retransmit timeout = ``rto_factor`` × round-trip estimate
        (2 × link latency), floored at one epoch so a message is
        retried at most once per barrier epoch.
    ``backoff_cap_factor``
        Exponential backoff multiplier cap: attempt *n* waits
        ``rto × min(2^(n-1), cap)``.
    ``max_attempts``
        Router→node :data:`FORWARD`s dead-letter after this many
        transmissions (the driver re-routes); node→router kinds
        retry indefinitely (abandoned only by quarantine / ledger
        rules in the driver).
    """

    rto_factor: float = 2.0
    backoff_cap_factor: float = 8.0
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.rto_factor <= 0:
            raise ValueError("rto_factor must be > 0")
        if self.backoff_cap_factor < 1:
            raise ValueError("backoff_cap_factor must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def describe(self) -> str:
        """Stable one-line description (goes into the fleet report)."""
        return (f"at-least-once(rto={self.rto_factor:g}x, "
                f"cap={self.backoff_cap_factor:g}x, "
                f"max_attempts={self.max_attempts})")


@dataclass
class _Pending:
    """One unacked data message awaiting ack or retransmit."""

    mid: int
    kind: str
    src: str
    dst: str
    payload: Any
    attempt: int
    due_ns: float


class Fabric:
    """Latency-stamping, epoch-bucketing message switch."""

    def __init__(self, topology: Topology,
                 injector: Optional[FabricInjector] = None,
                 policy: Optional[FabricPolicy] = None) -> None:
        self.topology = topology
        self.epoch_ns = topology.epoch_length_ns
        self.injector = injector
        self.policy = policy or FabricPolicy()
        #: reliable lane on? (fault plans only; legacy lane otherwise)
        self.reliable = injector is not None
        self._seq = 0
        #: epoch index -> [Message, ...] in post order.
        self._buckets: Dict[int, List[Message]] = {}
        self.posted = 0
        self.delivered = 0
        #: total ns spent on the wire (for the fleet report).
        self.latency_sum_ns = 0.0
        # -- reliable-lane state (all zero/empty on the legacy lane) --
        #: mid -> unacked record awaiting ack or retransmit.
        self._unacked: Dict[int, _Pending] = {}
        #: (dst, mid) identities already delivered (receiver dedup).
        self._seen: Set[Tuple[str, int]] = set()
        self.retransmits = 0
        self.dead_lettered = 0
        self.acked = 0
        self.dup_suppressed = 0
        self.abandoned = 0
        #: messages a fault removed from / stalled on the wire.
        self.wire_dropped = 0
        self.wire_held = 0

    def epoch_of(self, t_ns: float) -> int:
        """Index of the epoch window containing ``t_ns``."""
        return int(t_ns // self.epoch_ns)

    # -- posting -------------------------------------------------------------

    def post(self, kind: str, src: str, dst: str, send_ns: float,
             payload: Any = None, mid: Optional[int] = None,
             attempt: int = 1) -> Optional[Message]:
        """Put one message on the wire.

        Returns the stamped message, or ``None`` when a fabric fault
        removed it from the wire (reliable lane only — the unacked
        record survives, so the sweep retransmits it).
        """
        latency = self.topology.latency_ns(src, dst)
        self._seq += 1
        seq = self._seq
        self.posted += 1
        self.latency_sum_ns += latency
        if not self.reliable:
            msg = Message(kind=kind, src=src, dst=dst, send_ns=send_ns,
                          arrive_ns=round(send_ns + latency, 3),
                          seq=seq, payload=payload)
            self._buckets.setdefault(self.epoch_of(msg.arrive_ns),
                                     []).append(msg)
            return msg
        if mid is None:
            mid = seq if kind in DATA_KINDS else -1
        if kind in DATA_KINDS:
            self._register(mid, kind, src, dst, payload, attempt,
                           send_ns, latency)
        inj = self.injector
        draw_id = mid if mid >= 0 else seq
        # fault pipeline: windows at the source, point drop, delay
        # spike, windows at the destination, duplication.
        fate, release, fkind = inj.node_fate(src, send_ns)
        if fate == DROP:
            inj.record(send_ns, fkind, (src, dst))
            self.wire_dropped += 1
            return None
        send_eff = send_ns
        if fate == HOLD:
            inj.record(send_ns, fkind, (src, dst))
            self.wire_held += 1
            send_eff = release
        if inj.draw("fabric.link.drop", send_ns, src, dst,
                    draw_id, attempt) is not None:
            self.wire_dropped += 1
            return None
        delay = 0.0
        spike = inj.draw("fabric.link.delay_spike", send_ns, src, dst,
                         draw_id, attempt)
        if spike is not None:
            delay = spike.magnitude_ns
        arrive = round(send_eff + latency + delay, 3)
        fate, release, fkind = inj.node_fate(dst, arrive)
        if fate == DROP:
            inj.record(arrive, fkind, (src, dst))
            self.wire_dropped += 1
            return None
        if fate == HOLD:
            inj.record(arrive, fkind, (src, dst))
            self.wire_held += 1
            arrive = round(release, 3)
        msg = Message(kind=kind, src=src, dst=dst, send_ns=send_ns,
                      arrive_ns=arrive, seq=seq, payload=payload,
                      mid=mid, attempt=attempt)
        self._buckets.setdefault(self.epoch_of(arrive), []).append(msg)
        if inj.draw("fabric.link.dup", send_ns, src, dst,
                    draw_id, attempt) is not None:
            self._seq += 1
            dup = Message(kind=kind, src=src, dst=dst, send_ns=send_ns,
                          arrive_ns=arrive, seq=self._seq,
                          payload=payload, mid=mid, attempt=attempt)
            self._buckets.setdefault(self.epoch_of(arrive),
                                     []).append(dup)
        return msg

    def _register(self, mid: int, kind: str, src: str, dst: str,
                  payload: Any, attempt: int, send_ns: float,
                  latency: float) -> None:
        """(Re)arm the unacked record: due = rto × capped backoff,
        rto floored at one epoch so dues land at most one sweep out."""
        rto = max(self.policy.rto_factor * 2.0 * latency, self.epoch_ns)
        backoff = min(2.0 ** (attempt - 1), self.policy.backoff_cap_factor)
        self._unacked[mid] = _Pending(
            mid=mid, kind=kind, src=src, dst=dst, payload=payload,
            attempt=attempt, due_ns=round(send_ns + rto * backoff, 3))

    # -- delivery ------------------------------------------------------------

    def deliver(self, epoch: int) -> List[Message]:
        """Every message arriving during ``epoch``, in
        ``(arrive_ns, seq)`` order.  Consumes the bucket."""
        msgs = self._buckets.pop(epoch, [])
        msgs.sort(key=lambda m: (m.arrive_ns, m.seq))
        self.delivered += len(msgs)
        return msgs

    def first_delivery(self, msg: Message) -> bool:
        """Receiver-side dedup: True exactly once per ``(dst, mid)``.
        Retransmit and fault duplicates are counted and suppressed —
        this is what keeps at-least-once exactly-once downstream."""
        key = (msg.dst, msg.mid)
        if key in self._seen:
            self.dup_suppressed += 1
            return False
        self._seen.add(key)
        return True

    def send_ack(self, msg: Message) -> None:
        """Ack a delivered data message back to its sender, posted at
        the delivery instant (so it lands a future epoch).  Acks ride
        the same faulted wire; a lost ack costs one retransmit."""
        self.post(ACK, msg.dst, msg.src, msg.arrive_ns, payload=msg.mid)

    def ack(self, mid: int) -> None:
        """Retire the unacked record (idempotent — duplicate acks from
        retransmit round trips are no-ops)."""
        if self._unacked.pop(mid, None) is not None:
            self.acked += 1

    # -- retransmission ------------------------------------------------------

    def sweep(self,
              boundary_ns: float) -> Tuple[List[_Pending], List[_Pending]]:
        """Retransmit every unacked message due before ``boundary_ns``
        (the epoch boundary just stepped to).  :data:`FORWARD`s that
        exhausted :attr:`FabricPolicy.max_attempts` are dead-lettered
        instead.  Returns ``(retransmitted, dead_letters)`` — the
        records as they were *before* the action, for event logging
        and (dead letters) driver-side re-routing."""
        retried: List[_Pending] = []
        dead: List[_Pending] = []
        for mid in sorted(self._unacked):
            rec = self._unacked[mid]
            if rec.due_ns >= boundary_ns:
                continue
            if rec.kind == FORWARD and \
                    rec.attempt >= self.policy.max_attempts:
                del self._unacked[mid]
                self.dead_lettered += 1
                dead.append(rec)
                continue
            self.retransmits += 1
            retried.append(rec)
            self.post(rec.kind, rec.src, rec.dst, rec.due_ns,
                      rec.payload, mid=mid, attempt=rec.attempt + 1)
        return retried, dead

    def abandon_rid(self, rid: int,
                    kinds: Tuple[str, ...] = (RESPAWN, ANSWER)) -> int:
        """Stop retrying node-originated messages about ``rid`` (its
        outcome is settled some other way).  Returns how many."""
        gone = sorted(m for m, r in self._unacked.items()
                      if r.kind in kinds and r.payload[0] == rid)
        for mid in gone:
            del self._unacked[mid]
        self.abandoned += len(gone)
        return len(gone)

    def abandon_from(self, node: str) -> int:
        """Stop retrying everything originated by ``node`` (it was
        quarantined; the driver hedges its unanswered requests)."""
        gone = sorted(m for m, r in self._unacked.items()
                      if r.src == node)
        for mid in gone:
            del self._unacked[mid]
        self.abandoned += len(gone)
        return len(gone)

    def unacked_count(self) -> int:
        """Data messages still awaiting ack (quiescence gate)."""
        return len(self._unacked)

    # -- introspection -------------------------------------------------------

    def pending(self) -> int:
        """Messages still in flight (bucketed, not yet delivered)."""
        return sum(len(msgs) for msgs in self._buckets.values())

    def next_pending_epoch(self) -> int:
        """Earliest epoch with undelivered messages (-1 when empty)."""
        return min(self._buckets) if self._buckets else -1
