"""The fleet coordinator: conservative barrier-epoch lockstep.

:func:`run_cluster` is the cluster layer's single entry point.  It
pre-computes every tenant's arrival schedule (open-loop cluster load —
the schedule is fixed before the run, like the serve layer's load
generators), then advances the whole fleet one *epoch* at a time:

1. **deliver** — pull this epoch's fabric arrivals; re-route any
   failover ``RESPAWN`` back onto a live node, hand the ``FORWARD``
   traffic to its destination shard's inbox;
2. **route** — place every fresh arrival whose instant falls inside
   this epoch on a node (the :class:`~repro.cluster.router`
   policies see the *previous* boundary's status digests — one
   epoch of staleness, exactly a real balancer's view), and post it
   to the fabric at its arrival instant;
3. **step** — every shard ingests its inbox and advances its own
   engine to the epoch boundary (in parallel across worker processes,
   or sequentially in-process — same protocol, same bytes);
4. **exchange** — shard outboxes (failover respawns, bounces) go onto
   the fabric; status digests become the next epoch's router view.

Because the epoch length never exceeds the fabric lookahead (minimum
link latency), a message sent during epoch ``e`` cannot arrive before
epoch ``e+1`` — boundary-only exchange is *exact*, not an
approximation, and the run is deterministic for any worker count
(``docs/INTERNALS.md`` §12 gives the full argument).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.fabric import FORWARD, RESPAWN, Fabric
from repro.cluster.report import FleetReport
from repro.cluster.router import (ConsistentHashRouter, FleetView,
                                  RouteRequest, RouterPolicy)
from repro.cluster.topology import ROUTER, Topology
from repro.cluster.worker import make_host
from repro.serve.server import ServeConfig, TenantSpec

#: blank per-node digest for epoch 0 (before any status exchange).
_FRESH_STATUS = {
    "alive": 1, "queued": 0, "inflight": 0, "pending": 0,
    "offered": 0, "admitted": 0, "completed": 0, "failed": 0,
    "dropped": 0, "failed_over": 0, "bounced": 0,
}


def _global_arrivals(tenants: List[TenantSpec]) -> List[tuple]:
    """The fleet's offered load: ``(t_ns, tenant, index, spec)`` rows
    sorted by ``(t_ns, tenant, index)``.  The sorted position *is* the
    cluster-global request id — stable across processes by
    construction."""
    rows = []
    for tenant in tenants:
        times = tenant.arrivals.schedule(len(tenant.tasks))
        for index, (spec, at) in enumerate(zip(tenant.tasks, times)):
            rows.append((at, tenant.name, index, spec))
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    return rows


def run_cluster(
    tenants: List[TenantSpec],
    topology: Topology,
    router: Optional[RouterPolicy] = None,
    workers: int = 0,
    serve: Optional[ServeConfig] = None,
    obs: bool = False,
    label: str = "cluster",
    max_epochs: Optional[int] = None,
) -> FleetReport:
    """Run one fleet experiment; returns the :class:`FleetReport`.

    ``workers=0`` steps every shard sequentially in this process (the
    reference execution); ``workers=N`` shards the fleet across ``N``
    worker processes.  The report bytes are identical either way.
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in {names}")
    for t in tenants:
        if t.closed_loop:
            raise ValueError(
                f"tenant {t.name!r} is closed-loop: cluster load is "
                "open-loop (the router cannot block on a node's reply)"
            )
        if not t.tasks:
            raise ValueError(f"tenant {t.name!r} has no tasks")
    router = router if router is not None else ConsistentHashRouter(topology)

    arrivals = _global_arrivals(tenants)
    deadline_of = {t.name: t.slo.deadline_ns for t in tenants}
    #: rid -> (tenant, per-tenant index) for re-routing respawns.
    identity: Dict[int, Tuple[str, int]] = {
        rid: (row[1], row[2]) for rid, row in enumerate(arrivals)
    }

    fabric = Fabric(topology)
    epoch_len = topology.epoch_length_ns
    tenant_slos = [(t.name, t.slo) for t in tenants]
    host = make_host(topology, tenant_slos, serve, obs, workers)

    if max_epochs is None:
        last_at = arrivals[-1][0]
        max_epochs = int(last_at // epoch_len) + 10_000

    view = FleetView({name: dict(_FRESH_STATUS)
                      for name in topology.node_names})
    routed = {name: 0 for name in topology.node_names}
    respawned = 0
    cursor = 0  # next undispatched row of `arrivals`
    statuses: Dict[str, Dict[str, int]] = view.statuses
    epoch = 0

    def _place(req: RouteRequest, send_ns: float, payload) -> None:
        dst = router.route(req, view)
        fabric.post(FORWARD, ROUTER, dst, send_ns, payload)
        if not req.respawn:
            routed[dst] += 1

    try:
        while True:
            boundary = (epoch + 1) * epoch_len
            inboxes: Dict[str, list] = {}
            for msg in fabric.deliver(epoch):
                if msg.dst == ROUTER:
                    # a node handed a request back (death failover or
                    # dead-node bounce): re-place it on a live node
                    rid, tenant, spec = msg.payload
                    index = identity[rid][1]
                    respawned += 1
                    _place(
                        RouteRequest(rid=rid, tenant=tenant, index=index,
                                     kernel=spec.name,
                                     num_blocks=spec.num_blocks,
                                     deadline_ns=deadline_of[tenant],
                                     respawn=True),
                        msg.arrive_ns, msg.payload)
                else:
                    inboxes.setdefault(msg.dst, []).append(msg)
            while cursor < len(arrivals) and arrivals[cursor][0] < boundary:
                at, tenant, index, spec = arrivals[cursor]
                _place(
                    RouteRequest(rid=cursor, tenant=tenant, index=index,
                                 kernel=spec.name,
                                 num_blocks=spec.num_blocks,
                                 deadline_ns=deadline_of[tenant]),
                    at, (cursor, tenant, spec))
                cursor += 1

            results = host.step(boundary, inboxes)
            for name in topology.node_names:
                outbox, status = results[name]
                statuses[name] = status
                for kind, send_ns, payload in outbox:
                    fabric.post(kind, name, ROUTER, send_ns, payload)
            view = FleetView(statuses)
            epoch += 1

            done = (cursor == len(arrivals)
                    and fabric.pending() == 0
                    and not any(
                        s["alive"] and (s["queued"] + s["inflight"]
                                        + s["pending"])
                        for s in statuses.values()))
            if done:
                break
            if epoch >= max_epochs:
                raise RuntimeError(
                    f"fleet did not quiesce within {max_epochs} epochs "
                    f"({fabric.pending()} messages in flight, "
                    f"{len(arrivals) - cursor} arrivals unrouted)"
                )

        finished = host.finish()
    finally:
        host.close()

    node_reports = {name: finished[name][0]
                    for name in topology.node_names}
    obs_agg = None
    if obs:
        from repro.obs import aggregate_snapshots
        obs_agg = aggregate_snapshots({
            name: finished[name][1] for name in topology.node_names
        })
    return FleetReport(
        label=label,
        router=router.describe(),
        topology=topology.describe(),
        epoch_ns=epoch_len,
        epochs=epoch,
        node_reports=node_reports,
        routed=routed,
        respawned=respawned,
        bounced=sum(s.get("bounced", 0) for s in statuses.values()),
        fabric_posted=fabric.posted,
        fabric_delivered=fabric.delivered,
        fabric_latency_sum_ns=fabric.latency_sum_ns,
        obs=obs_agg,
    )
