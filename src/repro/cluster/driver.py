"""The fleet coordinator: conservative barrier-epoch lockstep.

:func:`run_cluster` is the cluster layer's single entry point.  It
pre-computes every tenant's arrival schedule (open-loop cluster load —
the schedule is fixed before the run, like the serve layer's load
generators), then advances the whole fleet one *epoch* at a time:

1. **deliver** — pull this epoch's fabric arrivals; re-route any
   failover ``RESPAWN`` back onto a live node, hand the ``FORWARD``
   traffic to its destination shard's inbox;
2. **route** — place every fresh arrival whose instant falls inside
   this epoch on a node (the :class:`~repro.cluster.router`
   policies see the *previous* boundary's status digests — one
   epoch of staleness, exactly a real balancer's view), and post it
   to the fabric at its arrival instant;
3. **step** — every shard ingests its inbox and advances its own
   engine to the epoch boundary (in parallel across worker processes,
   or sequentially in-process — same protocol, same bytes);
4. **exchange** — shard outboxes (failover respawns, bounces,
   answers) go onto the fabric; status digests become the next
   epoch's router view.

Because the epoch length never exceeds the fabric lookahead (minimum
link latency), a message sent during epoch ``e`` cannot arrive before
epoch ``e+1`` — boundary-only exchange is *exact*, not an
approximation, and the run is deterministic for any worker count
(``docs/INTERNALS.md`` §12 gives the full argument).

**Unreliable fabric.**  Passing a non-zero ``fabric.*``
:class:`~repro.faults.FaultPlan` switches the fabric onto its
reliable lane and arms the coordinator's self-healing layer:

- every data message is acked on delivery and retransmitted with
  capped exponential backoff until acked (:meth:`Fabric.sweep`);
  receiver-side dedup keeps at-least-once exactly-once;
- nodes report each request's terminal outcome as an ``ANSWER``; the
  coordinator's **ledger** (first answer wins) is the fleet frontier
  — quiescence additionally requires every arrival answered;
- digest visibility drives a suspect → quarantine → probation health
  machine (:mod:`repro.cluster.health`); suspect/quarantined nodes
  are overlaid dead in the router's view, quarantined nodes' pending
  retransmits are abandoned (their requests get hedged instead);
- requests whose every placement has gone bad are **hedged** onto a
  good node; ``FORWARD``s that exhaust their retransmit budget are
  dead-lettered and re-routed; placements with no routable node at
  all are deferred and retried each epoch.

All of it runs coordinator-side from boundary-instant data, so a
fault-plan run is *still* byte-identical for any worker count, and a
zero/absent plan leaves every legacy code path — and the report
bytes — untouched (asserted by ``tests/cluster/test_chaos.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.fabric import (ACK, ANSWER, FORWARD, RESPAWN, Fabric,
                                  FabricPolicy)
from repro.cluster.health import (QUARANTINED, DegradationEvent,
                                  HealthPolicy, HealthTracker)
from repro.cluster.report import FleetReport
from repro.cluster.router import (ConsistentHashRouter, FleetView,
                                  RouteRequest, RouterPolicy)
from repro.cluster.topology import ROUTER, Topology
from repro.cluster.worker import make_host
from repro.faults.injector import FabricInjector
from repro.faults.plan import FaultPlan
from repro.serve.server import ServeConfig, TenantSpec

#: blank per-node digest for epoch 0 (before any status exchange).
_FRESH_STATUS = {
    "alive": 1, "queued": 0, "inflight": 0, "pending": 0,
    "offered": 0, "admitted": 0, "completed": 0, "failed": 0,
    "dropped": 0, "failed_over": 0, "dup_suppressed": 0, "bounced": 0,
}

#: health transition -> DegradationEvent kind.
_TRANSITION_KIND = {
    ("healthy", "suspect"): "suspect",
    ("suspect", "quarantined"): "quarantine",
    ("suspect", "healthy"): "readmit",
    ("quarantined", "probation"): "probation",
    ("probation", "healthy"): "readmit",
    ("probation", "quarantined"): "relapse",
}


def _global_arrivals(tenants: List[TenantSpec]) -> List[tuple]:
    """The fleet's offered load: ``(t_ns, tenant, index, spec)`` rows
    sorted by ``(t_ns, tenant, index)``.  The sorted position *is* the
    cluster-global request id — stable across processes by
    construction."""
    rows = []
    for tenant in tenants:
        times = tenant.arrivals.schedule(len(tenant.tasks))
        for index, (spec, at) in enumerate(zip(tenant.tasks, times)):
            rows.append((at, tenant.name, index, spec))
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    return rows


def run_cluster(
    tenants: List[TenantSpec],
    topology: Topology,
    router: Optional[RouterPolicy] = None,
    workers: int = 0,
    serve: Optional[ServeConfig] = None,
    obs: bool = False,
    label: str = "cluster",
    max_epochs: Optional[int] = None,
    fabric_plan: Optional[FaultPlan] = None,
    fabric_policy: Optional[FabricPolicy] = None,
    health: Optional[HealthPolicy] = None,
) -> FleetReport:
    """Run one fleet experiment; returns the :class:`FleetReport`.

    ``workers=0`` steps every shard sequentially in this process (the
    reference execution); ``workers=N`` shards the fleet across ``N``
    worker processes.  The report bytes are identical either way.

    ``fabric_plan`` arms fabric-layer faults (``fabric.*`` kinds
    only) and, with them, the reliable messaging + self-healing
    routing lane; ``None`` or a zero plan runs the legacy fabric
    bit-identically to a plan-less build.
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in {names}")
    for t in tenants:
        if t.closed_loop:
            raise ValueError(
                f"tenant {t.name!r} is closed-loop: cluster load is "
                "open-loop (the router cannot block on a node's reply)"
            )
        if not t.tasks:
            raise ValueError(f"tenant {t.name!r} has no tasks")
    router = router if router is not None else ConsistentHashRouter(topology)

    arrivals = _global_arrivals(tenants)
    deadline_of = {t.name: t.slo.deadline_ns for t in tenants}
    #: rid -> (tenant, per-tenant index) for re-routing respawns.
    identity: Dict[int, Tuple[str, int]] = {
        rid: (row[1], row[2]) for rid, row in enumerate(arrivals)
    }
    spec_of = {rid: row[3] for rid, row in enumerate(arrivals)}

    injector = None
    if fabric_plan is not None and not fabric_plan.is_zero:
        injector = FabricInjector(fabric_plan)
    reliable = injector is not None
    fabric = Fabric(topology, injector=injector, policy=fabric_policy)
    epoch_len = topology.epoch_length_ns
    tenant_slos = [(t.name, t.slo) for t in tenants]
    host = make_host(topology, tenant_slos, serve, obs, workers,
                     reliable=reliable)

    health = health or HealthPolicy()
    tracker = HealthTracker(topology.node_names, health) \
        if reliable else None
    #: rid -> terminal outcome, first answer wins (the fleet frontier).
    ledger: Dict[int, str] = {}
    #: rid -> nodes it was placed on, in placement order.
    placements: Dict[int, List[str]] = {}
    #: placements waiting for any routable node: (RouteRequest, payload).
    deferred: List[tuple] = []
    deferred_rids: set = set()
    events: List[DegradationEvent] = []
    hedge_dups = 0
    hedges = 0
    rerouted = 0
    deferred_total = 0
    cobs = None
    if obs and reliable:
        from repro.obs import Obs
        cobs = Obs(profile=False)

    if max_epochs is None:
        last_at = arrivals[-1][0]
        max_epochs = int(last_at // epoch_len) + 10_000

    view = FleetView({name: dict(_FRESH_STATUS)
                      for name in topology.node_names})
    rview = view  # routing view: `view` with the health overlay
    routed = {name: 0 for name in topology.node_names}
    respawned = 0
    cursor = 0  # next undispatched row of `arrivals`
    statuses: Dict[str, Dict[str, int]] = view.statuses
    epoch = 0

    def _route_view() -> FleetView:
        if not reliable:
            return view
        overlay = {}
        for name, s in view.statuses.items():
            if tracker.routable(name):
                overlay[name] = s
            else:
                bad = dict(s)
                bad["alive"] = 0
                overlay[name] = bad
        return FleetView(overlay)

    def _place(req: RouteRequest, send_ns: float, payload) -> Optional[str]:
        nonlocal deferred_total
        try:
            dst = router.route(req, rview)
        except RuntimeError:
            if not reliable:
                raise
            # nothing routable right now: park it, retry every epoch
            deferred.append((req, payload))
            deferred_rids.add(req.rid)
            deferred_total += 1
            events.append(DegradationEvent(send_ns, "defer", ROUTER,
                                           rid=req.rid))
            return None
        fabric.post(FORWARD, ROUTER, dst, send_ns, payload)
        if reliable:
            placements.setdefault(req.rid, []).append(dst)
        if not req.respawn:
            routed[dst] += 1
        return dst

    def _replay(rid: int) -> Tuple[RouteRequest, tuple]:
        tenant, index = identity[rid]
        spec = spec_of[rid]
        req = RouteRequest(rid=rid, tenant=tenant, index=index,
                           kernel=spec.name, num_blocks=spec.num_blocks,
                           deadline_ns=deadline_of[tenant], respawn=True)
        return req, (rid, tenant, spec)

    try:
        while True:
            boundary = (epoch + 1) * epoch_len
            epoch_start = epoch * epoch_len
            inboxes: Dict[str, list] = {}
            if reliable and deferred:
                # retry parked placements before this epoch's traffic
                parked, deferred = deferred, []
                for req, payload in parked:
                    try:
                        dst = router.route(req, rview)
                    except RuntimeError:
                        deferred.append((req, payload))
                        continue
                    deferred_rids.discard(req.rid)
                    fabric.post(FORWARD, ROUTER, dst, epoch_start, payload)
                    placements.setdefault(req.rid, []).append(dst)
                    if not req.respawn:
                        routed[dst] += 1
            for msg in fabric.deliver(epoch):
                if reliable:
                    if msg.kind == ACK:
                        fabric.ack(msg.payload)
                        continue
                    fabric.send_ack(msg)
                    if not fabric.first_delivery(msg):
                        continue  # retransmit / fault duplicate
                    if msg.kind == ANSWER:
                        rid, outcome = msg.payload
                        if rid in ledger:
                            hedge_dups += 1  # a hedge raced it home
                        else:
                            ledger[rid] = outcome
                        continue
                if msg.dst == ROUTER:
                    # a node handed a request back (death failover or
                    # dead-node bounce): re-place it on a live node
                    rid, tenant, spec = msg.payload
                    if reliable and rid in ledger:
                        continue  # already answered elsewhere
                    index = identity[rid][1]
                    respawned += 1
                    _place(
                        RouteRequest(rid=rid, tenant=tenant, index=index,
                                     kernel=spec.name,
                                     num_blocks=spec.num_blocks,
                                     deadline_ns=deadline_of[tenant],
                                     respawn=True),
                        msg.arrive_ns, msg.payload)
                else:
                    inboxes.setdefault(msg.dst, []).append(msg)
            while cursor < len(arrivals) and arrivals[cursor][0] < boundary:
                at, tenant, index, spec = arrivals[cursor]
                _place(
                    RouteRequest(rid=cursor, tenant=tenant, index=index,
                                 kernel=spec.name,
                                 num_blocks=spec.num_blocks,
                                 deadline_ns=deadline_of[tenant]),
                    at, (cursor, tenant, spec))
                cursor += 1

            results = host.step(boundary, inboxes)
            for name in topology.node_names:
                outbox, status = results[name]
                statuses[name] = status
                for kind, send_ns, payload in outbox:
                    fabric.post(kind, name, ROUTER, send_ns, payload)
            view = FleetView(statuses)
            epoch += 1

            if reliable:
                # health: fold this boundary's digest visibility in
                heard = {name: not injector.blackout(name, boundary)
                         for name in topology.node_names
                         if statuses[name]["alive"]}
                for node, old, new in tracker.observe(heard):
                    kind = _TRANSITION_KIND[(old, new)]
                    events.append(DegradationEvent(boundary, kind, node))
                    if cobs is not None:
                        cobs.instant("health", kind, boundary, node=node)
                # a quarantined node's retransmits are going nowhere —
                # abandon them (every epoch: gray nodes keep emitting)
                for node in tracker.bad_nodes():
                    if tracker.state[node] == QUARANTINED:
                        fabric.abandon_from(node)
                rview = _route_view()
                # hedge: any unanswered request stuck entirely behind
                # bad (suspect/quarantined/dead) placements re-routes
                bad = set(tracker.bad_nodes()) | {
                    n for n in topology.node_names
                    if not statuses[n]["alive"]}
                if bad:
                    for rid in sorted(placements):
                        if rid in ledger or rid in deferred_rids:
                            continue
                        if not all(n in bad for n in placements[rid]):
                            continue
                        hedges += 1
                        req, payload = _replay(rid)
                        dst = _place(req, boundary, payload)
                        events.append(DegradationEvent(
                            boundary, "hedge", dst or ROUTER, rid=rid))
                # retransmit sweep + dead-letter re-routing
                retried, dead = fabric.sweep(boundary)
                for rec in retried:
                    events.append(DegradationEvent(
                        boundary, "retransmit", rec.dst, mid=rec.mid,
                        rid=rec.payload[0], detail=rec.kind))
                for rec in dead:
                    rid = rec.payload[0]
                    events.append(DegradationEvent(
                        boundary, "dead_letter", rec.dst, mid=rec.mid,
                        rid=rid))
                    placed = placements.get(rid, [])
                    if rec.dst in placed:
                        placed.remove(rec.dst)  # that placement failed
                    if rid in ledger or rid in deferred_rids:
                        continue
                    if any(statuses[n]["alive"] and tracker.routable(n)
                           for n in placed):
                        continue  # a surviving placement may still win
                    rerouted += 1
                    req, payload = _replay(rid)
                    dst = _place(req, boundary, payload)
                    events.append(DegradationEvent(
                        boundary, "reroute", dst or ROUTER, rid=rid))
                if cobs is not None:
                    cobs.timeline("fabric.unacked").set(
                        boundary, fabric.unacked_count())
                    cobs.timeline("cluster.bad_nodes").set(
                        boundary, len(bad))
            else:
                rview = view

            done = (cursor == len(arrivals)
                    and fabric.pending() == 0
                    and not deferred
                    and (not reliable
                         or (fabric.unacked_count() == 0
                             and len(ledger) == len(arrivals)))
                    and not any(
                        s["alive"] and (s["queued"] + s["inflight"]
                                        + s["pending"])
                        for s in statuses.values()))
            if done:
                break
            if epoch >= max_epochs:
                raise RuntimeError(
                    f"fleet did not quiesce within {max_epochs} epochs "
                    f"({fabric.pending()} messages in flight, "
                    f"{fabric.unacked_count()} unacked, "
                    f"{len(arrivals) - cursor} arrivals unrouted)"
                )

        finished = host.finish()
    finally:
        host.close()

    node_reports = {name: finished[name][0]
                    for name in topology.node_names}
    obs_agg = None
    if obs:
        from repro.obs import aggregate_snapshots
        snaps = {name: finished[name][1]
                 for name in topology.node_names}
        if cobs is not None:
            for cname, value in (
                ("fabric.retransmits", fabric.retransmits),
                ("fabric.dead_lettered", fabric.dead_lettered),
                ("fabric.acked", fabric.acked),
                ("fabric.dup_suppressed", fabric.dup_suppressed),
                ("fabric.abandoned", fabric.abandoned),
                ("fabric.wire_dropped", fabric.wire_dropped),
                ("fabric.wire_held", fabric.wire_held),
                ("cluster.hedges", hedges),
                ("cluster.hedge_dups", hedge_dups),
                ("cluster.rerouted", rerouted),
                ("cluster.deferred", deferred_total),
            ):
                cobs.counter(cname).inc(value)
            snaps["@fabric"] = cobs.snapshot()
        obs_agg = aggregate_snapshots(snaps)

    frontier: Dict[str, int] = {}
    health_final: Dict[str, str] = {}
    fired: Dict[str, int] = {}
    plan_desc = ""
    policy_desc = ""
    health_desc = ""
    if reliable:
        frontier = {"offered": len(arrivals)}
        for outcome in ("completed", "failed", "dropped"):
            frontier[outcome] = sum(
                1 for o in ledger.values() if o == outcome)
        frontier["hedge_dups_suppressed"] = hedge_dups
        health_final = tracker.final_states()
        fired = injector.by_kind()
        plan_desc = (f"fabric_plan(seed={fabric_plan.seed}, "
                     f"specs={len(fabric_plan)})")
        policy_desc = fabric.policy.describe()
        health_desc = health.describe()
    return FleetReport(
        label=label,
        router=router.describe(),
        topology=topology.describe(),
        epoch_ns=epoch_len,
        epochs=epoch,
        node_reports=node_reports,
        routed=routed,
        respawned=respawned,
        bounced=sum(s.get("bounced", 0) for s in statuses.values()),
        fabric_posted=fabric.posted,
        fabric_delivered=fabric.delivered,
        fabric_latency_sum_ns=fabric.latency_sum_ns,
        obs=obs_agg,
        reliable=reliable,
        fabric_retransmits=fabric.retransmits,
        fabric_dead_lettered=fabric.dead_lettered,
        fabric_acked=fabric.acked,
        fabric_dup_suppressed=fabric.dup_suppressed,
        fabric_abandoned=fabric.abandoned,
        fabric_wire_dropped=fabric.wire_dropped,
        fabric_wire_held=fabric.wire_held,
        fabric_faults=fired,
        fabric_plan_desc=plan_desc,
        fabric_policy_desc=policy_desc,
        hedges=hedges,
        hedge_dups=hedge_dups,
        rerouted=rerouted,
        deferred=deferred_total,
        frontier=frontier,
        health_policy_desc=health_desc,
        health_final=health_final,
        degradations=events,
    )
