"""One fleet shard: a self-contained GPU node behind a frontend.

A :class:`NodeShard` owns everything a simulated box owns — its own
:class:`~repro.sim.Engine` (fast lane by default, via the serve
config), Pagoda runtime stack(s), and a
:class:`~repro.serve.remote.NodeFrontend` — and exposes exactly the
epoch protocol the coordinator speaks: *deliver, step, report*.
Shards are constructed **from plain data** (a
:class:`~repro.cluster.topology.NodeSpec`, the tenant contracts, and a
template :class:`~repro.serve.ServeConfig`), never shared, so a shard
built in a worker process is indistinguishable from one built in the
coordinator — the root of the 1-process/N-process byte-identity
guarantee.

Node-scoped faults: the spec's :class:`~repro.faults.FaultPlan` rides
into the node's own runtime unchanged, except that ``gpu.die`` is
interpreted here as *node death* (one box, one failure domain): at the
spec's ``at_ns`` the shard freezes its engine, reports every
unanswered request back over the fabric for cross-shard failover, and
answers all later deliveries with a bounce.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.fabric import ANSWER, RESPAWN, Message
from repro.cluster.topology import NodeSpec
from repro.serve.remote import NodeFrontend, remote_tenants
from repro.serve.server import ServeConfig

#: outbox entry: ``(kind, send_ns, payload)`` — the coordinator owns
#: the fabric, so shards describe sends instead of posting them.
Outbound = Tuple[str, float, object]


def _die_schedule(fault_plan) -> Optional[float]:
    """Earliest ``gpu.die`` arming time in the plan (node death)."""
    if fault_plan is None:
        return None
    times = [spec.at_ns for spec in fault_plan
             if spec.kind == "gpu.die"]
    return min(times) if times else None


class NodeShard:
    """The epoch-stepped wrapper around one node's serve frontend."""

    def __init__(self, spec: NodeSpec, tenant_slos: Sequence[tuple],
                 template: Optional[ServeConfig] = None,
                 obs: bool = False, reliable: bool = False) -> None:
        self.name = spec.name
        base = spec.serve if spec.serve is not None else template
        config = copy.deepcopy(base) if base is not None else ServeConfig()
        if config.pagoda.obs is not None:
            raise ValueError(
                "cluster shards manage their own Obs; leave "
                "ServeConfig.pagoda.obs unset"
            )
        config.label = spec.name
        config.num_gpus = spec.num_gpus
        config.pagoda.fault_plan = spec.fault_plan
        self.obs = None
        if obs:
            from repro.obs import Obs
            self.obs = Obs()
            config.pagoda.obs = self.obs
        self.config = config
        self.frontend = NodeFrontend(
            remote_tenants(copy.deepcopy(list(tenant_slos))), config)
        self.frontend.start()
        self.die_ns = _die_schedule(spec.fault_plan)
        self.dead = False
        self._report = None
        #: requests bounced off this node after death (fleet metric).
        self.bounced = 0
        #: reliable fabric lane on?  Then every terminal outcome goes
        #: back to the coordinator's answer ledger as an ``ANSWER``.
        self.reliable = reliable

    # -- the epoch protocol ---------------------------------------------------

    def step(self, epoch_end: float,
             deliveries: List[Message]) -> Tuple[List[Outbound], Dict]:
        """Ingest this epoch's deliveries, advance virtual time to
        ``epoch_end``, and return ``(outbox, status)``."""
        outbox: List[Outbound] = []
        if self.dead:
            # the box is gone: every delivery bounces straight back to
            # the router for re-placement (send time = arrival time —
            # a refused connection, not a served request)
            for msg in deliveries:
                self.bounced += 1
                outbox.append((RESPAWN, msg.arrive_ns, msg.payload))
            return outbox, self.status()
        for msg in deliveries:
            rid, tenant, spec = msg.payload
            self.frontend.inject(rid, tenant, spec, msg.arrive_ns)
        if self.die_ns is not None and self.die_ns < epoch_end:
            report, respawns = self.frontend.abort(self.die_ns)
            self._record_death()
            self.dead = True
            self._report = report
            self._drain_answers(outbox)
            for rid, tenant, spec in respawns:
                outbox.append((RESPAWN, self.die_ns, (rid, tenant, spec)))
            return outbox, self.status()
        self.frontend.step_until(epoch_end)
        self._drain_answers(outbox)
        return outbox, self.status()

    def _drain_answers(self, outbox: List[Outbound]) -> None:
        """Reliable lane only: every terminal outcome since the last
        drain becomes one ``ANSWER`` for the coordinator's ledger."""
        if not self.reliable:
            return
        for when_ns, rid, outcome in self.frontend.drain_answered():
            outbox.append((ANSWER, when_ns, (rid, outcome)))

    def _record_death(self) -> None:
        """Log the fired ``gpu.die`` on the node-level injector."""
        node = self.frontend.node
        if node.faults is None:
            return
        for spec in node.faults.time_triggered("gpu.die"):
            if spec.at_ns == self.die_ns:
                node.faults.record_fired(spec, site=self.name)
                break

    def status(self) -> Dict[str, int]:
        s = self.frontend.status()
        s["bounced"] = self.bounced
        return s

    def busy(self) -> bool:
        return not self.dead and self.frontend.busy()

    # -- teardown -------------------------------------------------------------

    def finish(self) -> Tuple[object, Optional[dict]]:
        """Drain to quiescence (live nodes) and return
        ``(ServeReport, obs snapshot | None)``."""
        if self._report is None:
            self._report = self.frontend.close_and_drain()
        snapshot = None
        if self.obs is not None:
            snapshot = self.obs.snapshot(self.frontend.engine)
        return self._report, snapshot
