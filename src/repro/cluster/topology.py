"""Fleet topologies: nodes, links, and the conservative lookahead.

A :class:`Topology` names the GPU nodes of a simulated fleet and the
latency of every link between them and the cluster router.  The
*lookahead* — the minimum latency of any link a message can cross — is
what makes conservative synchronization exact: a message sent during
epoch ``e`` (virtual window ``[e*L, (e+1)*L)``) cannot arrive before
``(e+1)*L``, so exchanging messages only at epoch boundaries never
violates causality (the approach of "Parallelizing a modern GPU
simulator", PAPERS.md).  The epoch length defaults to the lookahead
and may be shortened, never lengthened.

Everything here is plain data and must pickle cleanly: topologies are
shipped to worker processes, which rebuild their shards from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: the router's reserved endpoint name on the fabric.
ROUTER = "@router"


@dataclass
class NodeSpec:
    """One GPU box of the fleet."""

    name: str
    #: Pagoda stacks behind the node's ingress queue.
    num_gpus: int = 1
    #: node-scoped fault schedule.  ``gpu.die`` specs are interpreted
    #: by the *cluster* layer as node death at ``at_ns`` (the box is
    #: one failure domain; unanswered requests fail over across
    #: shards); every other kind is injected inside the node's own
    #: runtime exactly as in single-box serving.
    fault_plan: Optional[object] = None
    #: per-node serve knobs (admission policy, batcher, pagoda
    #: config...).  ``None`` uses the cluster-level default.
    serve: Optional[object] = None

    def __post_init__(self) -> None:
        if not self.name or self.name.startswith("@"):
            raise ValueError(f"bad node name {self.name!r} "
                             "(non-empty, '@' prefix is reserved)")
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")


@dataclass
class Topology:
    """The fleet graph: nodes plus link latencies (ns)."""

    nodes: List[NodeSpec]
    #: latency of any link not explicitly overridden.
    link_ns: float = 25_000.0
    #: per-link overrides, keyed ``(src, dst)`` (directional; the
    #: router endpoint is :data:`ROUTER`).
    links: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: barrier epoch length; ``None`` = the lookahead.  Must not
    #: exceed the lookahead (conservative sync would miss messages).
    epoch_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a topology needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names in {names}")
        if self.link_ns <= 0:
            raise ValueError("link_ns must be > 0")
        for key, lat in self.links.items():
            if lat <= 0:
                raise ValueError(f"link {key} latency must be > 0")
        if self.epoch_ns is not None and self.epoch_ns > self.lookahead_ns:
            raise ValueError(
                f"epoch_ns {self.epoch_ns} exceeds the lookahead "
                f"{self.lookahead_ns}: messages could arrive mid-epoch"
            )
        if self.epoch_ns is not None and self.epoch_ns <= 0:
            raise ValueError("epoch_ns must be > 0")

    @property
    def node_names(self) -> List[str]:
        return [n.name for n in self.nodes]

    def node(self, name: str) -> NodeSpec:
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(name)

    @property
    def lookahead_ns(self) -> float:
        """Minimum latency over every link (the sync window bound)."""
        return min([self.link_ns] + list(self.links.values()))

    @property
    def epoch_length_ns(self) -> float:
        """The barrier epoch actually used."""
        return self.epoch_ns if self.epoch_ns is not None \
            else self.lookahead_ns

    def latency_ns(self, src: str, dst: str) -> float:
        """One-way latency of the ``src -> dst`` link."""
        return self.links.get((src, dst), self.link_ns)

    def describe(self) -> str:
        """Stable one-line description (goes into the fleet report)."""
        extra = f", overrides={len(self.links)}" if self.links else ""
        return (f"fleet(nodes={len(self.nodes)}, "
                f"link_ns={self.link_ns:g}, "
                f"epoch_ns={self.epoch_length_ns:g}{extra})")
