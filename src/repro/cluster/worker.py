"""Shard hosts: the same epoch protocol, in-process or across workers.

The coordinator (:mod:`repro.cluster.driver`) never talks to a
:class:`~repro.cluster.node.NodeShard` directly; it talks to a *host*:

- :class:`InProcessHost` builds every shard in the coordinator's own
  interpreter and steps them sequentially — the reference execution,
  and the fallback when ``workers == 0``;
- :class:`WorkerPoolHost` partitions the nodes round-robin across N
  worker processes, each of which rebuilds its shards from the plain
  pickled topology/config data and serves the *identical* step
  protocol over a pipe.

Both hosts are pure transports: every routing/ordering decision is
made coordinator-side from data that is identical in either mode, and
each shard's evolution is a pure function of its deliveries — which
is why the merged fleet report is byte-identical for any worker
count (asserted by ``tests/cluster``).

Workers are plain ``multiprocessing`` processes (``fork`` where
available, ``spawn`` elsewhere — task-spec kernels must be picklable,
i.e. module-level, for ``spawn``).  Worker environments are scrubbed
with :func:`repro.bench.subproc.silence_conda` so nothing pollutes
stdout mid-protocol.  A worker that dies mid-protocol (OOM kill,
segfault, unhandled exception) is *detected*, not waited on: every
receive watches the process sentinel alongside the pipe, tears the
pool down, and raises :class:`ClusterWorkerError` naming the nodes
and the epoch instead of blocking forever on a dead pipe.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.subproc import silence_conda
from repro.cluster.fabric import Message
from repro.cluster.node import NodeShard, Outbound
from repro.cluster.topology import Topology

#: per-node step result: ``(outbox, status)``.
StepResult = Tuple[List[Outbound], Dict[str, int]]


class ClusterWorkerError(RuntimeError):
    """A shard worker process died mid-protocol.

    Carries the nodes the dead worker hosted, its exit code, and the
    epoch the coordinator was stepping when the pipe went dark."""

    def __init__(self, nodes: List[str], exitcode: Optional[int],
                 epoch: int) -> None:
        self.nodes = list(nodes)
        self.exitcode = exitcode
        self.epoch = epoch
        super().__init__(
            f"cluster worker hosting nodes {self.nodes} died "
            f"(exitcode={exitcode}) during epoch {epoch}"
        )


class InProcessHost:
    """Sequential shard stepping inside the coordinator process."""

    def __init__(self, topology: Topology, tenant_slos: Sequence[tuple],
                 template, obs: bool, reliable: bool = False) -> None:
        self.shards = {
            spec.name: NodeShard(spec, tenant_slos, template, obs,
                                 reliable=reliable)
            for spec in topology.nodes
        }
        self._order = topology.node_names

    def step(self, epoch_end: float,
             inboxes: Dict[str, List[Message]]) -> Dict[str, StepResult]:
        return {
            name: self.shards[name].step(epoch_end, inboxes.get(name, []))
            for name in self._order
        }

    def finish(self) -> Dict[str, tuple]:
        return {name: self.shards[name].finish() for name in self._order}

    def close(self) -> None:
        pass


def _worker_main(conn, topology: Topology, names: List[str],
                 tenant_slos, template, obs: bool,
                 reliable: bool = False) -> None:
    """One worker process: build the assigned shards, speak the
    step/finish protocol over the pipe until told to exit."""
    silence_conda()
    shards = {
        name: NodeShard(topology.node(name), tenant_slos, template, obs,
                        reliable=reliable)
        for name in names
    }
    while True:
        cmd = conn.recv()
        if cmd[0] == "step":
            _, epoch_end, inboxes = cmd
            conn.send({
                name: shards[name].step(epoch_end, inboxes.get(name, []))
                for name in names
            })
        elif cmd[0] == "finish":
            conn.send({name: shards[name].finish() for name in names})
        elif cmd[0] == "exit":
            conn.close()
            return
        else:  # pragma: no cover - protocol guard
            raise ValueError(f"unknown worker command {cmd[0]!r}")


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class WorkerPoolHost:
    """N worker processes, nodes partitioned round-robin."""

    def __init__(self, topology: Topology, tenant_slos: Sequence[tuple],
                 template, obs: bool, workers: int,
                 reliable: bool = False) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._order = topology.node_names
        workers = min(workers, len(self._order))
        assigned: List[List[str]] = [[] for _ in range(workers)]
        for i, name in enumerate(self._order):
            assigned[i % workers].append(name)
        ctx = _mp_context()
        self._conns = []
        self._procs = []
        self._names: List[List[str]] = assigned
        self._epoch = 0
        for names in assigned:
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child, topology, names, list(tenant_slos),
                      template, obs, reliable),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    def _recv(self, conn, proc, names: List[str]):
        """Receive one reply, watching the worker's sentinel: a dead
        worker raises instead of blocking the coordinator forever."""
        ready = _conn_wait([conn, proc.sentinel])
        if conn in ready:
            try:
                return conn.recv()
            except (EOFError, OSError):
                pass  # pipe torn down mid-reply: treat as death
        proc.join(timeout=5)
        self._teardown()
        raise ClusterWorkerError(names, proc.exitcode, self._epoch)

    def _teardown(self) -> None:
        """Kill the whole pool (one worker is gone; the fleet state is
        unrecoverable mid-epoch)."""
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5)

    def step(self, epoch_end: float,
             inboxes: Dict[str, List[Message]]) -> Dict[str, StepResult]:
        # fan the command out to every worker *before* reading any
        # reply — this is where the wall-clock parallelism comes from
        self._epoch += 1
        for conn, names, proc in zip(self._conns, self._names, self._procs):
            try:
                conn.send(("step", epoch_end,
                           {n: inboxes[n] for n in names if n in inboxes}))
            except (BrokenPipeError, OSError):
                proc.join(timeout=5)
                self._teardown()
                raise ClusterWorkerError(names, proc.exitcode, self._epoch)
        results: Dict[str, StepResult] = {}
        for conn, names, proc in zip(self._conns, self._names, self._procs):
            results.update(self._recv(conn, proc, names))
        return results

    def finish(self) -> Dict[str, tuple]:
        for conn, names, proc in zip(self._conns, self._names, self._procs):
            try:
                conn.send(("finish",))
            except (BrokenPipeError, OSError):
                proc.join(timeout=5)
                self._teardown()
                raise ClusterWorkerError(names, proc.exitcode, self._epoch)
        results: Dict[str, tuple] = {}
        for conn, names, proc in zip(self._conns, self._names, self._procs):
            results.update(self._recv(conn, proc, names))
        return results

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("exit",))
                conn.close()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()


def make_host(topology: Topology, tenant_slos: Sequence[tuple],
              template, obs: bool, workers: int,
              reliable: bool = False):
    """``workers == 0`` -> sequential reference; ``>= 1`` -> pool."""
    if workers == 0:
        return InProcessHost(topology, tenant_slos, template, obs,
                             reliable=reliable)
    return WorkerPoolHost(topology, tenant_slos, template, obs, workers,
                          reliable=reliable)
