"""Router-side health suspicion: suspect → quarantine → probation.

The coordinator never probes nodes; it *watches* them.  Every barrier
epoch each live node's status digest either arrives or is dark
(partition / pause windows swallow it — see
:meth:`~repro.faults.injector.FabricInjector.blackout`).  The
:class:`HealthTracker` turns that visibility bit-stream into a state
machine per node:

========== ============================================================
healthy    digests flowing; fully routable.
suspect    ``suspect_after`` consecutive misses; pulled out of the
           routing view (``alive=0`` overlay) and its unanswered
           requests become hedging candidates.
quarantined ``quarantine_after`` consecutive misses; additionally the
           fabric abandons its unacked node→router messages (their
           rids are hedged instead).
probation  a quarantined node heard again; routable, but one more
           miss relapses straight back to quarantined.  After
           ``probation_epochs`` clean epochs it is healthy again.
========== ============================================================

All of this runs on the coordinator from boundary-instant data only,
so it is byte-identical for any worker count.  Every transition (and
every fabric retry/hedge the driver performs) is logged as a
:class:`DegradationEvent` in the fleet report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

# health states
HEALTHY = "healthy"
SUSPECT = "suspect"
QUARANTINED = "quarantined"
PROBATION = "probation"

#: states the router may place requests on.
ROUTABLE_STATES = (HEALTHY, PROBATION)


@dataclass(frozen=True)
class HealthPolicy:
    """Knobs of the digest-visibility suspicion state machine."""

    #: consecutive missed digests before a node is suspected.
    suspect_after: int = 2
    #: consecutive missed digests before a suspect is quarantined.
    quarantine_after: int = 4
    #: clean epochs a re-heard quarantined node serves on probation
    #: before it counts as healthy again.
    probation_epochs: int = 3

    def __post_init__(self) -> None:
        if self.suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")
        if self.quarantine_after < self.suspect_after:
            raise ValueError("quarantine_after must be >= suspect_after")
        if self.probation_epochs < 1:
            raise ValueError("probation_epochs must be >= 1")

    def describe(self) -> str:
        """Stable one-line description (goes into the fleet report)."""
        return (f"digest-suspicion(suspect={self.suspect_after}, "
                f"quarantine={self.quarantine_after}, "
                f"probation={self.probation_epochs})")


@dataclass(frozen=True)
class DegradationEvent:
    """One self-healing action the cluster took (report evidence).

    ``kind`` is one of: ``retransmit``, ``dead_letter``, ``suspect``,
    ``quarantine``, ``probation``, ``readmit``, ``relapse``,
    ``hedge``, ``reroute``, ``defer``.  ``mid``/``rid`` are -1 when
    the event is not about a specific message/request.
    """

    when_ns: float
    kind: str
    node: str
    mid: int = -1
    rid: int = -1
    detail: str = ""

    def to_dict(self) -> Dict:
        out = {"when_ns": self.when_ns, "kind": self.kind,
               "node": self.node}
        if self.mid >= 0:
            out["mid"] = self.mid
        if self.rid >= 0:
            out["rid"] = self.rid
        if self.detail:
            out["detail"] = self.detail
        return out


class HealthTracker:
    """Per-node suspicion state machine over digest visibility."""

    def __init__(self, nodes: List[str],
                 policy: HealthPolicy = HealthPolicy()) -> None:
        self.policy = policy
        self.state: Dict[str, str] = {n: HEALTHY for n in nodes}
        self._misses: Dict[str, int] = {n: 0 for n in nodes}
        self._probation_left: Dict[str, int] = {n: 0 for n in nodes}

    def observe(self, heard: Dict[str, bool]) -> List[Tuple[str, str, str]]:
        """Fold one epoch boundary's digest visibility into the state
        machine.  Returns ``(node, old_state, new_state)`` transitions
        in sorted node order (deterministic event order)."""
        transitions: List[Tuple[str, str, str]] = []
        for node in sorted(self.state):
            if node not in heard:
                continue  # dead nodes are the router's problem, not ours
            old = self.state[node]
            new = old
            if heard[node]:
                if old == QUARANTINED:
                    new = PROBATION
                    self._probation_left[node] = \
                        self.policy.probation_epochs
                elif old == PROBATION:
                    self._probation_left[node] -= 1
                    if self._probation_left[node] <= 0:
                        new = HEALTHY
                elif old == SUSPECT:
                    new = HEALTHY
                self._misses[node] = 0
            else:
                self._misses[node] += 1
                if old == PROBATION:
                    new = QUARANTINED  # relapse: no second chances
                elif self._misses[node] >= self.policy.quarantine_after:
                    new = QUARANTINED
                elif self._misses[node] >= self.policy.suspect_after:
                    new = SUSPECT
            if new != old:
                self.state[node] = new
                transitions.append((node, old, new))
        return transitions

    def routable(self, node: str) -> bool:
        """Whether the router may place fresh work on ``node``."""
        return self.state.get(node, HEALTHY) in ROUTABLE_STATES

    def bad_nodes(self) -> List[str]:
        """Nodes currently pulled from routing, sorted."""
        return sorted(n for n, s in self.state.items()
                      if s not in ROUTABLE_STATES)

    def final_states(self) -> Dict[str, str]:
        """Snapshot of every node's state (for the fleet report)."""
        return dict(sorted(self.state.items()))
