"""Multi-core host CPU with a throughput-based task service model."""

from __future__ import annotations

from repro.gpu.phases import Phase
from repro.gpu.timing import TimingModel
from repro.sim import Engine, FifoResource


class HostCpu:
    """``num_cores`` identical cores behind a FIFO run queue.

    Service time for a task folds its whole phase stream (cf.
    :meth:`repro.tasks.TaskSpec.cpu_cost`) into compute + memory
    components; a CPU core retires ``cpu_core_warpinst_per_ns``
    warp-instruction-equivalents per ns and streams memory at
    ``cpu_mem_bandwidth_bpns``.
    """

    def __init__(self, engine: Engine, timing: TimingModel,
                 num_cores: int = 20, name: str = "cpu") -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.engine = engine
        self.timing = timing
        self.num_cores = num_cores
        self.cores = FifoResource(engine, num_cores, name)

    def service_time(self, cost: Phase) -> float:
        """Time for one core to execute an aggregate task cost."""
        compute = cost.inst / self.timing.cpu_core_warpinst_per_ns
        memory = cost.mem_bytes / self.timing.cpu_mem_bandwidth_bpns
        # Compute and streaming loads overlap on an OoO core; the longer
        # component dominates.
        return max(compute, memory)

    def run_task(self, cost: Phase, dispatch_overhead: float = 0.0):
        """Subroutine: occupy one core for one task."""
        yield self.cores.acquire()
        if dispatch_overhead:
            yield dispatch_overhead
        yield self.service_time(cost)
        self.cores.release()
