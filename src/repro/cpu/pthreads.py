"""CPU baselines: PThreads task pool and sequential execution.

The paper compared OpenMP data parallelism, OS task scheduling, Python
thread pooling, and PThreads task parallelism, and reported PThreads as
the strongest CPU contender (§6.2) — so that is the baseline we model:
a worker pool of ``num_cores`` threads pulling tasks from a shared
queue, paying a small dispatch cost per task.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.host import HostCpu
from repro.gpu.timing import DEFAULT_TIMING, TimingModel
from repro.sim import Engine
from repro.tasks import RunStats, TaskResult, TaskSpec


def run_pthreads(
    tasks: List[TaskSpec],
    num_cores: int = 20,
    timing: Optional[TimingModel] = None,
    spawn_gap_ns: float = 0.0,
    lane: str = "default",
) -> RunStats:
    """Execute ``tasks`` on a PThreads-style pool; returns RunStats.

    ``spawn_gap_ns`` optionally spaces task arrivals (all runtimes honor
    the same arrival process so comparisons stay fair).
    """
    timing = timing or DEFAULT_TIMING
    engine = Engine(lane=lane)
    cpu = HostCpu(engine, timing, num_cores=num_cores)
    results: List[TaskResult] = []

    def worker(task: TaskSpec, task_id: int):
        res = TaskResult(task_id, task.name, spawn_time=engine.now)
        res.sched_time = engine.now
        yield cpu.cores.acquire()
        if timing.pthread_dispatch_ns:
            yield timing.pthread_dispatch_ns
        res.start_time = engine.now
        yield cpu.service_time(task.cpu_cost())
        cpu.cores.release()
        res.end_time = engine.now
        results.append(res)

    def spawner():
        """PThreads task parallelism spawns one thread per task; the
        serialized pthread_create in the spawning thread is the wall
        that keeps 20 cores from scaling on narrow tasks."""
        for i, task in enumerate(tasks):
            if spawn_gap_ns:
                yield spawn_gap_ns
            yield timing.pthread_create_ns
            engine.spawn(worker(task, i))

    engine.spawn(spawner(), "pthreads-spawner")
    makespan = engine.run()
    return RunStats(
        runtime=f"pthreads-{num_cores}",
        makespan=makespan,
        results=results,
        compute_time=makespan,
    )


def run_sequential(
    tasks: List[TaskSpec], timing: Optional[TimingModel] = None,
    lane: str = "default",
) -> RunStats:
    """Single-core reference execution (Fig. 5's speedup denominator)."""
    timing = timing or DEFAULT_TIMING
    engine = Engine(lane=lane)
    cpu = HostCpu(engine, timing, num_cores=1)
    results: List[TaskResult] = []

    def runner():
        for i, task in enumerate(tasks):
            res = TaskResult(i, task.name, spawn_time=engine.now)
            res.sched_time = res.start_time = engine.now
            yield cpu.service_time(task.cpu_cost())
            res.end_time = engine.now
            results.append(res)

    engine.spawn(runner())
    makespan = engine.run()
    return RunStats(
        runtime="sequential",
        makespan=makespan,
        results=results,
        compute_time=makespan,
    )
