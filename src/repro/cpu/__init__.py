"""Host CPU model and CPU-side task runtimes.

Models the paper's host machines: the quad-core i7 driving the GPU and
the two 10-core Xeon E5-2660s the PThreads baseline runs on (§6.1).

- :class:`~repro.cpu.host.HostCpu` — a pool of cores with a task
  service-time model.
- :func:`~repro.cpu.pthreads.run_pthreads` — the PThreads task-parallel
  baseline (best CPU scheme per §6.2).
- :func:`~repro.cpu.pthreads.run_sequential` — single-core reference;
  the denominator for the paper's Fig. 5 speedups.
"""

from repro.cpu.alternatives import run_openmp, run_os_scheduler, run_python_pool
from repro.cpu.host import HostCpu
from repro.cpu.pthreads import run_pthreads, run_sequential

__all__ = [
    "HostCpu",
    "run_pthreads",
    "run_sequential",
    "run_openmp",
    "run_os_scheduler",
    "run_python_pool",
]
