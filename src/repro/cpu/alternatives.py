"""The other three CPU schemes the paper evaluated (§6.2).

"For a fair comparison with the CPU, we implemented OpenMP with data
parallelism, OS-based task scheduling, Python-based thread pooling,
and PThreads-based task parallelism.  PThreads obtained the best
results, which we include in Fig. 5."

These models make that selection reproducible: each captures the
mechanism that loses on narrow tasks.

- **OpenMP data parallelism**: tasks run one after another; each
  task's loop is split across all cores with a fork-join barrier —
  narrow tasks have too little parallelism to amortize the fork/join.
- **OS-based task scheduling**: every task is handed to the kernel
  scheduler (futex wake, context switch, cache-cold start) — a much
  heavier dispatch than a user-level pool.
- **Python thread pooling**: the GIL serializes execution; the pool
  only adds switching overhead on top of sequential interpretation
  (plus the interpreter's own per-op slowdown).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.host import HostCpu
from repro.gpu.timing import DEFAULT_TIMING, TimingModel
from repro.sim import Engine
from repro.tasks import RunStats, TaskResult, TaskSpec

#: fork + join barrier cost of one OpenMP parallel region (team wake,
#: static-schedule bookkeeping, implicit barrier across 20 threads),
#: per task
OMP_FORK_JOIN_NS = 12_000.0
#: per-chunk loop-scheduling overhead for each participating core
OMP_CHUNK_NS = 300.0
#: load imbalance of splitting a narrow loop 20 ways (the slowest
#: chunk bounds the region)
OMP_IMBALANCE = 1.3
#: OS work-item submission (syscall + kernel queue insertion); costs
#: more than a bare pthread_create since the work item carries its own
#: kernel bookkeeping
OS_SUBMIT_NS = 18_000.0
#: OS dispatch on the worker side: futex wake + context switch +
#: cache-cold start
OS_DISPATCH_NS = 20_000.0
#: CPython: GIL handoff between pool threads
GIL_SWITCH_NS = 5_000.0
#: CPython interpreter slowdown vs compiled scalar code
PYTHON_INTERP_FACTOR = 30.0


def run_openmp(tasks: List[TaskSpec], num_cores: int = 20,
               timing: Optional[TimingModel] = None) -> RunStats:
    """OpenMP data parallelism: parallelize *within* each task.

    Tasks execute in order (the paper's data-parallel port keeps the
    outer task loop sequential); each pays a fork-join and splits its
    work across the cores — but a narrow task's work divided by 20
    often costs less than the fork-join itself.
    """
    timing = timing or DEFAULT_TIMING
    engine = Engine()
    cpu = HostCpu(engine, timing, num_cores=num_cores)
    results: List[TaskResult] = []

    from repro.gpu.phases import Phase

    def parallel_regions(task: TaskSpec) -> int:
        """Each kernel stage becomes its own ``#pragma omp parallel
        for`` (a barrier-separated stage cannot share a region)."""
        return max(1, sum(
            1 for item in task.warp_phases(0, 0) if isinstance(item, Phase)
        ))

    def runner():
        for i, task in enumerate(tasks):
            res = TaskResult(i, task.name, spawn_time=engine.now)
            res.sched_time = res.start_time = engine.now
            regions = parallel_regions(task)
            yield regions * OMP_FORK_JOIN_NS
            cost = task.cpu_cost()
            # work split across cores; the slowest core bounds each
            # region, and 20-way chunks of a narrow loop land unevenly
            share = cost.scaled(OMP_IMBALANCE / num_cores)
            yield regions * OMP_CHUNK_NS + cpu.service_time(share)
            res.end_time = engine.now
            results.append(res)

    engine.spawn(runner())
    makespan = engine.run()
    return RunStats(runtime=f"openmp-{num_cores}", makespan=makespan,
                    results=results, compute_time=makespan)


def run_os_scheduler(tasks: List[TaskSpec], num_cores: int = 20,
                     timing: Optional[TimingModel] = None) -> RunStats:
    """OS-based task scheduling: kernel-level dispatch per task."""
    timing = timing or DEFAULT_TIMING
    engine = Engine()
    cpu = HostCpu(engine, timing, num_cores=num_cores)
    results: List[TaskResult] = []

    def worker(task: TaskSpec, task_id: int):
        res = TaskResult(task_id, task.name, spawn_time=engine.now)
        res.sched_time = engine.now
        yield cpu.cores.acquire()
        yield OS_DISPATCH_NS  # futex wake + context switch, on-core
        res.start_time = engine.now
        yield cpu.service_time(task.cpu_cost())
        cpu.cores.release()
        res.end_time = engine.now
        results.append(res)

    def submitter():
        for i, task in enumerate(tasks):
            yield OS_SUBMIT_NS  # syscall + kernel queue insertion
            engine.spawn(worker(task, i))

    engine.spawn(submitter())
    makespan = engine.run()
    return RunStats(runtime=f"os-sched-{num_cores}", makespan=makespan,
                    results=results, compute_time=makespan)


def run_python_pool(tasks: List[TaskSpec], num_threads: int = 20,
                    timing: Optional[TimingModel] = None) -> RunStats:
    """CPython thread pool: the GIL serializes task execution."""
    timing = timing or DEFAULT_TIMING
    engine = Engine()
    # one "core" — the GIL — regardless of the pool size
    cpu = HostCpu(engine, timing, num_cores=1)
    results: List[TaskResult] = []

    def worker(task: TaskSpec, task_id: int):
        res = TaskResult(task_id, task.name, spawn_time=engine.now)
        res.sched_time = engine.now
        yield cpu.cores.acquire()  # acquire the GIL
        yield GIL_SWITCH_NS
        res.start_time = engine.now
        cost = task.cpu_cost().scaled(PYTHON_INTERP_FACTOR)
        yield cpu.service_time(cost)
        cpu.cores.release()
        res.end_time = engine.now
        results.append(res)

    for i, task in enumerate(tasks):
        engine.spawn(worker(task, i))
    makespan = engine.run()
    return RunStats(runtime=f"python-pool-{num_threads}",
                    makespan=makespan, results=results,
                    compute_time=makespan)
