"""Device-side API for functional kernel execution.

Table 1's GPU-side calls — ``getTid``, ``syncBlock``, ``getSMPtr`` —
are provided here as a per-threadblock context object.  Functional
kernels are written as staged NumPy code over the block's thread
vector; ``sync_block()`` separates stages (which a sequential staged
execution already orders, so it needs no blocking — the *timing* cost
of barriers is modelled by the timing kernels, not here).

The same context serves native-CUDA functional kernels
(``tid``/``sync_block`` map to ``threadIdx``-derived ids and
``__syncthreads``) so one functional implementation validates a
workload under every runtime.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

#: Alignment Pagoda guarantees for getSMPtr (Table 1: "32-byte aligned").
SM_PTR_ALIGNMENT = 32


class BlockContext:
    """Execution context of one threadblock of one task.

    Parameters
    ----------
    task:
        The :class:`~repro.tasks.TaskSpec` being executed; ``task.work``
        is exposed as :attr:`args`.
    block_id:
        Threadblock index within the task.
    shared:
        Backing buffer for ``getSMPtr`` — under Pagoda a view into the
        MTB's shared-memory arena at the buddy-allocated offset, under
        native CUDA a private per-block buffer.  ``None`` when the task
        requested no shared memory.
    """

    def __init__(self, task: Any, block_id: int,
                 shared: Optional[np.ndarray] = None) -> None:
        self.task = task
        self.block_id = block_id
        self.num_threads = task.threads_per_block
        self.args = task.work
        self._shared = shared
        self.sync_count = 0

    def tid(self) -> np.ndarray:
        """Vector of global thread ids for this block (``getTid``)."""
        base = self.block_id * self.num_threads
        return np.arange(base, base + self.num_threads)

    def local_tid(self) -> np.ndarray:
        """Vector of thread ids within the block (``threadIdx.x``)."""
        return np.arange(self.num_threads)

    def sync_block(self) -> None:
        """``syncBlock()`` / ``__syncthreads()`` stage separator."""
        self.sync_count += 1

    def get_sm_ptr(self) -> np.ndarray:
        """The block's shared-memory buffer (``getSMPtr``)."""
        if self._shared is None:
            raise RuntimeError(
                f"task {self.task.name!r} requested no shared memory"
            )
        return self._shared


def run_functional(task: Any, shared_for_block=None) -> None:
    """Run a task's functional kernel once per threadblock.

    ``shared_for_block`` maps ``block_id`` to the shared buffer the
    runtime allocated for that block (or ``None``); Pagoda passes buddy
    arena views, CUDA passes fresh buffers.
    """
    if task.func is None:
        return
    for block_id in range(task.num_blocks):
        shared = None
        if task.shared_mem_bytes:
            if shared_for_block is not None:
                shared = shared_for_block(block_id)
            if shared is None:
                shared = np.zeros(task.shared_mem_bytes, dtype=np.uint8)
        task.func(BlockContext(task, block_id, shared))
