"""repro.partition — SR-IOV-style compute partitioning with elastic
multi-tenant rebalancing.

Splits the device's SMMs into isolated logical partitions (SPX/DPX/QPX
or arbitrary masks), each with its own MasterKernel, TaskTable, PCIe
function, DRAM slice, and fault domain, plus Zorua-style virtualized
shared-memory/register quotas that may oversubscribe the physical
budget and rebalance at runtime.
"""

from repro.partition.elastic import ElasticConfig, elastic_controller
from repro.partition.manager import (
    SCHEMA,
    Partition,
    PartitionedStack,
    PartitionPlan,
    PartitionReport,
    PartitionSpec,
    run_partitioned,
    task_demand,
)
from repro.partition.modes import MODES, mode_masks, validate_masks
from repro.partition.quota import QuotaAccount, QuotaLedger

__all__ = [
    "SCHEMA",
    "MODES",
    "ElasticConfig",
    "Partition",
    "PartitionedStack",
    "PartitionPlan",
    "PartitionReport",
    "PartitionSpec",
    "QuotaAccount",
    "QuotaLedger",
    "elastic_controller",
    "mode_masks",
    "run_partitioned",
    "task_demand",
    "validate_masks",
]
