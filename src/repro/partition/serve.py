"""The partitioned serve frontend: one TaskServer per partition.

Tenants are pinned to partitions (``TenantSpec.partition``); each
partition gets its own ingress queue, admission gate, dispatcher, and
collector — a full :class:`~repro.serve.server.TaskServer` — wired to
that partition's stack via a :class:`PartitionNode` adapter.  All
servers share one engine and one ``engine.run``, so cross-partition
virtual time is common while every timed resource stays private.

Dispatch additionally claims the partition's Zorua quota
(:mod:`repro.partition.quota`) per request: a request whose footprint
exceeds the current grant waits at dispatch until usage drains or the
elastic controller borrows headroom — which is exactly the isolation/
utilization trade the `partition_isolation` bench measures.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.core.runtime import PagodaConfig
from repro.gpu.spec import GpuSpec
from repro.gpu.timing import TimingModel
from repro.partition.manager import (
    Partition,
    PartitionedStack,
    PartitionPlan,
    task_demand,
)
from repro.serve.server import ServeConfig, TaskServer, TenantSpec
from repro.tasks import TaskSpec


class PartitionNode:
    """Adapter giving one partition the MultiGpuPagoda node shape the
    serve layer drives (one 'GPU': the partition)."""

    def __init__(self, partition: Partition) -> None:
        self.partition = partition
        self.engine = partition.engine
        self.sessions = [partition]
        self._outstanding = [0]

    def pick_gpu(self) -> int:
        return 0

    def shutdown(self) -> None:
        """The stack owns partition lifetime; nothing per-server."""


class PartitionServer(TaskServer):
    """A TaskServer whose backend is one compute partition, with
    quota-ledger admission on the dispatch path."""

    def __init__(self, tenants: List[TenantSpec],
                 config: ServeConfig, partition: Partition) -> None:
        super().__init__(tenants, config, node=PartitionNode(partition))
        self.partition = partition
        self._name_prefix = f"{partition.name}."
        self._quota_claims: Dict[int, tuple] = {}

    def _acquire_slot(self, spec: TaskSpec) -> Generator:
        claim = yield from self.partition.claim_quota(*task_demand(spec))
        return claim

    def _note_claim(self, task_id: int, claim) -> None:
        if claim is not None:
            self._quota_claims[task_id] = claim

    def _release_slot(self, task_id: int) -> None:
        claim = self._quota_claims.pop(task_id, None)
        if claim is not None:
            self.partition.release_quota(claim)


def _partition_config(config: ServeConfig) -> PagodaConfig:
    """The per-partition PagodaConfig: the serve pagoda config minus
    the plan itself (the stack holds it) and the device-wide fault
    plan slot (partitions carry their own)."""
    base = config.pagoda
    fields = {k: getattr(base, k) for k in base.__dataclass_fields__}
    fields["partition"] = None
    return PagodaConfig(**fields)


def serve_partitioned(tenants: List[TenantSpec],
                      config: ServeConfig,
                      spec: Optional[GpuSpec] = None,
                      timing: Optional[TimingModel] = None,
                      stack: Optional[PartitionedStack] = None):
    """Run one partitioned serving experiment.

    Returns ``{partition_name: ServeReport}`` for every partition that
    served at least one tenant.  Pass a prebuilt ``stack`` to inspect
    partition state (ledger, moves) after the run.
    """
    plan: PartitionPlan = config.pagoda.partition
    if plan is None and stack is None:
        raise ValueError("config.pagoda.partition carries no PartitionPlan")
    if config.num_gpus != 1:
        raise ValueError(
            "partitioned serving runs on one device; scale out with "
            "repro.cluster instead of num_gpus"
        )
    if stack is None:
        stack = PartitionedStack(plan, spec, timing,
                                 _partition_config(config))
    else:
        plan = stack.plan
    # -- pin tenants to partitions -----------------------------------------
    by_partition: Dict[str, List[TenantSpec]] = {}
    default = (plan.partitions[0].name
               if len(plan.partitions) == 1 else None)
    for t in tenants:
        target = t.partition or default
        if target is None:
            raise ValueError(
                f"tenant {t.name!r} has no partition; the plan has "
                f"{len(plan.partitions)} — set TenantSpec.partition"
            )
        if target not in stack.partitions:
            raise ValueError(
                f"tenant {t.name!r} names unknown partition {target!r}"
            )
        by_partition.setdefault(target, []).append(t)

    servers: Dict[str, PartitionServer] = {}
    for name in sorted(by_partition):
        servers[name] = PartitionServer(
            by_partition[name], config, stack.partitions[name])
    for name in sorted(servers):
        stack.workload_procs.extend(servers[name].start())
    stack.engine.run(raise_on_deadlock=True)
    reports = {name: servers[name].finish() for name in sorted(servers)}
    stack.shutdown()
    return reports
