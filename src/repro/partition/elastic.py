"""The elastic repartition controller: epoch-driven grow/shrink.

Runs as one deterministic engine process.  Every ``epoch_ns`` of
virtual time it:

1. computes each partition's **window utilization** from the busy-warp
   integrals the MasterKernels accumulate (the same data the
   ``gpu.partition.*.busy_warps`` obs timelines expose) — integral
   delta over the epoch divided by executor-warp capacity;
2. **settles quotas**: partitions below ``low_util`` return borrowed
   headroom to their lenders (the Zorua epoch boundary);
3. **borrows quotas**: partitions above ``high_util`` pull
   ``quota_step`` of idle sibling backing per resource;
4. **moves SMMs**: when the spread is wide enough — one partition above
   ``high_util``, another below ``low_util`` with SMMs to spare — it
   starts a whole-SMM hand-over (close columns, drain, re-reserve on
   the recipient), at most one move in flight at a time.

Everything the controller reads and writes lives inside the engine, so
an elastic run is as replayable as a static one: same seed, same
epochs, same moves, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

from repro.core.warptable import WarpTable
from repro.partition.quota import RESOURCES


@dataclass
class ElasticConfig:
    """Policy knobs of the elastic repartition controller."""

    #: virtual-time rebalancing period.
    epoch_ns: float = 200_000.0
    #: window utilization above which a partition is "hungry".
    high_util: float = 0.60
    #: window utilization below which a partition is "idle" (returns
    #: borrowed quota; may donate an SMM).
    low_util: float = 0.20
    #: a donor never shrinks below this many SMMs.
    min_smms: int = 2
    #: quota borrowed per hungry epoch, as a fraction of the
    #: borrower's physical base (per resource).
    quota_step: float = 0.25
    #: enable whole-SMM moves (quota borrowing alone otherwise).
    move_smms: bool = True
    #: SMM hand-overs the controller may start per epoch.  Distinct
    #: SMMs drain independently, so raising this shortens the grow
    #: ramp at the cost of closing more donor columns at once.
    moves_per_epoch: int = 1


def elastic_controller(stack, cfg: ElasticConfig) -> Generator:
    """The controller process body (spawned by PartitionedStack)."""
    engine = stack.engine
    ledger = stack.ledger
    names = sorted(stack.partitions)
    prev_busy: Dict[str, float] = {n: 0.0 for n in names}
    while True:
        yield cfg.epoch_ns
        if not stack.active:
            return
        if stack.workload_procs and not any(
                p.alive for p in stack.workload_procs):
            return
        now = engine.now
        utils: Dict[str, float] = {}
        for name in names:
            part = stack.partitions[name]
            busy = part.master.busy_integral(now)
            window = busy - prev_busy[name]
            prev_busy[name] = busy
            cap = (len(part.master.mtbs) * WarpTable.EXECUTOR_WARPS
                   * cfg.epoch_ns)
            utils[name] = window / cap if cap > 0 else 0.0
        if stack.obs is not None:
            for name in names:
                stack.obs.timeline(
                    f"gpu.partition.{name}.window_util"
                ).set(now, round(utils[name], 6))
        # 2. epoch boundary: idle partitions hand borrowed quota back
        for name in names:
            if utils[name] < cfg.low_util:
                for res in RESOURCES:
                    ledger.settle(name, res, now)
                stack.partitions[name].quota_signal.pulse()
        # 3. hungry partitions borrow idle sibling headroom
        hungry = sorted(
            (n for n in names if utils[n] > cfg.high_util),
            key=lambda n: (-utils[n], n),
        )
        for name in hungry:
            moved = 0
            for res in RESOURCES:
                acct = ledger.account(name, res)
                step = int(acct.base * cfg.quota_step)
                if step > 0:
                    moved += ledger.borrow(name, res, step, now)
            if moved:
                stack.partitions[name].quota_signal.pulse()
        # 4. whole-SMM rebalance: widest spread first, up to
        #    moves_per_epoch hand-overs started per tick
        if cfg.move_smms and hungry:
            for _ in range(max(1, cfg.moves_per_epoch)):
                donors = sorted(
                    (n for n in names
                     if utils[n] < cfg.low_util
                     and stack.effective_smms(n) > cfg.min_smms),
                    key=lambda n: (utils[n], n),
                )
                if not donors or not stack.lend_smm(donors[0], hungry[0]):
                    break
