"""Compute-partition modes: SPX / DPX / QPX and arbitrary SMM masks.

Mirrors the AMD Instinct MI300 compute partitioning modes
(SNIPPETS.md §1): SPX exposes the whole device as one logical GPU,
DPX splits it in two, QPX in four.  Here the unit of partitioning is
the SMM — a mode carves the ``num_smms`` SMM array into equal
contiguous index ranges, and arbitrary (possibly unequal,
non-contiguous) masks are first-class for experiments the hardware
modes cannot express.

A mask is a sorted list of SMM indices.  Masks of one plan must be
non-empty, in range, and pairwise disjoint; SMMs named by no mask are
simply left unmanaged (dark silicon), which is legal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: hardware-style mode name -> number of partitions.
MODES: Dict[str, int] = {"SPX": 1, "DPX": 2, "QPX": 4}


def mode_masks(mode: str, num_smms: int) -> List[List[int]]:
    """The SMM masks of one hardware partition mode.

    ``num_smms`` must divide evenly by the mode's partition count —
    the hardware modes only exist on symmetric die layouts.
    """
    try:
        parts = MODES[mode.upper()]
    except KeyError:
        raise ValueError(
            f"unknown partition mode {mode!r} (have {sorted(MODES)})"
        ) from None
    if num_smms % parts:
        raise ValueError(
            f"{mode}: {num_smms} SMMs do not split into {parts} equal "
            "partitions"
        )
    width = num_smms // parts
    return [list(range(i * width, (i + 1) * width)) for i in range(parts)]


def validate_masks(masks: Sequence[Sequence[int]], num_smms: int) -> None:
    """Check a plan's masks: non-empty, in range, pairwise disjoint."""
    seen: Dict[int, int] = {}
    for pi, mask in enumerate(masks):
        if not mask:
            raise ValueError(f"partition {pi} has an empty SMM mask")
        for smm in mask:
            if not 0 <= smm < num_smms:
                raise ValueError(
                    f"partition {pi}: SMM {smm} out of range "
                    f"[0, {num_smms})"
                )
            if smm in seen:
                raise ValueError(
                    f"SMM {smm} claimed by partitions {seen[smm]} and {pi}"
                )
            seen[smm] = pi
