"""Zorua-style virtualized resource quotas for compute partitions.

Each partition's shared-memory and register footprint is admitted
against a *virtual quota* that may exceed its *physical backing* (the
MTB arenas and register files of the SMMs it owns).  The decoupling is
what makes quotas elastic: a busy partition can borrow idle backing
from a sibling and return it at an epoch boundary, without the
physical arenas moving at all.

Terminology per account (one account per partition per resource):

``base``
    physical backing the partition's own SMMs provide;
``quota``
    the virtual limit tenants were promised (``quota > base`` is
    oversubscription);
``borrowed`` / ``lent``
    backing currently moved in from / out to siblings;
``backing``
    ``base + borrowed - lent`` — what physically stands behind the
    account right now;
``grant``
    ``min(quota, backing)`` — what admission may actually hand out;
``used``
    footprint of admitted, still-running tasks.

Invariants (the hypothesis property test pins these):

- an acquire never lifts ``used`` above ``grant`` — so no partition
  ever holds more than its physical backing, however oversubscribed
  its quota is;
- lending moves backing, never creates it: for every resource the
  backings sum to the bases' sum (the physical budget) at all times;
- a lender is never pushed below its own usage: ``backing - used >= 0``
  is a precondition of lending that amount away.

A shrink (SMM handed to a sibling) may transiently leave
``used > grant``; the account is then simply closed for new admissions
until usage drains — the physical sum invariant still holds because
the backing moved with the SMM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: the two virtualized resources, in canonical order.
RESOURCES = ("smem", "regs")


@dataclass
class QuotaAccount:
    """One partition's ledger row for one resource."""

    base: int
    quota: int
    borrowed: int = 0
    lent: int = 0
    used: int = 0
    #: lender name -> amount currently borrowed from it (so a return
    #: credits the right sibling's ``lent``).
    borrowed_from: Dict[str, int] = field(default_factory=dict)

    @property
    def backing(self) -> int:
        """Physical bytes/registers standing behind this account now."""
        return self.base + self.borrowed - self.lent

    @property
    def grant(self) -> int:
        """What admission may hand out: quota capped by backing."""
        return min(self.quota, self.backing)

    @property
    def headroom(self) -> int:
        """Admittable footprint left before the grant is exhausted."""
        return self.grant - self.used

    @property
    def idle_backing(self) -> int:
        """Backing not covering current usage — what could be lent."""
        return max(0, self.backing - self.used)


class QuotaLedger:
    """All partitions' quota accounts plus the borrow/return machinery.

    Deterministic by construction: iteration is always over sorted
    partition names, and every mutation is driven by engine events
    (claims, completions, epoch ticks) — never wall-clock state.
    """

    #: fraction of a lender's *base* that borrowing may never drain:
    #: a lightly-loaded partition keeps enough backing that its own
    #: next request admits immediately instead of waiting for a
    #: heavily-loaded sibling to give borrowed quota back (the sibling
    #: only settles once its own usage falls — potentially never
    #: during a long burst).
    RESERVE_FRAC = 0.125

    def __init__(self, obs=None) -> None:
        #: partition -> resource -> account.
        self.accounts: Dict[str, Dict[str, QuotaAccount]] = {}
        self.obs = obs
        self.borrow_count = 0
        self.return_count = 0
        self._grant_tl: Dict[Tuple[str, str], object] = {}

    # -- registration ------------------------------------------------------

    def register(self, partition: str, *, smem_base: int, regs_base: int,
                 smem_quota: Optional[int] = None,
                 regs_quota: Optional[int] = None) -> None:
        """Open the accounts of one partition.  ``None`` quotas default
        to the physical base (no oversubscription)."""
        if partition in self.accounts:
            raise ValueError(f"partition {partition!r} already registered")
        self.accounts[partition] = {
            "smem": QuotaAccount(
                base=smem_base,
                quota=smem_base if smem_quota is None else smem_quota,
            ),
            "regs": QuotaAccount(
                base=regs_base,
                quota=regs_base if regs_quota is None else regs_quota,
            ),
        }
        if self.obs is not None:
            for res in RESOURCES:
                self._grant_tl[(partition, res)] = self.obs.timeline(
                    f"gpu.partition.{partition}.{res}_grant"
                )

    def account(self, partition: str, resource: str) -> QuotaAccount:
        return self.accounts[partition][resource]

    # -- admission ---------------------------------------------------------

    def try_acquire(self, partition: str, smem: int, regs: int) -> bool:
        """Admit a footprint against the grants — both resources or
        neither (no partial holds to deadlock on)."""
        accts = self.accounts[partition]
        if (accts["smem"].used + smem <= accts["smem"].grant
                and accts["regs"].used + regs <= accts["regs"].grant):
            accts["smem"].used += smem
            accts["regs"].used += regs
            return True
        return False

    def release(self, partition: str, smem: int, regs: int) -> None:
        accts = self.accounts[partition]
        accts["smem"].used -= smem
        accts["regs"].used -= regs
        if accts["smem"].used < 0 or accts["regs"].used < 0:
            raise RuntimeError(
                f"partition {partition!r} released more than it held"
            )

    # -- borrow / return (the elastic epoch machinery) ---------------------

    def borrow(self, borrower: str, resource: str, amount: int,
               now_ns: float = 0.0) -> int:
        """Move up to ``amount`` of idle sibling backing to ``borrower``.

        Siblings are drained in sorted-name order (deterministic), each
        only down to its own usage or its :attr:`RESERVE_FRAC` floor,
        whichever is higher.  Returns what was actually moved.
        Borrowing past the borrower's quota is pointless (the grant is
        quota-capped), so the transfer is clipped there too.
        """
        b = self.accounts[borrower][resource]
        amount = min(amount, b.quota - b.backing)
        if amount <= 0:
            return 0
        moved = 0
        for name in sorted(self.accounts):
            if name == borrower:
                continue
            lender = self.accounts[name][resource]
            floor = max(lender.used, int(lender.base * self.RESERVE_FRAC))
            take = min(max(0, lender.backing - floor), amount - moved)
            if take <= 0:
                continue
            lender.lent += take
            b.borrowed += take
            b.borrowed_from[name] = b.borrowed_from.get(name, 0) + take
            moved += take
            self._note_grant(name, resource, now_ns)
            if moved >= amount:
                break
        if moved:
            self.borrow_count += 1
            self._note_grant(borrower, resource, now_ns)
            if self.obs is not None:
                self.obs.counter(
                    f"gpu.partition.{borrower}.quota_borrows").inc()
        return moved

    def settle(self, partition: str, resource: str,
               now_ns: float = 0.0) -> int:
        """Return as much borrowed backing as usage allows (the epoch-
        boundary give-back).  Returns the amount handed back."""
        acct = self.accounts[partition][resource]
        returnable = min(acct.borrowed, acct.idle_backing)
        if returnable <= 0:
            return 0
        left = returnable
        for name in sorted(acct.borrowed_from):
            give = min(acct.borrowed_from[name], left)
            if give <= 0:
                continue
            self.accounts[name][resource].lent -= give
            acct.borrowed -= give
            acct.borrowed_from[name] -= give
            if acct.borrowed_from[name] == 0:
                del acct.borrowed_from[name]
            left -= give
            self._note_grant(name, resource, now_ns)
            if left <= 0:
                break
        self.return_count += 1
        self._note_grant(partition, resource, now_ns)
        if self.obs is not None:
            self.obs.counter(
                f"gpu.partition.{partition}.quota_returns").inc()
        return returnable - left

    # -- repartitioning ----------------------------------------------------

    def transfer_base(self, donor: str, recipient: str, resource: str,
                      amount: int, now_ns: float = 0.0) -> None:
        """An SMM changed hands: its physical backing follows it.

        Any outstanding borrow the recipient holds against the donor is
        cancelled first — borrowed headroom becomes owned base when the
        underlying SMM itself moves.  Without this the donor's base
        shrinks while its ``lent`` stays outstanding, driving its
        backing (and grant) to zero or below until the recipient
        settles — which a busy recipient never does mid-burst.
        """
        d = self.accounts[donor][resource]
        r = self.accounts[recipient][resource]
        d.base -= amount
        r.base += amount
        cancel = min(r.borrowed_from.get(donor, 0), amount)
        if cancel > 0:
            r.borrowed -= cancel
            r.borrowed_from[donor] -= cancel
            d.lent -= cancel
        if d.base < 0:
            raise RuntimeError(
                f"partition {donor!r} gave away more {resource} backing "
                "than it had"
            )
        self._note_grant(donor, resource, now_ns)
        self._note_grant(recipient, resource, now_ns)

    def resize_quota(self, partition: str, resource: str, quota: int,
                     now_ns: float = 0.0) -> None:
        """Adjust the virtual promise itself (repartition events)."""
        self.accounts[partition][resource].quota = quota
        self._note_grant(partition, resource, now_ns)

    # -- invariants --------------------------------------------------------

    def physical_total(self, resource: str) -> int:
        """Sum of bases — the device's physical budget for a resource."""
        return sum(a[resource].base for a in self.accounts.values())

    def check_physical(self) -> None:
        """Assert the ledger's conservation + bounds invariants."""
        for res in RESOURCES:
            backings = 0
            for name in sorted(self.accounts):
                acct = self.accounts[name][res]
                if acct.borrowed < 0 or acct.lent < 0 or acct.used < 0:
                    raise AssertionError(
                        f"{name}/{res}: negative ledger field ({acct})"
                    )
                if acct.grant > acct.quota:
                    raise AssertionError(
                        f"{name}/{res}: grant {acct.grant} exceeds "
                        f"quota {acct.quota}"
                    )
                if acct.grant > acct.backing:
                    raise AssertionError(
                        f"{name}/{res}: grant {acct.grant} exceeds "
                        f"physical backing {acct.backing}"
                    )
                backings += acct.backing
            total = self.physical_total(res)
            if backings != total:
                raise AssertionError(
                    f"{res}: backings sum to {backings}, physical "
                    f"budget is {total} (lend/return imbalance)"
                )

    # -- obs ---------------------------------------------------------------

    def _note_grant(self, partition: str, resource: str,
                    now_ns: float) -> None:
        tl = self._grant_tl.get((partition, resource))
        if tl is not None:
            tl.set(now_ns, self.accounts[partition][resource].grant)
