"""The partition manager: SR-IOV-style sub-devices on one GPU.

A :class:`PartitionedStack` splits one simulated GPU's SMM array into
isolated logical partitions (the MI300 SPX/DPX/QPX modes, or arbitrary
masks).  Each partition is a *complete* Pagoda stack on its SMM
subset:

- its own :class:`~repro.core.MasterKernel` owning only the
  partition's MTB columns (global column numbering is preserved so
  SMMs can move between partitions at runtime);
- its own full-width :class:`~repro.core.TaskTable` with only the
  owned columns open for spawning;
- its own PCIe bus (the SR-IOV virtual function: each partition's
  posted writes and copy-backs ride dedicated lanes);
- its own DRAM bandwidth slice, rated by its share of the SMM array;
- its own optional seeded fault plan and injector.

Because partitions share **no timed resource**, a partition's
schedule — and therefore its :class:`PartitionReport` bytes — is
unaffected by anything its siblings do, including brown-outs and
bursts.  That is the isolation contract the tests pin, and it is what
the shared-mode baseline (one SPX partition, every tenant in it)
deliberately gives up.

On top of the static split sit the Zorua-style virtual quotas
(:mod:`repro.partition.quota`) and the elastic controller
(:mod:`repro.partition.elastic`), which trade some of that isolation
back for utilization — borrowing idle sibling headroom and moving
whole SMMs at epoch boundaries, all as deterministic engine events.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.core.errors import CudaLaunchError, RetryPolicy
from repro.core.host_api import PagodaHost
from repro.core.masterkernel import MTBS_PER_SMM, MasterKernel
from repro.core.runtime import PagodaConfig
from repro.core.tasktable import TaskTable
from repro.gpu.device import Gpu
from repro.gpu.spec import GpuSpec, titan_x
from repro.gpu.timing import DEFAULT_TIMING, TimingModel, batch_finish_tags
from repro.partition.modes import mode_masks, validate_masks
from repro.partition.quota import QuotaLedger
from repro.pcie.bus import Direction, PcieBus
from repro.sim import Engine, ProcessorSharing, Signal
from repro.tasks import TaskResult, TaskSpec

#: canonical report schema tag.
SCHEMA = "repro.partition/1"


def task_demand(task: TaskSpec) -> Tuple[int, int]:
    """(shared-mem bytes, registers) a task's admission claims."""
    smem = task.shared_mem_bytes * task.num_blocks
    regs = task.total_warps * 32 * task.regs_per_thread
    return smem, regs


@dataclass
class PartitionSpec:
    """Configuration of one partition within a plan."""

    name: str
    #: SMM indices this partition owns at boot.
    smms: List[int]
    #: virtual shared-memory quota in bytes (None -> physical base,
    #: i.e. no oversubscription).
    smem_quota: Optional[int] = None
    #: virtual register quota (None -> physical base).
    reg_quota: Optional[int] = None
    #: quota = oversubscribe x physical base, applied when the
    #: corresponding explicit quota is None.  1.0 = no oversubscription.
    oversubscribe: float = 1.0
    #: optional seeded :class:`repro.faults.FaultPlan` scoped to this
    #: partition only — its brown-outs and warp faults can, by
    #: construction, not touch a sibling.
    fault_plan: Optional[object] = None


@dataclass
class PartitionPlan:
    """A full device split: the partitions plus the elastic policy."""

    partitions: List[PartitionSpec]
    #: display label ("SPX"/"DPX"/"QPX"/"custom").
    mode: str = "custom"
    #: elastic rebalancing policy; None = static partitions.
    elastic: Optional[object] = None

    @classmethod
    def from_mode(cls, mode: str, num_smms: int = 24,
                  oversubscribe: float = 1.0,
                  elastic: Optional[object] = None,
                  names: Optional[List[str]] = None) -> "PartitionPlan":
        """Build the symmetric plan of one hardware mode."""
        masks = mode_masks(mode, num_smms)
        if names is None:
            names = [f"p{i}" for i in range(len(masks))]
        if len(names) != len(masks):
            raise ValueError(
                f"{mode} has {len(masks)} partitions, got "
                f"{len(names)} names"
            )
        return cls(
            partitions=[
                PartitionSpec(name=n, smms=m, oversubscribe=oversubscribe)
                for n, m in zip(names, masks)
            ],
            mode=mode.upper(),
            elastic=elastic,
        )

    def validate(self, num_smms: int) -> None:
        names = [p.name for p in self.partitions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate partition names in {names}")
        validate_masks([p.smms for p in self.partitions], num_smms)

    def by_name(self, name: str) -> PartitionSpec:
        for p in self.partitions:
            if p.name == name:
                return p
        raise KeyError(name)


class Partition:
    """One live partition: a session-shaped stack on an SMM subset."""

    def __init__(self, stack: "PartitionedStack",
                 pspec: PartitionSpec) -> None:
        self.stack = stack
        self.pspec = pspec
        self.name = pspec.name
        self.engine = stack.engine
        self.timing = stack.timing
        self.spec = stack.spec
        config = stack.config
        self.faults = None
        if pspec.fault_plan is not None:
            from repro.faults import FaultInjector
            self.faults = FaultInjector(self.engine, pspec.fault_plan)
        self.obs = stack.obs
        #: the partition's virtual function: its own PCIe lanes.
        self.bus = PcieBus(self.engine, self.timing,
                           coalesce=config.pcie_coalesce,
                           faults=self.faults, obs=self.obs)
        num_columns = self.spec.num_smms * MTBS_PER_SMM
        columns = [s * MTBS_PER_SMM + k
                   for s in sorted(pspec.smms)
                   for k in range(MTBS_PER_SMM)]
        self.table = TaskTable(
            self.engine, self.bus, num_columns, rows=config.rows,
            faults=self.faults,
            quarantine_threshold=config.quarantine_threshold,
            obs=self.obs, open_columns=columns, free_order="fifo",
        )
        #: the partition's DRAM bandwidth slice, rated by its boot-time
        #: share of the SMM array.  Fixed across elastic moves so a
        #: partition's memory timing never depends on sibling activity.
        share = len(pspec.smms) / self.spec.num_smms
        self.dram = ProcessorSharing(
            self.engine,
            rate=self.timing.dram_bytes_per_ns(
                self.spec.dram_bandwidth_gbps) * share,
            name=f"dram.{self.name}",
        )
        self.dram.tag_kernel = batch_finish_tags
        self.master = MasterKernel(
            self.engine, stack.gpu, self.table,
            functional=config.functional,
            serial_psched=config.serial_psched,
            deferred_scheduling=config.deferred_scheduling,
            watchdog_deadline_ns=config.watchdog_deadline_ns,
            faults=self.faults, obs=self.obs,
            smm_indices=list(pspec.smms), dram=self.dram,
            partition=self.name,
        )
        self.host = PagodaHost(self.engine, self.table, self.timing,
                               protocol=config.protocol,
                               faults=self.faults)
        #: pulsed whenever quota grants may have grown (a release, an
        #: epoch borrow, an SMM adopt) — quota claimants block here.
        self.quota_signal = Signal()
        smem_base = len(columns) * self.master.arena_bytes
        regs_base = len(columns) * self.master._registers
        stack.ledger.register(
            self.name,
            smem_base=smem_base, regs_base=regs_base,
            smem_quota=(pspec.smem_quota if pspec.smem_quota is not None
                        else int(smem_base * pspec.oversubscribe)),
            regs_quota=(pspec.reg_quota if pspec.reg_quota is not None
                        else int(regs_base * pspec.oversubscribe)),
        )
        if self.obs is not None:
            self.obs.timeline(f"gpu.partition.{self.name}.smms").set(
                0.0, len(pspec.smms))
        if self.faults is not None:
            self._arm_timed_faults()

    @property
    def columns(self) -> List[int]:
        """The columns currently open for this partition, sorted."""
        return sorted(self.table.open_columns)

    def _arm_timed_faults(self) -> None:
        """Brown-outs of this partition's plan land on its own columns
        only — target indices wrap within the partition."""
        boot_columns = [s * MTBS_PER_SMM + k
                        for s in sorted(self.pspec.smms)
                        for k in range(MTBS_PER_SMM)]
        for fspec in self.faults.time_triggered("gpu.brownout"):
            column = boot_columns[(fspec.target or 0) % len(boot_columns)]

            def fire(s=fspec, c=column):
                # the column may have moved to a sibling by now; a
                # brown-out of hardware this partition no longer owns
                # is a no-op for it
                mtb = self.master.by_column.get(c)
                if mtb is not None:
                    mtb.brownout(s.kind)
                    self.faults.record_fired(s, f"{self.name}.mtb{c}")

            self.engine.call_at(fspec.at_ns, fire)

    # -- quota admission ---------------------------------------------------

    def claim_quota(self, smem: int, regs: int) -> Generator:
        """Block until the footprint fits the partition's grant, then
        hold it.  Zero engine events when admission succeeds at once."""
        ledger = self.stack.ledger
        while True:
            # arm before trying: a release during this event must not
            # be a lost wakeup
            retry = self.quota_signal.wait()
            if ledger.try_acquire(self.name, smem, regs):
                return (smem, regs)
            yield retry

    def release_quota(self, claim: Tuple[int, int]) -> None:
        self.stack.ledger.release(self.name, *claim)
        self.quota_signal.pulse()

    def shutdown(self) -> None:
        self.master.shutdown()


class PartitionedStack:
    """All partitions of one GPU on one engine, plus the movers."""

    def __init__(self, plan: PartitionPlan,
                 spec: Optional[GpuSpec] = None,
                 timing: Optional[TimingModel] = None,
                 config: Optional[PagodaConfig] = None,
                 engine: Optional[Engine] = None) -> None:
        self.plan = plan
        self.spec = spec or titan_x()
        self.timing = timing or DEFAULT_TIMING
        self.config = config or PagodaConfig()
        if self.config.fault_plan is not None:
            raise ValueError(
                "partitioned stacks take per-partition fault plans "
                "(PartitionSpec.fault_plan), not a device-wide one"
            )
        plan.validate(self.spec.num_smms)
        self.engine = engine or Engine(lane=self.config.lane)
        self.obs = self.config.obs
        if self.obs is not None and getattr(self.obs, "profiler", None):
            self.engine.profiler = self.obs.profiler
        if self.obs is not None:
            from repro.gpu.occupancy import reset_memo_counters
            reset_memo_counters()
        self.gpu = Gpu(self.engine, self.spec, self.timing, obs=self.obs)
        self.ledger = QuotaLedger(obs=self.obs)
        self.partitions: Dict[str, Partition] = {}
        for pspec in plan.partitions:
            self.partitions[pspec.name] = Partition(self, pspec)
        #: (when_ns, donor, recipient, smm_index) log of elastic moves.
        self.moves: List[Tuple[float, str, str, int]] = []
        #: SMM indices currently being handed over.  Moves of distinct
        #: SMMs drain independently, so several may be in flight at
        #: once; the same SMM never is.
        self._moves_inflight: Set[int] = set()
        #: cleared by the driver once the workload is done, so the
        #: elastic controller's epoch timer stops re-arming and the
        #: engine can drain.
        self.active = True
        #: driver-registered workload processes (collectors); the
        #: elastic controller exits once none of them is alive, which
        #: is what lets ``engine.run`` terminate.
        self.workload_procs: List[object] = []
        self._controller_proc = None
        if plan.elastic is not None:
            from repro.partition.elastic import elastic_controller
            self._controller_proc = self.engine.spawn(
                elastic_controller(self, plan.elastic),
                "partition-elastic",
            )

    def partition(self, name: str) -> Partition:
        return self.partitions[name]

    def effective_smms(self, name: str) -> int:
        """SMMs a partition will still own once in-flight hand-overs
        complete — what shrink policies must reason about, since a
        draining SMM stays in ``smm_indices`` until released."""
        return len([s for s in self.partitions[name].master.smm_indices
                    if s not in self._moves_inflight])

    def finish(self) -> None:
        """The workload is done: let the controller's loop exit."""
        self.active = False

    def shutdown(self) -> None:
        self.finish()
        for part in self.partitions.values():
            part.shutdown()

    # -- SMM movement (the grow/shrink/merge primitive) --------------------

    def lend_smm(self, donor: str, recipient: str,
                 smm_index: Optional[int] = None) -> bool:
        """Start moving one SMM from ``donor`` to ``recipient``.

        Returns False (and does nothing) when this SMM is already in
        flight or the donor has nothing to give; otherwise spawns the
        drain-and-transfer process and returns True.  The move is
        asynchronous: the donor's columns close immediately, the
        hand-over completes once they drain.  Moves of distinct SMMs
        may overlap.
        """
        d = self.partitions[donor]
        available = [s for s in d.master.smm_indices
                     if s not in self._moves_inflight]
        if len(available) <= 1:
            return False
        if smm_index is None:
            smm_index = available[-1]
        elif smm_index not in available:
            return False
        self._moves_inflight.add(smm_index)
        self.engine.spawn(
            self._move_proc(donor, recipient, smm_index),
            f"partition-move.{donor}.{recipient}.{smm_index}",
        )
        return True

    def _move_proc(self, donor: str, recipient: str,
                   smm_index: int) -> Generator:
        d = self.partitions[donor]
        r = self.partitions[recipient]
        cols = [smm_index * MTBS_PER_SMM + k for k in range(MTBS_PER_SMM)]
        for c in cols:
            d.table.close_column(c)
        while any(d.table.column_busy(c) for c in cols):
            # completions always pulse the donor's done signal; posted
            # writes in flight become residency before completing
            yield d.table.gpu_done_signal.wait()
        # detach from the completing executor's stack frame (the done
        # pulse resumes this proc synchronously from inside it) before
        # release_smm interrupts that same generator
        yield self.engine.timeout(0.0)
        d.master.release_smm(smm_index)
        now = self.engine.now
        arena = d.master.arena_bytes
        regs = d.master._registers
        self.ledger.transfer_base(donor, recipient, "smem",
                                  MTBS_PER_SMM * arena, now)
        self.ledger.transfer_base(donor, recipient, "regs",
                                  MTBS_PER_SMM * regs, now)
        r.master.adopt_smm(smm_index)
        for c in cols:
            r.table.open_column(c)
        self.moves.append((now, donor, recipient, smm_index))
        d.quota_signal.pulse()
        r.quota_signal.pulse()
        if self.obs is not None:
            self.obs.instant("gpu.partition", "repartition", now,
                             donor=donor, recipient=recipient,
                             smm=smm_index)
            self.obs.timeline(f"gpu.partition.{donor}.smms").set(
                now, len(d.master.smm_indices))
            self.obs.timeline(f"gpu.partition.{recipient}.smms").set(
                now, len(r.master.smm_indices))
        self._moves_inflight.discard(smm_index)


@dataclass
class PartitionReport:
    """Canonical per-partition outcome of one partitioned run."""

    partition: str
    smms: List[int]
    mode: str
    tasks: int
    executed: int
    failed: int
    makespan_ns: float
    busy_warp_ns: float
    latencies_ns: List[float] = field(default_factory=list)
    error_reasons: List[str] = field(default_factory=list)

    def percentile(self, pct: float) -> float:
        if not self.latencies_ns:
            return 0.0
        ordered = sorted(self.latencies_ns)
        idx = min(len(ordered) - 1,
                  max(0, int(math.ceil(pct / 100.0 * len(ordered))) - 1))
        return ordered[idx]

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "partition": self.partition,
            "smms": list(self.smms),
            "mode": self.mode,
            "tasks": self.tasks,
            "executed": self.executed,
            "failed": self.failed,
            "makespan_ns": self.makespan_ns,
            "busy_warp_ns": self.busy_warp_ns,
            "latency_p50_ns": self.percentile(50.0),
            "latency_p99_ns": self.percentile(99.0),
            "latencies_ns": list(self.latencies_ns),
            "error_reasons": sorted(self.error_reasons),
        }

    def to_json(self) -> bytes:
        """Byte-canonical encoding (the isolation tests diff these)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode("ascii")


def run_partitioned(groups: Dict[str, List[TaskSpec]],
                    plan: PartitionPlan,
                    spec: Optional[GpuSpec] = None,
                    timing: Optional[TimingModel] = None,
                    config: Optional[PagodaConfig] = None,
                    gaps: Optional[Dict[str, float]] = None,
                    ) -> Dict[str, PartitionReport]:
    """Run one task group per partition on a fresh partitioned stack.

    ``groups`` maps partition name -> task list (missing partitions
    idle); ``gaps`` optionally spaces one group's spawns (open-loop,
    task i arrives at ``i * gap``).  Returns one canonical
    :class:`PartitionReport` per partition of the plan.
    """
    config = config or PagodaConfig()
    stack = PartitionedStack(plan, spec, timing, config)
    engine = stack.engine
    unknown = set(groups) - set(stack.partitions)
    if unknown:
        raise ValueError(f"groups name unknown partitions: {sorted(unknown)}")
    gaps = gaps or {}
    finish: Dict[str, float] = {p: 0.0 for p in stack.partitions}
    claims: Dict[str, Dict[int, Tuple[int, int]]] = {
        p: {} for p in stack.partitions
    }
    results: Dict[str, List[TaskResult]] = {
        p: [TaskResult(i, t.name) for i, t in enumerate(groups.get(p, []))]
        for p in stack.partitions
    }
    retry_policy = RetryPolicy()

    def spawner(part: Partition, tasks: List[TaskSpec]) -> Generator:
        gap = gaps.get(part.name, 0.0)
        res = results[part.name]
        for i, task in enumerate(tasks):
            if gap:
                arrival = (i + 1) * gap
                if engine.now < arrival:
                    yield arrival - engine.now
                res[i].spawn_time = arrival
            else:
                res[i].spawn_time = engine.now
            if config.copy_inputs and task.input_bytes:
                yield part.timing.memcpy_issue_ns
                engine.spawn(
                    part.bus.transfer(task.input_bytes, Direction.H2D),
                    f"{part.name}.incopy.{i}",
                )
            claim = yield from part.claim_quota(*task_demand(task))
            attempt = 0
            while True:
                try:
                    task_id = yield from part.host.task_spawn(task, res[i])
                    break
                except CudaLaunchError:
                    attempt += 1
                    if attempt >= retry_policy.max_attempts:
                        part.release_quota(claim)
                        raise
                    yield retry_policy.backoff_ns(attempt - 1)
            claims[part.name][task_id] = claim

    def collector(part: Partition, tasks: List[TaskSpec],
                  spawn_proc) -> Generator:
        table, host = part.table, part.host
        transfers = []
        out_bytes = {t.name: t.output_bytes for t in tasks}
        while True:
            done_spawning = not spawn_proc.alive
            if done_spawning:
                yield from host.finalize_last()
            yield part.timing.wait_timeout_ns
            yield from table.copy_back()
            for task_id in table.drain_completions():
                claim = claims[part.name].pop(task_id, None)
                if claim is not None:
                    part.release_quota(claim)
                nbytes = out_bytes.get(
                    table.entry_for(task_id, "cpu").spec.name, 0
                ) if task_id in table.id_map else 0
                if config.copy_outputs and nbytes:
                    yield part.timing.memcpy_issue_ns
                    transfers.append(engine.spawn(
                        part.bus.transfer(nbytes, Direction.D2H),
                        f"{part.name}.outcopy.{task_id}",
                    ))
            if done_spawning and len(table.finished) >= len(tasks):
                break
        for proc in transfers:
            yield proc
        finish[part.name] = engine.now

    for name in sorted(stack.partitions):
        tasks = groups.get(name, [])
        if not tasks:
            continue
        part = stack.partitions[name]
        sp = engine.spawn(spawner(part, tasks), f"{name}.spawner")
        stack.workload_procs.append(
            engine.spawn(collector(part, tasks, sp), f"{name}.collector")
        )
    engine.run(raise_on_deadlock=True)
    stack.shutdown()

    reports: Dict[str, PartitionReport] = {}
    for name in sorted(stack.partitions):
        part = stack.partitions[name]
        res = results[name]
        end = finish[name]
        lat = [r.end_time - r.spawn_time for r in res
               if r.end_time > 0.0]
        reports[name] = PartitionReport(
            partition=name,
            smms=sorted(part.master.smm_indices),
            mode=plan.mode,
            tasks=len(res),
            executed=part.master.tasks_executed(),
            failed=part.master.tasks_failed(),
            makespan_ns=end,
            busy_warp_ns=part.master.busy_integral(end),
            latencies_ns=lat,
            error_reasons=[e.reason for e in part.host.task_errors()],
        )
    return reports
