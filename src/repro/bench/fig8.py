"""Fig. 8 — Pagoda vs HyperQ across input sizes and threads per task.

Paper setup: MM and CONV, input sizes 16^2 .. 256^2, threads per task
256 .. 65536 (tasks become multi-block), HyperQ blocks fixed at 256
threads, 32K tasks, compute time only.

Shapes to reproduce: for small thread counts Pagoda wins at every
input size; past ~512 threads per task the benefit diminishes (HyperQ
can fill the GPU itself); and at very large thread counts Pagoda can
pull ahead *again* thanks to warp-level scheduling — CUDA cannot start
a new threadblock until the previous block's slowest warp retires
(§6.4), while Pagoda backfills freed warps immediately.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from repro.bench.harness import full_scale, run_tasks
from repro.bench.reporting import format_table
from repro.workloads import REGISTRY

#: HyperQ threadblock shape in this experiment (§6.4)
BLOCK_THREADS = 256
PAPER_DIMINISH_THREADS = 512


def sweep_points():
    """Sweep grid for this experiment (env-scaled)."""
    if full_scale():
        sizes = [16, 32, 64, 128, 256]
        threads = [256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536]
        n_tasks = 512
    else:
        sizes = [16, 64, 256]
        threads = [256, 512, 2048, 8192, 16384]
        n_tasks = 128
    return sizes, threads, n_tasks


def make_sized_tasks(workload: str, n_tasks: int, size: int,
                     total_threads: int, seed: int) -> List:
    """Tasks of one input size reshaped to ``total_threads`` as
    ``total_threads/256`` blocks of 256 threads."""
    w = REGISTRY.get(workload)
    rng = np.random.default_rng(seed)
    num_blocks = max(1, total_threads // BLOCK_THREADS)
    tasks = []
    for i in range(n_tasks):
        kw = {"n": size} if workload == "mm" else {"img": size}
        task = w.make_task(i, BLOCK_THREADS, rng, False, False, **kw)
        task = dataclasses.replace(
            task, num_blocks=num_blocks, shared_mem_bytes=0, needs_sync=False
        )
        tasks.append(task)
    return tasks


def run(seed: int = 0) -> Dict:
    """Execute the experiment; returns its structured results."""
    sizes, threads, n_tasks = sweep_points()
    speedups: Dict[str, Dict[int, Dict[int, float]]] = {}
    for workload in ("mm", "conv"):
        speedups[workload] = {}
        for size in sizes:
            speedups[workload][size] = {}
            for total_threads in threads:
                tasks = make_sized_tasks(workload, n_tasks, size,
                                         total_threads, seed)
                hq = run_tasks(tasks, "hyperq", copies=False)
                pg = run_tasks(tasks, "pagoda", copies=False)
                speedups[workload][size][total_threads] = (
                    hq.makespan / pg.makespan
                )
    return {"sizes": sizes, "threads": threads, "speedups": speedups}


def report(results: Dict) -> str:
    """Render the experiment's paper-vs-measured text report."""
    sections = []
    for workload, per_size in results["speedups"].items():
        rows = []
        for size in results["sizes"]:
            rows.append(
                [f"{size}x{size}"]
                + [round(per_size[size][t], 2) for t in results["threads"]]
            )
        sections.append(format_table(
            ["input"] + [f"{t}thr" for t in results["threads"]], rows,
            title=f"FIG8 [{workload}]: Pagoda speedup over HyperQ "
                  "(compute only)",
        ))
    sections.append(
        "\nFIG8 shape check (paper): >1 for small thread counts at every "
        f"input size; benefit diminishes past ~{PAPER_DIMINISH_THREADS} "
        "threads; may rise again at the largest sizes/threads due to "
        "warp-level vs threadblock-level scheduling."
    )
    return "\n\n".join(sections)
