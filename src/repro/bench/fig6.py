"""Fig. 6 — Weak scaling with the number of tasks.

Paper setup: MB, CONV, DCT, 3DES, MPE at task counts 64 -> 32K, 128
threads per task, times normalized to each scheme's 64-task run.

Shapes to reproduce: below ~512 tasks no scheme fills the GPU and
HyperQ/GeMTC hold their own; **beyond 512 tasks Pagoda pulls ahead**,
and Pagoda's execution time scales roughly linearly with task count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.harness import full_scale, make_tasks, run_tasks
from repro.bench.reporting import format_table

WORKLOADS = ["mb", "conv", "dct", "3des", "mpe"]
RUNTIMES = ["hyperq", "gemtc", "pagoda"]
THREADS_PER_TASK = 128
PAPER_CROSSOVER = 512


def task_counts() -> List[int]:
    """Task-count sweep for this experiment (env-scaled)."""
    if full_scale():
        return [64, 512, 2048, 8192, 32768]
    return [64, 256, 1024, 2048]


def run(counts: Optional[List[int]] = None, seed: int = 0) -> Dict:
    """Makespans for each (workload, runtime, task count)."""
    counts = counts or task_counts()
    times: Dict[str, Dict[str, Dict[int, float]]] = {}
    for workload in WORKLOADS:
        times[workload] = {rt: {} for rt in RUNTIMES}
        for n in counts:
            tasks = make_tasks(workload, n, THREADS_PER_TASK, seed)
            for runtime in RUNTIMES:
                stats = run_tasks(tasks, runtime)
                times[workload][runtime][n] = stats.makespan
    return {"counts": counts, "times": times}


def report(results: Dict) -> str:
    """Render the experiment's paper-vs-measured text report."""
    counts = results["counts"]
    sections = []
    for workload, per_rt in results["times"].items():
        rows = []
        for runtime in RUNTIMES:
            base = per_rt[runtime][counts[0]]
            rows.append(
                [runtime]
                + [round(per_rt[runtime][n] / base, 2) for n in counts]
            )
        # Pagoda advantage at the largest count
        big = counts[-1]
        adv = per_rt["hyperq"][big] / per_rt["pagoda"][big]
        rows.append(["pagoda-vs-hyperq@max", f"{adv:.2f}x"]
                    + [""] * (len(counts) - 1))
        sections.append(format_table(
            ["runtime"] + [str(n) for n in counts], rows,
            title=f"FIG6 [{workload}]: time normalized to {counts[0]} tasks",
        ))
    sections.append(
        "\nFIG6 shape check (paper): Pagoda runs faster than HyperQ and "
        f"GeMTC beyond {PAPER_CROSSOVER} tasks; Pagoda time scales ~"
        "linearly with task count."
    )
    return "\n\n".join(sections)
