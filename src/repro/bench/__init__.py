"""Benchmark harness: one module per table/figure of the paper's §6.

Each experiment module exposes ``run(...) -> dict`` (structured
results) and ``report(results) -> str`` (text rendering with
paper-vs-measured rows).  ``benchmarks/`` wires them into
pytest-benchmark; EXPERIMENTS.md records the outcomes.

=========== ==========================================================
module      paper artefact
=========== ==========================================================
``fig5``    overall speedup vs PThreads / HyperQ / GeMTC
``fig6``    weak scaling with task count
``fig7``    compute time vs threads-per-task
``fig8``    input-size x thread-count sweep vs HyperQ (MM, CONV)
``fig9``    irregular tasks vs static fusion
``fig10``   average task latency vs task count
``fig11``   continuous-spawning / batching ablation
``tab3``    benchmark copy/compute characteristics under HyperQ
``tab5``    shared-memory management analysis (DCT, MM)
=========== ==========================================================
"""

from repro.bench import (  # noqa: F401
    ablations,
    config_sweeps,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    latency_under_load,
    priorities,
    tab3,
    tab5,
)
from repro.bench.harness import (
    RUNTIMES,
    copy_fraction,
    default_num_tasks,
    full_scale,
    make_tasks,
    run_benchmark,
    run_tasks,
)

__all__ = [
    "ablations", "config_sweeps", "latency_under_load", "priorities", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "tab3", "tab5",
    "RUNTIMES", "copy_fraction", "default_num_tasks", "full_scale",
    "make_tasks", "run_benchmark", "run_tasks",
]
