"""Parallel sweep runner: fan experiment configs across worker processes.

Each figure/table reproduction is an *independent, deterministic,
single-threaded* simulation — no shared state, no RNG coupling, no
wall-clock dependence — so a sweep over artefacts is embarrassingly
parallel.  This module fans the cells of a sweep across a
``multiprocessing`` pool and reassembles the reports **in submission
order**, which is the determinism contract:

    for any worker count N >= 1, the report text of every experiment is
    byte-identical to a serial run (only the bracketed wall-time lines
    differ, as they measure the host, not the simulation).

Workers are plain processes; each cell re-runs the full simulation in
its own interpreter, so per-cell results can never observe another
cell's engine, caches, or module state.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

from repro.bench.runner import EXPERIMENTS, run_cell, run_one
from repro.bench.subproc import silence_conda


def default_jobs() -> int:
    """Worker count when the caller does not specify one."""
    return max(1, os.cpu_count() or 1)


def run_parallel(
    names: Sequence[str],
    num_tasks: Optional[int] = None,
    jobs: Optional[int] = None,
) -> List[Tuple[str, str]]:
    """Run the named experiments across ``jobs`` worker processes.

    Returns ``(name, report)`` pairs in the order of ``names``
    regardless of which worker finished first.  ``jobs=1`` (or a
    single experiment) degrades to an in-process serial run with no
    pool overhead.
    """
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiments {unknown!r}; have {sorted(EXPERIMENTS)}"
        )
    jobs = default_jobs() if jobs is None else jobs
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    work = [(name, num_tasks) for name in names]
    if jobs == 1 or len(work) <= 1:
        return [(name, run_one(name, num_tasks)) for name, num_tasks in work]
    # fork keeps startup cheap on POSIX; spawn elsewhere.  Workers only
    # *read* imported module state, so either start method is safe.
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    # silence_conda keeps worker stdout byte-canonical under conda
    # (late activation hooks print condarc warnings on stdout)
    with ctx.Pool(processes=min(jobs, len(work)),
                  initializer=silence_conda) as pool:
        # map() preserves submission order — the determinism contract
        return pool.map(run_cell, work)
