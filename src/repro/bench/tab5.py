"""Table 5 — Pagoda shared-memory management analysis.

Paper setup: DCT (64-thread tasks) and MM (256-thread tasks), 32K
tasks, compute time only; each benchmark built with and without
Pagoda's software shared memory, compared against the HyperQ version
that *does* use shared memory.

Shapes to reproduce: the shared-memory versions win (DCT 1.35x, MM
1.51x over HyperQ) and beat their no-shared-memory counterparts (1.25x
/ 1.20x), but DCT's 8 KB blocks limit how many fit in an MTB's 32 KB
arena, cutting its achieved occupancy (paper: 25 % vs 97 %).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.bench.harness import default_num_tasks, run_tasks
from repro.bench.reporting import paper_vs_measured
from repro.workloads import REGISTRY

CONFIGS = {"dct": 64, "mm": 256}  # Table 5's per-benchmark thread counts

PAPER = {
    ("dct", True): {"speedup": 1.35, "occupancy": 25},
    ("dct", False): {"speedup": 1.25, "occupancy": 97},
    ("mm", True): {"speedup": 1.51, "occupancy": 97},
    ("mm", False): {"speedup": 1.20, "occupancy": 97},
}


def make_variant(workload: str, n: int, threads: int, use_smem: bool,
                 seed: int):
    """Tasks for one (workload, threads, shared-mem) cell."""
    w = REGISTRY.get(workload)
    rng = np.random.default_rng(seed)
    return [
        w.make_task(i, threads, rng, False, False, use_shared_mem=use_smem)
        for i in range(n)
    ]


def achieved_occupancy_bound(task) -> float:
    """The paper's Table 5 occupancy: how many executor warps an MTB can
    keep busy with this task shape, limited by the 32 KB arena.

    Without shared memory all 31 executor warps of the 32-warp MTB are
    usable (31/32 = 97 %); an 8 KB request caps DCT at 4 blocks x 2
    warps = 8/32 = 25 %.
    """
    from repro.core import MTB_ARENA_BYTES
    from repro.core.warptable import WarpTable
    executors = WarpTable.EXECUTOR_WARPS
    warps = executors
    if task.shared_mem_bytes:
        blocks = MTB_ARENA_BYTES // task.shared_mem_bytes
        warps = min(executors, blocks * task.warps_per_block)
    return 100.0 * warps / (executors + 1)  # +1: the scheduler warp


def isolated_kernel_time(workload: str, threads: int, use_smem: bool,
                         seed: int) -> float:
    """Mean per-task kernel duration with tasks run far apart, so the
    shared-memory staging benefit (fewer exposed DRAM round trips) is
    visible independent of spawn-path and bandwidth saturation."""
    from repro.core import PagodaConfig, run_pagoda
    tasks = make_variant(workload, 6, threads, use_smem, seed)
    stats = run_pagoda(tasks, config=PagodaConfig(
        copy_inputs=False, copy_outputs=False, spawn_gap_ns=1_000_000.0,
    ))
    return sum(r.exec_time for r in stats.results) / len(stats.results)


def run(num_tasks: Optional[int] = None, seed: int = 0) -> Dict:
    """Execute the experiment; returns its structured results."""
    measured: Dict = {}
    for workload, threads in CONFIGS.items():
        n = num_tasks if num_tasks is not None else default_num_tasks(workload)
        # reference: HyperQ with shared memory (its native support)
        hyperq = run_tasks(
            make_variant(workload, n, threads, True, seed),
            "hyperq", copies=False,
        )
        for use_smem in (True, False):
            tasks = make_variant(workload, n, threads, use_smem, seed)
            pagoda = run_tasks(tasks, "pagoda", copies=False)
            measured[(workload, use_smem)] = {
                "speedup": hyperq.makespan / pagoda.makespan,
                "occupancy": achieved_occupancy_bound(tasks[0]),
                "kernel_us": isolated_kernel_time(
                    workload, threads, use_smem, seed) / 1e3,
            }
    return {"measured": measured}


def report(results: Dict) -> str:
    """Render the experiment's paper-vs-measured text report."""
    rows = []
    for key, paper in PAPER.items():
        workload, use_smem = key
        meas = results["measured"][key]
        rows.append({
            "benchmark": workload,
            "shared_mem": "yes" if use_smem else "no",
            "paper": paper["speedup"],
            "measured": round(meas["speedup"], 2),
        })
    speed = paper_vs_measured(
        "TAB5: Pagoda speedup over HyperQ-with-shared-memory "
        "(compute only)", rows, keys=["benchmark", "shared_mem"],
    )
    occ_lines = ["\nTAB5 occupancy (paper -> measured, Pagoda executor"
                 " warps busy) and per-task kernel time:"]
    for key, paper in PAPER.items():
        meas = results["measured"][key]
        occ_lines.append(
            f"  {key[0]} smem={key[1]}: paper {paper['occupancy']}% -> "
            f"measured {meas['occupancy']:.0f}%; kernel "
            f"{meas['kernel_us']:.1f} us/task"
        )
    return speed + "\n" + "\n".join(occ_lines)
