"""Ablations of Pagoda's individual design choices.

The paper motivates several mechanisms without isolating each one;
these experiments quantify them on the simulated stack:

- **spawn protocol** (§4.2.1): the pipelined one-copy-per-entry
  protocol vs the safe two-transaction strawman that "doubles the
  parameter copying overhead";
- **TaskTable rows** (§4.2): "having multiple rows in the TaskTable
  allows for high availability of tasks to schedule" — 1 vs 4 vs 32
  rows per MTB column;
- **parallel pSched** (Algorithm 2): warp-parallel executor search vs
  a serial scheduler placing one warp per pass;
- **lazy aggregate copy-backs** (§4.2.2): the wait()/waitAll() timeout
  trades completion-observation latency against D2H traffic.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.bench.harness import make_tasks
from repro.bench.reporting import format_table
from repro.core import PagodaConfig, PagodaSession, run_pagoda
from repro.gpu.phases import Phase
from repro.gpu.timing import DEFAULT_TIMING
from repro.tasks import TaskResult, TaskSpec

THREADS_PER_TASK = 128


def spawn_protocol_ablation(num_tasks: int = 512, seed: int = 0) -> Dict:
    """Pipelined vs two-transaction spawning, spawn-path bound."""
    tasks = make_tasks("mb", num_tasks, THREADS_PER_TASK, seed)
    out = {}
    for protocol in ("pipelined", "two-copies"):
        stats = run_pagoda(tasks, config=PagodaConfig(
            protocol=protocol, copy_inputs=False, copy_outputs=False,
        ))
        out[protocol] = stats.makespan
    out["overhead"] = out["two-copies"] / out["pipelined"]
    return out


def tasktable_rows_ablation(num_tasks: int = 768, seed: int = 0,
                            rows_list: Optional[List[int]] = None) -> Dict:
    """Task availability vs TaskTable depth (rows per column)."""
    rows_list = rows_list or [1, 4, 32]
    tasks = make_tasks("mb", num_tasks, THREADS_PER_TASK, seed)
    out = {}
    for rows in rows_list:
        stats = run_pagoda(tasks, config=PagodaConfig(
            rows=rows, copy_inputs=False, copy_outputs=False,
        ))
        out[rows] = {
            "makespan": stats.makespan,
            "copy_backs": stats.meta["copy_backs"],
        }
    return out


def psched_ablation(warp_counts: Optional[List[int]] = None) -> Dict:
    """Placement latency of one task vs its warp count, with and
    without Algorithm 2's warp-parallel search."""
    warp_counts = warp_counts or [4, 8, 16]
    out: Dict[int, Dict[str, float]] = {}

    def tiny_kernel(task, block_id, warp_id):
        yield Phase(inst=1.0)

    for warps in warp_counts:
        row = {}
        for mode, serial in (("parallel", False), ("serial", True)):
            session = PagodaSession(
                config=PagodaConfig(serial_psched=serial))
            result = TaskResult(0, "t")
            task = TaskSpec("t", warps * 32, 1, tiny_kernel)

            def driver():
                yield from session.host.task_spawn(task, result)
                yield from session.host.wait_all()

            session.engine.spawn(driver())
            session.engine.run()
            session.shutdown()
            row[mode] = result.end_time - result.sched_time
        out[warps] = row
    return out


def copyback_timeout_ablation(num_tasks: int = 512, seed: int = 0,
                              timeouts_us: Optional[List[float]] = None
                              ) -> Dict:
    """Lazy-update timeout sweep: D2H traffic vs observation latency."""
    timeouts_us = timeouts_us or [10.0, 50.0, 200.0]
    tasks = make_tasks("mb", num_tasks, THREADS_PER_TASK, seed)
    out = {}
    for timeout in timeouts_us:
        timing = dataclasses.replace(
            DEFAULT_TIMING, wait_timeout_ns=timeout * 1e3)
        stats = run_pagoda(tasks, timing=timing, config=PagodaConfig(
            copy_inputs=False, copy_outputs=False,
        ))
        out[timeout] = {
            "makespan": stats.makespan,
            "copy_backs": stats.meta["copy_backs"],
        }
    return out


def run(num_tasks: int = 512, seed: int = 0) -> Dict:
    """Execute the experiment; returns its structured results."""
    return {
        "protocol": spawn_protocol_ablation(num_tasks, seed),
        "rows": tasktable_rows_ablation(max(num_tasks, 256), seed),
        "psched": psched_ablation(),
        "copyback": copyback_timeout_ablation(num_tasks, seed),
    }


def report(results: Dict) -> str:
    """Render the experiment's paper-vs-measured text report."""
    sections = []
    proto = results["protocol"]
    sections.append(format_table(
        ["protocol", "makespan_ms"],
        [[p, round(proto[p] / 1e6, 3)] for p in ("pipelined", "two-copies")]
        + [["two-copies / pipelined", round(proto["overhead"], 2)]],
        title="ABLATION: spawn protocol (§4.2.1)",
    ))
    rows = results["rows"]
    sections.append(format_table(
        ["rows/column", "makespan_ms", "copy_backs"],
        [[r, round(v["makespan"] / 1e6, 3), v["copy_backs"]]
         for r, v in sorted(rows.items())],
        title="ABLATION: TaskTable rows (§4.2)",
    ))
    psched = results["psched"]
    sections.append(format_table(
        ["warps/task", "parallel_us", "serial_us"],
        [[w, round(v["parallel"] / 1e3, 2), round(v["serial"] / 1e3, 2)]
         for w, v in sorted(psched.items())],
        title="ABLATION: parallel pSched (Algorithm 2) placement latency",
    ))
    cb = results["copyback"]
    sections.append(format_table(
        ["timeout_us", "makespan_ms", "copy_backs"],
        [[t, round(v["makespan"] / 1e6, 3), v["copy_backs"]]
         for t, v in sorted(cb.items())],
        title="ABLATION: lazy copy-back timeout (§4.2.2)",
    ))
    return "\n\n".join(sections)
