"""Serving tail latency under overload — admission control, quantified.

The serving frontend's reason to exist: an open-loop feed does not
slow down because the GPU is busy, so past saturation an unprotected
ingress queue grows without bound and p99 grows with it (roughly
linearly in the run length — there is no steady state).  Admission
control trades completions for a bounded tail: the token bucket caps
the *admitted* rate below capacity, drop-tail caps the queue depth.

The experiment first calibrates the stack's capacity with a flood
(every request arrives nearly at once; sustained completion rate =
capacity), then drives a Poisson stream at ratios of that capacity
through three policies and reports p99 / drop% / goodput per cell.
This is the serving-layer complement of
:mod:`repro.bench.latency_under_load`, which compares *runtimes*
below saturation; here the runtime is fixed and the *policies* are
compared past it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.harness import make_tasks
from repro.bench.reporting import format_table
from repro.serve import (
    DeterministicArrivals,
    DropTail,
    PoissonArrivals,
    ServeConfig,
    TenantSpec,
    TokenBucket,
    serve,
)

#: offered load as a multiple of calibrated capacity
DEFAULT_LOAD_RATIOS = [0.5, 1.0, 2.0]
#: token-bucket admitted-rate target, as a fraction of capacity
BUCKET_FRACTION = 0.8
#: drop-tail ingress bound
QUEUE_DEPTH = 32


def calibrate_capacity(tasks) -> float:
    """Sustained completions/s under a flood — the stack's capacity."""
    rep = serve([TenantSpec("cal", tasks, DeterministicArrivals(100.0))],
                ServeConfig(label="calibrate"))
    return rep.completed * 1e9 / rep.makespan_ns


def measure(policy_name: str, tasks, rate_per_s: float,
            capacity: float) -> Dict[str, float]:
    """Run one policy cell at one offered rate."""
    if policy_name == "no-admission":
        config = ServeConfig(label=policy_name)
    elif policy_name == "token-bucket":
        config = ServeConfig(policy=TokenBucket(
            rate_per_s=BUCKET_FRACTION * capacity, burst=8),
            label=policy_name)
    elif policy_name == "drop-tail":
        config = ServeConfig(policy=DropTail(max_depth=QUEUE_DEPTH),
                             label=policy_name)
    else:
        raise KeyError(policy_name)
    rep = serve([TenantSpec("load", tasks,
                            PoissonArrivals(rate_per_s, seed=5))], config)
    return {
        "p99_us": rep.p99_us,
        "drop_pct": rep.drop_pct,
        "goodput_per_s": rep.throughput_per_s,
        "max_queue_depth": float(rep.max_queue_depth),
    }


def run(num_tasks: int = 384, workload: str = "3des", seed: int = 0,
        load_ratios: Optional[List[float]] = None) -> Dict:
    """p99/drop%/goodput for each admission policy across offered load."""
    load_ratios = load_ratios or DEFAULT_LOAD_RATIOS
    tasks = make_tasks(workload, num_tasks, 128, seed)
    capacity = calibrate_capacity(tasks)
    policies = ["no-admission", "token-bucket", "drop-tail"]
    table: Dict[str, Dict[float, Dict[str, float]]] = {
        p: {} for p in policies
    }
    for ratio in load_ratios:
        for policy in policies:
            table[policy][ratio] = measure(
                policy, tasks, ratio * capacity, capacity)
    return {"workload": workload, "capacity_per_s": capacity,
            "load_ratios": load_ratios, "results": table}


def report(results: Dict) -> str:
    """Render the experiment's text report."""
    ratios = results["load_ratios"]
    sections = [
        f"calibrated capacity: {results['capacity_per_s']:,.0f} requests/s "
        f"(flood-sustained completions)"
    ]
    for metric, label in (("p99_us", "p99 latency (us)"),
                          ("drop_pct", "dropped at admission (%)"),
                          ("goodput_per_s", "completions/s")):
        rows = []
        for policy, per_ratio in results["results"].items():
            rows.append([policy] + [round(per_ratio[r][metric], 1)
                                    for r in ratios])
        sections.append(format_table(
            ["policy"] + [f"{r:.1f}x cap" for r in ratios], rows,
            title=f"SERVE [{results['workload']}]: {label} vs offered load",
        ))
    sections.append(
        "\nShape check: past 1x capacity the no-admission tail keeps "
        "growing with run length while the token bucket's p99 stays "
        "bounded (it sheds load instead) and drop-tail bounds the "
        "queue depth."
    )
    return "\n\n".join(sections)
