"""``repro.bench`` "cluster" experiment — fleet sharding, verified.

Two claims ride on the cluster layer, and this cell measures both:

- **Determinism**: the same fleet scenario run in one process and
  across worker processes must produce byte-identical
  :meth:`~repro.cluster.FleetReport.to_json` output.  The experiment
  *asserts* this before reporting any number — a speedup of a
  different simulation is not a speedup.
- **Scale-out**: with one engine per node in its own process, wall
  time should approach ``seq / workers`` on a machine with that many
  cores.  ``scripts/bench.py`` tracks the ratio as ``cluster_speedup``
  and guards a >=2x floor at 4 workers (on hosts with >= 4 cores; a
  1-core container cannot demonstrate parallel speedup and records
  the ratio unguarded).

The scenario is deliberately compute-heavy per shard (wide blocks,
long kernels) so the measurement exercises the sharding, not the
coordinator's pipe chatter.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from repro.bench.reporting import format_table
from repro.cluster import ConsistentHashRouter, NodeSpec, Topology, run_cluster
from repro.faults import FaultPlan, FaultSpec
from repro.gpu.phases import Phase
from repro.serve import PoissonArrivals, TenantSpec
from repro.serve.slo import SloClass
from repro.tasks import TaskSpec

#: fleet size of the benchmark scenario (and the speedup worker count).
FLEET_NODES = 4
#: requests per tenant.
REQUESTS = 480
#: one-way link latency; doubles as the barrier epoch, so a longer
#: link means fewer coordinator round-trips per virtual second —
#: the measurement wants per-epoch shard compute, not pipe chatter.
LINK_NS = 200_000.0
#: wire-loss probability of the degraded-fleet scenario.
DEGRADED_DROP_RATE = 0.01


def _bench_kernel(task, block_id, warp_id):
    # module-level so task specs pickle under the spawn start method;
    # several phases per warp so shard compute dominates each epoch
    for _ in range(4):
        yield Phase(inst=20_000.0, mem_bytes=1_024)


def fleet_tenants() -> list:
    """Two seeded open-loop tenants with kernel variety (so consistent
    hashing spreads them over the fleet)."""
    def tasks(prefix: str, seed: int):
        return [
            TaskSpec(f"{prefix}{i % 8}", 128, 4, _bench_kernel)
            for i in range(REQUESTS)
        ]
    return [
        TenantSpec("latency", tasks("lat", 1),
                   PoissonArrivals(150_000.0, seed=11),
                   slo=SloClass(deadline_ns=4_000_000.0)),
        TenantSpec("batch", tasks("bat", 2),
                   PoissonArrivals(100_000.0, seed=23),
                   slo=SloClass()),
    ]


def fleet_topology(nodes: int = FLEET_NODES) -> Topology:
    return Topology(nodes=[NodeSpec(f"node{i}") for i in range(nodes)],
                    link_ns=LINK_NS)


def run_fleet(workers: int, nodes: int = FLEET_NODES) -> str:
    """One fleet run; returns the canonical report JSON."""
    topology = fleet_topology(nodes)
    report = run_cluster(
        fleet_tenants(), topology,
        router=ConsistentHashRouter(topology, key="request"),
        workers=workers, label="bench-cluster",
    )
    return report.to_json()


def degraded_plan() -> FaultPlan:
    """The degraded-fabric scenario: every message on every link is
    lost with probability :data:`DEGRADED_DROP_RATE` (a rate-based
    ``fabric.link.drop`` — hash-derived per message id, so the loss
    pattern is seed-stable and worker-count-free)."""
    return FaultPlan(specs=[
        FaultSpec(kind="fabric.link.drop",
                  meta={"rate": DEGRADED_DROP_RATE}),
    ], seed=1)


def measure_degraded() -> Dict[str, float]:
    """The fleet scenario over a 1%-lossy fabric.

    ``fleet_degraded_throughput`` is *virtual-time* throughput
    (completions per simulated second), so it is deterministic — it
    measures how much fleet goodput the reliability layer preserves
    under wire loss, not host speed.  Conservation is asserted before
    any number is returned: a degraded fleet that loses a request has
    no throughput worth reporting.
    """
    topology = fleet_topology()
    start = time.perf_counter()
    rep = run_cluster(
        fleet_tenants(), topology,
        router=ConsistentHashRouter(topology, key="request"),
        workers=0, label="bench-cluster-degraded",
        fabric_plan=degraded_plan(),
    )
    wall = time.perf_counter() - start
    frontier = rep.frontier
    answered = (frontier["completed"] + frontier["failed"]
                + frontier["dropped"])
    if frontier["offered"] != answered:
        raise RuntimeError(
            f"degraded fleet lost requests: {frontier}")
    return {
        "fleet_degraded_throughput": round(rep.throughput_per_s, 3),
        "degraded_wall_s": round(wall, 4),
        "retransmits": rep.fabric_retransmits,
        "wire_dropped": rep.fabric_wire_dropped,
    }


def measure_speedup(workers: int = FLEET_NODES) -> Dict[str, float]:
    """Time the scenario sequentially and sharded; verify identity.

    Returns ``{seq_wall_s, par_wall_s, cluster_speedup, workers}``.
    Raises if the two runs' report bytes differ — the determinism
    contract outranks the perf number.
    """
    start = time.perf_counter()
    seq_json = run_fleet(workers=0)
    seq_wall = time.perf_counter() - start
    start = time.perf_counter()
    par_json = run_fleet(workers=workers)
    par_wall = time.perf_counter() - start
    if seq_json != par_json:
        raise RuntimeError(
            "cluster byte-identity broken: 1-process and "
            f"{workers}-worker runs disagree"
        )
    return {
        "seq_wall_s": round(seq_wall, 4),
        "par_wall_s": round(par_wall, 4),
        "cluster_speedup": round(seq_wall / par_wall, 2),
        "workers": workers,
    }


def run(workers: Optional[int] = None) -> Dict:
    """The bench-CLI cell: identity check + speedup measurement."""
    if workers is None:
        workers = min(FLEET_NODES, max(1, os.cpu_count() or 1))
    measured = measure_speedup(workers)
    import json
    digest = json.loads(run_fleet(workers=0))
    return {
        "measured": measured,
        "degraded": measure_degraded(),
        "totals": digest["totals"],
        "routing": digest["routing"],
        "epochs": digest["sync"]["epochs"],
        "cores": os.cpu_count() or 1,
    }


def report(results: Dict) -> str:
    """Human-readable summary of one cluster cell."""
    m = results["measured"]
    totals = results["totals"]
    rows = [
        ["sequential (workers=0)", f"{m['seq_wall_s']:.2f}", ""],
        [f"sharded (workers={m['workers']})", f"{m['par_wall_s']:.2f}",
         f"{m['cluster_speedup']:.2f}x"],
    ]
    table = format_table(["configuration", "wall s", "speedup"], rows)
    deg = results.get("degraded")
    degraded_line = ""
    if deg:
        degraded_line = (
            f"\nDegraded fabric ({DEGRADED_DROP_RATE:.0%} wire loss): "
            f"{deg['fleet_degraded_throughput']:,.0f} completions/vs, "
            f"{deg['wire_dropped']} drops recovered by "
            f"{deg['retransmits']} retransmits"
        )
    return (
        "Cluster fleet: "
        f"{FLEET_NODES} nodes, {totals['offered']} requests offered, "
        f"{totals['completed']} completed over {results['epochs']} "
        f"epochs (byte-identity verified, {results['cores']} cores)\n"
        f"{table}{degraded_line}"
    )
