"""Fig. 5 — Overall performance comparison.

Paper setup: every benchmark runs 32K tasks (SLUD 273K), 128 threads
per task; execution time includes data copies and compute.  Bars show
speedup over sequential CPU for PThreads (20 cores), CUDA-HyperQ,
GeMTC, and Pagoda.

Headline numbers to reproduce (shape, not absolutes): Pagoda achieves
geometric-mean speedups of **5.70x over PThreads**, **1.51x over
CUDA-HyperQ**, and **1.69x over GeMTC**.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bench.harness import (
    default_num_tasks,
    geomean_speedup,
    make_tasks,
    run_tasks,
    speedups_vs,
)
from repro.bench.reporting import format_table, paper_vs_measured

WORKLOADS = ["mb", "fb", "bf", "conv", "dct", "mm", "slud", "3des", "mpe"]
RUNTIMES = ["pthreads", "hyperq", "gemtc", "pagoda"]
THREADS_PER_TASK = 128

PAPER_GEOMEANS = {"pthreads": 5.70, "hyperq": 1.51, "gemtc": 1.69}


def run(num_tasks: Optional[int] = None, seed: int = 0,
        lane: str = "default") -> Dict:
    """Execute the Fig. 5 grid; returns per-workload speedup maps.

    ``lane`` selects the engine lane for every runtime in the grid
    (results are bit-identical across lanes; only wall time differs).
    """
    per_workload: Dict[str, Dict[str, float]] = {}
    raw: Dict[str, Dict] = {}
    for workload in WORKLOADS:
        n = num_tasks if num_tasks is not None else default_num_tasks(workload)
        tasks = make_tasks(workload, n, THREADS_PER_TASK, seed)
        stats = {"sequential": run_tasks(tasks, "sequential", lane=lane)}
        for runtime in RUNTIMES:
            if workload == "slud" and runtime == "gemtc":
                continue  # GeMTC needs a static task count (§6.2)
            stats[runtime] = run_tasks(tasks, runtime, lane=lane)
        per_workload[workload] = speedups_vs(stats, "sequential")
        raw[workload] = stats
    geomeans = {}
    for runtime in RUNTIMES:
        contributing = {
            w: v for w, v in per_workload.items() if runtime in v
        }
        geomeans[runtime] = (
            geomean_speedup(contributing, "pagoda")
            / geomean_speedup(contributing, runtime)
        )
    return {"per_workload": per_workload, "geomeans": geomeans, "raw": raw}


def report(results: Dict) -> str:
    """Fig. 5 text rendering plus paper-vs-measured geomeans."""
    rows = []
    for workload, speeds in results["per_workload"].items():
        rows.append([workload] + [
            round(speeds.get(rt, float("nan")), 2) for rt in RUNTIMES
        ])
    bars = format_table(
        ["benchmark"] + RUNTIMES, rows,
        title="FIG5: speedup over sequential CPU (copies + compute)",
    )
    comparison = paper_vs_measured(
        "\nFIG5 headline: Pagoda geomean speedup over each scheme",
        [
            {"vs": rt, "paper": PAPER_GEOMEANS[rt],
             "measured": round(results["geomeans"][rt], 2)}
            for rt in PAPER_GEOMEANS
        ],
        keys=["vs"],
    )
    return bars + "\n" + comparison
