"""``repro.bench`` "lanes" experiment — the fast-lane differential.

Not a figure from the paper: this cell is the runtime half of the
fast-lane equivalence argument (docs/INTERNALS.md §10).  It runs the
same workloads on ``Engine(lane="fast")`` and ``Engine(lane="default")``
— plus the frozen seed core in :mod:`repro.sim.reference` for the
engine-level soup — and *asserts* byte-identity of every comparable
artifact before reporting throughput:

- an engine "soup" exercising every yield-command type, traced on the
  default lane, the fast lane, and the reference engine;
- end-to-end golden cells (workload, runtime, seed) fingerprinted on
  both lanes;
- seeded hostile mixes, with and without an active
  :class:`repro.faults.FaultPlan`;
- one SLO-serving trace byte-compared via ``report.to_json()``;
- a same-timestamp-heavy microbenchmark timed on both lanes (the
  number ``scripts/bench.py`` tracks as ``engine_lane_speedup``).

The full corpus (more seeds, obs snapshots, hypothesis cases) lives in
``tests/differential/``; this cell is the operational smoke that runs
wherever the bench CLI runs.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Optional

from repro.bench.harness import make_tasks, run_tasks
from repro.core import PagodaConfig, run_pagoda
from repro.faults import FaultPlan
from repro.gpu.phases import Phase
from repro.sim import Delay, Engine, Event
from repro.sim.reference import ReferenceEngine
from repro.tasks import TaskSpec

#: (workload, runtime, seed) end-to-end cells compared across lanes.
GOLDEN_CELLS = (
    ("mpe", "pagoda", 5),
    ("mb", "hyperq", 3),
    ("conv", "gemtc", 2),
    ("mm", "pagoda", 13),
)

#: seeds for the hostile-mix sweep (the CI job runs 25+; this cell
#: keeps the bench run quick).
CHAOS_SEEDS = range(6)


def _fingerprint(stats) -> tuple:
    return (
        stats.makespan,
        stats.copy_time,
        tuple((r.spawn_time, r.sched_time, r.start_time, r.end_time)
              for r in sorted(stats.results, key=lambda r: r.name)),
    )


def _engine_soup(engine_cls) -> tuple:
    """Every engine command type in one pot; returns (trace, end, count)."""
    rng = random.Random(20170204)
    plan = [
        [round(rng.uniform(0.1, 5.0), 3) for _ in range(rng.randrange(1, 6))]
        for _ in range(12)
    ]
    eng = engine_cls()
    trace = []
    gate = Event()

    def sleeper(i, delays):
        for j, d in enumerate(delays):
            if j % 3 == 2:
                yield Delay(d)
            elif j % 3 == 1:
                yield max(1, int(round(d)))
            else:
                yield d
            trace.append((eng.now, "tick", i, j))
        return i * 10

    def joiner(i, target):
        value = yield target
        trace.append((eng.now, "joined", i, value))
        woke = yield gate
        trace.append((eng.now, "gated", i, woke))

    def firer():
        yield 7.5
        trace.append((eng.now, "fire"))
        gate.fire("open")

    def timed():
        value = yield eng.timeout(2.5, "t")
        trace.append((eng.now, "timeout", value))

    sleepers = [eng.spawn(sleeper(i, d), name=f"s{i}")
                for i, d in enumerate(plan)]
    for i, proc in enumerate(sleepers[:4]):
        eng.spawn(joiner(i, proc), name=f"j{i}")
    eng.spawn(firer(), name="firer")
    eng.spawn(timed(), name="timed")
    end = eng.run()
    return tuple(trace), end, eng.event_count


def _chaos_tasks(seed: int, count: int = 16):
    """A seeded hostile mix (plain / synchronizing / shared-memory)."""
    from repro.gpu.phases import BLOCK_SYNC

    def const_kernel(inst):
        def kernel(task, block_id, warp_id):
            yield Phase(inst=float(inst))
        return kernel

    def sync_kernel(task, block_id, warp_id):
        for _ in range(2):
            yield Phase(inst=400.0 * (warp_id + 1))
            yield BLOCK_SYNC
        yield Phase(inst=100.0)

    rng = random.Random(seed * 7919 + 11)
    tasks = []
    for i in range(count):
        kind = i % 3
        if kind == 0:
            tasks.append(TaskSpec(
                f"plain{i}", 32 * rng.randrange(1, 7), 1,
                const_kernel(rng.randrange(500, 6000))))
        elif kind == 1:
            tasks.append(TaskSpec(f"sync{i}", 96, 2, sync_kernel,
                                  needs_sync=True))
        else:
            tasks.append(TaskSpec(
                f"smem{i}", 64, 1, const_kernel(rng.randrange(500, 4000)),
                shared_mem_bytes=rng.choice([512, 2048, 8192])))
    return tasks


def _chaos_run(seed: int, lane: str, faulty: bool) -> tuple:
    plan = None
    watchdog = None
    if faulty:
        plan = FaultPlan.generate(seed=seed, n_faults=4,
                                  horizon_ns=300_000.0, columns=48)
        watchdog = 2_000_000.0 if plan.needs_watchdog() else None
    stats = run_pagoda(_chaos_tasks(seed), config=PagodaConfig(
        copy_inputs=False, copy_outputs=False, lane=lane,
        fault_plan=plan, watchdog_deadline_ns=watchdog))
    extra = ()
    if faulty:
        extra = (stats.meta.get("faults_injected"),
                 stats.meta.get("tasks_failed"),
                 tuple(sorted(stats.meta.get("task_errors", {}).items())))
    return _fingerprint(stats) + extra


def _serve_json(lane: str) -> str:
    from repro.serve import PoissonArrivals, ServeConfig, SloClass, TenantSpec
    from repro.serve import serve as serve_run

    def kernel(task, block_id, warp_id):
        yield Phase(inst=1500, mem_bytes=128)

    tasks = [TaskSpec(f"t{i}", 128, 1, kernel) for i in range(60)]
    tenants = [TenantSpec("svc", tasks, PoissonArrivals(150_000.0, seed=11),
                          slo=SloClass("svc", deadline_ns=2.0e5))]
    report = serve_run(tenants, ServeConfig(pagoda=PagodaConfig(lane=lane)))
    return report.to_json()


def _fan_events_per_s(lane: str, n_tickers: int = 64,
                      events: int = 200_000) -> float:
    """Events/s on a wide fan of same-period tickers (the
    same-timestamp-heavy shape the fast lane targets)."""
    eng = Engine(lane=lane)
    per = events // n_tickers

    def ticker():
        for _ in range(per):
            yield 1.0

    for i in range(n_tickers):
        eng.spawn(ticker(), name=f"t{i}")
    start = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - start
    return eng.event_count / wall


def run(num_tasks: Optional[int] = None) -> Dict:
    """Run the differential corpus; raises on any lane divergence."""
    n = num_tasks if num_tasks is not None else 24

    soup_default = _engine_soup(lambda: Engine(lane="default"))
    soup_fast = _engine_soup(lambda: Engine(lane="fast"))
    soup_ref = _engine_soup(ReferenceEngine)
    if not (soup_default == soup_fast == soup_ref):
        raise AssertionError("engine soup diverged across lanes")

    golden = 0
    for workload, runtime, seed in GOLDEN_CELLS:
        tasks = make_tasks(workload, n, 128, seed=seed)
        d = _fingerprint(run_tasks(tasks, runtime))
        f = _fingerprint(run_tasks(tasks, runtime, lane="fast"))
        if d != f:
            raise AssertionError(
                f"golden cell {(workload, runtime, seed)} diverged")
        golden += 1

    chaos = 0
    for seed in CHAOS_SEEDS:
        for faulty in (False, True):
            d = _chaos_run(seed, "default", faulty)
            f = _chaos_run(seed, "fast", faulty)
            if d != f:
                raise AssertionError(
                    f"chaos seed {seed} (faulty={faulty}) diverged")
            chaos += 1

    if _serve_json("default") != _serve_json("fast"):
        raise AssertionError("serve report diverged across lanes")

    default_eps = _fan_events_per_s("default")
    fast_eps = _fan_events_per_s("fast")
    return {
        "soup_events": soup_default[2],
        "golden_cells": golden,
        "chaos_runs": chaos,
        "serve_identical": True,
        "events_per_s_default": default_eps,
        "events_per_s_fast": fast_eps,
        "speedup": fast_eps / default_eps,
    }


def report(results: Dict) -> str:
    lines = [
        "LANES differential: fast lane vs default lane vs reference core",
        f"  engine soup          identical across 3 cores "
        f"({results['soup_events']} events)",
        f"  golden cells         {results['golden_cells']} byte-identical",
        f"  chaos runs           {results['chaos_runs']} byte-identical "
        "(incl. FaultPlan arms)",
        "  serve report         byte-identical",
        "",
        f"  wide-fan throughput  default {results['events_per_s_default']:,.0f}"
        f" ev/s  fast {results['events_per_s_fast']:,.0f} ev/s"
        f"  ({results['speedup']:.2f}x)",
    ]
    return "\n".join(lines)
