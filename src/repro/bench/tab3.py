"""Table 3 — Benchmark characteristics under CUDA-HyperQ.

Measures the "% time spent in data copy / computation" split for every
benchmark under HyperQ (profiler-style accounting, see
:func:`repro.bench.harness.copy_fraction`) and compares with the
paper's Table 3 columns.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bench.harness import copy_fraction, default_num_tasks, \
    make_tasks, run_tasks
from repro.bench.reporting import paper_vs_measured

THREADS_PER_TASK = 128

#: paper's Table 3 "% time spent in data copy (CUDA-HyperQ)"
PAPER_COPY_PCT = {
    "mb": 24, "fb": 35, "bf": 13, "conv": 30, "dct": 81, "mm": 51,
    "slud": 3, "3des": 74,
}


def run(num_tasks: Optional[int] = None, seed: int = 0) -> Dict:
    """Execute the experiment; returns its structured results."""
    measured: Dict[str, float] = {}
    for workload in PAPER_COPY_PCT:
        n = num_tasks if num_tasks is not None else default_num_tasks(workload)
        stats = run_tasks(make_tasks(workload, n, THREADS_PER_TASK, seed),
                          "hyperq")
        measured[workload] = 100.0 * copy_fraction(stats)
    return {"copy_pct": measured}


def report(results: Dict) -> str:
    """Render the experiment's paper-vs-measured text report."""
    rows = [
        {"benchmark": w, "paper": PAPER_COPY_PCT[w],
         "measured": round(pct, 1)}
        for w, pct in results["copy_pct"].items()
    ]
    return paper_vs_measured(
        "TAB3: % time in data copy under CUDA-HyperQ",
        rows, keys=["benchmark"],
    )
