"""Latency under open-loop load — the §1 motivation, quantified.

The paper motivates Pagoda with "latency-driven, real-time workloads
... online sensors can generate many tasks in quick succession and
require immediate processing".  Fig. 10 shows closed-world average
latency; this experiment drives each runtime with an *open-loop*
arrival process (one task every ``gap`` ns, like a sensor feed) and
reports the tail latency at increasing offered load.

A runtime "sustains" a rate when its p99 latency stays bounded; past
saturation the queue grows and the tail explodes.  Pagoda's cheap
spawn path and warp-granularity scheduling sustain substantially
higher rates than per-kernel launching (HyperQ) or batch collection
(GeMTC-style batching) — this is the online complement of Fig. 10.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines import HyperQConfig, run_hyperq
from repro.bench.harness import make_tasks
from repro.bench.reporting import format_table
from repro.core import PagodaConfig, run_pagoda

#: offered loads as inter-arrival gaps (ns); ~67K..500K tasks/s
DEFAULT_GAPS_NS = [15_000.0, 6_000.0, 3_000.0, 1_500.0]
#: a task is "on time" if served within this budget (soft deadline)
DEADLINE_NS = 100_000.0


def measure(runtime: str, tasks, gap_ns: float) -> Dict[str, float]:
    """Run one measurement cell and return its metrics."""
    if runtime == "pagoda":
        stats = run_pagoda(tasks, config=PagodaConfig(
            spawn_gap_ns=gap_ns, open_loop=True))
    elif runtime == "pagoda-batching":
        stats = run_pagoda(tasks, config=PagodaConfig(
            spawn_gap_ns=gap_ns, open_loop=True,
            batch_size=max(32, len(tasks) // 8)))
    elif runtime == "hyperq":
        stats = run_hyperq(tasks, config=HyperQConfig(
            spawn_gap_ns=gap_ns, open_loop=True))
    else:
        raise KeyError(runtime)
    on_time = sum(1 for r in stats.results if r.latency <= DEADLINE_NS)
    return {
        "p50_us": stats.latency_percentile(50) / 1e3,
        "p99_us": stats.latency_percentile(99) / 1e3,
        "deadline_met_pct": 100.0 * on_time / len(stats.results),
    }


def run(num_tasks: int = 384, workload: str = "3des", seed: int = 0,
        gaps_ns: Optional[List[float]] = None) -> Dict:
    """Tail latency for each runtime across offered loads."""
    gaps_ns = gaps_ns or DEFAULT_GAPS_NS
    tasks = make_tasks(workload, num_tasks, 128, seed)
    runtimes = ["pagoda", "pagoda-batching", "hyperq"]
    table: Dict[str, Dict[float, Dict[str, float]]] = {
        rt: {} for rt in runtimes
    }
    for gap in gaps_ns:
        for rt in runtimes:
            table[rt][gap] = measure(rt, tasks, gap)
    return {"workload": workload, "gaps_ns": gaps_ns, "results": table}


def report(results: Dict) -> str:
    """Render the experiment's paper-vs-measured text report."""
    gaps = results["gaps_ns"]
    sections = []
    for metric, label in (("p99_us", "p99 latency (us)"),
                          ("deadline_met_pct",
                           f"% served within {DEADLINE_NS/1e3:.0f} us")):
        rows = []
        for rt, per_gap in results["results"].items():
            rows.append([rt] + [round(per_gap[g][metric], 1) for g in gaps])
        sections.append(format_table(
            ["runtime"] + [f"{1e6/g:.0f}k/s" for g in gaps], rows,
            title=f"LOAD [{results['workload']}]: {label} vs offered rate",
        ))
    sections.append(
        "\nShape check (the §1 motivation): Pagoda's tail stays bounded "
        "at rates where per-kernel launching and batching have already "
        "saturated."
    )
    return "\n\n".join(sections)
