"""``repro.bench`` "scenarios" experiment — the incident catalog, run.

Runs every registered :mod:`repro.scenarios` scenario at its default
seed and reports one pass/fail line per scenario (the same lines the
CI ``scenario-matrix`` job puts in its summary).  The cell also
re-asserts the catalog's core promise before reporting: each
scenario's result digest is byte-identical across engine lanes — a
verdict that depends on the execution strategy is not a verdict.

``python -m repro.bench scenarios --check`` exits non-zero if any
scenario fails, which is how CI and ``scripts/bench.py`` consume it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios import names, run_scenario

#: scenarios whose lane-identity is re-asserted by the bench cell (one
#: per layer keeps the cell fast; tests/scenarios covers the rest).
IDENTITY_PROBES = ("serve.trace_replay", "cluster.lossy_fabric")


def run() -> Dict:
    """Run the whole catalog; returns per-scenario summaries."""
    rows: List[Dict] = []
    for name in names():
        result = run_scenario(name)
        rows.append({
            "name": name,
            "version": result.scenario.version,
            "layer": result.scenario.layer,
            "seed": result.params.seed,
            "passed": result.passed,
            "detectors_passed":
                sum(1 for v in result.verdicts if v.passed),
            "detectors_total": len(result.verdicts),
            "line": result.summary_line(),
            "failures": [v.to_dict() for v in result.verdicts
                         if not v.passed],
        })
    for name in IDENTITY_PROBES:
        fast = run_scenario(name, lane="fast").to_json()
        default = run_scenario(name, lane="default").to_json()
        if fast != default:
            raise RuntimeError(
                f"scenario {name!r} result bytes differ across lanes"
            )
    return {
        "scenarios": rows,
        "passed": sum(1 for r in rows if r["passed"]),
        "total": len(rows),
        "all_passed": all(r["passed"] for r in rows),
        "identity_probes": list(IDENTITY_PROBES),
    }


def report(results: Dict) -> str:
    """One line per scenario, plus any failing detector's evidence."""
    lines = [
        f"SCENARIOS: incident catalog, {results['passed']}/"
        f"{results['total']} passed (lane identity verified on "
        f"{', '.join(results['identity_probes'])})"
    ]
    for row in results["scenarios"]:
        lines.append("  " + row["line"])
        for failure in row["failures"]:
            lines.append(f"      FAIL {failure['detector']}: "
                         f"{failure['detail']}")
    return "\n".join(lines)


def run_check() -> int:
    """``--check`` mode: print the report, exit 1 on any failure."""
    results = run()
    print(report(results))
    return 0 if results["all_passed"] else 1
