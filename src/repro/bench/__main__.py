"""Command-line experiment runner.

Run any paper artefact directly::

    python -m repro.bench fig5
    python -m repro.bench tab3 --tasks 1024
    python -m repro.bench all --tasks 256

Reports print to stdout in the same paper-vs-measured format the
benchmark suite records under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import (
    ablations,
    config_sweeps,
    fig5,
    latency_under_load,
    priorities,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    tab3,
    tab5,
)

EXPERIMENTS = {
    "fig5": fig5, "fig6": fig6, "fig7": fig7, "fig8": fig8,
    "fig9": fig9, "fig10": fig10, "fig11": fig11,
    "tab3": tab3, "tab5": tab5, "ablations": ablations,
    "load": latency_under_load,
    "priorities": priorities,
    "sweeps": config_sweeps,
}

#: experiments whose run() takes a num_tasks argument
TASK_SIZED = {"fig5", "fig7", "fig9", "fig11", "tab3", "tab5",
              "ablations", "load", "priorities", "sweeps"}


def run_one(name: str, num_tasks: int | None) -> str:
    """Run one named experiment and return its report text."""
    module = EXPERIMENTS[name]
    start = time.time()
    if name in TASK_SIZED and num_tasks is not None:
        results = module.run(num_tasks=num_tasks)
    else:
        results = module.run()
    report = module.report(results)
    wall = time.time() - start
    return f"{report}\n[{name}: {wall:.1f}s wall]"


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce one of the paper's tables/figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artefact to reproduce",
    )
    parser.add_argument(
        "--tasks", type=int, default=None,
        help="override the task count (where applicable)",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    for name in names:
        print(run_one(name, args.tasks))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
