"""Command-line experiment runner.

Run any paper artefact directly::

    python -m repro.bench fig5
    python -m repro.bench tab3 --tasks 1024
    python -m repro.bench all --tasks 256
    python -m repro.bench all --parallel 8

Reports print to stdout in the same paper-vs-measured format the
benchmark suite records under ``benchmarks/results/``.  With
``--parallel N`` the experiments fan out across N worker processes
(each simulation is single-threaded and deterministic, so the result
tables are identical to a serial run; only the wall-time lines
differ).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.parallel import run_parallel
from repro.bench.runner import EXPERIMENTS, TASK_SIZED, run_one  # noqa: F401  (TASK_SIZED re-exported for compatibility)


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce one of the paper's tables/figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artefact to reproduce",
    )
    parser.add_argument(
        "--tasks", type=int, default=None,
        help="override the task count (where applicable)",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="fan independent experiments across N worker processes "
             "(default: serial)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="scenarios only: exit non-zero if any catalog scenario "
             "fails its detectors",
    )
    args = parser.parse_args(argv)
    if args.check:
        if args.experiment != "scenarios":
            parser.error("--check is only valid with 'scenarios'")
        from repro.bench.scenarios import run_check
        return run_check()
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    if args.parallel is not None:
        if args.parallel < 1:
            parser.error("--parallel must be >= 1")
        for _name, report in run_parallel(names, args.tasks, args.parallel):
            print(report)
            print()
    else:
        for name in names:
            print(run_one(name, args.tasks))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
