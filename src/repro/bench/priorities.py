"""Priority scheduling + deferred placement — extension experiment.

Two extensions beyond the paper compose here:

- **deferred scheduling**: Algorithm 1's scheduler warp blocks inside
  pSched when no executor warps are free, which also stalls the
  promotion pipeline for its column.  Deferring infeasible tasks keeps
  the scheduler scanning.
- **task priorities**: with a visible backlog of schedulable rows, the
  scheduler picks high-priority tasks first.

Scenario: a flood of bulk analytics tasks plus a trickle of urgent
sensor tasks (the §1 latency-driven workload).  We compare urgent-task
tail latency under (a) the paper's FIFO blocking scheduler, (b)
deferred scheduling alone, (c) deferred scheduling + priorities.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.reporting import format_table
from repro.core import PagodaConfig, run_pagoda
from repro.gpu.phases import Phase
from repro.tasks import TaskSpec

URGENT_EVERY = 16
URGENT_INST = 2_000.0
BULK_INST = 100_000.0


def _const_kernel(inst):
    def kernel(task, block_id, warp_id):
        yield Phase(inst=float(inst))
    return kernel


def build_mix(num_tasks: int, prioritized: bool) -> List[TaskSpec]:
    """Interleaved urgent/bulk task mix for the experiment."""
    tasks = []
    for i in range(num_tasks):
        urgent = i % URGENT_EVERY == 0
        tasks.append(TaskSpec(
            name=f"{'urgent' if urgent else 'bulk'}{i}",
            threads_per_block=128,
            num_blocks=1,
            kernel=_const_kernel(URGENT_INST if urgent else BULK_INST),
            priority=10 if (urgent and prioritized) else 0,
        ))
    return tasks


def measure(num_tasks: int, deferred: bool, prioritized: bool) -> Dict:
    """Run one measurement cell and return its metrics."""
    tasks = build_mix(num_tasks, prioritized)
    stats = run_pagoda(tasks, config=PagodaConfig(
        copy_inputs=False, copy_outputs=False,
        deferred_scheduling=deferred,
    ))
    urgent = sorted(r.latency for r in stats.results
                    if r.name.startswith("urgent"))
    return {
        "urgent_p50_us": urgent[len(urgent) // 2] / 1e3,
        "urgent_p99_us": urgent[int(0.99 * (len(urgent) - 1))] / 1e3,
        "makespan_ms": stats.makespan / 1e6,
    }


def run(num_tasks: int = 1200, seed: int = 0) -> Dict:
    """Execute the experiment; returns its structured results."""
    return {
        "num_tasks": num_tasks,
        "fifo-blocking": measure(num_tasks, deferred=False,
                                 prioritized=False),
        "deferred": measure(num_tasks, deferred=True, prioritized=False),
        "deferred+priority": measure(num_tasks, deferred=True,
                                     prioritized=True),
    }


def report(results: Dict) -> str:
    """Render the experiment's paper-vs-measured text report."""
    rows = []
    for mode in ("fifo-blocking", "deferred", "deferred+priority"):
        r = results[mode]
        rows.append([mode, round(r["urgent_p50_us"], 1),
                     round(r["urgent_p99_us"], 1),
                     round(r["makespan_ms"], 2)])
    table = format_table(
        ["scheduler", "urgent_p50_us", "urgent_p99_us", "makespan_ms"],
        rows,
        title=f"PRIORITIES: urgent-task latency in a bulk flood "
              f"({results['num_tasks']} tasks, 1 urgent per "
              f"{URGENT_EVERY})",
    )
    return table + (
        "\n\nExtension shape: priorities + deferred placement cut the "
        "urgent tail by several x without hurting total makespan."
    )
