"""Fig. 11 — Continuous spawning & pipelined processing ablation.

Paper setup: GeMTC vs **Pagoda-Batching** (Pagoda with GeMTC-style
batch spawning — concurrent scheduling but no continuous spawns) vs
full Pagoda; 32K tasks, 128 threads per task; bars are speedup over
GeMTC.

Shapes to reproduce: Pagoda > Pagoda-Batching > GeMTC everywhere;
the Batching-vs-GeMTC gap isolates concurrent scheduling, the
Pagoda-vs-Batching gap isolates continuous pipelined spawning.  CONV
benefits least from continuous spawning (regular, extremely short
tasks); MPE benefits most (unbalanced mix).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bench.harness import default_num_tasks, make_tasks, run_tasks
from repro.bench.reporting import format_table

WORKLOADS = ["mb", "conv", "fb", "bf", "3des", "dct", "mm", "mpe"]
RUNTIMES = ["gemtc", "pagoda-batching", "pagoda"]
THREADS_PER_TASK = 128
#: GeMTC's batch size (== its worker count for 128-thread workers);
#: at scaled-down task counts use n/8 so the run still has several
#: batch barriers, as the full-scale experiment does (32K/384 = 85)
BATCH = 384


def batch_size_for(n: int) -> int:
    """GeMTC-equivalent batch size at a given task count."""
    return min(BATCH, max(32, n // 8))


def run(num_tasks: Optional[int] = None, seed: int = 0) -> Dict:
    """Execute the experiment; returns its structured results."""
    speedups: Dict[str, Dict[str, float]] = {}
    for workload in WORKLOADS:
        n = num_tasks if num_tasks is not None else default_num_tasks(workload)
        tasks = make_tasks(workload, n, THREADS_PER_TASK, seed)
        batch = batch_size_for(n)
        gemtc = run_tasks(tasks, "gemtc", batch_size=batch)
        batching = run_tasks(tasks, "pagoda-batching", batch_size=batch)
        pagoda = run_tasks(tasks, "pagoda")
        speedups[workload] = {
            "gemtc": 1.0,
            "pagoda-batching": gemtc.makespan / batching.makespan,
            "pagoda": gemtc.makespan / pagoda.makespan,
        }
    return {"speedups": speedups}


def report(results: Dict) -> str:
    """Render the experiment's paper-vs-measured text report."""
    rows = [
        [w] + [round(v[rt], 2) for rt in RUNTIMES]
        for w, v in results["speedups"].items()
    ]
    table = format_table(
        ["benchmark"] + RUNTIMES, rows,
        title="FIG11: speedup over GeMTC (batching ablation)",
    )
    ordered = all(
        v["pagoda"] >= v["pagoda-batching"] >= 1.0
        for v in results["speedups"].values()
    )
    return table + (
        "\n\nFIG11 shape check (paper: Pagoda > Pagoda-Batching > GeMTC "
        f"in all cases): ordering holds = {ordered}"
    )
