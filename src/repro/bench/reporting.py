"""Plain-text tables for benchmark output (no plotting dependency)."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width table with a rule under the header."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.2f}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def paper_vs_measured(title: str, rows: List[Dict], keys: Sequence[str],
                      paper_key: str = "paper",
                      measured_key: str = "measured") -> str:
    """Render EXPERIMENTS.md-style comparison rows.

    Each row dict carries identifying ``keys`` plus paper/measured
    values; ratio column is measured/paper when both are numeric.
    """
    headers = list(keys) + ["paper", "measured", "measured/paper"]
    table_rows = []
    for row in rows:
        paper = row.get(paper_key)
        measured = row.get(measured_key)
        ratio = ""
        if isinstance(paper, (int, float)) and isinstance(measured, (int, float)) \
                and paper:
            ratio = f"{measured / paper:.2f}"
        table_rows.append(
            [row.get(k, "") for k in keys]
            + [paper if paper is not None else "-",
               measured if measured is not None else "-",
               ratio]
        )
    return format_table(headers, table_rows, title)


def ns_to_ms(ns: float) -> float:
    """Nanoseconds to milliseconds."""
    return ns / 1e6


def ns_to_us(ns: float) -> float:
    """Nanoseconds to microseconds."""
    return ns / 1e3
