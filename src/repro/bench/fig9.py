"""Fig. 9 — Static fusion vs Pagoda vs PThreads vs HyperQ, irregular tasks.

Paper setup: per-task input sizes drawn pseudo-randomly so task compute
varies; the fused kernel uses 256 threads per sub-task (heuristic),
while Pagoda/HyperQ pick thread counts per task from the input size
(32-256); 32K tasks; SLUD cannot be fused.

Shape to reproduce: **Pagoda 1.79x geomean over static fusion** —
fusion pays for the longest straggler and uniform resources, the very
upper bound of batch scheduling (§6.3).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.bench.harness import default_num_tasks, run_tasks, speedups_vs
from repro.bench.reporting import format_table, paper_vs_measured
from repro.sim.trace import geometric_mean
from repro.workloads import REGISTRY

WORKLOADS = ["mb", "conv", "dct", "fb", "bf", "mm", "3des", "mpe"]
RUNTIMES = ["fusion", "pthreads", "hyperq", "pagoda"]
PAPER_GEOMEAN_OVER_FUSION = 1.79
#: dynamic schemes pick 32-256 threads based on the irregular size
DYNAMIC_THREAD_CHOICES = (32, 64, 128, 256)


def make_irregular_tasks(workload: str, n: int, seed: int):
    """Irregular inputs; dynamic thread count follows the task's size
    (the §6.3 methodology for Pagoda/HyperQ)."""
    w = REGISTRY.get(workload)
    rng = np.random.default_rng(seed)
    tasks = w.make_tasks(n, threads_per_task=256, seed=seed, irregular=True)
    import dataclasses
    sized = []
    for t in tasks:
        threads = DYNAMIC_THREAD_CHOICES[
            int(rng.integers(0, len(DYNAMIC_THREAD_CHOICES)))
        ]
        sized.append(dataclasses.replace(t, threads_per_block=threads))
    return sized


def run(num_tasks: Optional[int] = None, seed: int = 0) -> Dict:
    """Execute the experiment; returns its structured results."""
    per_workload: Dict[str, Dict[str, float]] = {}
    for workload in WORKLOADS:
        n = num_tasks if num_tasks is not None else default_num_tasks(workload)
        tasks = make_irregular_tasks(workload, n, seed)
        stats = {"sequential": run_tasks(tasks, "sequential")}
        for runtime in RUNTIMES:
            stats[runtime] = run_tasks(tasks, runtime)
        per_workload[workload] = speedups_vs(stats, "sequential")
    over_fusion = geometric_mean([
        v["pagoda"] / v["fusion"] for v in per_workload.values()
    ])
    return {"per_workload": per_workload, "pagoda_over_fusion": over_fusion}


def report(results: Dict) -> str:
    """Render the experiment's paper-vs-measured text report."""
    rows = [
        [w] + [round(v[rt], 2) for rt in RUNTIMES]
        for w, v in results["per_workload"].items()
    ]
    table = format_table(
        ["benchmark"] + RUNTIMES, rows,
        title="FIG9: speedup over sequential CPU with irregular tasks",
    )
    comparison = paper_vs_measured(
        "\nFIG9 headline: Pagoda geomean over static fusion",
        [{"vs": "static-fusion", "paper": PAPER_GEOMEAN_OVER_FUSION,
          "measured": round(results["pagoda_over_fusion"], 2)}],
        keys=["vs"],
    )
    return table + "\n" + comparison
