"""Experiment registry and single-cell runner.

Shared by the serial CLI (:mod:`repro.bench.__main__`) and the
parallel sweep runner (:mod:`repro.bench.parallel`): both resolve an
experiment name to its module here and format reports identically, so
parallel and serial runs produce the same result tables.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.bench import (
    ablations,
    cluster,
    config_sweeps,
    fig5,
    lanes,
    latency_under_load,
    obs_profile,
    partition,
    priorities,
    scenarios,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    serve_load,
    tab3,
    tab5,
)

EXPERIMENTS = {
    "fig5": fig5, "fig6": fig6, "fig7": fig7, "fig8": fig8,
    "fig9": fig9, "fig10": fig10, "fig11": fig11,
    "tab3": tab3, "tab5": tab5, "ablations": ablations,
    "load": latency_under_load,
    "priorities": priorities,
    "sweeps": config_sweeps,
    "serve_p99_under_load": serve_load,
    "obs": obs_profile,
    "lanes": lanes,
    "cluster": cluster,
    "partition_isolation": partition,
    "scenarios": scenarios,
}

#: experiments whose run() takes a num_tasks argument
TASK_SIZED = {"fig5", "fig7", "fig9", "fig11", "tab3", "tab5",
              "ablations", "load", "priorities", "sweeps",
              "serve_p99_under_load", "obs", "lanes",
              "partition_isolation"}


def run_one(name: str, num_tasks: Optional[int]) -> str:
    """Run one named experiment and return its report text."""
    module = EXPERIMENTS[name]
    start = time.time()
    if name in TASK_SIZED and num_tasks is not None:
        results = module.run(num_tasks=num_tasks)
    else:
        results = module.run()
    report = module.report(results)
    wall = time.time() - start
    return f"{report}\n[{name}: {wall:.1f}s wall]"


def run_cell(job: Tuple[str, Optional[int]]) -> Tuple[str, str]:
    """Pool-friendly wrapper: ``(name, num_tasks) -> (name, report)``."""
    name, num_tasks = job
    return name, run_one(name, num_tasks)
