"""Fig. 10 — Average per-task latency: static fusion vs Pagoda.

Paper setup: 3DES (irregular) and MM (regular) at task counts 128 ->
32K; the fused kernel's tasks all "finish" when the kernel does, so
fused average latency grows with the task count, while **Pagoda's
average latency stays flat** at any count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.harness import full_scale, make_tasks, run_tasks
from repro.bench.reporting import format_table

WORKLOADS = ["3des", "mm"]
THREADS_PER_TASK = 128


def task_counts() -> List[int]:
    """Task-count sweep for this experiment (env-scaled)."""
    if full_scale():
        return [128, 512, 2048, 8192, 32768]
    return [128, 512, 2048]


def run(counts: Optional[List[int]] = None, seed: int = 0) -> Dict:
    """Execute the experiment; returns its structured results."""
    counts = counts or task_counts()
    latency: Dict[str, Dict[str, Dict[int, float]]] = {}
    for workload in WORKLOADS:
        latency[workload] = {"fusion": {}, "pagoda": {}}
        for n in counts:
            tasks = make_tasks(workload, n, THREADS_PER_TASK, seed)
            for runtime in ("fusion", "pagoda"):
                stats = run_tasks(tasks, runtime)
                latency[workload][runtime][n] = stats.mean_latency
    return {"counts": counts, "latency": latency}


def flatness(series: Dict[int, float]) -> float:
    """max/min of the latency-vs-count curve (1.0 == perfectly flat)."""
    values = list(series.values())
    return max(values) / min(values)


def run_and_check(results: Dict) -> Dict[str, Dict[str, float]]:
    """Shape metrics: fused latency growth vs Pagoda flatness."""
    out = {}
    for workload, per_rt in results["latency"].items():
        out[workload] = {
            "fused_growth": flatness(per_rt["fusion"]),
            "pagoda_growth": flatness(per_rt["pagoda"]),
        }
    return out


def report(results: Dict) -> str:
    """Render the experiment's paper-vs-measured text report."""
    counts = results["counts"]
    sections = []
    for workload, per_rt in results["latency"].items():
        rows = [
            [rt] + [round(per_rt[rt][n] / 1e3, 1) for n in counts]
            for rt in ("fusion", "pagoda")
        ]
        sections.append(format_table(
            ["runtime"] + [str(n) for n in counts], rows,
            title=f"FIG10 [{workload}]: average task latency (us)",
        ))
    checks = run_and_check(results)
    lines = ["\nFIG10 shape check (paper: fused latency grows ~linearly "
             "with task count; Pagoda latency stays flat):"]
    for workload, c in checks.items():
        lines.append(
            f"  {workload}: fused max/min = {c['fused_growth']:.1f}x, "
            f"pagoda max/min = {c['pagoda_growth']:.1f}x"
        )
    sections.append("\n".join(lines))
    return "\n\n".join(sections)
