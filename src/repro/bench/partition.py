"""Noisy-neighbor isolation: shared vs partitioned vs elastic.

The scenario SR-IOV-style compute partitioning exists for: a steady
latency-sensitive tenant (the *victim*) shares a device with a bursty
batch tenant (the *aggressor*).  Three configurations run on the same
seed — identical arrival schedules and task lists:

- **shared**: one unpartitioned stack; both tenants contend for the
  same TaskTable, executor warps, issue slots, and DRAM.
- **static**: a DPX plan (2 x 12 SMMs); each tenant owns a partition
  with its own MasterKernel, table, PCIe function, and DRAM slice.
- **elastic**: the same DPX plan plus the epoch-driven rebalancer —
  the victim's idle SMMs migrate to the choked aggressor and its
  oversubscribed register quota borrows idle sibling headroom.

Reported per mode: the victim's p99, the aggressor's p99, device
utilization (issue-slot work served over issue-slot capacity), and the
elastic move count.  The shape the partition manager must deliver:
the victim's p99 improves strictly under static partitioning (bursts
no longer queue ahead of it), at a utilization price (the aggressor
cannot reach the victim's idle SMMs); elastic wins back at least half
of that utilization gap while keeping the victim's tail close to the
static bound.  All numbers are virtual-time and deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.reporting import format_table
from repro.core.runtime import PagodaConfig
from repro.gpu.phases import Phase
from repro.partition import (
    ElasticConfig,
    PartitionedStack,
    PartitionPlan,
)
from repro.partition.serve import serve_partitioned
from repro.serve.arrivals import BurstyArrivals, PoissonArrivals
from repro.serve.server import ServeConfig, TaskServer, TenantSpec
from repro.tasks import TaskSpec

#: instruction-heavy tasks: per-thread lane work in warp-instruction
#: units (== ns at the per-warp issue cap)
VICTIM_INST = 2_000.0
AGGRESSOR_INST = 40_000.0
#: the victim stays narrow (2 warps); the aggressor is wide enough
#: (8 warps) that one burst oversubscribes every issue slot it can see
VICTIM_THREADS = 64
AGGRESSOR_THREADS = 256
#: victim: steady narrow requests; aggressor: saturating bursts
VICTIM_RATE_PER_S = 400_000.0
BURST_SIZE = 48
BURST_GAP_NS = 150.0
IDLE_GAP_NS = 120_000.0
#: elastic policy for the DPX plan; the victim may donate down to 4
#: SMMs, and the aggressor's register quota may oversubscribe 1.5x
ELASTIC = ElasticConfig(epoch_ns=30_000.0, high_util=0.4,
                        low_util=0.15, min_smms=4, quota_step=0.5,
                        moves_per_epoch=1)
OVERSUBSCRIBE = 1.5


def _inst_kernel(task: TaskSpec, block_id: int, warp_id: int):
    """Four compute phases, a final write-back — no input streaming,
    so partition capacity (SMM issue slots) is the binding resource."""
    inst = task.work / 4.0
    for _ in range(3):
        yield Phase(inst=inst)
    yield Phase(inst=inst, mem_bytes=256.0)


def _make_tasks(prefix: str, n: int, inst: float, threads: int,
                regs: int = 32) -> List[TaskSpec]:
    return [
        TaskSpec(f"{prefix}{i}", threads_per_block=threads, num_blocks=1,
                 kernel=_inst_kernel, work=inst, regs_per_thread=regs)
        for i in range(n)
    ]


def _tenants(num_victim: int, num_aggressor: int, seed: int,
             partitioned: bool) -> List[TenantSpec]:
    victim = TenantSpec(
        "victim",
        _make_tasks("v", num_victim, VICTIM_INST, VICTIM_THREADS),
        PoissonArrivals(VICTIM_RATE_PER_S, seed=seed + 1),
        partition="victim" if partitioned else None,
    )
    aggressor = TenantSpec(
        "aggressor",
        _make_tasks("a", num_aggressor, AGGRESSOR_INST,
                    AGGRESSOR_THREADS, regs=64),
        BurstyArrivals(burst_size=BURST_SIZE, gap_in_burst_ns=BURST_GAP_NS,
                       idle_gap_ns=IDLE_GAP_NS, seed=seed + 2),
        partition="aggressor" if partitioned else None,
    )
    return [victim, aggressor]


def _plan(elastic: Optional[ElasticConfig]) -> PartitionPlan:
    return PartitionPlan.from_mode(
        "DPX", oversubscribe=OVERSUBSCRIBE, elastic=elastic,
        names=["victim", "aggressor"],
    )


def _issue_utilization(gpu, makespan_ns: float) -> float:
    """Device-wide issue-slot utilization: warp-instructions actually
    issued over the issue capacity available during the run.  Unlike a
    resident-warp integral this does not reward queueing — warps
    parked behind a saturated scheduler add nothing."""
    served = sum(smm.issue.served_integral() for smm in gpu.smms)
    cap = sum(smm.issue.rate for smm in gpu.smms) * makespan_ns
    return served / cap if cap > 0 else 0.0


def _cell(reports, utilization: float, moves: int) -> Dict[str, float]:
    makespan = max(r.makespan_ns for r in reports)
    stats = {}
    for rep in reports:
        for tenant, st in rep.tenant_stats.items():
            stats[tenant] = st
    return {
        "victim_p99_us": stats["victim"]["hist"].percentile(99) / 1e3,
        "aggressor_p99_us":
            stats["aggressor"]["hist"].percentile(99) / 1e3,
        "completed": float(sum(r.completed for r in reports)),
        "makespan_us": makespan / 1e3,
        "utilization": utilization,
        "moves": float(moves),
    }


def _run_shared(tenants: List[TenantSpec], lane: str) -> Dict[str, float]:
    config = ServeConfig(pagoda=PagodaConfig(lane=lane), label="shared")
    server = TaskServer(tenants, config)
    report = server.run()
    util = _issue_utilization(server.node.sessions[0].gpu,
                              report.makespan_ns)
    return _cell([report], util, moves=0)


def _run_partitioned(tenants: List[TenantSpec], lane: str,
                     elastic: Optional[ElasticConfig],
                     label: str) -> Dict[str, float]:
    plan = _plan(elastic)
    config = ServeConfig(pagoda=PagodaConfig(lane=lane, partition=plan),
                         label=label)
    stack = PartitionedStack(plan, config=PagodaConfig(lane=lane))
    reports = serve_partitioned(tenants, config, stack=stack)
    makespan = max(r.makespan_ns for r in reports.values())
    util = _issue_utilization(stack.gpu, makespan)
    return _cell(list(reports.values()), util, moves=len(stack.moves))


def run(num_tasks: int = 96, seed: int = 0,
        lane: str = "fast") -> Dict:
    """One victim/aggressor pair through all three modes, same seed."""
    num_victim = 2 * num_tasks
    num_aggressor = 2 * num_tasks
    results = {
        "shared": _run_shared(
            _tenants(num_victim, num_aggressor, seed, False), lane),
        "static": _run_partitioned(
            _tenants(num_victim, num_aggressor, seed, True), lane,
            None, "static"),
        "elastic": _run_partitioned(
            _tenants(num_victim, num_aggressor, seed, True), lane,
            ELASTIC, "elastic"),
    }
    shared, static, elastic = (results[m]["utilization"]
                               for m in ("shared", "static", "elastic"))
    gap = shared - static
    recovery = (elastic - static) / gap if gap > 0 else 1.0
    return {
        "num_victim": num_victim,
        "num_aggressor": num_aggressor,
        "lane": lane,
        "results": results,
        "p99_shared_over_static":
            results["shared"]["victim_p99_us"]
            / results["static"]["victim_p99_us"],
        "elastic_util_recovery": recovery,
    }


def report(results: Dict) -> str:
    """Render the experiment's text report."""
    modes = ["shared", "static", "elastic"]
    metrics = [("victim_p99_us", "victim p99 (us)", 1),
               ("aggressor_p99_us", "aggressor p99 (us)", 1),
               ("utilization", "device utilization", 3),
               ("makespan_us", "makespan (us)", 1),
               ("completed", "completed", 0),
               ("moves", "elastic SMM moves", 0)]
    rows = []
    for key, label, digits in metrics:
        rows.append([label] + [round(results["results"][m][key], digits)
                               for m in modes])
    table = format_table(
        ["metric"] + modes, rows,
        title=(f"PARTITION: noisy-neighbor isolation, "
               f"{results['num_victim']} victim + "
               f"{results['num_aggressor']} aggressor tasks "
               f"[{results['lane']} lane]"),
    )
    shape = (
        f"\nShape check: static partitioning cuts the victim's p99 "
        f"{results['p99_shared_over_static']:.1f}x vs shared (must be "
        f">1), at a device-utilization cost; the elastic rebalancer "
        f"recovers {100 * results['elastic_util_recovery']:.0f}% of "
        f"that utilization gap (target: >=50%) by lending the "
        f"victim's idle SMMs to the aggressor between bursts."
    )
    return table + shape
