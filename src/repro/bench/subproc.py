"""Shared subprocess hygiene for every worker-spawning layer.

conda-wrapped pythons print ``WARNING conda ... condarc`` diagnostics
on *stdout* when a user-level ``.condarc`` is unreadable or malformed;
in a child process that noise interleaves with byte-canonical output
(the ``--json`` bench record, sweep-runner reports, cluster worker
pipes) and breaks downstream parsers.  Pointing ``CONDARC`` at the
null device sidesteps the user config entirely, and the prompt/
shell-hook variables (which re-trigger activation chatter) are
dropped.  ``CONDA_PREFIX``/``PATH`` are kept so children resolve the
same interpreter.

Used by ``scripts/bench.py`` (subprocess launches), the
:mod:`repro.bench.parallel` sweep pool, and the
:mod:`repro.cluster.worker` shard pool (as a pool/process
initializer, since ``multiprocessing`` children inherit the parent
environment rather than taking an ``env=`` argument).
"""

from __future__ import annotations

import os

#: environment variables that re-trigger conda activation chatter.
_NOISY_VARS = ("CONDA_PROMPT_MODIFIER", "CONDA_SHLVL", "PROMPT")


def clean_subprocess_env(base=None) -> dict:
    """A copy of ``base`` (default: ``os.environ``) with conda's
    config chatter silenced; pass as ``env=`` to subprocess calls."""
    env = dict(os.environ if base is None else base)
    env["CONDARC"] = os.devnull
    for noisy in _NOISY_VARS:
        env.pop(noisy, None)
    return env


def silence_conda() -> None:
    """In-place variant for ``multiprocessing`` initializers: scrub
    the *current* process's environment so anything it execs (or any
    late conda hook) stays quiet on stdout."""
    os.environ["CONDARC"] = os.devnull
    for noisy in _NOISY_VARS:
        os.environ.pop(noisy, None)
