"""``repro.bench`` "obs" experiment — the instrumented-run profile.

Not a figure from the paper: this cell runs one Pagoda workload with a
:class:`repro.obs.Obs` context attached and reports where the
simulation itself spends its events and virtual time — the
deterministic "sim profiler" view (top-N processes, heap depth) plus
the headline counters every layer recorded (PCIe bytes, scheduler
decisions, TaskTable churn).

Two uses: a quick sanity read on *what the simulator is doing* when a
reproduction number looks off, and a stable regression surface — the
snapshot is deterministic, so any diff between two commits' reports is
a real behaviour change, not noise.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core import PagodaConfig, run_pagoda
from repro.gpu.phases import Phase
from repro.obs import Obs
from repro.tasks import TaskSpec

#: counters surfaced in the report, in print order.
HEADLINE = (
    "pcie.h2d.bytes", "pcie.h2d.transactions",
    "pcie.d2h.bytes", "pcie.d2h.transactions",
    "table.entry_posts", "table.dirty_row_scans",
    "table.dirty_rows_visited", "table.copy_backs",
    "sched.decisions.schedule", "sched.decisions.promote",
    "sched.decisions.defer", "sched.tasks_done",
)


def _kernel(task, block_id, warp_id):
    yield Phase(inst=2_000, mem_bytes=256)
    yield Phase(inst=1_000)


def run(num_tasks: Optional[int] = None, seed: int = 0) -> Dict:
    """One instrumented run; returns the validated stats snapshot."""
    n = num_tasks if num_tasks is not None else 512
    tasks = [
        TaskSpec(f"t{i}", 128, 1, _kernel, input_bytes=1024,
                 output_bytes=512)
        for i in range(n)
    ]
    obs = Obs()
    stats = run_pagoda(tasks, config=PagodaConfig(obs=obs))
    return {
        "num_tasks": n,
        "makespan_ns": stats.makespan,
        "snapshot": stats.meta["stats_snapshot"],
        "profiler_text": obs.profiler.format_report(),
    }


def report(results: Dict) -> str:
    snap = results["snapshot"]
    lines = [
        f"obs profile: {results['num_tasks']} tasks, "
        f"makespan {results['makespan_ns'] / 1e6:.3f} ms, "
        f"{snap['sim']['events_executed']} engine events",
        "",
        results["profiler_text"],
        "",
        "counters:",
    ]
    counters = snap["counters"]
    width = max(len(name) for name in HEADLINE)
    for name in HEADLINE:
        if name in counters:
            lines.append(f"  {name:<{width}}  {counters[name]:>12,}")
    return "\n".join(lines)
