"""Common experiment harness: runtime registry, scaling, speedups.

Every figure/table module builds on :func:`run_benchmark`, which routes
one (workload, runtime, task-count, threads) cell to the right runner
with consistent settings, so cross-runtime comparisons are always
apples-to-apples.

Scale: the paper uses 32K tasks (273K for SLUD).  Full scale takes
minutes per cell in a pure-Python simulator, so the default is a
scaled-down task count with identical per-task geometry; set
``PAGODA_FULL=1`` to reproduce at paper scale.  Weak-scaling results
(Fig. 6) show the comparison shape is stable in task count.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.baselines import (
    GemtcConfig,
    HyperQConfig,
    run_gemtc,
    run_hyperq,
    run_static_fusion,
)
from repro.core import PagodaConfig, run_pagoda
from repro.cpu import run_pthreads, run_sequential
from repro.sim.trace import geometric_mean
from repro.tasks import RunStats, TaskSpec
from repro.workloads import REGISTRY

#: paper-scale task counts (§6.2)
FULL_TASKS = 32 * 1024
FULL_TASKS_SLUD = 273 * 1024
#: scaled-down defaults for CI-speed runs
DEFAULT_TASKS = 768

#: CPU core count of the PThreads baseline (two 10-core Xeons, §6.1)
PTHREADS_CORES = 20


def full_scale() -> bool:
    """True when PAGODA_FULL requests paper-scale runs."""
    return os.environ.get("PAGODA_FULL", "") not in ("", "0")


def default_num_tasks(workload: str = "") -> int:
    """Default task count for one experiment cell."""
    if full_scale():
        return FULL_TASKS_SLUD if workload == "slud" else FULL_TASKS
    return DEFAULT_TASKS


def make_tasks(workload: str, num_tasks: Optional[int] = None,
               threads: Optional[int] = None, seed: int = 0,
               irregular: bool = False) -> List[TaskSpec]:
    """Build a workload's task list at harness scale."""
    n = num_tasks if num_tasks is not None else default_num_tasks(workload)
    return REGISTRY.get(workload).make_tasks(
        n, threads_per_task=threads, seed=seed, irregular=irregular
    )


# -- runtime registry -----------------------------------------------------------
# Every runner defaults to the fast engine lane (bit-identical to the
# default lane by the differential contract, ~2x wall-clock on wide
# fans); pass ``lane="default"`` to opt out.

def _run_pagoda(tasks, copies=True, **kw):
    return run_pagoda(tasks, config=PagodaConfig(
        copy_inputs=copies, copy_outputs=copies,
        lane=kw.get("lane", "fast")))


def _run_pagoda_batching(tasks, copies=True, **kw):
    batch = kw.get("batch_size", 384)
    return run_pagoda(tasks, config=PagodaConfig(
        copy_inputs=copies, copy_outputs=copies, batch_size=batch,
        lane=kw.get("lane", "fast")))


def _run_hyperq(tasks, copies=True, **kw):
    return run_hyperq(tasks, config=HyperQConfig(
        copy_inputs=copies, copy_outputs=copies,
        lane=kw.get("lane", "fast")))


def _run_gemtc(tasks, copies=True, **kw):
    worker_threads = max(t.threads_per_block for t in tasks)
    return run_gemtc(tasks, config=GemtcConfig(
        worker_threads=max(64, worker_threads),
        batch_size=kw.get("batch_size"),
        copy_inputs=copies, copy_outputs=copies,
        lane=kw.get("lane", "fast")))


def _run_fusion(tasks, copies=True, **kw):
    fused_threads = kw.get("fused_threads", 256)
    return run_static_fusion(tasks, fused_threads=fused_threads,
                             copy_inputs=copies, copy_outputs=copies,
                             lane=kw.get("lane", "fast"))


def _run_pthreads(tasks, copies=True, **kw):
    return run_pthreads(tasks, num_cores=PTHREADS_CORES,
                        lane=kw.get("lane", "fast"))


def _run_sequential(tasks, copies=True, **kw):
    return run_sequential(tasks, lane=kw.get("lane", "fast"))


RUNTIMES: Dict[str, Callable[..., RunStats]] = {
    "pagoda": _run_pagoda,
    "pagoda-batching": _run_pagoda_batching,
    "hyperq": _run_hyperq,
    "gemtc": _run_gemtc,
    "fusion": _run_fusion,
    "pthreads": _run_pthreads,
    "sequential": _run_sequential,
}

#: runtimes that cannot run shared-memory tasks (GeMTC, §7) — the
#: harness strips the shared-memory request, exactly as the paper's
#: evaluation did ("The GeMTC versions do not use shared memory").
STRIPS_SHARED_MEM = {"gemtc"}


def strip_shared_mem(tasks: List[TaskSpec]) -> List[TaskSpec]:
    """Copies of tasks with shared-memory requests removed."""
    import dataclasses
    return [
        dataclasses.replace(t, shared_mem_bytes=0) if t.shared_mem_bytes else t
        for t in tasks
    ]


def run_benchmark(workload: str, runtime: str,
                  num_tasks: Optional[int] = None,
                  threads: Optional[int] = None,
                  seed: int = 0, irregular: bool = False,
                  copies: bool = True, **kw) -> RunStats:
    """Run one experiment cell and return its RunStats."""
    tasks = make_tasks(workload, num_tasks, threads, seed, irregular)
    return run_tasks(tasks, runtime, copies=copies, **kw)


def run_tasks(tasks: List[TaskSpec], runtime: str, copies: bool = True,
              **kw) -> RunStats:
    """Run a prepared task list under a named runtime."""
    runner = RUNTIMES.get(runtime)
    if runner is None:
        raise KeyError(f"unknown runtime {runtime!r}; have {sorted(RUNTIMES)}")
    if runtime in STRIPS_SHARED_MEM:
        tasks = strip_shared_mem(tasks)
    return runner(tasks, copies=copies, **kw)


def copy_fraction(stats: RunStats) -> float:
    """Table 3's "% time spent in data copy", profiler style.

    nvprof-style accounting: total copy-engine busy time over total
    busy time (copies + per-kernel execution durations), matching how
    the paper's 'data copy vs computation' split sums to 100 % even
    though copies overlap kernels on the wall clock.
    """
    kernel_busy = sum(r.exec_time for r in stats.results)
    denom = stats.copy_time + kernel_busy
    if denom <= 0:
        return 0.0
    return stats.copy_time / denom


def speedups_vs(stats: Dict[str, RunStats], baseline: str) -> Dict[str, float]:
    """Speedup of every runtime over ``baseline`` (same workload)."""
    base = stats[baseline]
    return {
        name: s.speedup_over(base) if name != baseline else 1.0
        for name, s in stats.items()
    }


def geomean_speedup(per_workload: Dict[str, Dict[str, float]],
                    runtime: str) -> float:
    """Geometric mean of one runtime's speedups across workloads."""
    return geometric_mean([v[runtime] for v in per_workload.values()])
