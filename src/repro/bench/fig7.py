"""Fig. 7 — Computation time with different thread counts per task.

Paper setup: 32K tasks, threads per task swept over 32-512, the work
per task held constant, **no shared memory** in any version (GeMTC
lacks it), and only compute time compared (copies excluded).

Shapes to reproduce: Pagoda beats HyperQ and GeMTC on all
configurations — geometric mean **2.29x over HyperQ and 2.26x over
GeMTC at 128 threads** — and Pagoda's edge over HyperQ narrows as
threads per task grow (underutilization becomes less severe).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.harness import (
    default_num_tasks,
    make_tasks,
    run_tasks,
    strip_shared_mem,
)
from repro.bench.reporting import format_table, paper_vs_measured
from repro.sim.trace import geometric_mean

WORKLOADS = ["mb", "fb", "bf", "conv", "dct", "mm", "slud", "3des", "mpe"]
RUNTIMES = ["hyperq", "gemtc", "pagoda"]
THREAD_COUNTS = [32, 64, 128, 256, 512]
PAPER_AT_128 = {"hyperq": 2.29, "gemtc": 2.26}


def run(num_tasks: Optional[int] = None, seed: int = 0,
        thread_counts: Optional[List[int]] = None) -> Dict:
    """Execute the experiment; returns its structured results."""
    thread_counts = thread_counts or THREAD_COUNTS
    times: Dict[str, Dict[str, Dict[int, float]]] = {}
    for workload in WORKLOADS:
        n = num_tasks if num_tasks is not None else default_num_tasks(workload)
        times[workload] = {rt: {} for rt in RUNTIMES}
        for threads in thread_counts:
            # "No shared memory was used in either of the program
            # versions because GeMTC does not support it" (§6.3)
            tasks = strip_shared_mem(make_tasks(workload, n, threads, seed))
            for runtime in RUNTIMES:
                if workload == "slud" and runtime == "gemtc":
                    continue
                # compute time only: copies disabled (Fig. 7 method)
                stats = run_tasks(tasks, runtime, copies=False)
                times[workload][runtime][threads] = stats.makespan
    geomeans_128 = {}
    for runtime in ("hyperq", "gemtc"):
        ratios = [
            per_rt[runtime][128] / per_rt["pagoda"][128]
            for per_rt in times.values() if runtime in per_rt and
            128 in per_rt.get(runtime, {})
        ]
        geomeans_128[runtime] = geometric_mean(ratios)
    return {"thread_counts": thread_counts, "times": times,
            "geomeans_128": geomeans_128}


def report(results: Dict) -> str:
    """Render the experiment's paper-vs-measured text report."""
    counts = results["thread_counts"]
    sections = []
    for workload, per_rt in results["times"].items():
        rows = []
        for runtime in RUNTIMES:
            if not per_rt.get(runtime):
                continue
            rows.append([runtime] + [
                round(per_rt[runtime][t] / 1e6, 3) for t in counts
                if t in per_rt[runtime]
            ])
        sections.append(format_table(
            ["runtime"] + [f"{t}thr" for t in counts], rows,
            title=f"FIG7 [{workload}]: compute time (ms), work/task constant",
        ))
    comparison = paper_vs_measured(
        "\nFIG7 headline: Pagoda compute speedup at 128 threads/task",
        [
            {"vs": rt, "paper": PAPER_AT_128[rt],
             "measured": round(results["geomeans_128"][rt], 2)}
            for rt in PAPER_AT_128
        ],
        keys=["vs"],
    )
    sections.append(comparison)
    # the trend the paper highlights: the advantage narrows with
    # threads per task
    trend = []
    for threads in counts:
        ratios = [
            per_rt["hyperq"][threads] / per_rt["pagoda"][threads]
            for per_rt in results["times"].values()
            if threads in per_rt.get("hyperq", {})
        ]
        trend.append(f"{threads}thr: {geometric_mean(ratios):.2f}x")
    sections.append(
        "FIG7 trend (Pagoda-over-HyperQ geomean by thread count; the "
        "paper reports it decreasing): " + ", ".join(trend)
    )
    return "\n\n".join(sections)
