"""Configuration sweeps the paper describes in prose.

- **GeMTC worker shape** (§6.2): "The default GeMTC design used 32
  threads per SuperKernel threadblock, obtaining only 50 % occupancy.
  We hence modified GeMTC to use more threads; from 64 threads
  onwards, GeMTC can obtain 100 % occupancy."  The sweep reproduces
  that occupancy cliff and the §6.3 observation that "GeMTC
  performance does not change much with the thread count".
- **HyperQ connection count** (§6.1): the paper sets
  ``CUDA_DEVICE_MAX_CONNECTIONS=32``; the sweep shows what fewer
  hardware connections would have cost for narrow tasks.
- **Static-fusion thread heuristic** (§6.3): "Each sub-task in the
  statically fused task uses 256 threads.  We chose this number
  heuristically, since selecting the best thread count per task is
  infeasible in static fusion."  The sweep shows how sensitive fusion
  is to that unavoidable one-size-fits-all choice.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.baselines import GemtcConfig, HyperQConfig, run_gemtc, run_hyperq
from repro.bench.harness import make_tasks, strip_shared_mem
from repro.bench.reporting import format_table
from repro.gpu.occupancy import occupancy
from repro.gpu.spec import titan_x

GEMTC_WORKER_SHAPES = [32, 64, 128, 256]
HYPERQ_CONNECTIONS = [1, 4, 8, 16, 32]
FUSION_THREAD_CHOICES = [64, 128, 256, 512]


def gemtc_worker_sweep(num_tasks: int = 384, seed: int = 0) -> Dict:
    """Makespan + static occupancy across SuperKernel worker shapes."""
    spec = titan_x()
    out: Dict[int, Dict[str, float]] = {}
    for threads in GEMTC_WORKER_SHAPES:
        # tasks sized to the worker (GeMTC runs one task per worker
        # block; a task cannot exceed its worker)
        tasks = strip_shared_mem(
            make_tasks("mb", num_tasks, min(threads, 128), seed))
        stats = run_gemtc(tasks, config=GemtcConfig(worker_threads=threads))
        out[threads] = {
            "occupancy_pct": 100.0 * occupancy(spec, threads, 32),
            "workers": stats.meta["workers"],
            "makespan_ms": stats.makespan / 1e6,
        }
    return {"sweep": out}


def hyperq_connection_sweep(num_tasks: int = 384, seed: int = 0) -> Dict:
    """Narrow-task makespan vs the concurrent-kernel limit."""
    out: Dict[int, float] = {}
    tasks = make_tasks("mb", num_tasks, 128, seed)
    for connections in HYPERQ_CONNECTIONS:
        spec = dataclasses.replace(titan_x(),
                                   hyperq_connections=connections)
        stats = run_hyperq(tasks, spec=spec,
                           config=HyperQConfig(num_streams=connections))
        out[connections] = stats.makespan / 1e6
    return {"sweep": out}


def fusion_threads_sweep(num_tasks: int = 384, seed: int = 0) -> Dict:
    """Fused-kernel makespan vs the uniform per-sub-task thread count."""
    from repro.baselines import run_static_fusion
    out: Dict[int, float] = {}
    tasks = make_tasks("mb", num_tasks, 256, seed, irregular=True)
    for threads in FUSION_THREAD_CHOICES:
        stats = run_static_fusion(tasks, fused_threads=threads)
        out[threads] = stats.makespan / 1e6
    return {"sweep": out}


def run(num_tasks: int = 384, seed: int = 0) -> Dict:
    """Execute the experiment; returns its structured results."""
    return {
        "gemtc_workers": gemtc_worker_sweep(num_tasks, seed),
        "hyperq_connections": hyperq_connection_sweep(num_tasks, seed),
        "fusion_threads": fusion_threads_sweep(num_tasks, seed),
    }


def report(results: Dict) -> str:
    """Render the experiment's paper-vs-measured text report."""
    g = results["gemtc_workers"]["sweep"]
    gemtc_table = format_table(
        ["worker_threads", "occupancy_%", "workers", "makespan_ms"],
        [[t, round(v["occupancy_pct"], 1), v["workers"],
          round(v["makespan_ms"], 3)] for t, v in sorted(g.items())],
        title="SWEEP: GeMTC SuperKernel worker shape (§6.2: 32thr -> "
              "50% occupancy; >=64thr -> 100%)",
    )
    h = results["hyperq_connections"]["sweep"]
    hyperq_table = format_table(
        ["connections", "makespan_ms"],
        [[c, round(m, 3)] for c, m in sorted(h.items())],
        title="\nSWEEP: HyperQ concurrent-kernel limit "
              "(§6.1 sets CUDA_DEVICE_MAX_CONNECTIONS=32)",
    )
    f = results["fusion_threads"]["sweep"]
    fusion_table = format_table(
        ["fused_threads", "makespan_ms"],
        [[t, round(m, 3)] for t, m in sorted(f.items())],
        title="\nSWEEP: static fusion's uniform thread heuristic "
              "(§6.3 picks 256)",
    )
    return gemtc_table + "\n" + hyperq_table + "\n" + fusion_table
