"""Seeded fault schedules.

A :class:`FaultPlan` is an ordered list of
:class:`~repro.faults.spec.FaultSpec` drawn *up front* from one seeded
RNG — the plan is fixed before the simulation starts, so a chaos run
is a pure function of ``(workload, plan)`` and any failure replays
from its seed alone (the property gem5's deterministic-perturbation
work builds its methodology on).

``FaultPlan.generate(seed, ...)`` is the chaos harness's entry point;
``FaultPlan.zero()`` is the control arm: an injector carrying a
zero-fault plan must leave the simulated schedule bit-identical to a
run with no injector at all (asserted by ``tests/chaos``).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.spec import FAULT_KINDS, FaultSpec

#: Kinds that require a watchdog to reclaim the task (the warp wedges).
HANG_KINDS = ("gpu.stuck_warp", "task.no_yield")

#: Kinds the default single-GPU chaos sweep draws from.  ``gpu.die``
#: is excluded (it only makes sense on a multi-GPU node) and must be
#: requested explicitly.
DEFAULT_SWEEP_KINDS: Tuple[str, ...] = (
    FAULT_KINDS["pcie"] + tuple(k for k in FAULT_KINDS["gpu"]
                                if k != "gpu.die")
    + FAULT_KINDS["cuda"] + FAULT_KINDS["task"]
)

#: Kinds the cluster fabric chaos sweep draws from.  ``fabric.node.
#: resume`` is excluded: the generator emits it itself as the closing
#: half of every pause window it draws.
FABRIC_SWEEP_KINDS: Tuple[str, ...] = (
    "fabric.link.drop",
    "fabric.link.dup",
    "fabric.link.delay_spike",
    "fabric.link.partition",
    "fabric.node.pause",
)


def stream_seed(seed: int, name: str) -> int:
    """A per-entity RNG seed derived from ``(seed, name)``.

    Uses :mod:`hashlib` (blake2b), never Python's salted ``hash()``,
    so a node's noise stream is identical across worker processes,
    interpreter restarts, and Python versions — the property the
    cluster's byte-identity contract needs from node-local jitter.
    """
    digest = hashlib.blake2b(f"{seed}:{name}".encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


def hash01(seed: int, *parts) -> float:
    """A deterministic draw in ``[0, 1)`` from ``(seed, *parts)``.

    The rate-based fabric faults use this instead of an RNG stream so
    each message's fate is a pure function of its stable identity
    (plan seed, message id, attempt number, link) — independent of
    draw order, worker count, and interpreter salt.
    """
    key = ":".join([str(seed)] + [str(p) for p in parts])
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


@dataclass
class FaultPlan:
    """An immutable-by-convention, seed-replayable fault schedule."""

    specs: List[FaultSpec] = field(default_factory=list)
    seed: Optional[int] = None

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def is_zero(self) -> bool:
        """True for the control plan (no perturbation at all)."""
        return not self.specs

    def kinds(self) -> Dict[str, int]:
        """Histogram of fault kinds in the plan (for reporting)."""
        out: Dict[str, int] = {}
        for spec in self.specs:
            out[spec.kind] = out.get(spec.kind, 0) + 1
        return out

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls) -> "FaultPlan":
        """The control arm: no faults."""
        return cls(specs=[], seed=None)

    @classmethod
    def generate(
        cls,
        seed: int,
        n_faults: int = 8,
        horizon_ns: float = 1_000_000.0,
        kinds: Sequence[str] = DEFAULT_SWEEP_KINDS,
        columns: int = 0,
        gpus: int = 0,
        magnitude_ns: Tuple[float, float] = (500.0, 50_000.0),
    ) -> "FaultPlan":
        """Draw ``n_faults`` specs from ``random.Random(seed)``.

        ``horizon_ns`` bounds arming times (faults should land while
        the workload is still in flight); ``columns``/``gpus`` > 0
        let targeted kinds (brown-outs, device death) pick a victim.
        The draw order is fixed — kind, time, magnitude, target — so a
        plan is stable across Python versions for a given seed.
        """
        if n_faults < 0:
            raise ValueError("n_faults must be >= 0")
        rng = random.Random(seed)
        specs: List[FaultSpec] = []
        kinds = tuple(kinds)
        for _ in range(n_faults):
            kind = rng.choice(kinds)
            at_ns = round(rng.uniform(0.0, horizon_ns), 3)
            magnitude = round(rng.uniform(*magnitude_ns), 3)
            target = None
            if kind == "gpu.brownout" and columns > 0:
                target = rng.randrange(columns)
            elif kind == "gpu.die" and gpus > 0:
                target = rng.randrange(gpus)
            specs.append(FaultSpec(
                kind=kind, at_ns=at_ns, magnitude_ns=magnitude,
                target=target,
            ))
        # arming order == time order; ties keep draw order (stable sort)
        specs.sort(key=lambda s: s.at_ns)
        return cls(specs=specs, seed=seed)

    @classmethod
    def generate_fabric(
        cls,
        seed: int,
        nodes: Sequence[str],
        n_faults: int = 6,
        horizon_ns: float = 1_000_000.0,
        kinds: Sequence[str] = FABRIC_SWEEP_KINDS,
        window_ns: Tuple[float, float] = (100_000.0, 400_000.0),
        magnitude_ns: Tuple[float, float] = (10_000.0, 100_000.0),
    ) -> "FaultPlan":
        """Draw a cluster-fabric chaos plan over ``nodes``.

        Unlike :meth:`generate`, the draws come from **per-node RNG
        streams** seeded by :func:`stream_seed` ``(seed, node)``: each
        node's share of the faults is a pure function of the cluster
        seed and its own name, so adding a node to the topology (or
        resharding the fleet across workers) never reshuffles another
        node's noise.  ``n_faults`` is the fleet total, split evenly
        with the remainder going to the first nodes in sorted order.

        Windowed kinds use ``window_ns`` for their duration
        (``fabric.link.partition`` windows, pause→resume spans);
        point kinds use ``magnitude_ns`` (delay-spike sizes).
        """
        if n_faults < 0:
            raise ValueError("n_faults must be >= 0")
        if not nodes:
            raise ValueError("need at least one node")
        kinds = tuple(kinds)
        ordered = sorted(nodes)
        base, rem = divmod(n_faults, len(ordered))
        specs: List[FaultSpec] = []
        for pos, node in enumerate(ordered):
            rng = random.Random(stream_seed(seed, node))
            for _ in range(base + (1 if pos < rem else 0)):
                kind = rng.choice(kinds)
                at_ns = round(rng.uniform(0.0, horizon_ns), 3)
                if kind in ("fabric.link.partition", "fabric.node.pause"):
                    span = round(rng.uniform(*window_ns), 3)
                    if kind == "fabric.node.pause":
                        specs.append(FaultSpec(kind=kind, at_ns=at_ns,
                                               target=node))
                        specs.append(FaultSpec(kind="fabric.node.resume",
                                               at_ns=round(at_ns + span, 3),
                                               target=node))
                    else:
                        specs.append(FaultSpec(kind=kind, at_ns=at_ns,
                                               magnitude_ns=span,
                                               target=node))
                else:
                    magnitude = round(rng.uniform(*magnitude_ns), 3)
                    count = rng.randrange(1, 4)
                    specs.append(FaultSpec(kind=kind, at_ns=at_ns,
                                           magnitude_ns=magnitude,
                                           count=count, target=node))
        specs.sort(key=lambda s: (s.at_ns, s.kind, str(s.target)))
        return cls(specs=specs, seed=seed)

    def needs_watchdog(self) -> bool:
        """Whether the plan can wedge a warp (watchdog required)."""
        return any(spec.kind in HANG_KINDS for spec in self.specs)
