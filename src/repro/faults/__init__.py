"""Deterministic fault injection for the simulated Pagoda stack.

The simulator reproduces the paper's happy path; this package makes it
a *correctness tool* by exercising the hazards the TaskTable protocol
and MasterKernel exist to survive — unordered PCIe delivery, stale
mapped-memory reads, wedged warps, browned-out SMMs, dying GPUs — from
seeded, replayable :class:`~repro.faults.plan.FaultPlan` schedules.

- :mod:`repro.faults.spec` — the fault vocabulary (:class:`FaultSpec`).
- :mod:`repro.faults.plan` — seeded schedules (:class:`FaultPlan`).
- :mod:`repro.faults.injector` — the hook-point hub
  (:class:`FaultInjector`).

Attach a plan via ``PagodaConfig(fault_plan=...)``; the chaos harness
in ``tests/chaos/`` sweeps seeds and asserts the
:mod:`repro.core.validation` conservation laws after every run.
:mod:`repro.scenarios` packages plans into named incident scenarios
(workload + plan + detectors) runnable by name, and its trace loader
reuses :func:`~repro.faults.plan.hash01` for draw-order-independent
arrival staggering.
"""

from repro.faults.injector import (
    TIME_TRIGGERED_KINDS,
    FabricInjector,
    FaultInjector,
)
from repro.faults.plan import (
    DEFAULT_SWEEP_KINDS,
    FABRIC_SWEEP_KINDS,
    HANG_KINDS,
    FaultPlan,
    hash01,
    stream_seed,
)
from repro.faults.spec import (
    ALL_FAULT_KINDS,
    CUDA_FAULTS,
    FABRIC_FAULTS,
    FAULT_KINDS,
    GPU_FAULTS,
    PCIE_FAULTS,
    TASK_FAULTS,
    FaultSpec,
    InjectedFault,
)

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FabricInjector",
    "InjectedFault",
    "FAULT_KINDS",
    "ALL_FAULT_KINDS",
    "PCIE_FAULTS",
    "GPU_FAULTS",
    "CUDA_FAULTS",
    "TASK_FAULTS",
    "FABRIC_FAULTS",
    "HANG_KINDS",
    "DEFAULT_SWEEP_KINDS",
    "FABRIC_SWEEP_KINDS",
    "TIME_TRIGGERED_KINDS",
    "stream_seed",
    "hash01",
]
