"""Fault vocabulary: what can go wrong, where, and how hard.

A :class:`FaultSpec` names one perturbation of the simulated stack —
a dropped PCIe transaction, a warp that never yields, a browned-out
SMM.  Specs are pure data: the layers themselves carry the hook points
(see :mod:`repro.faults.injector`), and a seeded
:class:`~repro.faults.plan.FaultPlan` decides *which* specs exist, so
every chaos run is replayable from its seed.

The ``kind`` strings are the stable contract between plans and hook
points; :data:`FAULT_KINDS` is the catalog, grouped by the hardware
layer that owns the hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

# -- the fault catalog -------------------------------------------------------

#: PCIe link faults (hooks in :class:`repro.pcie.bus.PcieBus` and the
#: TaskTable's posted-write landing path).
PCIE_FAULTS = (
    # one DMA transaction is lost and must be replayed (pays the wire
    # time again) — models a replayed TLP after a CRC error.
    "pcie.drop",
    # one DMA transaction is delivered twice (pays wire time twice).
    "pcie.dup",
    # one DMA transaction takes ``magnitude_ns`` longer than modelled.
    "pcie.delay",
    # one TaskTable posted entry write lands ``magnitude_ns`` *beyond*
    # the normal mapped-write visibility latency — reordering it past
    # later posted writes (the cross-transaction ordering §4.2 defends
    # against).
    "pcie.reorder",
    # one aggregate copy-back reads a *stale* protocol word: a
    # completion the GPU already recorded is not observed this
    # copy-back (it surfaces on the next one).
    "pcie.stale_read",
)

#: GPU faults (hooks in the MasterKernel's executor warps / MTBs).
GPU_FAULTS = (
    # a warp stalls for ``magnitude_ns`` of extra dead time.
    "gpu.slow_warp",
    # a warp wedges forever; only the watchdog can reclaim the task.
    "gpu.stuck_warp",
    # an SMM brown-out evicts one resident MTB: every task executing on
    # it dies, its scheduler restarts from clean shared-memory state.
    "gpu.brownout",
    # whole-device death (multi-GPU runs only; the surviving GPUs
    # absorb the dead device's in-flight tasks).
    "gpu.die",
)

#: CUDA runtime faults (hooks in :mod:`repro.cuda`).
CUDA_FAULTS = (
    # cudaLaunchKernel returns an error instead of enqueueing.
    "cuda.launch_fail",
    # a stream's driver thread stalls ``magnitude_ns`` before an op.
    "cuda.stream_stall",
)

#: Cluster fabric faults (hooks in :class:`repro.cluster.fabric.Fabric`
#: and the coordinator's digest-visibility layer).  ``target`` names a
#: node (the fault applies to every link touching it), a ``(src, dst)``
#: tuple (one directed link), or ``None`` (any link / every node).
FABRIC_FAULTS = (
    # one message is lost on the wire; the reliable layer's
    # ack-timeout retransmit recovers it.  A spec with
    # ``meta={"rate": p}`` is never spent and instead drops each
    # matching message with (hash-derived, seed-stable) probability p.
    "fabric.link.drop",
    # one message is delivered twice; receiver-side dedup by message
    # id suppresses the copy.
    "fabric.link.dup",
    # one message takes ``magnitude_ns`` longer than the link models.
    "fabric.link.delay_spike",
    # every message touching the target during
    # ``[at_ns, at_ns + magnitude_ns)`` is dropped, and the target's
    # status digests go dark for the window (the router suspects it).
    "fabric.link.partition",
    # gray failure: from ``at_ns`` the target's NIC stalls — messages
    # to/from it are *held* (delivered after the matching resume) and
    # its digests go dark.  A pause with no matching resume behaves
    # like a permanent partition (messages are dropped, not held).
    "fabric.node.pause",
    # ends the target's pause at ``at_ns``.
    "fabric.node.resume",
)

#: Workload kernel faults (hooks in the executor's phase loop).
TASK_FAULTS = (
    # the task's kernel coroutine raises mid-phase.
    "task.raise",
    # the task runs to completion but its output is poison: recorded
    # as a structured failure (and counted against its slot).
    "task.poison",
    # the kernel never yields another phase — indistinguishable from
    # gpu.stuck_warp at the hook, kept separate for plan statistics.
    "task.no_yield",
)

#: Every fault kind, grouped by layer.
FAULT_KINDS: Dict[str, Tuple[str, ...]] = {
    "pcie": PCIE_FAULTS,
    "gpu": GPU_FAULTS,
    "cuda": CUDA_FAULTS,
    "task": TASK_FAULTS,
    "fabric": FABRIC_FAULTS,
}

#: Flat set of all known kinds (plan validation).
ALL_FAULT_KINDS = frozenset(
    kind for kinds in FAULT_KINDS.values() for kind in kinds
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled perturbation.

    ``kind``
        A string from :data:`ALL_FAULT_KINDS` (validated).
    ``at_ns``
        The fault arms at this simulated time; a hook site draws it the
        first time it asks after ``at_ns``.  Time-triggered faults
        (``gpu.brownout``, ``gpu.die``) fire *at* ``at_ns`` via an
        engine callback instead of waiting for a hook.
    ``count``
        How many hook draws this spec satisfies before it is spent.
    ``target``
        Optional site filter; a hook passes its site (e.g. the MTB
        column, the PCIe direction name) and only a matching — or
        ``None`` i.e. wildcard — spec fires.  For time-triggered faults
        this is the victim (MTB column / GPU index).
    ``magnitude_ns``
        Fault-specific intensity: extra latency for delays/stalls,
        ignored by drop/raise kinds.
    ``meta``
        Free-form extras (kept out of equality-sensitive paths).
    """

    kind: str
    at_ns: float = 0.0
    count: int = 1
    target: Optional[Any] = None
    magnitude_ns: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; see "
                f"repro.faults.spec.FAULT_KINDS for the catalog"
            )
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.at_ns < 0:
            raise ValueError("at_ns must be >= 0")
        if self.magnitude_ns < 0:
            raise ValueError("magnitude_ns must be >= 0")

    @property
    def layer(self) -> str:
        """The hardware layer owning this fault's hook ("pcie", ...)."""
        return self.kind.split(".", 1)[0]

    def matches_site(self, site: Any) -> bool:
        """Whether this spec applies at ``site`` (None = wildcard)."""
        return self.target is None or self.target == site


@dataclass(frozen=True)
class InjectedFault:
    """Log record of one fault that actually fired (replay evidence)."""

    when_ns: float
    kind: str
    site: Any
    spec: FaultSpec
