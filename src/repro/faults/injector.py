"""The fault injector: where a plan meets the simulated hardware.

Layers carry *hook points* — a line or two guarded by
``if self.faults is not None`` — and every hook funnels through
:meth:`FaultInjector.draw`:

======================  ====================================================
hook site               kinds drawn
======================  ====================================================
``PcieBus.transfer``    ``pcie.drop`` / ``pcie.dup`` / ``pcie.delay``
TaskTable entry post    ``pcie.reorder``
TaskTable copy-back     ``pcie.stale_read``
MTB executor warp       ``gpu.slow_warp`` / ``gpu.stuck_warp`` /
                        ``task.raise`` / ``task.poison`` / ``task.no_yield``
``CudaRuntime`` launch  ``cuda.launch_fail``
``Stream`` driver       ``cuda.stream_stall``
======================  ====================================================

``gpu.brownout`` and ``gpu.die`` are *time-triggered*: the session
wiring schedules them as engine callbacks at their ``at_ns`` (see
:meth:`FaultInjector.time_triggered`), because no per-operation hook
naturally observes "an SMM browned out".

Determinism: ``draw`` consults only the precomputed plan and the
simulated clock — no RNG at decision time — so identical runs inject
identical faults, and an injector carrying a zero-fault plan makes no
engine calls at all (schedule-identity with the uninstrumented run).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.faults.plan import FaultPlan
from repro.faults.spec import FaultSpec, InjectedFault

#: Kinds fired by engine callbacks at ``at_ns`` rather than hook draws.
TIME_TRIGGERED_KINDS = frozenset({"gpu.brownout", "gpu.die"})


class FaultInjector:
    """Deterministic dispenser of one :class:`FaultPlan`'s faults."""

    def __init__(self, engine, plan: Optional[FaultPlan] = None) -> None:
        self.engine = engine
        self.plan = plan or FaultPlan.zero()
        #: kind -> [spec, remaining] queues, in plan (time) order.
        self._armed: Dict[str, List[List]] = {}
        for spec in self.plan:
            if spec.kind in TIME_TRIGGERED_KINDS:
                continue
            self._armed.setdefault(spec.kind, []).append([spec, spec.count])
        #: every fault that actually fired, in firing order.
        self.injected: List[InjectedFault] = []

    # -- hook-point API ------------------------------------------------------

    def draw(self, kind: str, site: Any = None) -> Optional[FaultSpec]:
        """Consume one armed fault of ``kind`` applicable at ``site``.

        Returns the spec (the hook reads ``magnitude_ns`` etc.) or
        ``None`` — the overwhelmingly common case, which costs one
        dict probe on a zero-fault plan.
        """
        queue = self._armed.get(kind)
        if not queue:
            return None
        now = self.engine.now
        for record in queue:
            spec, remaining = record
            if spec.at_ns > now:
                break  # queue is time-ordered; nothing later is armed
            if remaining <= 0 or not spec.matches_site(site):
                continue
            record[1] = remaining - 1
            self.injected.append(InjectedFault(now, kind, site, spec))
            if record[1] <= 0:
                queue.remove(record)
                if not queue:
                    del self._armed[kind]
            return spec
        return None

    def record_fired(self, spec: FaultSpec, site: Any = None) -> None:
        """Log a time-triggered fault at its firing moment."""
        self.injected.append(
            InjectedFault(self.engine.now, spec.kind, site, spec)
        )

    # -- time-triggered faults ----------------------------------------------

    def time_triggered(self, kind: Optional[str] = None) -> List[FaultSpec]:
        """The plan's engine-callback faults (optionally one kind)."""
        return [
            spec for spec in self.plan
            if spec.kind in TIME_TRIGGERED_KINDS
            and (kind is None or spec.kind == kind)
        ]

    # -- reporting -----------------------------------------------------------

    @property
    def injected_count(self) -> int:
        """Faults fired so far (hook draws + time-triggered)."""
        return len(self.injected)

    def pending_count(self) -> int:
        """Armed-or-future hook faults not yet consumed."""
        return sum(rec[1] for queue in self._armed.values() for rec in queue)

    def fingerprint(self) -> tuple:
        """Replay-comparable summary of what fired (time, kind, site)."""
        return tuple((f.when_ns, f.kind, f.site) for f in self.injected)
