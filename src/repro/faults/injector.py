"""The fault injector: where a plan meets the simulated hardware.

Layers carry *hook points* — a line or two guarded by
``if self.faults is not None`` — and every hook funnels through
:meth:`FaultInjector.draw`:

======================  ====================================================
hook site               kinds drawn
======================  ====================================================
``PcieBus.transfer``    ``pcie.drop`` / ``pcie.dup`` / ``pcie.delay``
TaskTable entry post    ``pcie.reorder``
TaskTable copy-back     ``pcie.stale_read``
MTB executor warp       ``gpu.slow_warp`` / ``gpu.stuck_warp`` /
                        ``task.raise`` / ``task.poison`` / ``task.no_yield``
``CudaRuntime`` launch  ``cuda.launch_fail``
``Stream`` driver       ``cuda.stream_stall``
======================  ====================================================

``gpu.brownout`` and ``gpu.die`` are *time-triggered*: the session
wiring schedules them as engine callbacks at their ``at_ns`` (see
:meth:`FaultInjector.time_triggered`), because no per-operation hook
naturally observes "an SMM browned out".

Determinism: ``draw`` consults only the precomputed plan and the
simulated clock — no RNG at decision time — so identical runs inject
identical faults, and an injector carrying a zero-fault plan makes no
engine calls at all (schedule-identity with the uninstrumented run).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan, hash01
from repro.faults.spec import FaultSpec, InjectedFault

#: Kinds fired by engine callbacks at ``at_ns`` rather than hook draws.
TIME_TRIGGERED_KINDS = frozenset({"gpu.brownout", "gpu.die"})


class FaultInjector:
    """Deterministic dispenser of one :class:`FaultPlan`'s faults."""

    def __init__(self, engine, plan: Optional[FaultPlan] = None) -> None:
        self.engine = engine
        self.plan = plan or FaultPlan.zero()
        #: kind -> [spec, remaining] queues, in plan (time) order.
        self._armed: Dict[str, List[List]] = {}
        for spec in self.plan:
            if spec.kind in TIME_TRIGGERED_KINDS:
                continue
            self._armed.setdefault(spec.kind, []).append([spec, spec.count])
        #: every fault that actually fired, in firing order.
        self.injected: List[InjectedFault] = []

    # -- hook-point API ------------------------------------------------------

    def draw(self, kind: str, site: Any = None) -> Optional[FaultSpec]:
        """Consume one armed fault of ``kind`` applicable at ``site``.

        Returns the spec (the hook reads ``magnitude_ns`` etc.) or
        ``None`` — the overwhelmingly common case, which costs one
        dict probe on a zero-fault plan.
        """
        queue = self._armed.get(kind)
        if not queue:
            return None
        now = self.engine.now
        for record in queue:
            spec, remaining = record
            if spec.at_ns > now:
                break  # queue is time-ordered; nothing later is armed
            if remaining <= 0 or not spec.matches_site(site):
                continue
            record[1] = remaining - 1
            self.injected.append(InjectedFault(now, kind, site, spec))
            if record[1] <= 0:
                queue.remove(record)
                if not queue:
                    del self._armed[kind]
            return spec
        return None

    def record_fired(self, spec: FaultSpec, site: Any = None) -> None:
        """Log a time-triggered fault at its firing moment."""
        self.injected.append(
            InjectedFault(self.engine.now, spec.kind, site, spec)
        )

    # -- time-triggered faults ----------------------------------------------

    def time_triggered(self, kind: Optional[str] = None) -> List[FaultSpec]:
        """The plan's engine-callback faults (optionally one kind)."""
        return [
            spec for spec in self.plan
            if spec.kind in TIME_TRIGGERED_KINDS
            and (kind is None or spec.kind == kind)
        ]

    # -- reporting -----------------------------------------------------------

    @property
    def injected_count(self) -> int:
        """Faults fired so far (hook draws + time-triggered)."""
        return len(self.injected)

    def pending_count(self) -> int:
        """Armed-or-future hook faults not yet consumed."""
        return sum(rec[1] for queue in self._armed.values() for rec in queue)

    def fingerprint(self) -> tuple:
        """Replay-comparable summary of what fired (time, kind, site)."""
        return tuple((f.when_ns, f.kind, f.site) for f in self.injected)


# -- the cluster fabric's injector -------------------------------------------

#: node-scoped outcomes of :meth:`FabricInjector.node_fate`.
OK, DROP, HOLD = "ok", "drop", "hold"


def _match_link(target: Any, src: str, dst: str) -> bool:
    """Whether a fabric spec's target covers the ``src -> dst`` link:
    ``None`` = any link, a tuple = that directed link, a node name =
    every link touching the node."""
    if target is None:
        return True
    if isinstance(target, (tuple, list)):
        return tuple(target) == (src, dst)
    return target in (src, dst)


class FabricInjector:
    """Deterministic dispenser of one fabric :class:`FaultPlan`.

    The cluster fabric has no engine clock of its own — every message
    carries its send instant — so unlike :class:`FaultInjector` all
    draws take an explicit ``now_ns``, and the rate-based specs
    (``meta={"rate": p}``) decide each message's fate from a
    :func:`~repro.faults.plan.hash01` over the message's stable
    identity instead of consuming an armed count.  Windowed kinds
    (``fabric.link.partition``, ``fabric.node.pause``/``resume``) are
    compiled into per-node time windows up front.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan.zero()
        self.seed = self.plan.seed if self.plan.seed is not None else 0
        #: kind -> [spec, remaining] queues in time order (count specs).
        self._armed: Dict[str, List[List]] = {}
        #: kind -> [spec, ...] rate specs in time order.
        self._rates: Dict[str, List[FaultSpec]] = {}
        pauses: Dict[Any, List[float]] = {}
        resumes: Dict[Any, List[float]] = {}
        #: target -> [(start_ns, end_ns)] drop windows (partitions).
        self._partitions: List[Tuple[Any, float, float]] = []
        for spec in self.plan:
            if spec.layer != "fabric":
                raise ValueError(
                    f"fabric plan carries non-fabric kind {spec.kind!r}; "
                    "node-scoped faults belong on NodeSpec.fault_plan"
                )
            if spec.kind == "fabric.node.pause":
                pauses.setdefault(spec.target, []).append(spec.at_ns)
            elif spec.kind == "fabric.node.resume":
                resumes.setdefault(spec.target, []).append(spec.at_ns)
            elif spec.kind == "fabric.link.partition":
                self._partitions.append(
                    (spec.target, spec.at_ns, spec.at_ns + spec.magnitude_ns))
            elif "rate" in spec.meta:
                self._rates.setdefault(spec.kind, []).append(spec)
            else:
                self._armed.setdefault(spec.kind, []).append(
                    [spec, spec.count])
        #: target -> [(pause_ns, resume_ns)] hold windows; a pause with
        #: no later resume closes at +inf (permanent gray failure).
        self._pauses: Dict[Any, List[Tuple[float, float]]] = {}
        for target, starts in pauses.items():
            ends = sorted(resumes.get(target, []))
            windows = []
            used = 0
            for start in sorted(starts):
                while used < len(ends) and ends[used] < start:
                    used += 1
                if used < len(ends):
                    windows.append((start, ends[used]))
                    used += 1
                else:
                    windows.append((start, math.inf))
            self._pauses[target] = windows
        #: every fabric fault that actually fired, in firing order.
        self.injected: List[InjectedFault] = []

    # -- windowed kinds ------------------------------------------------------

    def node_fate(self, node: str, t_ns: float) -> Tuple[str, float, Any]:
        """What happens to a message touching ``node`` at ``t_ns``:
        ``(OK, t, None)``, ``(DROP, t, kind)`` (partition / permanent
        pause), or ``(HOLD, release_ns, kind)`` (finite pause: the NIC
        queues it until the matching resume)."""
        for target, start, end in self._partitions:
            if (target is None or target == node) and start <= t_ns < end:
                return DROP, t_ns, "fabric.link.partition"
        for target, windows in self._pauses.items():
            if target is not None and target != node:
                continue
            for start, end in windows:
                if start <= t_ns < end:
                    if math.isinf(end):
                        return DROP, t_ns, "fabric.node.pause"
                    return HOLD, end, "fabric.node.pause"
        return OK, t_ns, None

    def blackout(self, node: str, t_ns: float) -> bool:
        """Whether the node's status digests are dark at ``t_ns`` (the
        health layer's miss signal): any partition or pause window —
        finite or permanent — covering the instant."""
        return self.node_fate(node, t_ns)[0] != OK

    def record(self, when_ns: float, kind: str, site: Any,
               spec: Optional[FaultSpec] = None) -> None:
        """Log one windowed fault effect (partition/pause drop or
        hold) at the moment it bit a message."""
        self.injected.append(InjectedFault(when_ns, kind, site, spec))

    # -- per-message draws ---------------------------------------------------

    def draw(self, kind: str, now_ns: float, src: str, dst: str,
             mid: int, attempt: int) -> Optional[FaultSpec]:
        """Consume (or hash-derive) one armed ``kind`` fault for the
        message ``mid``/``attempt`` crossing ``src -> dst`` at
        ``now_ns``.  Deterministic: count specs consult only the plan
        and the clock; rate specs consult only the message identity."""
        site = (src, dst)
        for spec in self._rates.get(kind, ()):
            if spec.at_ns > now_ns or not _match_link(spec.target, src, dst):
                continue
            until = spec.meta.get("until_ns")
            if until is not None and now_ns >= until:
                continue
            if hash01(self.seed, kind, mid, attempt) < spec.meta["rate"]:
                self.injected.append(
                    InjectedFault(now_ns, kind, site, spec))
                return spec
        queue = self._armed.get(kind)
        if not queue:
            return None
        for record in queue:
            spec, remaining = record
            if spec.at_ns > now_ns:
                break  # queue is time-ordered; nothing later is armed
            if remaining <= 0 or not _match_link(spec.target, src, dst):
                continue
            record[1] = remaining - 1
            self.injected.append(InjectedFault(now_ns, kind, site, spec))
            if record[1] <= 0:
                queue.remove(record)
                if not queue:
                    del self._armed[kind]
            return spec
        return None

    # -- reporting -----------------------------------------------------------

    @property
    def injected_count(self) -> int:
        return len(self.injected)

    def by_kind(self) -> Dict[str, int]:
        """Histogram of fired fabric faults (for the fleet report)."""
        out: Dict[str, int] = {}
        for fault in self.injected:
            out[fault.kind] = out.get(fault.kind, 0) + 1
        return out

    def fingerprint(self) -> tuple:
        return tuple((f.when_ns, f.kind, f.site) for f in self.injected)
