"""Export run results as Chrome trace-event JSON.

Load the output in ``chrome://tracing`` / Perfetto to see each task's
spawn-to-schedule queueing and execution span — the visual version of
Fig. 10's latency story.  Works on the :class:`~repro.tasks.RunStats`
of any runtime in the reproduction.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.tasks import RunStats

#: trace-event timestamps are microseconds
_NS_PER_US = 1e3


def chrome_trace_events(stats: RunStats, max_tasks: int = 2000) -> List[Dict]:
    """Build trace events: one row per task, queueing + execution spans.

    ``max_tasks`` caps output size for huge runs (the viewer chokes on
    hundreds of thousands of rows).
    """
    events: List[Dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "args": {"name": f"runtime: {stats.runtime}"},
    }]
    for res in stats.results[:max_tasks]:
        tid = res.task_id
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": res.name},
        })
        if res.sched_time >= res.spawn_time > 0 or res.sched_time > 0:
            events.append({
                "name": "queued", "cat": "spawn", "ph": "X", "pid": 0,
                "tid": tid,
                "ts": res.spawn_time / _NS_PER_US,
                "dur": max(res.sched_time - res.spawn_time, 0) / _NS_PER_US,
                "args": {"task_id": res.task_id},
            })
        if res.end_time > res.start_time:
            events.append({
                "name": "exec", "cat": "gpu", "ph": "X", "pid": 0,
                "tid": tid,
                "ts": res.start_time / _NS_PER_US,
                "dur": (res.end_time - res.start_time) / _NS_PER_US,
                "args": {"latency_us": res.latency / _NS_PER_US},
            })
    return events


def export_chrome_trace(stats: RunStats, path: str,
                        max_tasks: int = 2000) -> int:
    """Write the trace JSON; returns the number of events written."""
    events = chrome_trace_events(stats, max_tasks)
    with open(path, "w") as fh:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, fh)
    return len(events)
