"""Export run results as Chrome trace-event JSON.

Load the output in ``chrome://tracing`` / Perfetto to see each task's
spawn-to-schedule queueing and execution span — the visual version of
Fig. 10's latency story.  Works on the :class:`~repro.tasks.RunStats`
of any runtime in the reproduction.

Serving runs get extra rows: :func:`serve_counter_events` turns a
:class:`~repro.serve.ServeReport`'s timeline into Chrome *counter*
tracks (ingress queue depth, tasks in flight, drops/s), and
:func:`export_serve_trace` writes counters plus per-request spans in
one file.
"""

from __future__ import annotations

import json
import warnings
from typing import Dict, List

from repro.tasks import RunStats

#: trace-event timestamps are microseconds
_NS_PER_US = 1e3


def chrome_trace_events(stats: RunStats, max_tasks: int = 2000) -> List[Dict]:
    """Build trace events: one row per task, queueing + execution spans.

    ``max_tasks`` caps output size for huge runs (the viewer chokes on
    hundreds of thousands of rows); when the cap actually truncates,
    a :class:`UserWarning` says how many tasks were dropped rather
    than silently producing a partial trace.
    """
    if len(stats.results) > max_tasks:
        warnings.warn(
            f"trace truncated: {len(stats.results)} tasks, keeping the "
            f"first {max_tasks} (raise max_tasks to keep more)",
            stacklevel=2,
        )
    events: List[Dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "args": {"name": f"runtime: {stats.runtime}"},
    }]
    for res in stats.results[:max_tasks]:
        tid = res.task_id
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": res.name},
        })
        if res.sched_time >= res.spawn_time > 0 or res.sched_time > 0:
            events.append({
                "name": "queued", "cat": "spawn", "ph": "X", "pid": 0,
                "tid": tid,
                "ts": res.spawn_time / _NS_PER_US,
                "dur": max(res.sched_time - res.spawn_time, 0) / _NS_PER_US,
                "args": {"task_id": res.task_id},
            })
        if res.end_time > res.start_time:
            events.append({
                "name": "exec", "cat": "gpu", "ph": "X", "pid": 0,
                "tid": tid,
                "ts": res.start_time / _NS_PER_US,
                "dur": (res.end_time - res.start_time) / _NS_PER_US,
                "args": {"latency_us": res.latency / _NS_PER_US},
            })
    return events


def export_chrome_trace(stats: RunStats, path: str,
                        max_tasks: int = 2000) -> int:
    """Write the trace JSON; returns the number of events written."""
    events = chrome_trace_events(stats, max_tasks)
    with open(path, "w") as fh:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, fh)
    return len(events)


# -- serving-run counters ------------------------------------------------------

#: Chrome counter tracks run in their own (fake) process row so they
#: group above the per-task spans in the viewer.
_COUNTER_PID = 1


def serve_counter_events(report) -> List[Dict]:
    """Counter tracks from a :class:`~repro.serve.ServeReport` timeline.

    Three tracks, sampled at every admission/dispatch/completion edge:
    ingress queue depth, tasks in flight on the GPU(s), and the drop
    rate (requests/s, finite-differenced between samples — cumulative
    totals make a useless flat line in the viewer).
    """
    events: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": _COUNTER_PID,
        "args": {"name": f"serve: {report.label}"},
    }]
    prev_t = prev_drops = 0.0
    for t_ns, depth, inflight, dropped, _finished in report.timeline:
        ts = t_ns / _NS_PER_US
        events.append({
            "name": "ingress queue", "ph": "C", "pid": _COUNTER_PID,
            "ts": ts, "args": {"depth": depth},
        })
        events.append({
            "name": "in flight", "ph": "C", "pid": _COUNTER_PID,
            "ts": ts, "args": {"tasks": inflight},
        })
        dt_ns = t_ns - prev_t
        rate = (dropped - prev_drops) * 1e9 / dt_ns if dt_ns > 0 else 0.0
        events.append({
            "name": "drops/s", "ph": "C", "pid": _COUNTER_PID,
            "ts": ts, "args": {"rate": round(rate, 3)},
        })
        prev_t, prev_drops = t_ns, dropped
    return events


def export_serve_trace(report, path: str, max_tasks: int = 2000) -> int:
    """Write one trace for a serving run: the counter tracks plus the
    usual per-request queueing/execution spans.  Returns the number of
    events written."""
    events = serve_counter_events(report)
    events.extend(chrome_trace_events(report.run_stats(), max_tasks))
    with open(path, "w") as fh:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, fh)
    return len(events)
