"""Export run results as Chrome trace-event JSON (thin consumer).

Load the output in ``chrome://tracing`` / Perfetto to see each task's
spawn-to-schedule queueing and execution span — the visual version of
Fig. 10's latency story.  Works on the :class:`~repro.tasks.RunStats`
of any runtime in the reproduction.

The event-building machinery lives in :mod:`repro.obs.perfetto`; this
module keeps the historical entry points as re-exports.  The obs-aware
variants (per-SMM utilization counter tracks, scheduler-decision
instant events) are reached by passing an instrumented
:class:`repro.obs.Obs` as the exporters' ``obs`` argument, or by
importing :func:`repro.obs.obs_counter_events` /
:func:`repro.obs.obs_instant_events` directly.

Serving runs get extra rows: :func:`serve_counter_events` turns a
:class:`~repro.serve.ServeReport`'s timeline into Chrome *counter*
tracks (ingress queue depth, tasks in flight, drops/s), and
:func:`export_serve_trace` writes counters plus per-request spans in
one file.
"""

from __future__ import annotations

from repro.obs.perfetto import (
    chrome_trace_events,
    export_chrome_trace,
    export_serve_trace,
    obs_counter_events,
    obs_instant_events,
    serve_counter_events,
)

__all__ = [
    "chrome_trace_events",
    "export_chrome_trace",
    "export_serve_trace",
    "serve_counter_events",
    "obs_counter_events",
    "obs_instant_events",
]
