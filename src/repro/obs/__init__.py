"""``repro.obs`` — the unified observability layer.

Three pieces, all off by default and contractually free when off:

- the **metrics registry** (:class:`Obs`): counters, time-weighted
  gauges, per-sample distributions, virtual-time-weighted histograms,
  and counter-track timelines, with shared-by-name instruments and
  no-op null handles (:data:`NULL_COUNTER` and friends);
- the **sim profiler** (:class:`SimProfiler`): deterministic
  per-process event and virtual-time accounting, attached through
  ``engine.profiler``;
- the **Perfetto exporter** (:mod:`repro.obs.perfetto`): one
  trace-event JSON carrying task spans, serve counters, obs counter
  tracks (per-SMM utilization) and scheduler-decision instants.

Wiring: pass an :class:`Obs` as ``PagodaConfig(obs=...)`` (or set it
on a :class:`~repro.serve.ServeConfig`'s ``pagoda`` config) and every
layer of the stack hooks itself up; read the results back with
:meth:`Obs.snapshot` (validated against :data:`SNAPSHOT_SCHEMA`).
Snapshots are also the substrate :mod:`repro.scenarios` detectors
assert on (``ObsValue`` / ``ObsCounterMatchesReport``), so scenario
verdicts can check the dashboard against the billing.
"""

from repro.obs.perfetto import (
    chrome_trace_events,
    export_chrome_trace,
    export_serve_trace,
    obs_counter_events,
    obs_instant_events,
    serve_counter_events,
)
from repro.obs.profiler import ProcStat, SimProfiler
from repro.obs.registry import (
    AGGREGATE_SCHEMA,
    NULL_COUNTER,
    NULL_DISTRIBUTION,
    NULL_GAUGE,
    NULL_INSTRUMENT,
    NULL_SERIES,
    SNAPSHOT_SCHEMA,
    Counter,
    Distribution,
    Gauge,
    Obs,
    Series,
    VtHistogram,
    aggregate_snapshots,
    validate_snapshot,
)

__all__ = [
    "Obs",
    "AGGREGATE_SCHEMA",
    "aggregate_snapshots",
    "Counter",
    "Gauge",
    "Distribution",
    "VtHistogram",
    "Series",
    "NULL_INSTRUMENT",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_SERIES",
    "NULL_DISTRIBUTION",
    "SNAPSHOT_SCHEMA",
    "validate_snapshot",
    "SimProfiler",
    "ProcStat",
    "chrome_trace_events",
    "export_chrome_trace",
    "export_serve_trace",
    "serve_counter_events",
    "obs_counter_events",
    "obs_instant_events",
]
