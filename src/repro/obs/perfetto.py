"""Perfetto / Chrome trace-event export for runs, serves, and obs data.

One JSON file, loadable in ``chrome://tracing`` or ui.perfetto.dev,
carrying up to four layers:

- **per-task spans** — one thread row per task with its queued
  (spawn→sched) and exec (start→end) phases, from any runtime's
  :class:`~repro.tasks.RunStats`;
- **serve counter tracks** — ingress queue depth, tasks in flight,
  drop rate, from a :class:`~repro.serve.ServeReport` timeline;
- **obs counter tracks** — every :class:`~repro.obs.Series` timeline
  an instrumented run recorded (per-SMM busy warps, TaskTable slot
  occupancy, serve queue depth);
- **obs instant/span events** — the structured event stream (scheduler
  promote/schedule/defer decisions, drops), rendered as Chrome instant
  events on their own track.

:mod:`repro.traceviz` re-exports the plain-run and serve entry points,
so existing callers keep working; the obs-aware exporters live here.

Note on the queued span: a task spawned at t=0 whose scheduling also
happened at t=0 *was* queued (for zero time) and gets a zero-duration
span — dropping it (as the seed's ``sched_time > 0`` predicate did)
makes t=0 tasks look like they skipped the queue.  A ``sched_time``
before ``spawn_time`` means the record never got a real scheduling
stamp (e.g. the task died first); no span is emitted rather than a
negative-clamped one.
"""

from __future__ import annotations

import json
import warnings
from typing import Dict, List, Optional

from repro.tasks import RunStats

#: trace-event timestamps are microseconds
_NS_PER_US = 1e3

#: Chrome counter tracks run in their own (fake) process rows so they
#: group above the per-task spans in the viewer.
_SERVE_COUNTER_PID = 1
_OBS_COUNTER_PID = 2
_OBS_EVENT_PID = 3


def chrome_trace_events(stats: RunStats, max_tasks: int = 2000) -> List[Dict]:
    """Build trace events: one row per task, queueing + execution spans.

    ``max_tasks`` caps output size for huge runs (the viewer chokes on
    hundreds of thousands of rows); when the cap actually truncates,
    a :class:`UserWarning` says how many tasks were dropped rather
    than silently producing a partial trace.
    """
    if len(stats.results) > max_tasks:
        warnings.warn(
            f"trace truncated: {len(stats.results)} tasks, keeping the "
            f"first {max_tasks} (raise max_tasks to keep more)",
            stacklevel=2,
        )
    events: List[Dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "args": {"name": f"runtime: {stats.runtime}"},
    }]
    for res in stats.results[:max_tasks]:
        tid = res.task_id
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": res.name},
        })
        # a consistent record queues for sched_time - spawn_time >= 0;
        # zero duration (t=0 spawns scheduled instantly) still emits,
        # and an inverted pair (never actually scheduled) emits nothing
        if res.sched_time >= res.spawn_time >= 0:
            events.append({
                "name": "queued", "cat": "spawn", "ph": "X", "pid": 0,
                "tid": tid,
                "ts": res.spawn_time / _NS_PER_US,
                "dur": (res.sched_time - res.spawn_time) / _NS_PER_US,
                "args": {"task_id": res.task_id},
            })
        if res.end_time > res.start_time:
            events.append({
                "name": "exec", "cat": "gpu", "ph": "X", "pid": 0,
                "tid": tid,
                "ts": res.start_time / _NS_PER_US,
                "dur": (res.end_time - res.start_time) / _NS_PER_US,
                "args": {"latency_us": res.latency / _NS_PER_US},
            })
    return events


# -- serving-run counters ------------------------------------------------------


def serve_counter_events(report) -> List[Dict]:
    """Counter tracks from a :class:`~repro.serve.ServeReport` timeline.

    Three tracks, sampled at every admission/dispatch/completion edge:
    ingress queue depth, tasks in flight on the GPU(s), and the drop
    rate (requests/s, finite-differenced between samples — cumulative
    totals make a useless flat line in the viewer).
    """
    events: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": _SERVE_COUNTER_PID,
        "args": {"name": f"serve: {report.label}"},
    }]
    prev_t = prev_drops = 0.0
    for t_ns, depth, inflight, dropped, _finished in report.timeline:
        ts = t_ns / _NS_PER_US
        events.append({
            "name": "ingress queue", "ph": "C", "pid": _SERVE_COUNTER_PID,
            "ts": ts, "args": {"depth": depth},
        })
        events.append({
            "name": "in flight", "ph": "C", "pid": _SERVE_COUNTER_PID,
            "ts": ts, "args": {"tasks": inflight},
        })
        dt_ns = t_ns - prev_t
        rate = (dropped - prev_drops) * 1e9 / dt_ns if dt_ns > 0 else 0.0
        events.append({
            "name": "drops/s", "ph": "C", "pid": _SERVE_COUNTER_PID,
            "ts": ts, "args": {"rate": round(rate, 3)},
        })
        prev_t, prev_drops = t_ns, dropped
    return events


# -- obs tracks ----------------------------------------------------------------


def obs_counter_events(obs) -> List[Dict]:
    """One Chrome counter track per recorded :class:`~repro.obs.Series`
    timeline (per-SMM busy warps, slot occupancy, queue depth, ...)."""
    events: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": _OBS_COUNTER_PID,
        "args": {"name": "obs counters"},
    }]
    for name in sorted(obs.series):
        for t_ns, value in obs.series[name].samples:
            events.append({
                "name": name, "ph": "C", "pid": _OBS_COUNTER_PID,
                "ts": t_ns / _NS_PER_US, "args": {"value": value},
            })
    return events


def obs_instant_events(obs) -> List[Dict]:
    """The structured event stream as Chrome instant + duration events.

    Each distinct ``track`` gets a thread row; scheduler decisions
    (``promote``/``schedule``/``defer``) land as thread-scoped instants
    carrying their args, so a Perfetto query can count decisions per
    MTB directly from the trace.
    """
    events: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": _OBS_EVENT_PID,
        "args": {"name": "obs events"},
    }]
    tracks: Dict[str, int] = {}

    def tid_for(track: str) -> int:
        tid = tracks.get(track)
        if tid is None:
            tid = tracks[track] = len(tracks)
            events.append({
                "name": "thread_name", "ph": "M", "pid": _OBS_EVENT_PID,
                "tid": tid, "args": {"name": track},
            })
        return tid

    for track, name, t_ns, args in obs.instants:
        events.append({
            "name": name, "cat": track, "ph": "i", "s": "t",
            "pid": _OBS_EVENT_PID, "tid": tid_for(track),
            "ts": t_ns / _NS_PER_US, "args": dict(args),
        })
    for track, name, t_ns, dur_ns, args in obs.spans:
        events.append({
            "name": name, "cat": track, "ph": "X",
            "pid": _OBS_EVENT_PID, "tid": tid_for(track),
            "ts": t_ns / _NS_PER_US, "dur": dur_ns / _NS_PER_US,
            "args": dict(args),
        })
    return events


# -- writers -------------------------------------------------------------------


def _write(events: List[Dict], path: str) -> int:
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return len(events)


def export_chrome_trace(stats: RunStats, path: str,
                        max_tasks: int = 2000, obs=None) -> int:
    """Write one run's trace (spans, plus obs tracks when given);
    returns the number of events written."""
    events = chrome_trace_events(stats, max_tasks)
    if obs is not None:
        events.extend(obs_counter_events(obs))
        events.extend(obs_instant_events(obs))
    return _write(events, path)


def export_serve_trace(report, path: str, max_tasks: int = 2000,
                       obs=None) -> int:
    """Write one trace for a serving run: the counter tracks plus the
    usual per-request queueing/execution spans — and, when an ``obs``
    context is given, its counter timelines and structured events.
    Returns the number of events written."""
    events = serve_counter_events(report)
    events.extend(chrome_trace_events(report.run_stats(), max_tasks))
    if obs is not None:
        events.extend(obs_counter_events(obs))
        events.extend(obs_instant_events(obs))
    return _write(events, path)
