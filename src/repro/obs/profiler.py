"""The sim profiler: per-process event counts and virtual-time tallies.

``gem5``-style standardized stats start with knowing *where the events
go*: which processes the engine spends its queue on, and which consume
the virtual timeline.  The profiler answers both deterministically —
two identical runs produce identical reports — because it counts
resumes and integrates the simulated clock, never the wall clock.

Mechanism: :meth:`repro.sim.Engine.spawn` checks its ``profiler``
attribute and, when one is attached, wraps the spawned generator in
:meth:`SimProfiler.wrap`.  The wrapper is a pass-through generator that
forwards every yielded command untouched (so the engine's
``type(command) is float`` fast path still fires) and tallies, per
process name:

- **events** — how many times the engine resumed the process;
- **vtime_ns** — total simulated time the process spent blocked or
  sleeping between resumes (the virtual time its waits consumed).

It also records the peak heap depth seen at resume time, the
"how deep does the timer queue get" number a future engine change
would want to compare against.

When no profiler is attached (the default), ``spawn`` pays one ``is
None`` test and the run loop is byte-for-byte the uninstrumented one.
"""

from __future__ import annotations

from typing import Dict, Generator, List


class ProcStat:
    """Tallies for all processes sharing one name."""

    __slots__ = ("name", "events", "vtime_ns", "spawns")

    def __init__(self, name: str) -> None:
        self.name = name
        self.events = 0
        self.vtime_ns = 0.0
        self.spawns = 0


class SimProfiler:
    """Deterministic per-process accounting, aggregated by name prefix.

    Names are aggregated at full precision (``exec.mtb3.7`` stays
    distinct from ``exec.mtb3.8``); the report's top-N is sorted by
    events executed, ties broken by name so the ordering is total.
    """

    def __init__(self) -> None:
        self.stats: Dict[str, ProcStat] = {}
        self.heap_peak = 0

    def _stat(self, name: str) -> ProcStat:
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = ProcStat(name)
        return stat

    def wrap(self, gen: Generator, name: str, engine) -> Generator:
        """Instrumenting pass-through around a process generator."""
        stat = self._stat(name)
        stat.spawns += 1
        return self._run(gen, stat, engine)

    def _run(self, gen: Generator, stat: ProcStat, engine) -> Generator:
        queue = engine._queue
        send = gen.send
        value = None
        try:
            while True:
                try:
                    command = send(value)
                except StopIteration as stop:
                    return stop.value
                stat.events += 1
                # Lane-invariant queue depth: pending scheduled records
                # live in the heap on the default lane and in the
                # timestamp buckets (plus the not-yet-dispatched tail of
                # an in-flight batch) on the fast lane.  The sum reads
                # the same number on either lane, so heap_peak stays
                # byte-identical across lanes.
                depth = (len(queue) + engine._nbucketed
                         + engine._batch_sched_rem)
                if depth > self.heap_peak:
                    self.heap_peak = depth
                before = engine.now
                value = yield command
                stat.vtime_ns += engine.now - before
        finally:
            # interrupt() closes the wrapper; the wrapped generator
            # must be torn down with it or its finally blocks leak
            gen.close()

    # -- reporting ------------------------------------------------------------

    def top(self, n: int = 10) -> List[ProcStat]:
        """Top-``n`` process names by events executed (name-tiebroken)."""
        ranked = sorted(self.stats.values(),
                        key=lambda s: (-s.events, s.name))
        return ranked[:n]

    def report(self, n: int = 10) -> dict:
        """JSON-ready digest: top-N rows plus totals and heap depth."""
        return {
            "processes": len(self.stats),
            "heap_peak": self.heap_peak,
            "total_events": sum(s.events for s in self.stats.values()),
            "top": [
                {
                    "name": s.name,
                    "spawns": s.spawns,
                    "events": s.events,
                    "vtime_ns": round(s.vtime_ns, 3),
                }
                for s in self.top(n)
            ],
        }

    def format_report(self, n: int = 10) -> str:
        """Human-readable top-N table (the ``repro.bench`` obs report)."""
        rows = self.top(n)
        width = max([len(s.name) for s in rows], default=4)
        lines = [
            f"sim profile: {len(self.stats)} process names, "
            f"{sum(s.events for s in self.stats.values())} events, "
            f"heap peak {self.heap_peak}",
            f"{'process':<{width}}  {'spawns':>7}  {'events':>9}  "
            f"{'vtime_ms':>10}",
        ]
        for s in rows:
            lines.append(
                f"{s.name:<{width}}  {s.spawns:>7}  {s.events:>9}  "
                f"{s.vtime_ns / 1e6:>10.3f}"
            )
        return "\n".join(lines)
