"""The metrics registry: counters, gauges, and virtual-time statistics.

One :class:`Obs` instance is the observability context of one run.
Components accept an optional ``obs`` argument and either

- keep the reference and guard each hot call site with
  ``if self.obs is not None:`` (the pattern for per-event paths where
  even a no-op method call is measurable), or
- resolve *handles* once at construction —
  ``self._bytes = obs.counter("pcie.h2d.bytes") if obs else NULL_COUNTER``
  — and call them unconditionally (the pattern for per-transaction
  paths, where a single no-op bound-method call disappears in the
  noise).

Either way the contract is the same: **with no** ``Obs`` **attached, a
run is bit-identical to an uninstrumented one** — instrumentation never
takes simulated time, never perturbs event ordering, and the null
handles mutate nothing.

Metric naming follows ``<component>.<object>.<quantity>`` with dots,
lower case, and unit suffixes where the unit is not obvious:
``pcie.h2d.bytes``, ``table.slots_occupied``, ``sched.decisions.defer``,
``gpu.smm3.busy_warps``, ``serve.queue_depth``.  Names are the registry
key — asking for the same name twice returns the same instrument, which
is how two MTBs on one SMM share that SMM's utilization track.

Everything here is plain integer/float arithmetic on deterministic
inputs: snapshots of two identical runs are identical, dict for dict.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: schema tag carried by every stats snapshot (bump on shape changes).
SNAPSHOT_SCHEMA = "repro.obs/1"


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A piecewise-constant level with time-weighted averaging.

    ``add``/``set`` take the current virtual time; ``average(end)``
    integrates the level over the run (the same convention as
    :class:`repro.sim.trace.TimeWeighted`, which experiments already
    use for occupancy).
    """

    __slots__ = ("name", "_value", "_last", "_integral", "_start", "peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._last = 0.0
        self._integral = 0.0
        self._start = 0.0
        self.peak = 0.0

    def set(self, time: float, value: float) -> None:
        self._integral += self._value * (time - self._last)
        self._value = value
        self._last = time
        if value > self.peak:
            self.peak = value

    def add(self, time: float, delta: float) -> None:
        self.set(time, self._value + delta)

    @property
    def current(self) -> float:
        return self._value

    def average(self, end: float) -> float:
        span = end - self._start
        if span <= 0:
            return self._value
        return (self._integral + self._value * (end - self._last)) / span


class Distribution:
    """Order-free summary of per-event samples (count/sum/min/max).

    For queue waits and similar per-transaction quantities where the
    full histogram is overkill but mean and extremes matter.
    """

    __slots__ = ("name", "count", "sum", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class VtHistogram:
    """Virtual-time-weighted histogram of a piecewise-constant value.

    ``observe(t, v)`` says "the value became ``v`` at time ``t``"; each
    value is weighted by how long it held, so ``percentile(50)`` of a
    queue-depth histogram answers "what depth did the queue sit at half
    of the time" — the distribution Fig. 10-style breakdowns need,
    which a per-sample histogram (weighting each *change* equally)
    silently gets wrong.
    """

    __slots__ = ("name", "weights", "_value", "_last", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        #: value -> total virtual time spent at that value.
        self.weights: Dict[float, float] = {}
        self._value = 0.0
        self._last = 0.0
        self._started = False

    def observe(self, time: float, value: float) -> None:
        if self._started:
            span = time - self._last
            if span > 0:
                self.weights[self._value] = (
                    self.weights.get(self._value, 0.0) + span
                )
        self._started = True
        self._value = value
        self._last = time

    def close(self, end: float) -> None:
        """Account the final value's dwell up to ``end``."""
        if self._started and end > self._last:
            self.weights[self._value] = (
                self.weights.get(self._value, 0.0) + (end - self._last)
            )
            self._last = end

    @property
    def total_weight(self) -> float:
        return sum(self.weights.values())

    def percentile(self, pct: float) -> float:
        """Smallest value at or below which the level sat ``pct`` % of
        the observed time."""
        if not 0 <= pct <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.weights:
            raise ValueError(f"empty vt-histogram {self.name!r}")
        total = self.total_weight
        target = pct / 100.0 * total
        cumulative = 0.0
        last_value = 0.0
        for value in sorted(self.weights):
            cumulative += self.weights[value]
            last_value = value
            if cumulative >= target:
                return value
        return last_value


class Series:
    """A (time, value) counter-track timeline for the trace exporter.

    ``add(t, delta)`` keeps a running level and appends one sample per
    change; same-instant changes coalesce into the final level so the
    Perfetto counter track never shows a same-timestamp zigzag.
    """

    __slots__ = ("name", "samples", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []
        self._value = 0.0

    def add(self, time: float, delta: float) -> None:
        self.set(time, self._value + delta)

    def set(self, time: float, value: float) -> None:
        self._value = value
        if self.samples and self.samples[-1][0] == time:
            self.samples[-1] = (time, value)
        else:
            self.samples.append((time, value))

    @property
    def current(self) -> float:
        return self._value


class _NullInstrument:
    """Shared no-op implementation behind every disabled handle."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, time: float, value: float) -> None:
        pass

    def add(self, time: float, delta: float) -> None:
        pass

    def record(self, value: float) -> None:
        pass

    def observe(self, time: float, value: float) -> None:
        pass


#: the no-op handle: hand this out wherever obs is disabled, and the
#: instrumented call site pays one bound-method call and nothing else.
NULL_INSTRUMENT = _NullInstrument()
NULL_COUNTER = NULL_INSTRUMENT
NULL_GAUGE = NULL_INSTRUMENT
NULL_SERIES = NULL_INSTRUMENT
NULL_DISTRIBUTION = NULL_INSTRUMENT


class Obs:
    """One run's observability context: registry + event stream.

    ``profile=True`` additionally attaches a :class:`SimProfiler` to
    every engine the caller wires it into (see
    :meth:`repro.sim.Engine.spawn`), producing the deterministic
    top-N-processes report in :meth:`snapshot`.
    """

    def __init__(self, profile: bool = True, top_n: int = 10) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.distributions: Dict[str, Distribution] = {}
        self.vt_histograms: Dict[str, VtHistogram] = {}
        self.series: Dict[str, Series] = {}
        #: structured instant events: (track, name, t_ns, args-dict).
        self.instants: List[Tuple[str, str, float, dict]] = []
        #: structured spans: (track, name, t_ns, dur_ns, args-dict).
        self.spans: List[Tuple[str, str, float, float, dict]] = []
        self.top_n = top_n
        self.profiler = None
        if profile:
            from repro.obs.profiler import SimProfiler
            self.profiler = SimProfiler()

    # -- instrument lookup (same name -> same instrument) --------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def distribution(self, name: str) -> Distribution:
        d = self.distributions.get(name)
        if d is None:
            d = self.distributions[name] = Distribution(name)
        return d

    def vt_histogram(self, name: str) -> VtHistogram:
        h = self.vt_histograms.get(name)
        if h is None:
            h = self.vt_histograms[name] = VtHistogram(name)
        return h

    def timeline(self, name: str) -> Series:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = Series(name)
        return s

    # -- event stream ---------------------------------------------------------

    def instant(self, track: str, name: str, t_ns: float, **args) -> None:
        """One structured instant event (a scheduler decision, a drop)."""
        self.instants.append((track, name, t_ns, args))

    def span(self, track: str, name: str, t_ns: float, dur_ns: float,
             **args) -> None:
        """One structured duration event."""
        self.spans.append((track, name, t_ns, dur_ns, args))

    # -- the snapshot ---------------------------------------------------------

    def snapshot(self, engine=None) -> dict:
        """The run's whole statistics digest, JSON-ready and validated.

        Deterministic: sorted names, engine-clock timestamps only.
        ``engine`` adds the sim section (events executed, final clock)
        and closes time-weighted instruments at the engine's ``now``.
        """
        now = float(engine.now) if engine is not None else 0.0
        snap: dict = {
            "schema": SNAPSHOT_SCHEMA,
            "now_ns": now,
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {
                    "current": g.current,
                    "peak": g.peak,
                    "average": round(g.average(now), 6),
                }
                for n, g in sorted(self.gauges.items())
            },
            "distributions": {
                n: {
                    "count": d.count,
                    "sum": round(d.sum, 6),
                    "mean": round(d.mean, 6),
                    "min": d.min if d.min is not None else 0.0,
                    "max": d.max if d.max is not None else 0.0,
                }
                for n, d in sorted(self.distributions.items())
            },
            "vt_histograms": {
                n: {
                    "total_weight_ns": round(h.total_weight, 6),
                    "p50": h.percentile(50) if h.weights else 0.0,
                    "p99": h.percentile(99) if h.weights else 0.0,
                }
                for n, h in sorted(self.vt_histograms.items())
            },
            "series": {
                n: {"samples": len(s.samples), "last": s.current}
                for n, s in sorted(self.series.items())
            },
            "events": {
                "instants": len(self.instants),
                "spans": len(self.spans),
            },
        }
        if engine is not None:
            snap["sim"] = {
                "events_executed": engine.event_count,
                "final_now_ns": now,
            }
        if self.profiler is not None:
            snap["profile"] = self.profiler.report(self.top_n)
        return validate_snapshot(snap)


#: schema tag of a cross-node merged snapshot.
AGGREGATE_SCHEMA = "repro.obs/aggregate/1"


def aggregate_snapshots(snaps: Dict[str, dict]) -> dict:
    """Merge per-node :meth:`Obs.snapshot` dicts into one fleet digest.

    ``snaps`` maps node name -> snapshot (each validated against
    ``repro.obs/1``).  Counters, distribution mass, series samples and
    event counts are summed; gauge peaks and clocks take the max;
    gauge averages combine time-weighted by each node's clock.
    Determinism carries over: the output is a pure function of the
    inputs with sorted keys, independent of dict iteration order.
    Percentile fields (vt-histogram p50/p99) are *not* mergeable from
    digests and are dropped — only the total dwell mass survives.
    """
    if not snaps:
        raise ValueError("nothing to aggregate")
    parts = [validate_snapshot(snaps[name]) for name in sorted(snaps)]

    def _names(section: str) -> List[str]:
        return sorted({n for p in parts for n in p[section]})

    def _rows(section: str, name: str) -> List[dict]:
        return [p[section][name] for p in parts if name in p[section]]

    counters = {
        n: sum(p["counters"].get(n, 0) for p in parts)
        for n in _names("counters")
    }
    total_now = sum(p["now_ns"] for p in parts)
    gauges = {}
    for n in _names("gauges"):
        rows = _rows("gauges", n)
        weighted = sum(
            p["gauges"][n]["average"] * p["now_ns"]
            for p in parts if n in p["gauges"]
        )
        gauges[n] = {
            "current": sum(r["current"] for r in rows),
            "peak": max(r["peak"] for r in rows),
            "average": round(weighted / total_now, 6) if total_now else 0.0,
        }
    distributions = {}
    for n in _names("distributions"):
        rows = _rows("distributions", n)
        count = sum(r["count"] for r in rows)
        total = sum(r["sum"] for r in rows)
        distributions[n] = {
            "count": count,
            "sum": round(total, 6),
            "mean": round(total / count, 6) if count else 0.0,
            "min": min(r["min"] for r in rows),
            "max": max(r["max"] for r in rows),
        }
    vt_histograms = {
        n: {"total_weight_ns": round(
            sum(r["total_weight_ns"] for r in _rows("vt_histograms", n)),
            6)}
        for n in _names("vt_histograms")
    }
    series = {
        n: {"samples": sum(r["samples"] for r in _rows("series", n))}
        for n in _names("series")
    }
    agg: dict = {
        "schema": AGGREGATE_SCHEMA,
        "nodes": sorted(snaps),
        "now_ns": max(p["now_ns"] for p in parts),
        "counters": counters,
        "gauges": gauges,
        "distributions": distributions,
        "vt_histograms": vt_histograms,
        "series": series,
        "events": {
            "instants": sum(p["events"]["instants"] for p in parts),
            "spans": sum(p["events"]["spans"] for p in parts),
        },
    }
    sims = [p["sim"] for p in parts if "sim" in p]
    if sims:
        agg["sim"] = {
            "events_executed": sum(s["events_executed"] for s in sims),
            "final_now_ns": max(s["final_now_ns"] for s in sims),
        }
    return agg


def validate_snapshot(snap: dict) -> dict:
    """Check a snapshot against the ``repro.obs/1`` shape; returns it.

    Plain-python validation (no jsonschema dependency): required keys,
    value types, and the per-section record shapes.  Raises
    :class:`ValueError` naming the offending field.
    """
    if not isinstance(snap, dict):
        raise ValueError("snapshot must be a dict")
    if snap.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"snapshot schema {snap.get('schema')!r} != {SNAPSHOT_SCHEMA!r}"
        )
    if not isinstance(snap.get("now_ns"), (int, float)):
        raise ValueError("snapshot.now_ns must be a number")
    for section, fields in (
        ("counters", None),
        ("gauges", ("current", "peak", "average")),
        ("distributions", ("count", "sum", "mean", "min", "max")),
        ("vt_histograms", ("total_weight_ns", "p50", "p99")),
        ("series", ("samples", "last")),
    ):
        table = snap.get(section)
        if not isinstance(table, dict):
            raise ValueError(f"snapshot.{section} must be a dict")
        for name, value in table.items():
            if fields is None:
                if not isinstance(value, (int, float)):
                    raise ValueError(
                        f"snapshot.{section}[{name!r}] must be a number"
                    )
                continue
            if not isinstance(value, dict):
                raise ValueError(f"snapshot.{section}[{name!r}] must be a dict")
            for f in fields:
                if not isinstance(value.get(f), (int, float)):
                    raise ValueError(
                        f"snapshot.{section}[{name!r}].{f} must be a number"
                    )
    events = snap.get("events")
    if (not isinstance(events, dict)
            or not isinstance(events.get("instants"), int)
            or not isinstance(events.get("spans"), int)):
        raise ValueError("snapshot.events must carry instants/spans counts")
    if "sim" in snap:
        sim = snap["sim"]
        if (not isinstance(sim, dict)
                or not isinstance(sim.get("events_executed"), int)
                or not isinstance(sim.get("final_now_ns"), (int, float))):
            raise ValueError("snapshot.sim shape invalid")
    if "profile" in snap:
        prof = snap["profile"]
        if not isinstance(prof, dict) or not isinstance(
                prof.get("top"), list):
            raise ValueError("snapshot.profile.top must be a list")
        for row in prof["top"]:
            if (not isinstance(row, dict)
                    or not isinstance(row.get("name"), str)
                    or not isinstance(row.get("events"), int)
                    or not isinstance(row.get("vtime_ns"), (int, float))):
                raise ValueError("snapshot.profile.top rows malformed")
        if not isinstance(prof.get("heap_peak"), int):
            raise ValueError("snapshot.profile.heap_peak must be an int")
    return snap
