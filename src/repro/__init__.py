"""Pagoda (PPoPP 2017) reproduction.

Top-level convenience exports; see the subpackages for the full
surface:

- :mod:`repro.core` — Pagoda itself (MasterKernel, TaskTable, host API)
- :mod:`repro.baselines` — CUDA-HyperQ, GeMTC, static fusion
- :mod:`repro.cpu` — PThreads / sequential CPU baselines
- :mod:`repro.workloads` — the nine §6 benchmarks
- :mod:`repro.bench` — one experiment module per paper table/figure
- :mod:`repro.sim`, :mod:`repro.gpu`, :mod:`repro.pcie`,
  :mod:`repro.cuda` — the simulated hardware/software substrate
"""

from repro.tasks import RunStats, TaskResult, TaskSpec

__version__ = "1.0.0"

__all__ = ["TaskSpec", "TaskResult", "RunStats", "__version__"]
