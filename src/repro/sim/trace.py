"""Metric collection: event series and time-weighted values.

Experiments observe the simulation through these recorders rather than
poking at model internals, which keeps the hardware models free of
reporting concerns.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple


class Recorder:
    """Append-only named series of ``(time, value)`` samples."""

    def __init__(self) -> None:
        self._series: Dict[str, List[Tuple[float, float]]] = {}

    def sample(self, name: str, time: float, value: float) -> None:
        """Append one (time, value) sample to a named series."""
        self._series.setdefault(name, []).append((time, value))

    def series(self, name: str) -> List[Tuple[float, float]]:
        """The recorded (time, value) pairs of one series."""
        return list(self._series.get(name, []))

    def values(self, name: str) -> List[float]:
        """Just the values of one series, in record order."""
        return [v for _t, v in self._series.get(name, [])]

    def count(self, name: str) -> int:
        """Number of samples recorded under a name."""
        return len(self._series.get(name, []))

    def mean(self, name: str) -> float:
        """Arithmetic mean of a series' values."""
        vals = self.values(name)
        if not vals:
            raise ValueError(f"no samples for {name!r}")
        return sum(vals) / len(vals)

    def names(self) -> List[str]:
        """Sorted names of all recorded series."""
        return sorted(self._series)


class TimeWeighted:
    """Time-weighted average of a piecewise-constant quantity.

    Used for occupancy: ``set(t, resident_warps)`` on every change, then
    ``average(t_end)`` gives mean residency over the run.
    """

    def __init__(self, initial: float = 0.0, start: float = 0.0) -> None:
        self._value = initial
        self._last = start
        self._integral = 0.0
        self._start = start
        self.peak = initial

    def set(self, time: float, value: float) -> None:
        """Set the piecewise-constant value at a time point."""
        if time < self._last:
            raise ValueError("time went backwards")
        self._integral += self._value * (time - self._last)
        self._value = value
        self._last = time
        if value > self.peak:
            self.peak = value

    def add(self, time: float, delta: float) -> None:
        """Add a delta to the current value at a time point."""
        if time < self._last:
            raise ValueError("time went backwards")
        value = self._value + delta
        self._integral += self._value * (time - self._last)
        self._value = value
        self._last = time
        if value > self.peak:
            self.peak = value

    @property
    def current(self) -> float:
        """The current (latest) value."""
        return self._value

    def average(self, end: float) -> float:
        """Time-weighted average up to ``end``."""
        span = end - self._start
        if span <= 0:
            return self._value
        return (self._integral + self._value * (end - self._last)) / span

    def integral(self, end: float) -> float:
        """Accumulated value·time integral up to ``end``.

        Differences of this between two observation points give the
        integral over a window, which is what epoch-based controllers
        (elastic repartitioning) use to compute window utilization.
        """
        if end <= self._last:
            return self._integral
        return self._integral + self._value * (end - self._last)


def geometric_mean(values: List[float]) -> float:
    """Geometric mean; the paper's summary statistic for speedups."""
    if not values:
        raise ValueError("empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
