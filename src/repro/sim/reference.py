"""Seed-faithful reference implementations of the simulation core.

This module is a frozen snapshot of the *original* (pre-optimization)
``Engine``/``Process`` and ``ProcessorSharing`` implementations: a
binary heap of ``(time, seq, callback)`` tuples with per-event lambda
closures, and the O(active jobs) rescan formulation of processor
sharing.  It exists solely so the golden-schedule equivalence tests in
``tests/test_determinism.py`` can prove the optimized hot paths
(slotted timer records + ready ring in :mod:`repro.sim.engine`,
virtual-time processor sharing in :mod:`repro.sim.resources`) are
behaviorally identical — same simulated clocks, same event ordering,
same per-task stats.

Do **not** use these classes outside tests: they are deliberately slow
and receive no new features.  Bug fixes that change observable
behavior (e.g. the ``Process.interrupt`` live-count fix) are applied
here too, so the reference stays comparable under
``run_until_idle_processes``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, Optional

from repro.sim.engine import Delay
from repro.sim.events import Event

_EPS = 1e-9
_MIN_ETA = 1e-3


class ReferenceProcess:
    """Seed :class:`~repro.sim.engine.Process` (closure-driven)."""

    __slots__ = ("engine", "gen", "name", "alive", "result", "_done", "_waiters")

    def __init__(self, engine: "ReferenceEngine", gen: Generator,
                 name: str = "") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        self.result: Any = None
        self._waiters: list = []
        self._done = False

    def _finish(self, result: Any) -> None:
        self.alive = False
        self._done = True
        self.result = result
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            wake(result)

    def _on_done(self, wake: Callable[[Any], None]) -> None:
        if self._done:
            wake(self.result)
        else:
            self._waiters.append(wake)

    def interrupt(self, exc: Optional[BaseException] = None) -> None:
        if not self.alive:
            return
        self.alive = False
        self._done = True
        # live-count fix mirrored from the optimized engine: settle the
        # engine's live count here, not at the next (possibly never)
        # scheduled resume.
        self.engine._nlive -= 1
        self.gen.close()
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            wake(None)


class ReferenceEngine:
    """Seed engine: heap of ``(when, seq, fn)`` tuples, lambda resumes."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list = []
        self._seq = 0
        self._nlive = 0
        self.event_count = 0

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, fn))

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        self.call_at(self.now + delay, fn)

    def spawn(self, gen: Generator, name: str = "") -> ReferenceProcess:
        proc = ReferenceProcess(self, gen, name)
        self._nlive += 1
        self.call_after(0.0, lambda: self._step(proc, None))
        return proc

    def _step(self, proc: ReferenceProcess, value: Any) -> None:
        if not proc.alive:
            return
        try:
            command = proc.gen.send(value)
        except StopIteration as stop:
            self._nlive -= 1
            proc._finish(stop.value)
            return
        self._dispatch(proc, command)

    def _dispatch(self, proc: ReferenceProcess, command: Any) -> None:
        if isinstance(command, (int, float)):
            self.call_after(float(command), lambda: self._step(proc, None))
        elif isinstance(command, Event):
            if command.fired:
                self.call_after(0.0, lambda: self._step(proc, command.value))
            else:
                command._add_waiter(lambda v: self._step(proc, v))
        elif isinstance(command, Delay):
            self.call_after(command.duration, lambda: self._step(proc, None))
        elif isinstance(command, ReferenceProcess):
            if command._done:
                self.call_after(0.0, lambda: self._step(proc, command.result))
            else:
                command._on_done(lambda v: self._step(proc, v))
        else:
            raise TypeError(
                f"process {proc.name!r} yielded unsupported command: {command!r}"
            )

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        queue = self._queue
        count = 0
        while queue:
            when, _seq, fn = queue[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(queue)
            self.now = when
            fn()
            count += 1
            self.event_count += 1
            if max_events is not None and count >= max_events:
                break
        return self.now

    def run_until_idle_processes(self, until: Optional[float] = None) -> float:
        queue = self._queue
        while queue and self._nlive > 0:
            when, _seq, fn = queue[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(queue)
            self.now = when
            fn()
            self.event_count += 1
        return self.now

    def timeout(self, delay: float, value: Any = None) -> Event:
        ev = Event()
        self.call_after(delay, lambda: ev.fire(value))
        return ev


class ReferenceProcessorSharing:
    """Seed processor sharing: O(active jobs) rescan per state change."""

    def __init__(
        self,
        engine,
        rate: float,
        per_job_cap: Optional[float] = None,
        name: str = "",
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.engine = engine
        self.rate = rate
        self.per_job_cap = per_job_cap if per_job_cap is not None else rate
        self.name = name
        self._jobs: Dict[int, list] = {}  # id -> [remaining, Event]
        self._next_id = 0
        self._last_update = 0.0
        self._timer_version = 0
        self._busy_integral = 0.0

    def _job_rate(self) -> float:
        n = len(self._jobs)
        if n == 0:
            return 0.0
        return min(self.per_job_cap, self.rate / n)

    def _advance(self) -> None:
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed > 0 and self._jobs:
            served = elapsed * self._job_rate()
            for job in self._jobs.values():
                job[0] -= served
            self._busy_integral += elapsed * min(
                self.rate, len(self._jobs) * self.per_job_cap
            )
        self._last_update = now

    def _reschedule(self) -> None:
        self._timer_version += 1
        if not self._jobs:
            return
        version = self._timer_version
        job_rate = self._job_rate()
        shortest = min(job[0] for job in self._jobs.values())
        eta = max(max(shortest, 0.0) / job_rate, _MIN_ETA)
        self.engine.call_after(eta, lambda: self._on_timer(version))

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return
        self._advance()
        finished = [
            (jid, job) for jid, job in self._jobs.items() if job[0] <= _EPS
        ]
        for jid, _job in finished:
            del self._jobs[jid]
        self._reschedule()
        for _jid, job in finished:
            job[1].fire(None)

    def consume(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event()
        if amount == 0:
            ev.fire(None)
            return ev
        self._advance()
        self._next_id += 1
        self._jobs[self._next_id] = [float(amount), ev]
        self._reschedule()
        return ev

    def consume_after(self, delay: float, amount: float) -> Event:
        """Join the pool after a private ``delay``, then consume
        (timing-equivalent to sleeping ``delay`` before ``consume``)."""
        if delay <= 0:
            return self.consume(amount)
        ev = Event()

        def join() -> None:
            self.consume(amount)._add_waiter(ev.fire)

        self.engine.call_after(delay, join)
        return ev

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def utilization(self) -> float:
        self._advance()
        total = self.engine.now
        if total <= 0:
            return 0.0
        return self._busy_integral / (self.rate * total)
