"""Discrete-event simulation substrate.

This package is the execution substrate for the whole reproduction: a
lean, callback-cored discrete-event engine with generator-coroutine
processes, plus the synchronization and resource primitives the hardware
models are built from.

Public surface:

- :class:`~repro.sim.engine.Engine` — event loop and simulated clock.
- :class:`~repro.sim.engine.Process` — a running coroutine.
- :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Signal` —
  one-shot and broadcast waitables.
- :class:`~repro.sim.resources.FifoResource` — N-server FIFO queue.
- :class:`~repro.sim.resources.ProcessorSharing` — rate-shared resource
  with a per-customer rate cap (models SMM issue slots, memory and PCIe
  bandwidth).
- :class:`~repro.sim.resources.Store` — FIFO item queue (producer /
  consumer).
- :class:`~repro.sim.trace.Recorder` — time-series metric collection.
"""

from repro.sim.engine import DeadlockError, Engine, Process, Delay
from repro.sim.events import Event, Signal, all_of, any_of
from repro.sim.resources import FifoResource, ProcessorSharing, Store
from repro.sim.trace import Recorder, TimeWeighted

__all__ = [
    "DeadlockError",
    "Engine",
    "Process",
    "Delay",
    "Event",
    "Signal",
    "any_of",
    "all_of",
    "FifoResource",
    "ProcessorSharing",
    "Store",
    "Recorder",
    "TimeWeighted",
]
