"""Event loop, simulated clock, and coroutine processes.

The engine is deliberately minimal: a binary heap of ``(time, seq,
callback)`` entries and a cooperative process abstraction on top.  A
process is a Python generator; each ``yield`` hands control back to the
engine together with a *command* describing when to resume:

- a ``float``/``int`` or :class:`Delay` — resume after that much
  simulated time;
- an :class:`~repro.sim.events.Event` — resume when the event fires (the
  event's value becomes the value of the ``yield`` expression);
- a :class:`Process` — resume when that process terminates (join).

Subroutines are plain generators invoked with ``yield from``; no extra
machinery is needed, which keeps the per-event overhead low (the whole
reproduction pushes millions of events through this loop).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.sim.events import Event


class Delay:
    """Explicit wrapper for a pure time delay command.

    Yielding a bare number does the same thing; the wrapper exists for
    readability at call sites where a variable could be mistaken for an
    event.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative delay: {duration!r}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Delay({self.duration!r})"


class Process:
    """A coroutine being driven by the engine.

    Terminates when the generator returns or raises ``StopIteration``;
    the generator's return value becomes :attr:`result`.  Other processes
    can join by yielding the process object.
    """

    __slots__ = ("engine", "gen", "name", "alive", "result", "_done", "_waiters")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        self.result: Any = None
        self._waiters: list = []
        self._done = False

    def _finish(self, result: Any) -> None:
        self.alive = False
        self._done = True
        self.result = result
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            wake(result)

    def _on_done(self, wake: Callable[[Any], None]) -> None:
        if self._done:
            wake(self.result)
        else:
            self._waiters.append(wake)

    def interrupt(self, exc: Optional[BaseException] = None) -> None:
        """Kill the process.  Used to tear down daemon loops at the end
        of an experiment (e.g. the MasterKernel's scheduler warps)."""
        if not self.alive:
            return
        self.alive = False
        self._done = True
        self.gen.close()
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            wake(None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} {state}>"


class Engine:
    """Discrete-event loop with a monotonically advancing clock.

    Time units are nanoseconds by convention throughout the
    reproduction (one Titan X cycle at 1 GHz == 1 ns), but the engine
    itself is unit-agnostic.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list = []
        self._seq = 0
        self._nlive = 0
        self.event_count = 0

    # -- low-level scheduling -------------------------------------------------

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, fn))

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` simulated time units."""
        self.call_at(self.now + delay, fn)

    # -- processes ------------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process on the next engine step."""
        proc = Process(self, gen, name)
        self._nlive += 1
        self.call_after(0.0, lambda: self._step(proc, None))
        return proc

    def _step(self, proc: Process, value: Any) -> None:
        if not proc.alive:
            self._nlive -= 1
            return
        try:
            command = proc.gen.send(value)
        except StopIteration as stop:
            self._nlive -= 1
            proc._finish(stop.value)
            return
        self._dispatch(proc, command)

    def _dispatch(self, proc: Process, command: Any) -> None:
        if isinstance(command, (int, float)):
            self.call_after(float(command), lambda: self._step(proc, None))
        elif isinstance(command, Event):
            if command.fired:
                # Bounce through the queue: waiting on a long chain of
                # already-fired events must not recurse the C stack.
                self.call_after(0.0, lambda: self._step(proc, command.value))
            else:
                command._add_waiter(lambda v: self._step(proc, v))
        elif isinstance(command, Delay):
            self.call_after(command.duration, lambda: self._step(proc, None))
        elif isinstance(command, Process):
            if command._done:
                self.call_after(0.0, lambda: self._step(proc, command.result))
            else:
                command._on_done(lambda v: self._step(proc, v))
        else:
            raise TypeError(
                f"process {proc.name!r} yielded unsupported command: {command!r}"
            )

    # -- run loop -------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Stops when the queue is empty, when the clock would pass
        ``until``, or after ``max_events`` callbacks (a runaway guard for
        tests).  Returns the final clock value.
        """
        queue = self._queue
        count = 0
        while queue:
            when, _seq, fn = queue[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(queue)
            self.now = when
            fn()
            count += 1
            self.event_count += 1
            if max_events is not None and count >= max_events:
                break
        return self.now

    def run_until_idle_processes(self, until: Optional[float] = None) -> float:
        """Like :meth:`run`, but also stops once no process is alive.

        Daemon loops (e.g. Pagoda's scheduler warps) block on events, so
        the queue empties naturally; this variant exists for workloads
        that keep re-arming timers.
        """
        queue = self._queue
        while queue and self._nlive > 0:
            when, _seq, fn = queue[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(queue)
            self.now = when
            fn()
            self.event_count += 1
        return self.now

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires after ``delay``; usable for sleep-with-value."""
        ev = Event()
        self.call_after(delay, lambda: ev.fire(value))
        return ev
