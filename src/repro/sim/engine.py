"""Event loop, simulated clock, and coroutine processes.

The engine is deliberately minimal: a priority queue of *slotted timer
records* and a cooperative process abstraction on top.  A process is a
Python generator; each ``yield`` hands control back to the engine
together with a *command* describing when to resume:

- a ``float``/``int`` or :class:`Delay` — resume after that much
  simulated time;
- an :class:`~repro.sim.events.Event` — resume when the event fires (the
  event's value becomes the value of the ``yield`` expression);
- a :class:`Process` — resume when that process terminates (join).

Subroutines are plain generators invoked with ``yield from``; no extra
machinery is needed, which keeps the per-event overhead low (the whole
reproduction pushes millions of events through this loop).

Hot-path design (the fast paths that make paper-scale runs practical):

- **Slotted timer records.**  Heap entries are plain 5-tuples
  ``(when, seq, kind, payload, value)``.  ``kind`` discriminates a bare
  callback (``payload()``) from a process resume
  (``_step(payload, value)``), so the common resume case allocates *no*
  lambda closure — the seed implementation paid one closure plus one
  3-tuple per event.  ``seq`` is unique, so heap comparisons never
  reach the non-comparable payload.
- **Ready ring.**  Zero-delay wakeups — process spawns, joins on
  already-finished processes, and bounces through already-fired events
  — skip the heap entirely and go onto a FIFO deque of
  ``(seq, kind, payload, value)`` records at the *current* instant.
  The run loop merges ring and heap by the global ``(when, seq)``
  order (ring entries all carry ``when == now``), so observable event
  ordering is bit-identical to the seed's all-heap behaviour while
  same-timestamp wakeups cost O(1) instead of O(log n).
- **Branch-first dispatch.**  ``_step`` inlines the command dispatch
  and tests ``type(command) is float`` first — the overwhelmingly
  common numeric-delay case pays a single pointer compare.
- **Specialized run loops.**  ``run()`` with neither ``until`` nor
  ``max_events`` takes an unguarded loop body; the ``None`` checks are
  hoisted out so the common case pays nothing per event.
- **Engine lanes.**  ``Engine(lane="fast")`` selects the batch-drain
  fast lane: scheduled records are kept in per-timestamp *buckets*
  (a dict keyed by ``when`` plus a heap of distinct timestamps), and
  the run loop drains every record sharing the current instant into
  one flat batch before dispatching.  Same-timestamp-heavy workloads
  (sibling warps, wide task fans) pay O(1) dict ops per event instead
  of O(log n) heap sifts.  Batches are dispatched in global
  ``(when, seq)`` order, so schedules, clocks, and event counts are
  bit-identical to the default lane (see docs/INTERNALS.md §10 and
  ``tests/differential/``).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Optional

from repro.sim.events import Event

#: ``kind`` values for slotted timer records.
_FN = 0      # payload is a zero-argument callable
_RESUME = 1  # payload is a Process; resume it with ``value``


class DeadlockError(RuntimeError):
    """The event queue drained while non-daemon processes were still
    blocked — nothing can ever wake them.

    The message names each blocked process and the event/process it
    waits on, so a wedged run points at its culprit instead of
    returning silently with work undone.  Daemon processes (scheduler
    warps, dispatch loops) are expected to outlive the queue and are
    exempt.
    """

    def __init__(self, blocked: list) -> None:
        self.blocked = list(blocked)
        lines = [
            f"  {proc.name!r} waiting on {proc.waiting_on!r}"
            for proc in self.blocked
        ]
        super().__init__(
            "event queue drained with "
            f"{len(self.blocked)} process(es) still blocked:\n"
            + "\n".join(lines)
        )


class Delay:
    """Explicit wrapper for a pure time delay command.

    Yielding a bare number does the same thing; the wrapper exists for
    readability at call sites where a variable could be mistaken for an
    event.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative delay: {duration!r}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Delay({self.duration!r})"


class Process:
    """A coroutine being driven by the engine.

    Terminates when the generator returns or raises ``StopIteration``;
    the generator's return value becomes :attr:`result`.  Other processes
    can join by yielding the process object.
    """

    __slots__ = ("engine", "gen", "name", "alive", "result", "_done",
                 "_waiters", "daemon", "waiting_on")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "",
                 daemon: bool = False) -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        self.result: Any = None
        self._waiters: list = []
        self._done = False
        #: daemon processes (scheduler warps, dispatch loops) may still
        #: be blocked when the queue drains without it being a deadlock.
        self.daemon = daemon
        #: the Event/Process this process last blocked on (diagnostic;
        #: meaningful only while blocked — timer waits never deadlock
        #: because their resume record keeps the queue non-empty).
        self.waiting_on: Any = None

    def _finish(self, result: Any) -> None:
        self.alive = False
        self._done = True
        self.result = result
        self.engine._live.discard(self)
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            wake(result)

    def _on_done(self, wake: Callable[[Any], None]) -> None:
        if self._done:
            wake(self.result)
        else:
            self._waiters.append(wake)

    def interrupt(self, exc: Optional[BaseException] = None) -> None:
        """Kill the process.  Used to tear down daemon loops at the end
        of an experiment (e.g. the MasterKernel's scheduler warps).

        The engine's live-process count is settled here: a process
        blocked on an event that never fires has no scheduled resume,
        so deferring the decrement to the next ``_step`` (as the seed
        did) leaked the live count and made
        :meth:`Engine.run_until_idle_processes` spin past the true
        idle point.
        """
        if not self.alive:
            return
        self.alive = False
        self._done = True
        self.engine._nlive -= 1
        self.engine._live.discard(self)
        self.gen.close()
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            wake(None)

    def __call__(self, value: Any = None) -> None:
        """Wake the process with ``value``.

        A process doubles as its own wake callback: the engine enrolls
        the process object directly as an event/join waiter instead of
        allocating a closure per wait — event waits are the dominant
        command on the Pagoda control path.  The engine's resume body
        is inlined here (rather than bouncing through ``_step``)
        because every event fire lands in this frame.
        """
        if not self.alive:
            return  # interrupted; interrupt() already settled _nlive
        engine = self.engine
        try:
            command = self.gen.send(value)
        except StopIteration as stop:
            engine._nlive -= 1
            self._finish(stop.value)
            return
        if type(command) is float:
            if command < 0.0:
                raise ValueError(f"cannot schedule in the past: {command!r}")
            engine._seq = seq = engine._seq + 1
            if engine._fast:
                when = engine.now + command
                buckets = engine._buckets
                b = buckets.get(when)
                if b is None:
                    buckets[when] = [(seq, _RESUME, self, None)]
                    heapq.heappush(engine._times, when)
                else:
                    b.append((seq, _RESUME, self, None))
                engine._nbucketed += 1
            else:
                heapq.heappush(
                    engine._queue,
                    (engine.now + command, seq, _RESUME, self, None),
                )
        else:
            engine._dispatch_slow(self, command)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} {state}>"


class Engine:
    """Discrete-event loop with a monotonically advancing clock.

    Time units are nanoseconds by convention throughout the
    reproduction (one Titan X cycle at 1 GHz == 1 ns), but the engine
    itself is unit-agnostic.
    """

    def __init__(self, lane: str = "default") -> None:
        if lane not in ("default", "fast"):
            raise ValueError(f"unknown engine lane: {lane!r}")
        #: which run-loop implementation this engine uses: "default"
        #: (per-record heap pops) or "fast" (same-timestamp batch
        #: drain).  Both produce bit-identical schedules.
        self.lane = lane
        self._fast = lane == "fast"
        self.now: float = 0.0
        self._queue: list = []    # heap of (when, seq, kind, payload, value)
        self._ready: deque = deque()  # ring of (seq, kind, payload, value)
        #: fast lane: scheduled records bucketed by timestamp —
        #: ``when -> [(seq, kind, payload, value), ...]`` (each list is
        #: seq-sorted by construction) plus a heap of the distinct
        #: pending timestamps.  Unused (empty) on the default lane.
        self._buckets: dict = {}
        self._times: list = []
        #: records currently parked in ``_buckets`` (0 on the default
        #: lane); the profiler adds it to ``len(_queue)`` so queue-depth
        #: sampling reads the same number on either lane.
        self._nbucketed = 0
        #: scheduled-origin records of an in-flight guarded batch not
        #: yet dispatched (maintained only while a profiler is
        #: attached; part of the same depth identity).
        self._batch_sched_rem = 0
        self._seq = 0
        self._nlive = 0
        #: every live process (for the deadlock reporter).
        self._live: set = set()
        self.event_count = 0
        #: optional :class:`repro.obs.SimProfiler`.  When attached,
        #: :meth:`spawn` wraps each process in the profiler's
        #: pass-through generator (per-process event and virtual-time
        #: tallies); when ``None`` — the default — spawn pays one
        #: ``is None`` test and the run loop is untouched.
        self.profiler = None

    # -- low-level scheduling -------------------------------------------------

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        self._push(when, _FN, fn, None)

    def _push(self, when: float, kind: int, payload: Any, value: Any) -> None:
        """Schedule one slotted record at ``when`` on the active lane.

        The per-event hot paths (:meth:`Process.__call__`, the run
        loops, ``ProcessorSharing``) inline this body instead of
        calling it; every other scheduling site routes through here so
        new event sources are lane-safe by construction.
        """
        self._seq += 1
        if self._fast:
            b = self._buckets.get(when)
            if b is None:
                self._buckets[when] = [(self._seq, kind, payload, value)]
                heapq.heappush(self._times, when)
            else:
                b.append((self._seq, kind, payload, value))
            self._nbucketed += 1
        else:
            heapq.heappush(
                self._queue, (when, self._seq, kind, payload, value)
            )

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` simulated time units."""
        self.call_at(self.now + delay, fn)

    # -- processes ------------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "",
              daemon: bool = False) -> Process:
        """Start a generator as a process on the next engine step.

        ``daemon`` marks forever-loops (scheduler warps, dispatchers)
        that are *expected* to still be blocked when the queue drains;
        the deadlock reporter ignores them.
        """
        if self.profiler is not None:
            name = name or getattr(gen, "__name__", "process")
            gen = self.profiler.wrap(gen, name, self)
        proc = Process(self, gen, name, daemon)
        self._nlive += 1
        self._live.add(proc)
        self._seq += 1
        self._ready.append((self._seq, _RESUME, proc, None))
        return proc

    def _step(self, proc: Process, value: Any) -> None:
        """Resume ``proc`` with ``value`` (the guarded run loops' entry
        point; the resume body lives in :meth:`Process.__call__`)."""
        proc(value)

    def _dispatch_slow(self, proc: Process, command: Any) -> None:
        """Dispatch every non-``float`` yield command."""
        if isinstance(command, Event):
            if command.fired:
                # Bounce through the ready ring: waiting on a long chain
                # of already-fired events must not recurse the C stack.
                self._seq += 1
                self._ready.append((self._seq, _RESUME, proc, command.value))
            else:
                proc.waiting_on = command
                command._add_waiter(proc)
        elif isinstance(command, (int, float)):
            # int, bool, and float subclasses (e.g. numpy.float64)
            if command < 0:
                raise ValueError(f"negative delay: {command!r}")
            self._push(self.now + float(command), _RESUME, proc, None)
        elif isinstance(command, Delay):
            self._push(self.now + command.duration, _RESUME, proc, None)
        elif isinstance(command, Process):
            if command._done:
                self._seq += 1
                self._ready.append((self._seq, _RESUME, proc, command.result))
            else:
                proc.waiting_on = command
                command._on_done(proc)
        else:
            raise TypeError(
                f"process {proc.name!r} yielded unsupported command: {command!r}"
            )

    # -- run loop -------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None,
            raise_on_deadlock: bool = False) -> float:
        """Drain the event queue.

        Stops when the queue is empty, when the clock would pass
        ``until``, or after ``max_events`` callbacks (a runaway guard for
        tests).  Returns the final clock value.

        With ``raise_on_deadlock``, a drained queue that leaves
        non-daemon processes blocked raises :class:`DeadlockError`
        naming each of them and what it waits on, instead of returning
        silently with work undone (bound runs only check when the queue
        truly drained, not when a bound stopped them early).
        """
        if until is None and max_events is None:
            if not self._fast:
                end = self._run_unguarded()
            elif self.profiler is None:
                end = self._run_fast()
            else:
                # profiled fast runs take the shared batch drain: it
                # maintains the queue-depth bookkeeping the profiler
                # samples, and profiling already dwarfs the loop cost
                end = self._drain_guarded(None, None, False)
        else:
            end = self._drain_guarded(until, max_events, False)
        if (raise_on_deadlock and not self._queue and not self._ready
                and not self._times):
            self.check_deadlock()
        return end

    def blocked_processes(self) -> list:
        """Live non-daemon processes with no scheduled resume.

        Only meaningful when the queue is empty: any live process then
        necessarily blocks on an event or join that can never fire.
        """
        return sorted(
            (p for p in self._live if not p.daemon and p.alive),
            key=lambda p: p.name,
        )

    def check_deadlock(self) -> None:
        """Raise :class:`DeadlockError` if the drained queue stranded
        non-daemon processes (no-op while work is still scheduled)."""
        if self._queue or self._ready or self._times:
            return
        blocked = self.blocked_processes()
        if blocked:
            raise DeadlockError(blocked)

    def _run_unguarded(self) -> float:
        """Tight loop for the common ``run()`` call: no bound checks.

        The process-resume fast path (send a value, get a numeric delay
        back, push one slotted record) is inlined here — one Python
        frame per event instead of three; non-numeric commands fall
        back to :meth:`_step`'s shared dispatch via
        :meth:`_dispatch_slow`.
        """
        queue = self._queue
        ready = self._ready
        pop = heapq.heappop
        push = heapq.heappush
        popleft = ready.popleft
        slow = self._dispatch_slow
        now = self.now
        count = 0
        try:
            while queue or ready:
                # Merge ring and heap by global (when, seq) order: ring
                # records sit at the current instant, so a heap record
                # goes first only when it is also due now with an
                # earlier sequence number.
                if ready and not (
                    queue and queue[0][0] <= now and queue[0][1] < ready[0][0]
                ):
                    _seq, kind, payload, value = popleft()
                else:
                    when, _seq, kind, payload, value = pop(queue)
                    self.now = now = when
                count += 1
                if kind:
                    if payload.alive:
                        try:
                            command = payload.gen.send(value)
                        except StopIteration as stop:
                            self._nlive -= 1
                            payload._finish(stop.value)
                            continue
                        if type(command) is float:
                            if command < 0.0:
                                raise ValueError(
                                    f"cannot schedule in the past: {command!r}"
                                )
                            self._seq = seq = self._seq + 1
                            push(queue, (now + command, seq, _RESUME, payload, None))
                        else:
                            slow(payload, command)
                else:
                    payload()
        finally:
            self.event_count += count
        return self.now

    def _collect_due(self, now: float) -> Optional[list]:
        """Pop every scheduled record due at ``now`` into one seq-sorted
        list (``None`` when nothing scheduled is due).

        Sources are the fast lane's bucket for the current instant and
        the legacy heap (still fed by lane-unaware direct pushers);
        both lanes share this assembly step in the guarded drain.
        """
        sched = None
        times = self._times
        if times and times[0] == now:
            heapq.heappop(times)
            sched = self._buckets.pop(now)
            self._nbucketed -= len(sched)
        queue = self._queue
        if queue and queue[0][0] <= now:
            if sched is None:
                sched = []
            pop = heapq.heappop
            while queue and queue[0][0] <= now:
                rec = pop(queue)
                sched.append((rec[1], rec[2], rec[3], rec[4]))
            sched.sort()
        return sched

    def _next_instant(self) -> Optional[float]:
        """Earliest pending scheduled timestamp, or ``None``."""
        times = self._times
        queue = self._queue
        if times:
            t = times[0]
            if queue and queue[0][0] < t:
                t = queue[0][0]
            return t
        if queue:
            return queue[0][0]
        return None

    def _drain_guarded(self, until: Optional[float],
                       max_events: Optional[int],
                       stop_on_idle: bool) -> float:
        """The shared bounded drain: one batch-at-a-time loop behind
        ``run(until=..., max_events=...)``, profiled fast-lane runs,
        and :meth:`run_until_idle_processes` (``stop_on_idle``).

        Records sharing the current instant are assembled into one
        seq-sorted batch (ring wakeups merged with due scheduled
        records) and dispatched in order; when a bound stops the drain
        mid-batch the unprocessed remainder is stashed at the *front*
        of the ready ring — the remainder is due at the current
        instant with sequence numbers below any live ring entry, so a
        later drain resumes in exactly the original order.
        """
        ready = self._ready
        now = self.now
        count = 0
        prof = self.profiler is not None
        try:
            while not stop_on_idle or self._nlive > 0:
                # A clock already past ``until`` (bounded re-entry) must
                # not dispatch scheduled work, matching the old per-pop
                # ``when > until`` guard; ring records still drain.
                sched = None
                if until is None or now <= until:
                    sched = self._collect_due(now)
                if ready:
                    batch = list(ready)
                    ready.clear()
                    if sched:
                        batch += sched
                        batch.sort()
                elif sched is not None:
                    batch = sched
                else:
                    t = self._next_instant()
                    if t is None:
                        break
                    if until is not None and t > until:
                        self.now = until
                        break
                    self.now = now = t
                    continue
                sched_seqs = ()
                if prof and sched:
                    sched_seqs = frozenset(rec[0] for rec in sched)
                    self._batch_sched_rem = len(sched_seqs)
                for i, rec in enumerate(batch):
                    if stop_on_idle and self._nlive <= 0:
                        ready.extendleft(reversed(batch[i:]))
                        self._batch_sched_rem = 0
                        return self.now
                    if sched_seqs and rec[0] in sched_seqs:
                        self._batch_sched_rem -= 1
                    try:
                        if rec[1]:
                            rec[2](rec[3])
                        else:
                            rec[2]()
                    except BaseException:
                        # the raising event is not counted (matching the
                        # historical guarded loop's post-dispatch count)
                        ready.extendleft(reversed(batch[i + 1:]))
                        self._batch_sched_rem = 0
                        raise
                    count += 1
                    if max_events is not None and count >= max_events:
                        ready.extendleft(reversed(batch[i + 1:]))
                        self._batch_sched_rem = 0
                        return self.now
        finally:
            self.event_count += count
        return self.now

    def _run_fast(self) -> float:
        """Tight batch-drain loop for unbounded fast-lane runs.

        Drains every record due at the current instant into one batch
        and dispatches it with the process-resume body inlined (as in
        :meth:`_run_unguarded`); the per-event cost of the dominant
        same-timestamp case is a dict lookup and a list append instead
        of two O(log n) heap sifts.
        """
        queue = self._queue      # legacy heap: lane-unaware pushers
        ready = self._ready
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        heappush = heapq.heappush
        slow = self._dispatch_slow
        now = self.now
        count = 0
        try:
            while True:
                # -- assemble the batch due at the current instant --
                sched = None
                if times and times[0] == now:
                    heappop(times)
                    sched = buckets.pop(now)
                    self._nbucketed -= len(sched)
                if queue and queue[0][0] <= now:
                    if sched is None:
                        sched = []
                    while queue and queue[0][0] <= now:
                        rec = heappop(queue)
                        sched.append((rec[1], rec[2], rec[3], rec[4]))
                    sched.sort()
                if ready:
                    batch = list(ready)
                    ready.clear()
                    if sched:
                        batch += sched
                        batch.sort()
                elif sched is not None:
                    batch = sched
                else:
                    if times:
                        t = times[0]
                        if queue and queue[0][0] < t:
                            t = queue[0][0]
                    elif queue:
                        t = queue[0][0]
                    else:
                        break
                    self.now = now = t
                    continue
                # -- dispatch it (inlined resume fast path) --
                try:
                    for _s, kind, payload, value in batch:
                        count += 1
                        if kind:
                            if payload.alive:
                                try:
                                    command = payload.gen.send(value)
                                except StopIteration as stop:
                                    self._nlive -= 1
                                    payload._finish(stop.value)
                                    continue
                                if type(command) is float:
                                    if command < 0.0:
                                        raise ValueError(
                                            "cannot schedule in the past: "
                                            f"{command!r}"
                                        )
                                    self._seq = seq = self._seq + 1
                                    when = now + command
                                    b = buckets.get(when)
                                    if b is None:
                                        buckets[when] = [
                                            (seq, _RESUME, payload, None)
                                        ]
                                        heappush(times, when)
                                    else:
                                        b.append((seq, _RESUME, payload, None))
                                    self._nbucketed += 1
                                else:
                                    slow(payload, command)
                        else:
                            payload()
                except BaseException:
                    # preserve the undispatched remainder (everything
                    # with a later seq than the raising record) exactly
                    # as the default lane leaves it queued
                    ready.extendleft(
                        reversed([r for r in batch if r[0] > _s])
                    )
                    raise
        finally:
            self.event_count += count
        return self.now

    def run_until(self, when: float) -> float:
        """Epoch-bounded drain: run to ``when`` and *pin the clock there*.

        ``run(until=when)`` leaves ``now`` at the last dispatched event
        when the queue drains early; conservative lockstep execution
        (``repro.cluster``) needs every shard's clock parked exactly at
        the epoch boundary so the next epoch's externally injected
        arrivals can never look like scheduling in the past.  Pending
        work beyond ``when`` is untouched (identical to ``run(until=
        when)``); only an *idle* clock is advanced.
        """
        if when < self.now:
            raise ValueError(
                f"cannot run backwards: {when} < {self.now}")
        end = self.run(until=when)
        if (end < when and not self._queue and not self._ready
                and not self._times):
            self.now = when
            return when
        return end

    def run_until_idle_processes(self, until: Optional[float] = None) -> float:
        """Like :meth:`run`, but also stops once no process is alive.

        Daemon loops (e.g. Pagoda's scheduler warps) block on events, so
        the queue empties naturally; this variant exists for workloads
        that keep re-arming timers.
        """
        return self._drain_guarded(until, None, True)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires after ``delay``; usable for sleep-with-value."""
        ev = Event()
        self.call_after(delay, lambda: ev.fire(value))
        return ev
