"""Event loop, simulated clock, and coroutine processes.

The engine is deliberately minimal: a priority queue of *slotted timer
records* and a cooperative process abstraction on top.  A process is a
Python generator; each ``yield`` hands control back to the engine
together with a *command* describing when to resume:

- a ``float``/``int`` or :class:`Delay` — resume after that much
  simulated time;
- an :class:`~repro.sim.events.Event` — resume when the event fires (the
  event's value becomes the value of the ``yield`` expression);
- a :class:`Process` — resume when that process terminates (join).

Subroutines are plain generators invoked with ``yield from``; no extra
machinery is needed, which keeps the per-event overhead low (the whole
reproduction pushes millions of events through this loop).

Hot-path design (the fast paths that make paper-scale runs practical):

- **Slotted timer records.**  Heap entries are plain 5-tuples
  ``(when, seq, kind, payload, value)``.  ``kind`` discriminates a bare
  callback (``payload()``) from a process resume
  (``_step(payload, value)``), so the common resume case allocates *no*
  lambda closure — the seed implementation paid one closure plus one
  3-tuple per event.  ``seq`` is unique, so heap comparisons never
  reach the non-comparable payload.
- **Ready ring.**  Zero-delay wakeups — process spawns, joins on
  already-finished processes, and bounces through already-fired events
  — skip the heap entirely and go onto a FIFO deque of
  ``(seq, kind, payload, value)`` records at the *current* instant.
  The run loop merges ring and heap by the global ``(when, seq)``
  order (ring entries all carry ``when == now``), so observable event
  ordering is bit-identical to the seed's all-heap behaviour while
  same-timestamp wakeups cost O(1) instead of O(log n).
- **Branch-first dispatch.**  ``_step`` inlines the command dispatch
  and tests ``type(command) is float`` first — the overwhelmingly
  common numeric-delay case pays a single pointer compare.
- **Specialized run loops.**  ``run()`` with neither ``until`` nor
  ``max_events`` takes an unguarded loop body; the ``None`` checks are
  hoisted out so the common case pays nothing per event.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Optional

from repro.sim.events import Event

#: ``kind`` values for slotted timer records.
_FN = 0      # payload is a zero-argument callable
_RESUME = 1  # payload is a Process; resume it with ``value``


class DeadlockError(RuntimeError):
    """The event queue drained while non-daemon processes were still
    blocked — nothing can ever wake them.

    The message names each blocked process and the event/process it
    waits on, so a wedged run points at its culprit instead of
    returning silently with work undone.  Daemon processes (scheduler
    warps, dispatch loops) are expected to outlive the queue and are
    exempt.
    """

    def __init__(self, blocked: list) -> None:
        self.blocked = list(blocked)
        lines = [
            f"  {proc.name!r} waiting on {proc.waiting_on!r}"
            for proc in self.blocked
        ]
        super().__init__(
            "event queue drained with "
            f"{len(self.blocked)} process(es) still blocked:\n"
            + "\n".join(lines)
        )


class Delay:
    """Explicit wrapper for a pure time delay command.

    Yielding a bare number does the same thing; the wrapper exists for
    readability at call sites where a variable could be mistaken for an
    event.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative delay: {duration!r}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Delay({self.duration!r})"


class Process:
    """A coroutine being driven by the engine.

    Terminates when the generator returns or raises ``StopIteration``;
    the generator's return value becomes :attr:`result`.  Other processes
    can join by yielding the process object.
    """

    __slots__ = ("engine", "gen", "name", "alive", "result", "_done",
                 "_waiters", "daemon", "waiting_on")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "",
                 daemon: bool = False) -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        self.result: Any = None
        self._waiters: list = []
        self._done = False
        #: daemon processes (scheduler warps, dispatch loops) may still
        #: be blocked when the queue drains without it being a deadlock.
        self.daemon = daemon
        #: the Event/Process this process last blocked on (diagnostic;
        #: meaningful only while blocked — timer waits never deadlock
        #: because their resume record keeps the queue non-empty).
        self.waiting_on: Any = None

    def _finish(self, result: Any) -> None:
        self.alive = False
        self._done = True
        self.result = result
        self.engine._live.discard(self)
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            wake(result)

    def _on_done(self, wake: Callable[[Any], None]) -> None:
        if self._done:
            wake(self.result)
        else:
            self._waiters.append(wake)

    def interrupt(self, exc: Optional[BaseException] = None) -> None:
        """Kill the process.  Used to tear down daemon loops at the end
        of an experiment (e.g. the MasterKernel's scheduler warps).

        The engine's live-process count is settled here: a process
        blocked on an event that never fires has no scheduled resume,
        so deferring the decrement to the next ``_step`` (as the seed
        did) leaked the live count and made
        :meth:`Engine.run_until_idle_processes` spin past the true
        idle point.
        """
        if not self.alive:
            return
        self.alive = False
        self._done = True
        self.engine._nlive -= 1
        self.engine._live.discard(self)
        self.gen.close()
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            wake(None)

    def __call__(self, value: Any = None) -> None:
        """Wake the process with ``value``.

        A process doubles as its own wake callback: the engine enrolls
        the process object directly as an event/join waiter instead of
        allocating a closure per wait — event waits are the dominant
        command on the Pagoda control path.  The engine's resume body
        is inlined here (rather than bouncing through ``_step``)
        because every event fire lands in this frame.
        """
        if not self.alive:
            return  # interrupted; interrupt() already settled _nlive
        engine = self.engine
        try:
            command = self.gen.send(value)
        except StopIteration as stop:
            engine._nlive -= 1
            self._finish(stop.value)
            return
        if type(command) is float:
            if command < 0.0:
                raise ValueError(f"cannot schedule in the past: {command!r}")
            engine._seq += 1
            heapq.heappush(
                engine._queue,
                (engine.now + command, engine._seq, _RESUME, self, None),
            )
        else:
            engine._dispatch_slow(self, command)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} {state}>"


class Engine:
    """Discrete-event loop with a monotonically advancing clock.

    Time units are nanoseconds by convention throughout the
    reproduction (one Titan X cycle at 1 GHz == 1 ns), but the engine
    itself is unit-agnostic.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list = []    # heap of (when, seq, kind, payload, value)
        self._ready: deque = deque()  # ring of (seq, kind, payload, value)
        self._seq = 0
        self._nlive = 0
        #: every live process (for the deadlock reporter).
        self._live: set = set()
        self.event_count = 0
        #: optional :class:`repro.obs.SimProfiler`.  When attached,
        #: :meth:`spawn` wraps each process in the profiler's
        #: pass-through generator (per-process event and virtual-time
        #: tallies); when ``None`` — the default — spawn pays one
        #: ``is None`` test and the run loop is untouched.
        self.profiler = None

    # -- low-level scheduling -------------------------------------------------

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, _FN, fn, None))

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` simulated time units."""
        self.call_at(self.now + delay, fn)

    # -- processes ------------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "",
              daemon: bool = False) -> Process:
        """Start a generator as a process on the next engine step.

        ``daemon`` marks forever-loops (scheduler warps, dispatchers)
        that are *expected* to still be blocked when the queue drains;
        the deadlock reporter ignores them.
        """
        if self.profiler is not None:
            name = name or getattr(gen, "__name__", "process")
            gen = self.profiler.wrap(gen, name, self)
        proc = Process(self, gen, name, daemon)
        self._nlive += 1
        self._live.add(proc)
        self._seq += 1
        self._ready.append((self._seq, _RESUME, proc, None))
        return proc

    def _step(self, proc: Process, value: Any) -> None:
        """Resume ``proc`` with ``value`` (the guarded run loops' entry
        point; the resume body lives in :meth:`Process.__call__`)."""
        proc(value)

    def _dispatch_slow(self, proc: Process, command: Any) -> None:
        """Dispatch every non-``float`` yield command."""
        if isinstance(command, Event):
            if command.fired:
                # Bounce through the ready ring: waiting on a long chain
                # of already-fired events must not recurse the C stack.
                self._seq += 1
                self._ready.append((self._seq, _RESUME, proc, command.value))
            else:
                proc.waiting_on = command
                command._add_waiter(proc)
        elif isinstance(command, (int, float)):
            # int, bool, and float subclasses (e.g. numpy.float64)
            if command < 0:
                raise ValueError(f"negative delay: {command!r}")
            self._seq += 1
            heapq.heappush(
                self._queue,
                (self.now + float(command), self._seq, _RESUME, proc, None),
            )
        elif isinstance(command, Delay):
            self._seq += 1
            heapq.heappush(
                self._queue,
                (self.now + command.duration, self._seq, _RESUME, proc, None),
            )
        elif isinstance(command, Process):
            if command._done:
                self._seq += 1
                self._ready.append((self._seq, _RESUME, proc, command.result))
            else:
                proc.waiting_on = command
                command._on_done(proc)
        else:
            raise TypeError(
                f"process {proc.name!r} yielded unsupported command: {command!r}"
            )

    # -- run loop -------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None,
            raise_on_deadlock: bool = False) -> float:
        """Drain the event queue.

        Stops when the queue is empty, when the clock would pass
        ``until``, or after ``max_events`` callbacks (a runaway guard for
        tests).  Returns the final clock value.

        With ``raise_on_deadlock``, a drained queue that leaves
        non-daemon processes blocked raises :class:`DeadlockError`
        naming each of them and what it waits on, instead of returning
        silently with work undone (bound runs only check when the queue
        truly drained, not when a bound stopped them early).
        """
        if until is None and max_events is None:
            end = self._run_unguarded()
        else:
            end = self._run_guarded(until, max_events)
        if raise_on_deadlock and not self._queue and not self._ready:
            self.check_deadlock()
        return end

    def blocked_processes(self) -> list:
        """Live non-daemon processes with no scheduled resume.

        Only meaningful when the queue is empty: any live process then
        necessarily blocks on an event or join that can never fire.
        """
        return sorted(
            (p for p in self._live if not p.daemon and p.alive),
            key=lambda p: p.name,
        )

    def check_deadlock(self) -> None:
        """Raise :class:`DeadlockError` if the drained queue stranded
        non-daemon processes (no-op while work is still scheduled)."""
        if self._queue or self._ready:
            return
        blocked = self.blocked_processes()
        if blocked:
            raise DeadlockError(blocked)

    def _run_unguarded(self) -> float:
        """Tight loop for the common ``run()`` call: no bound checks.

        The process-resume fast path (send a value, get a numeric delay
        back, push one slotted record) is inlined here — one Python
        frame per event instead of three; non-numeric commands fall
        back to :meth:`_step`'s shared dispatch via
        :meth:`_dispatch_slow`.
        """
        queue = self._queue
        ready = self._ready
        pop = heapq.heappop
        push = heapq.heappush
        popleft = ready.popleft
        slow = self._dispatch_slow
        now = self.now
        count = 0
        try:
            while queue or ready:
                # Merge ring and heap by global (when, seq) order: ring
                # records sit at the current instant, so a heap record
                # goes first only when it is also due now with an
                # earlier sequence number.
                if ready and not (
                    queue and queue[0][0] <= now and queue[0][1] < ready[0][0]
                ):
                    _seq, kind, payload, value = popleft()
                else:
                    when, _seq, kind, payload, value = pop(queue)
                    self.now = now = when
                count += 1
                if kind:
                    if payload.alive:
                        try:
                            command = payload.gen.send(value)
                        except StopIteration as stop:
                            self._nlive -= 1
                            payload._finish(stop.value)
                            continue
                        if type(command) is float:
                            if command < 0.0:
                                raise ValueError(
                                    f"cannot schedule in the past: {command!r}"
                                )
                            self._seq = seq = self._seq + 1
                            push(queue, (now + command, seq, _RESUME, payload, None))
                        else:
                            slow(payload, command)
                else:
                    payload()
        finally:
            self.event_count += count
        return self.now

    def _run_guarded(self, until: Optional[float],
                     max_events: Optional[int]) -> float:
        """Loop body for bounded runs (``until``/``max_events`` given)."""
        queue = self._queue
        ready = self._ready
        pop = heapq.heappop
        step = self._step
        now = self.now
        count = 0
        try:
            while queue or ready:
                if ready and not (
                    queue and queue[0][0] <= now and queue[0][1] < ready[0][0]
                ):
                    _seq, kind, payload, value = ready.popleft()
                else:
                    if until is not None and queue[0][0] > until:
                        self.now = until
                        break
                    when, _seq, kind, payload, value = pop(queue)
                    self.now = now = when
                if kind:
                    step(payload, value)
                else:
                    payload()
                count += 1
                if max_events is not None and count >= max_events:
                    break
        finally:
            self.event_count += count
        return self.now

    def run_until_idle_processes(self, until: Optional[float] = None) -> float:
        """Like :meth:`run`, but also stops once no process is alive.

        Daemon loops (e.g. Pagoda's scheduler warps) block on events, so
        the queue empties naturally; this variant exists for workloads
        that keep re-arming timers.
        """
        queue = self._queue
        ready = self._ready
        pop = heapq.heappop
        step = self._step
        now = self.now
        count = 0
        try:
            while (queue or ready) and self._nlive > 0:
                if ready and not (
                    queue and queue[0][0] <= now and queue[0][1] < ready[0][0]
                ):
                    _seq, kind, payload, value = ready.popleft()
                else:
                    if until is not None and queue[0][0] > until:
                        self.now = until
                        break
                    when, _seq, kind, payload, value = pop(queue)
                    self.now = now = when
                if kind:
                    step(payload, value)
                else:
                    payload()
                count += 1
        finally:
            self.event_count += count
        return self.now

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires after ``delay``; usable for sleep-with-value."""
        ev = Event()
        self.call_after(delay, lambda: ev.fire(value))
        return ev
