"""Waitable primitives: one-shot events and broadcast signals.

These carry no reference to the engine; firing an event immediately runs
the waiters' wake callbacks (which re-enter the engine's ``_step``), so
wakeups happen at the current simulated instant, preserving causality.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class Event:
    """One-shot waitable.

    A process waits by yielding the event; :meth:`fire` wakes all
    waiters with the given value.  Firing twice is an error — reuse
    :class:`Signal` for recurring conditions.
    """

    __slots__ = ("fired", "value", "_waiters")

    def __init__(self) -> None:
        self.fired = False
        self.value: Any = None
        # Lazily allocated: most events fire with zero or one waiter,
        # and the hot paths (ProcessorSharing completions, FIFO grants)
        # create events by the million.
        self._waiters: Optional[List[Callable[[Any], None]]] = None

    def _add_waiter(self, wake: Callable[[Any], None]) -> None:
        if self.fired:
            wake(self.value)
        elif self._waiters is None:
            self._waiters = [wake]
        else:
            self._waiters.append(wake)

    def fire(self, value: Any = None) -> None:
        """Fire the event, waking every waiter with ``value``."""
        if self.fired:
            raise RuntimeError("Event fired twice")
        self.fired = True
        self.value = value
        waiters = self._waiters
        if waiters is not None:
            self._waiters = None
            for wake in waiters:
                wake(value)

    def __repr__(self) -> str:  # pragma: no cover - diagnostic aid
        if self.fired:
            return f"<Event fired value={self.value!r}>"
        n = len(self._waiters) if self._waiters else 0
        return f"<Event pending waiters={n} at {id(self):#x}>"


def any_of(events) -> Event:
    """One-shot event firing when the *first* of ``events`` fires.

    Value is ``(index, value)`` of the winner.  If several inputs are
    already fired, the lowest index wins.
    """
    events = list(events)
    if not events:
        raise ValueError("any_of needs at least one event")
    combined = Event()

    def make_waiter(index):
        def wake(value):
            if not combined.fired:
                combined.fire((index, value))
        return wake

    for i, ev in enumerate(events):
        ev._add_waiter(make_waiter(i))
    return combined


def all_of(events) -> Event:
    """One-shot event firing when *every* input has fired.

    Value is the list of input values, in input order.
    """
    events = list(events)
    if not events:
        raise ValueError("all_of needs at least one event")
    combined = Event()
    remaining = [len(events)]
    values = [None] * len(events)

    def make_waiter(index):
        def wake(value):
            values[index] = value
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.fire(list(values))
        return wake

    for i, ev in enumerate(events):
        ev._add_waiter(make_waiter(i))
    return combined


class Signal:
    """Reusable broadcast condition.

    ``wait()`` hands back a fresh one-shot :class:`Event` enrolled for
    the *next* :meth:`pulse`.  This is the building block for
    "wake me when the TaskTable changes" style polling loops without
    simulating every idle poll iteration.
    """

    __slots__ = ("_pending", "pulse_count")

    def __init__(self) -> None:
        self._pending: List[Event] = []
        self.pulse_count = 0

    def wait(self) -> Event:
        """Return an event that fires on the next pulse."""
        ev = Event()
        self._pending.append(ev)
        return ev

    def pulse(self, value: Any = None) -> None:
        """Wake everything currently waiting."""
        self.pulse_count += 1
        pending, self._pending = self._pending, []
        for ev in pending:
            ev.fire(value)

    @property
    def waiter_count(self) -> int:
        """Events armed for the next pulse."""
        return len(self._pending)
