"""Contended resources: FIFO servers, processor sharing, item stores.

:class:`ProcessorSharing` is the workhorse of the hardware model.  An SMM
issuing warp instructions, the GPU's global-memory crossbar, and the PCIe
link are all "a pool of rate, fairly shared, with a per-customer cap":

- SMM issue: total rate 4 warp-instructions/cycle, at most 1 per warp;
- DRAM: total bytes/ns shared by all resident warps;
- PCIe: total bytes/ns shared by in-flight transfers.

The implementation uses the classic *virtual-time* (fluid-queue)
formulation: instead of rescanning every active job's remaining work on
each arrival and departure (the seed's O(active jobs) cost), the pool
tracks a single virtual clock ``V`` that accumulates per-job service.
A job arriving with ``w`` units of work finishes when ``V`` reaches
``V_arrival + w``, so arrivals are one heap push and departures one
heap pop — O(log n) per state change regardless of churn.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Generator, List, Optional, Tuple

from repro.sim.engine import _FN, Engine
from repro.sim.events import Event

_EPS = 1e-9
#: Minimum timer granularity (1 femtosecond at ns units).  Without a
#: floor, a job whose remaining work is just above _EPS on a high-rate
#: pool can compute an ETA smaller than the clock's float ULP — the
#: timer then re-fires at the *same* instant forever (elapsed == 0, no
#: work served).  The floor guarantees forward progress at negligible
#: accuracy cost.
_MIN_ETA = 1e-3


class FifoResource:
    """``capacity`` identical servers with a FIFO wait queue.

    Models things that are either free or busy: CPU cores in the
    PThreads pool, HyperQ hardware connections, the DMA copy engine's
    transaction slot.
    """

    def __init__(self, engine: Engine, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiting: Deque[Event] = deque()

    def acquire(self) -> Event:
        """Return an event that fires when a server is granted."""
        ev = Event()
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.fire(None)
        else:
            self._waiting.append(ev)
        return ev

    def release(self) -> None:
        """Release one server; hands it straight to the queue head."""
        if self.in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        if self._waiting:
            self._waiting.popleft().fire(None)
        else:
            self.in_use -= 1

    def use(self, duration: float) -> Generator:
        """Subroutine: hold one server for ``duration``.

        Use as ``yield from resource.use(t)``.  The server is released
        even if the holding process is interrupted mid-hold: the
        engine's ``gen.close()`` raises ``GeneratorExit`` at the
        ``yield``, and the ``finally`` hands the server back (the seed
        leaked it, starving every later acquirer).
        """
        yield self.acquire()
        try:
            yield duration
        finally:
            self.release()

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for a server."""
        return len(self._waiting)


#: Rebase threshold for the virtual clock.  Remaining work is computed
#: as ``finish_v - V``; once ``V`` grows large the subtraction loses
#: absolute precision (catastrophic cancellation), so when ``V`` passes
#: this bound every queued finish tag is shifted down by ``V`` and the
#: clock restarts at zero.  At 2**20 the worst-case absolute error of a
#: shifted tag is ~2**-33, far below ``_EPS``.  The shift is uniform
#: and monotone, so heap order is preserved.
_REBASE_V = float(2 ** 20)

#: Minimum coalesced-arrival batch size before the vectorized
#: finish-tag kernel (see :attr:`ProcessorSharing.tag_kernel`) beats
#: the scalar per-item loop; below this the numpy call overhead wins.
_VECTOR_JOIN_MIN = 16


class ProcessorSharing:
    """A pool of service rate, fairly shared, with a per-job rate cap.

    ``rate`` is work units per time unit for the whole pool; each job
    receives ``min(per_job_cap, rate / n_active)``.  ``consume(amount)``
    returns an event that fires when the job's work has been served.

    Internally this is the classic virtual-time fluid queue: because
    every active job receives the *same* instantaneous rate, the pool
    only needs one cumulative per-job service clock ``V`` (``dV/dt =
    min(cap, rate/n)``).  A job arriving when the clock reads ``V`` with
    ``w`` units of work is tagged ``finish_v = V + w`` and completes
    when ``V`` reaches its tag; a min-heap on the tags yields the next
    completion.  Arrivals and departures are O(log n) — the seed
    implementation rescanned all active jobs on every state change,
    which was quadratic under churn.  Completion *order* and timer
    semantics (``_MIN_ETA`` forward-progress floor, grouped completions
    within ``_EPS``, arrival-order firing) match the seed exactly.
    """

    def __init__(
        self,
        engine: Engine,
        rate: float,
        per_job_cap: Optional[float] = None,
        name: str = "",
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.engine = engine
        self.rate = rate
        self.per_job_cap = per_job_cap if per_job_cap is not None else rate
        self.name = name
        #: min-heap of (finish_v, seq, Event); seq breaks ties in
        #: arrival order
        self._heap: List[Tuple[float, int, Event]] = []
        #: same-instant deferred arrivals being coalesced, keyed by
        #: absolute arrival time (see :meth:`consume_after`)
        self._arrivals: dict = {}
        self._v = 0.0  # virtual time: cumulative per-job service
        self._next_id = 0
        self._last_update = 0.0
        self._timer_version = 0
        # time-weighted busy integral for utilization reporting
        self._busy_integral = 0.0
        #: optional vectorized finish-tag kernel,
        #: ``kernel(v, amounts) -> [v + a for a in amounts]`` as Python
        #: floats.  Installed by the GPU layer
        #: (:func:`repro.gpu.timing.batch_finish_tags`); must be
        #: bit-identical to the scalar sum.  ``None`` keeps the scalar
        #: loop.
        self.tag_kernel = None

    # -- internal -------------------------------------------------------------

    def _job_rate(self) -> float:
        n = len(self._heap)
        if n == 0:
            return 0.0
        return min(self.per_job_cap, self.rate / n)

    def _advance(self) -> None:
        """Advance the virtual clock by the elapsed per-job service."""
        now = self.engine.now
        elapsed = now - self._last_update
        n = len(self._heap)
        if elapsed > 0 and n:
            self._v += elapsed * min(self.per_job_cap, self.rate / n)
            self._busy_integral += elapsed * min(
                self.rate, n * self.per_job_cap
            )
        self._last_update = now

    def _rebase(self) -> None:
        """Shift all finish tags down by ``V`` and restart the clock."""
        v = self._v
        self._heap = [(fv - v, seq, ev) for fv, seq, ev in self._heap]
        self._v = 0.0

    def _reschedule(self) -> None:
        self._timer_version += 1
        heap = self._heap
        if not heap:
            self._v = 0.0  # idle pool: cheap exact rebase
            return
        if self._v > _REBASE_V:
            self._rebase()
            heap = self._heap
        version = self._timer_version
        shortest = heap[0][0] - self._v
        if shortest < 0.0:
            shortest = 0.0
        n = len(heap)
        job_rate = self.per_job_cap
        pooled = self.rate / n
        if pooled < job_rate:
            job_rate = pooled
        eta = shortest / job_rate
        if eta < _MIN_ETA:
            eta = _MIN_ETA
        # inlined engine.call_after / engine._push: one heap-or-bucket
        # insert, no closure-free wrapper frames (this is the single
        # hottest timer in the simulator — every PS arrival and
        # departure lands here)
        engine = self.engine
        engine._seq += 1
        when = engine.now + eta
        fn = lambda: self._on_timer(version)
        if engine._fast:
            b = engine._buckets.get(when)
            if b is None:
                engine._buckets[when] = [(engine._seq, _FN, fn, None)]
                heapq.heappush(engine._times, when)
            else:
                b.append((engine._seq, _FN, fn, None))
            engine._nbucketed += 1
        else:
            heapq.heappush(
                engine._queue, (when, engine._seq, _FN, fn, None)
            )

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # stale timer; a newer reschedule superseded it
        self._advance()
        heap = self._heap
        threshold = self._v + _EPS
        finished = []
        while heap and heap[0][0] <= threshold:
            finished.append(heapq.heappop(heap))
        self._reschedule()
        if len(finished) == 1:
            finished[0][2].fire(None)
            return
        # fire in arrival order (the seed iterated its job dict in
        # insertion order), not in finish-tag order
        finished.sort(key=lambda item: item[1])
        for _fv, _seq, ev in finished:
            ev.fire(None)

    # -- public ---------------------------------------------------------------

    def consume(self, amount: float) -> Event:
        """Submit ``amount`` units of work; event fires when served."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event()
        if amount == 0:
            ev.fire(None)
            return ev
        if self._heap:
            self._advance()
        else:
            # empty pool: V is already 0 (idle rebase) and no service
            # accrued since _last_update — skip the fp bookkeeping
            self._last_update = self.engine.now
        self._next_id += 1
        heapq.heappush(self._heap, (self._v + float(amount), self._next_id, ev))
        self._reschedule()
        return ev

    def consume_after(self, delay: float, amount: float) -> Event:
        """Join the pool after a private ``delay``, then consume.

        Timing-equivalent to ``yield delay`` followed by ``yield
        consume(amount)``, but the waiting process parks on one event
        for the whole span — the intermediate wake existed only to
        issue the second yield.  Used for fixed issue/access latencies
        that immediately precede a contended service demand.

        Arrivals landing at the *same future instant* are coalesced
        into one engine callback and one timer reschedule: sibling
        warps of a threadblock are dispatched together and issue
        identical latency-then-demand patterns, so batching their pool
        entries removes most of the PS timer churn without changing a
        single finish tag (same arrival instant, same arrival order).
        """
        if delay <= 0:
            return self.consume(amount)
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event()
        engine = self.engine
        when = engine.now + delay
        batch = self._arrivals.get(when)
        if batch is not None:
            batch.append((float(amount), ev))
            return ev
        batch = [(float(amount), ev)]
        self._arrivals[when] = batch

        def join() -> None:
            del self._arrivals[when]
            if self._heap:
                self._advance()
            else:
                self._last_update = self.engine.now
            heap = self._heap
            v = self._v
            kernel = self.tag_kernel
            if kernel is not None and len(batch) >= _VECTOR_JOIN_MIN:
                # Vectorized finish tags: one array pass computes every
                # sibling's ``v + amount``; IEEE-754 elementwise add is
                # bit-identical to the scalar Python sum, and appending
                # then heapifying yields the same pop order as per-item
                # pushes (the (tag, seq) order is total).
                tags = kernel(v, [amt for amt, _e in batch])
                nid = self._next_id
                for (amt, e), tag in zip(batch, tags):
                    if amt == 0.0:
                        e.fire(None)
                        continue
                    nid += 1
                    heap.append((tag, nid, e))
                self._next_id = nid
                heapq.heapify(heap)
            else:
                for amt, e in batch:
                    if amt == 0.0:
                        e.fire(None)
                        continue
                    self._next_id += 1
                    heapq.heappush(heap, (v + amt, self._next_id, e))
            self._reschedule()

        engine._seq += 1
        if engine._fast:
            b = engine._buckets.get(when)
            if b is None:
                engine._buckets[when] = [(engine._seq, _FN, join, None)]
                heapq.heappush(engine._times, when)
            else:
                b.append((engine._seq, _FN, join, None))
            engine._nbucketed += 1
        else:
            heapq.heappush(
                engine._queue, (when, engine._seq, _FN, join, None)
            )
        return ev

    @property
    def active_jobs(self) -> int:
        """Jobs currently receiving service."""
        return len(self._heap)

    def utilization(self) -> float:
        """Fraction of the pool's rate used, averaged over elapsed time."""
        self._advance()
        total = self.engine.now
        if total <= 0:
            return 0.0
        return self._busy_integral / (self.rate * total)

    def served_integral(self) -> float:
        """Total work units actually served so far — the utilization
        numerator, exposed so callers can normalise over their own
        horizon (a report's makespan) instead of ``engine.now``."""
        self._advance()
        return self._busy_integral


class Store:
    """Unbounded FIFO item queue with blocking consumers.

    GeMTC's single task FIFO and the host-side spawn queues are Stores.
    """

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().fire(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event whose value is the next item."""
        ev = Event()
        if self._items:
            ev.fire(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
