"""Contended resources: FIFO servers, processor sharing, item stores.

:class:`ProcessorSharing` is the workhorse of the hardware model.  An SMM
issuing warp instructions, the GPU's global-memory crossbar, and the PCIe
link are all "a pool of rate, fairly shared, with a per-customer cap":

- SMM issue: total rate 4 warp-instructions/cycle, at most 1 per warp;
- DRAM: total bytes/ns shared by all resident warps;
- PCIe: total bytes/ns shared by in-flight transfers.

The implementation is event-driven: state only changes on arrival or
departure, at which point every active job's remaining work is advanced
by ``elapsed * rate`` and the next completion is (re)scheduled.  Cost is
O(active jobs) per change, and active jobs are bounded by hardware limits
(64 warps per SMM), keeping full experiments tractable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, Optional

from repro.sim.engine import Engine
from repro.sim.events import Event

_EPS = 1e-9
#: Minimum timer granularity (1 femtosecond at ns units).  Without a
#: floor, a job whose remaining work is just above _EPS on a high-rate
#: pool can compute an ETA smaller than the clock's float ULP — the
#: timer then re-fires at the *same* instant forever (elapsed == 0, no
#: work served).  The floor guarantees forward progress at negligible
#: accuracy cost.
_MIN_ETA = 1e-3


class FifoResource:
    """``capacity`` identical servers with a FIFO wait queue.

    Models things that are either free or busy: CPU cores in the
    PThreads pool, HyperQ hardware connections, the DMA copy engine's
    transaction slot.
    """

    def __init__(self, engine: Engine, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiting: Deque[Event] = deque()

    def acquire(self) -> Event:
        """Return an event that fires when a server is granted."""
        ev = Event()
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.fire(None)
        else:
            self._waiting.append(ev)
        return ev

    def release(self) -> None:
        """Release one server; hands it straight to the queue head."""
        if self.in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        if self._waiting:
            self._waiting.popleft().fire(None)
        else:
            self.in_use -= 1

    def use(self, duration: float) -> Generator:
        """Subroutine: hold one server for ``duration``.

        Use as ``yield from resource.use(t)``.
        """
        yield self.acquire()
        yield duration
        self.release()

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for a server."""
        return len(self._waiting)


class ProcessorSharing:
    """A pool of service rate, fairly shared, with a per-job rate cap.

    ``rate`` is work units per time unit for the whole pool; each job
    receives ``min(per_job_cap, rate / n_active)``.  ``consume(amount)``
    returns an event that fires when the job's work has been served.
    """

    def __init__(
        self,
        engine: Engine,
        rate: float,
        per_job_cap: Optional[float] = None,
        name: str = "",
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.engine = engine
        self.rate = rate
        self.per_job_cap = per_job_cap if per_job_cap is not None else rate
        self.name = name
        self._jobs: Dict[int, list] = {}  # id -> [remaining, Event]
        self._next_id = 0
        self._last_update = 0.0
        self._timer_version = 0
        # time-weighted busy integral for utilization reporting
        self._busy_integral = 0.0
        self._busy_since = 0.0

    # -- internal -------------------------------------------------------------

    def _job_rate(self) -> float:
        n = len(self._jobs)
        if n == 0:
            return 0.0
        return min(self.per_job_cap, self.rate / n)

    def _advance(self) -> None:
        """Charge elapsed service time against every active job."""
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed > 0 and self._jobs:
            served = elapsed * self._job_rate()
            for job in self._jobs.values():
                job[0] -= served
            self._busy_integral += elapsed * min(
                self.rate, len(self._jobs) * self.per_job_cap
            )
        self._last_update = now

    def _reschedule(self) -> None:
        self._timer_version += 1
        if not self._jobs:
            return
        version = self._timer_version
        job_rate = self._job_rate()
        shortest = min(job[0] for job in self._jobs.values())
        eta = max(max(shortest, 0.0) / job_rate, _MIN_ETA)
        self.engine.call_after(eta, lambda: self._on_timer(version))

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # stale timer; a newer reschedule superseded it
        self._advance()
        finished = [
            (jid, job) for jid, job in self._jobs.items() if job[0] <= _EPS
        ]
        for jid, _job in finished:
            del self._jobs[jid]
        self._reschedule()
        for _jid, job in finished:
            job[1].fire(None)

    # -- public ---------------------------------------------------------------

    def consume(self, amount: float) -> Event:
        """Submit ``amount`` units of work; event fires when served."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event()
        if amount == 0:
            ev.fire(None)
            return ev
        self._advance()
        self._next_id += 1
        self._jobs[self._next_id] = [float(amount), ev]
        self._reschedule()
        return ev

    @property
    def active_jobs(self) -> int:
        """Jobs currently receiving service."""
        return len(self._jobs)

    def utilization(self) -> float:
        """Fraction of the pool's rate used, averaged over elapsed time."""
        self._advance()
        total = self.engine.now
        if total <= 0:
            return 0.0
        return self._busy_integral / (self.rate * total)


class Store:
    """Unbounded FIFO item queue with blocking consumers.

    GeMTC's single task FIFO and the host-side spawn queues are Stores.
    """

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().fire(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event whose value is the next item."""
        ev = Event()
        if self._items:
            ev.fire(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
