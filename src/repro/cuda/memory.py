"""Device global-memory allocator (cudaMalloc / cudaFree).

A first-fit free-list allocator with coalescing on free.  Narrow-task
host code (Fig. 1a) allocates and frees per task, so the allocator must
handle many small, short-lived allocations without fragmenting away.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class OutOfMemory(RuntimeError):
    """Raised when a cudaMalloc cannot be satisfied."""


class DeviceAllocator:
    """First-fit allocator over a ``capacity``-byte device heap.

    Allocations are aligned to ``alignment`` bytes (CUDA guarantees at
    least 256-byte alignment from cudaMalloc).
    """

    def __init__(self, capacity: int, alignment: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if alignment <= 0 or (alignment & (alignment - 1)):
            raise ValueError("alignment must be a positive power of two")
        self.capacity = capacity
        self.alignment = alignment
        # sorted, disjoint, coalesced (offset, size) free extents
        self._free: List[Tuple[int, int]] = [(0, capacity)]
        self._live: Dict[int, int] = {}  # offset -> size

    def _round(self, n: int) -> int:
        a = self.alignment
        return -(-n // a) * a

    def malloc(self, nbytes: int) -> int:
        """Allocate ``nbytes``; returns the device offset ("pointer")."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        size = self._round(nbytes)
        for i, (off, extent) in enumerate(self._free):
            if extent >= size:
                if extent == size:
                    del self._free[i]
                else:
                    self._free[i] = (off + size, extent - size)
                self._live[off] = size
                return off
        raise OutOfMemory(f"cannot allocate {nbytes} bytes "
                          f"(free={self.free_bytes}, capacity={self.capacity})")

    def free(self, ptr: int) -> None:
        """Release an allocation; coalesces with adjacent free extents."""
        size = self._live.pop(ptr, None)
        if size is None:
            raise ValueError(f"free() of unknown pointer {ptr}")
        # insert keeping sort order, then coalesce neighbours
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < ptr:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (ptr, size))
        # coalesce with next
        if lo + 1 < len(self._free):
            off, ext = self._free[lo]
            noff, next_ext = self._free[lo + 1]
            if off + ext == noff:
                self._free[lo] = (off, ext + next_ext)
                del self._free[lo + 1]
        # coalesce with previous
        if lo > 0:
            poff, pext = self._free[lo - 1]
            off, ext = self._free[lo]
            if poff + pext == off:
                self._free[lo - 1] = (poff, pext + ext)
                del self._free[lo]

    @property
    def free_bytes(self) -> int:
        """Bytes currently free."""
        return sum(ext for _off, ext in self._free)

    @property
    def live_allocations(self) -> int:
        """Number of outstanding allocations."""
        return len(self._live)

    @property
    def largest_free_extent(self) -> int:
        """Size of the biggest contiguous free block."""
        return max((ext for _off, ext in self._free), default=0)

    def check_invariants(self) -> None:
        """Free list is sorted, disjoint, coalesced, and conserves bytes."""
        prev_end = -1
        for off, ext in self._free:
            if ext <= 0:
                raise AssertionError("empty free extent")
            if off <= prev_end:
                raise AssertionError("free list unsorted or overlapping")
            if off == prev_end:  # pragma: no cover - defensive
                raise AssertionError("uncoalesced neighbours")
            prev_end = off + ext
        used = sum(self._live.values())
        if used + self.free_bytes != self.capacity:
            raise AssertionError("byte conservation violated")
