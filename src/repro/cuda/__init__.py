"""CUDA runtime model: kernels, streams, HyperQ, block-level dispatch.

This is the baseline execution model Pagoda is measured against.  Its
defining property (§6.4) is *threadblock-granularity* residency: a
block's warps, registers, and shared memory are claimed together when
the GigaThread engine places the block and released only when the whole
block retires — a new block cannot start on freed warps until its
predecessor's slowest warp finishes.  Pagoda's warp-granularity
scheduler (in :mod:`repro.core`) exists to beat exactly this.

- :class:`~repro.cuda.runtime.CudaRuntime` — device context: launch,
  streams, memcpy, synchronize.
- :class:`~repro.cuda.stream.Stream` — in-order operation queue;
  HyperQ allows ``spec.hyperq_connections`` kernels in flight at once.
- :class:`~repro.cuda.memory.DeviceAllocator` — cudaMalloc/cudaFree.
- :class:`~repro.cuda.barrier.WarpBarrier` — reusable block barrier
  (``__syncthreads``).
"""

from repro.cuda.barrier import WarpBarrier
from repro.cuda.events import CudaEvent, stream_wait_event
from repro.cuda.memory import DeviceAllocator, OutOfMemory
from repro.cuda.runtime import CudaRuntime
from repro.cuda.stream import Stream

__all__ = [
    "CudaRuntime",
    "Stream",
    "DeviceAllocator",
    "OutOfMemory",
    "WarpBarrier",
    "CudaEvent",
    "stream_wait_event",
]
