"""The CUDA runtime: kernel launch, HyperQ arbitration, block dispatch.

Execution model (faithful to §2 / §6.4):

- the host pays ``kernel_launch_ns`` per launch call;
- at most ``spec.hyperq_connections`` kernels are in flight at once
  (HyperQ); further launches queue FIFO;
- the GigaThread dispatcher places whole threadblocks onto SMMs as
  resources allow, in launch order, paying ``block_dispatch_ns`` each;
- a block's warps/registers/shared memory are released only when its
  **last** warp retires — the threadblock-granularity residency that
  Pagoda's warp-granularity scheduling beats in Fig. 8.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.cuda.barrier import WarpBarrier
from repro.cuda.memory import DeviceAllocator
from repro.cuda.stream import Stream
from repro.device_api import run_functional
from repro.gpu.device import Gpu
from repro.gpu.occupancy import registers_per_block
from repro.gpu.phases import BlockSync, Phase
from repro.pcie.bus import Direction, PcieBus
from repro.sim import Engine, Event, Signal
from repro.tasks import TaskResult, TaskSpec

#: Titan X device memory (12 GB), for the cudaMalloc heap.
DEVICE_MEM_BYTES = 12 * 1024 ** 3


class CudaRuntime:
    """Simulated CUDA context on one GPU."""

    def __init__(self, engine: Engine, gpu: Gpu, bus: PcieBus,
                 functional: bool = False, faults=None,
                 smm_mask=None) -> None:
        self.engine = engine
        self.gpu = gpu
        self.bus = bus
        self.timing = gpu.timing
        self.functional = functional
        #: optional :class:`repro.faults.FaultInjector`; launches draw
        #: ``cuda.launch_fail``, streams draw ``cuda.stream_stall``.
        self.faults = faults
        #: optional set of SMM indices this runtime may dispatch onto
        #: (a compute partition); ``None`` means the whole device.
        self.smm_mask = None if smm_mask is None else frozenset(smm_mask)
        self.allocator = DeviceAllocator(DEVICE_MEM_BYTES)
        self._inflight_kernels = 0
        self._launch_queue: deque = deque()
        self._pending_blocks: deque = deque()
        self._work = Signal()
        self._freed = Signal()
        self.kernels_completed = 0
        self._streams = 0
        engine.spawn(self._dispatch_loop(), name="gigathread", daemon=True)

    # -- host API ----------------------------------------------------------

    def create_stream(self, name: str = "") -> Stream:
        """Create a new in-order CUDA stream."""
        self._streams += 1
        return Stream(self.engine, name or f"s{self._streams}",
                      faults=self.faults)

    def host_launch(self, task: TaskSpec, stream: Stream,
                    result: Optional[TaskResult] = None) -> Generator:
        """Subroutine run by a host thread: pay the driver launch cost
        and enqueue the kernel on ``stream``; returns the completion
        event without waiting for it."""
        yield self.timing.kernel_launch_ns
        return self.launch_async(task, stream, result)

    def launch_async(self, task: TaskSpec, stream: Stream,
                     result: Optional[TaskResult] = None) -> Event:
        """Enqueue a kernel without host-side cost accounting.

        Raises :class:`~repro.core.errors.CudaLaunchError` when the
        fault plan injects ``cuda.launch_fail`` for this kernel
        (cudaErrorLaunchFailure at enqueue time, the retryable kind).
        """
        self._validate_launch(task)
        if self.faults is not None:
            if self.faults.draw("cuda.launch_fail", task.name) is not None:
                from repro.core.errors import CudaLaunchError
                raise CudaLaunchError(
                    f"launch of kernel {task.name!r} failed "
                    "(injected cuda.launch_fail)"
                )
        return stream.enqueue(lambda: self._kernel_op(task, result))

    def _validate_launch(self, task: TaskSpec) -> None:
        """cudaErrorInvalidConfiguration: a block that can never be
        placed must fail at launch, not deadlock the dispatcher."""
        spec = self.gpu.spec
        if task.threads_per_block > spec.max_threads_per_block:
            raise ValueError(
                f"invalid configuration: {task.threads_per_block} "
                f"threads/block exceeds the device limit "
                f"{spec.max_threads_per_block}"
            )
        if task.shared_mem_bytes > spec.max_shared_mem_per_block:
            raise ValueError(
                f"invalid configuration: {task.shared_mem_bytes} B of "
                f"shared memory exceeds the per-block limit "
                f"{spec.max_shared_mem_per_block}"
            )
        warps, regs, smem = self._block_requirements(task)
        from repro.gpu.occupancy import blocks_per_smm
        if blocks_per_smm(spec, task.threads_per_block,
                          task.regs_per_thread, smem) == 0:
            raise ValueError(
                f"invalid configuration: a block of task {task.name!r} "
                "does not fit on any SMM (register/shared-memory "
                "footprint too large)"
            )

    def memcpy_async(self, nbytes: int, direction: Direction,
                     stream: Stream) -> Event:
        """cudaMemcpyAsync on a stream."""
        return stream.enqueue(
            lambda: self.bus.transfer(nbytes, direction)
        )

    # -- kernel lifecycle ---------------------------------------------------

    def _kernel_op(self, task: TaskSpec, result: Optional[TaskResult]) -> Generator:
        """Stream-driver subroutine for one kernel: HyperQ admission,
        block fan-out, completion."""
        while self._inflight_kernels >= self.gpu.spec.hyperq_connections:
            ev = Event()
            self._launch_queue.append(ev)
            yield ev
        self._inflight_kernels += 1
        if result is not None:
            result.sched_time = self.engine.now

        done = Event()
        state = {"remaining": task.num_blocks, "started": False}

        def on_block_start() -> None:
            if result is not None and not state["started"]:
                state["started"] = True
                result.start_time = self.engine.now

        def on_block_done() -> None:
            state["remaining"] -= 1
            if state["remaining"] == 0:
                done.fire(self.engine.now)

        for block_id in range(task.num_blocks):
            self._pending_blocks.append(
                (task, block_id, on_block_start, on_block_done)
            )
        self._work.pulse()
        yield done
        if result is not None:
            result.end_time = self.engine.now
        self.kernels_completed += 1
        if self.functional:
            run_functional(task)
        self._inflight_kernels -= 1
        if self._launch_queue:
            self._launch_queue.popleft().fire(None)

    def _block_requirements(self, task: TaskSpec):
        warps = task.warps_per_block
        regs = registers_per_block(
            self.gpu.spec, task.threads_per_block, task.regs_per_thread
        )
        return warps, regs, task.shared_mem_bytes

    def _dispatch_loop(self) -> Generator:
        """The GigaThread engine: place pending blocks, in order."""
        while True:
            if not self._pending_blocks:
                yield self._work.wait()
                continue
            # arm BEFORE probing: a block retiring during the
            # dispatch-cost window below must not be a lost wakeup
            freed_retry = self._freed.wait()
            task, block_id, on_start, on_done = self._pending_blocks[0]
            warps, regs, smem = self._block_requirements(task)
            smm = self.gpu.find_smm(warps, regs, smem, mask=self.smm_mask)
            if smm is None:
                yield freed_retry
                continue
            self._pending_blocks.popleft()
            smm.reserve_block(warps, regs, smem)
            yield self.timing.block_dispatch_ns
            self.engine.spawn(
                self._run_block(task, block_id, smm, warps, regs, smem,
                                on_start, on_done),
                name=f"block.{task.name}.{block_id}",
            )

    def _run_block(self, task: TaskSpec, block_id: int, smm, warps: int,
                   regs: int, smem: int, on_start, on_done) -> Generator:
        on_start()
        barrier = WarpBarrier(warps, f"{task.name}.{block_id}")
        remaining = [warps]
        block_done = Event()
        for warp_id in range(warps):
            self.engine.spawn(
                self._run_warp(task, block_id, warp_id, smm, barrier,
                               remaining, block_done),
                name=f"warp.{task.name}.{block_id}.{warp_id}",
            )
        yield block_done
        smm.release_block(warps, regs, smem)
        on_done()
        self._freed.pulse()

    def _run_warp(self, task: TaskSpec, block_id: int, warp_id: int, smm,
                  barrier: WarpBarrier, remaining, block_done: Event) -> Generator:
        for item in task.warp_phases(block_id, warp_id):
            if isinstance(item, Phase):
                yield from smm.execute_phase(item, self.gpu.dram)
            elif isinstance(item, BlockSync):
                yield self.timing.syncthreads_ns
                yield barrier.arrive()
            else:
                raise TypeError(f"kernel yielded {item!r}")
        remaining[0] -= 1
        if remaining[0] == 0:
            block_done.fire(self.engine.now)
