"""Reusable warp-granularity barrier.

Both ``__syncthreads()`` (native CUDA blocks) and Pagoda's named
barriers (§5.2) synchronize at warp granularity in the model: each warp
arrival counts for its 32 threads.  The barrier is generation-based so
it can be reused across loop iterations without re-allocation.
"""

from __future__ import annotations

from repro.sim import Event


class WarpBarrier:
    """Barrier for ``parties`` warps; reusable across generations."""

    def __init__(self, parties: int, name: str = "") -> None:
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.parties = parties
        self.name = name
        self._arrived = 0
        self._gate = Event()
        self.generation = 0

    def arrive(self) -> Event:
        """Register one warp's arrival; returned event fires when all
        ``parties`` warps of this generation have arrived."""
        self._arrived += 1
        gate = self._gate
        if self._arrived == self.parties:
            self._arrived = 0
            self._gate = Event()
            self.generation += 1
            gate.fire(self.generation)
        elif self._arrived > self.parties:
            raise RuntimeError(
                f"barrier {self.name!r}: more arrivals than parties"
            )
        return gate

    @property
    def waiting(self) -> int:
        """Warps currently blocked at the barrier."""
        return self._arrived
