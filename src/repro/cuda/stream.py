"""CUDA streams: in-order operation queues.

Operations (async memcpys, kernel launches) enqueued on one stream
execute in FIFO order; different streams proceed independently — the
concurrency HyperQ exposes through its 32 hardware connections
(connection arbitration happens in :mod:`repro.cuda.runtime`, not
here).
"""

from __future__ import annotations

from typing import Callable, Generator, List

from repro.sim import Engine, Event, Store


class Stream:
    """One in-order queue of device operations."""

    def __init__(self, engine: Engine, name: str = "",
                 faults=None) -> None:
        self.engine = engine
        self.name = name
        #: optional :class:`repro.faults.FaultInjector`; the driver
        #: draws ``cuda.stream_stall`` before each dequeued operation.
        self.faults = faults
        #: total injected stall time absorbed by this stream.
        self.stalled_ns = 0.0
        self._ops: Store = Store(engine, f"stream.{name}")
        self._pending = 0
        self._drain_waiters: List[Event] = []
        self.completed_ops = 0
        engine.spawn(self._driver(), name=f"stream-driver.{name}",
                     daemon=True)

    def enqueue(self, op: Callable[[], Generator]) -> Event:
        """Queue an operation; the returned event fires on completion.

        ``op`` is a zero-argument generator factory executed by the
        stream's driver process.
        """
        done = Event()
        self._pending += 1
        self._ops.put((op, done))
        return done

    def _driver(self) -> Generator:
        while True:
            op, done = yield self._ops.get()
            if self.faults is not None:
                stall = self.faults.draw("cuda.stream_stall", self.name)
                if stall is not None:
                    # the stream wedges for a while (a blocked hardware
                    # connection); everything queued behind waits it out
                    self.stalled_ns += stall.magnitude_ns
                    yield stall.magnitude_ns
            yield from op()
            self._pending -= 1
            self.completed_ops += 1
            done.fire(self.engine.now)
            if self._pending == 0:
                waiters, self._drain_waiters = self._drain_waiters, []
                for ev in waiters:
                    ev.fire(self.engine.now)

    def synchronize(self) -> Event:
        """Event that fires when every queued op has completed
        (cudaStreamSynchronize)."""
        ev = Event()
        if self._pending == 0:
            ev.fire(self.engine.now)
        else:
            self._drain_waiters.append(ev)
        return ev

    @property
    def pending(self) -> int:
        """Operations queued or executing on this stream."""
        return self._pending
