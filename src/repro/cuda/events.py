"""CUDA events: timing markers and cross-stream dependencies.

Models ``cudaEventCreate`` / ``cudaEventRecord`` /
``cudaEventSynchronize`` / ``cudaEventElapsedTime`` and
``cudaStreamWaitEvent`` — the primitives Table 1 maps Pagoda's
``wait``/``check`` onto for the CUDA baseline, and the way real HyperQ
applications build cross-stream pipelines.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.cuda.stream import Stream
from repro.sim import Engine, Event


class CudaEvent:
    """One recordable timing/dependency marker."""

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._completed = Event()
        self.record_time: Optional[float] = None
        self.complete_time: Optional[float] = None

    @property
    def recorded(self) -> bool:
        """Whether cudaEventRecord has been called."""
        return self.record_time is not None

    @property
    def completed(self) -> bool:
        """cudaEventQuery: has all prior work on the stream finished?"""
        return self._completed.fired

    def record(self, stream: Stream) -> None:
        """cudaEventRecord: completes when every op enqueued on the
        stream *before this call* has finished."""
        if self.completed:
            raise RuntimeError(f"event {self.name!r} already completed")
        self.record_time = self.engine.now

        def marker() -> Generator:
            self.complete_time = self.engine.now
            self._completed.fire(self.engine.now)
            return
            yield  # pragma: no cover - generator shape

        stream.enqueue(marker)

    def synchronize(self) -> Event:
        """cudaEventSynchronize: waitable for completion."""
        if not self.recorded:
            raise RuntimeError(f"event {self.name!r} was never recorded")
        return self._completed

    def elapsed_ms(self, later: "CudaEvent") -> float:
        """cudaEventElapsedTime between two completed events."""
        if self.complete_time is None or later.complete_time is None:
            raise RuntimeError("both events must have completed")
        return (later.complete_time - self.complete_time) / 1e6


def stream_wait_event(stream: Stream, event: CudaEvent) -> None:
    """cudaStreamWaitEvent: block the stream until the event fires."""
    if not event.recorded:
        raise RuntimeError(
            f"cannot wait on unrecorded event {event.name!r}"
        )

    def barrier_op() -> Generator:
        if not event.completed:
            yield event._completed

    stream.enqueue(barrier_op)
