"""The built-in incident catalog: six scenarios across four layers.

Each scenario is one packaged incident with the detectors that decide
whether the stack handled it — the experiment definitions ROADMAP
item 4 asked for.  Every workload here is deliberately small: the
whole catalog runs in seconds so CI can matrix it, and each runner is
a pure function of ``(seed, lane, workers)`` with lane/workers
changing nothing but wall time.

Kernels and runners are module-level so cluster scenarios pickle into
worker processes under the spawn start method.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster import ConsistentHashRouter, NodeSpec, Topology, run_cluster
from repro.core.runtime import PagodaConfig
from repro.faults import FaultPlan, FaultSpec
from repro.gpu.phases import Phase
from repro.obs import Obs
from repro.partition import PartitionPlan
from repro.scenarios.detectors import (
    Conservation,
    ExtraValue,
    ObsCounterMatchesReport,
    ObsValue,
    ReadmitWithin,
    ReportValue,
)
from repro.scenarios.registry import register
from repro.scenarios.spec import Scenario, ScenarioOutcome, ScenarioParams
from repro.scenarios.trace import load_trace, task_mix, tenant_arrivals
from repro.serve import (
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    ServeConfig,
    TenantSpec,
    TokenBucket,
    serve,
)
from repro.serve.server import TaskServer
from repro.serve.slo import SloClass
from repro.tasks import TaskSpec


# -- shared serve-layer workload ----------------------------------------------

_WORK = {"shared": True}


def _serve_kernel(task, block_id, warp_id):
    yield Phase(inst=2_000.0, mem_bytes=256)


def _serve_tasks(prefix: str, n: int) -> List[TaskSpec]:
    return [TaskSpec(f"{prefix}{i}", 128, 1, _serve_kernel, work=_WORK)
            for i in range(n)]


def _obs_config(lane: str, **pagoda_kwargs):
    """A ServeConfig wired for snapshots (profile off: scenario results
    must not carry host-time numbers)."""
    obs = Obs(profile=False)
    config = ServeConfig(
        pagoda=PagodaConfig(lane=lane, obs=obs, **pagoda_kwargs))
    return config, obs


def _serve_with_obs(tenants, config, obs) -> ScenarioOutcome:
    server = TaskServer(tenants, config)
    report = server.run()
    return report, obs.snapshot(server.engine)


# -- serve.token_bucket_overload ----------------------------------------------


def _overload_runner(params: ScenarioParams) -> ScenarioOutcome:
    # calibrate this stack's service capacity with a flood, then offer
    # 2x that — once without admission control, once behind a token
    # bucket at 0.8x capacity
    cal = serve(
        [TenantSpec("cal", _serve_tasks("c", 150),
                    DeterministicArrivals(100.0))],
        ServeConfig(pagoda=PagodaConfig(lane=params.lane),
                    label="calibrate"),
    )
    capacity = cal.completed * 1e9 / cal.makespan_ns

    # long enough that the unprotected queue's tail visibly grows —
    # the token bucket's p99 bound is independent of run length
    def overload_tenant():
        return [TenantSpec("load", _serve_tasks("o", 400),
                           PoissonArrivals(2.0 * capacity,
                                           seed=params.seed + 5))]

    baseline = serve(
        overload_tenant(),
        ServeConfig(pagoda=PagodaConfig(lane=params.lane),
                    label="baseline"))
    config, obs = _obs_config(params.lane)
    config.policy = TokenBucket(rate_per_s=0.8 * capacity, burst=8)
    config.label = "protected"
    protected, snap = _serve_with_obs(overload_tenant(), config, obs)
    return ScenarioOutcome(
        report={"baseline": baseline.to_dict(),
                "protected": protected.to_dict()},
        obs=snap,
        extra={
            "capacity_per_s": round(capacity, 3),
            "p99_ratio": round(baseline.p99_us / protected.p99_us, 3),
        },
    )


register(Scenario(
    name="serve.token_bucket_overload",
    version=1,
    layer="serve",
    description=("2x open-loop overload: the token bucket sheds load "
                 "and holds p99 far below the unprotected tail"),
    runner=_overload_runner,
    detectors=(
        ExtraValue("tail_bounded", "p99_ratio", ">=", 2.0),
        ReportValue("sheds_load", "protected.totals.dropped", ">", 0),
        Conservation("protected_conserved", "protected.totals"),
        Conservation("baseline_conserved", "baseline.totals"),
        ObsCounterMatchesReport("obs_counts_completions",
                                "serve.completed",
                                "protected.totals.completed"),
        ObsValue("obs_saw_drops", "counters.serve.dropped", ">", 0),
    ),
))


# -- fault.smm_brownout_admission ---------------------------------------------


def _brownout_runner(params: ScenarioParams) -> ScenarioOutcome:
    # a seeded SMM brownout (the chaos plan of tests/serve/test_report)
    # hits a token-bucket-protected server mid-overload
    plan = FaultPlan.generate(seed=params.seed + 3, n_faults=6,
                              horizon_ns=300_000.0, columns=48)
    watchdog = 2_000_000.0 if plan.needs_watchdog() else None
    config, obs = _obs_config(params.lane, fault_plan=plan,
                              watchdog_deadline_ns=watchdog)
    config.policy = TokenBucket(rate_per_s=1_500_000.0, burst=8)
    config.label = "brownout"
    tenants = [TenantSpec(
        "svc", _serve_tasks("b", 200),
        PoissonArrivals(4_000_000.0, seed=params.seed + 7),
        slo=SloClass(deadline_ns=3_000_000.0),
    )]
    report, snap = _serve_with_obs(tenants, config, obs)
    return ScenarioOutcome(report=report.to_dict(), obs=snap)


register(Scenario(
    name="fault.smm_brownout_admission",
    version=1,
    layer="fault",
    description=("seeded SMM brownout under 2x overload: chaos fires, "
                 "the bucket keeps shedding, no request is lost"),
    runner=_brownout_runner,
    detectors=(
        ReportValue("chaos_fired", "faults_injected", ">", 0),
        ReportValue("service_survives", "totals.completed", ">", 0),
        ReportValue("bucket_sheds", "totals.dropped", ">", 0),
        Conservation(),
        ObsCounterMatchesReport("obs_counts_drops", "serve.dropped",
                                "totals.dropped"),
    ),
))


# -- serve.trace_replay -------------------------------------------------------

#: total instances in the bundled sample trace (locked by the golden
#: round-trip test in tests/scenarios/test_trace.py).
SAMPLE_TRACE_INSTANCES = 41


def _trace_kernel(task, block_id, warp_id):
    yield Phase(inst=4_000.0, mem_bytes=512)


def _trace_runner(params: ScenarioParams) -> ScenarioOutcome:
    rows = load_trace()
    mix = task_mix(rows)
    arrivals = tenant_arrivals(rows, time_scale_ns=1e5,
                               stagger_ns=2_000.0, seed=params.seed)
    tenants = [
        TenantSpec(task_type,
                   [TaskSpec(f"{task_type}.{i}", 64, 1, _trace_kernel)
                    for i in range(count)],
                   arrivals[task_type])
        for task_type, count in mix.items()
    ]
    config, obs = _obs_config(params.lane)
    config.label = "trace-replay"
    report, snap = _serve_with_obs(tenants, config, obs)
    return ScenarioOutcome(
        report=report.to_dict(), obs=snap,
        extra={
            "trace_rows": float(len(rows)),
            "trace_instances": float(sum(mix.values())),
            "offered_minus_trace":
                float(report.offered - sum(mix.values())),
        },
    )


register(Scenario(
    name="serve.trace_replay",
    version=1,
    layer="serve",
    description=("replay the bundled Alibaba-style sample trace: every "
                 "instance arrives on schedule and completes"),
    runner=_trace_runner,
    detectors=(
        ExtraValue("replays_whole_trace", "offered_minus_trace",
                   "==", 0.0),
        ReportValue("offered_matches_trace", "totals.offered", "==",
                    SAMPLE_TRACE_INSTANCES),
        ReportValue("nothing_dropped", "totals.dropped", "==", 0),
        ReportValue("nothing_failed", "totals.failed", "==", 0),
        Conservation(),
        ObsCounterMatchesReport("obs_counts_offered", "serve.offered",
                                "totals.offered"),
    ),
))


# -- cluster scenarios --------------------------------------------------------

_CLUSTER_NODES = 4
_CLUSTER_LINK_NS = 50_000.0
_CLUSTER_REQUESTS = 12


def _cluster_kernel(task, block_id, warp_id):
    yield Phase(inst=8_000.0, mem_bytes=512)


def _cluster_tenants(seed: int) -> List[TenantSpec]:
    def tasks(prefix):
        return [TaskSpec(f"{prefix}{i % 4}", 64, 2, _cluster_kernel)
                for i in range(_CLUSTER_REQUESTS)]
    # slow arrivals so the offered load spans the fault horizon
    return [
        TenantSpec("lat", tasks("lat"),
                   PoissonArrivals(20_000.0, seed=seed + 7),
                   slo=SloClass(deadline_ns=3_000_000.0)),
        TenantSpec("bat", tasks("bat"),
                   PoissonArrivals(15_000.0, seed=seed + 9),
                   slo=SloClass()),
    ]


def _cluster_run(params: ScenarioParams, plan: FaultPlan, label: str):
    topo = Topology(
        nodes=[NodeSpec(f"n{i}") for i in range(_CLUSTER_NODES)],
        link_ns=_CLUSTER_LINK_NS)
    return run_cluster(
        _cluster_tenants(params.seed), topo,
        router=ConsistentHashRouter(topo, key="request"),
        workers=params.workers, label=label, fabric_plan=plan,
    )


def _partition_heal_runner(params: ScenarioParams) -> ScenarioOutcome:
    plan = FaultPlan(specs=[
        FaultSpec(kind="fabric.link.partition", at_ns=200_000.0,
                  magnitude_ns=400_000.0, target="n1"),
    ], seed=params.seed)
    report = _cluster_run(params, plan, "partition-heal")
    return ScenarioOutcome(report=report.to_dict())


register(Scenario(
    name="cluster.partition_heal",
    version=1,
    layer="cluster",
    description=("a node goes dark for 400us: traffic hedges around "
                 "it, the ledger suppresses duplicates, and the node "
                 "is readmitted promptly after the heal"),
    runner=_partition_heal_runner,
    detectors=(
        ReadmitWithin("readmits_promptly", node="n1", epochs=16),
        Conservation("ledger_balances", "frontier"),
        ReportValue("hedges_fired", "routing.hedged", ">", 0),
        ReportValue("dups_suppressed",
                    "frontier.hedge_dups_suppressed", ">", 0),
        ReportValue("wire_loss_recovered",
                    "fabric.reliable.retransmits", ">", 0),
    ),
))


def _lossy_fabric_runner(params: ScenarioParams) -> ScenarioOutcome:
    plan = FaultPlan(specs=[
        FaultSpec(kind="fabric.link.drop", meta={"rate": 0.05}),
    ], seed=params.seed + 1)
    report = _cluster_run(params, plan, "lossy-fabric")
    return ScenarioOutcome(report=report.to_dict())


register(Scenario(
    name="cluster.lossy_fabric",
    version=1,
    layer="cluster",
    description=("5% wire loss on every link: retransmits recover "
                 "every message and the answer ledger still balances"),
    runner=_lossy_fabric_runner,
    detectors=(
        Conservation("ledger_balances", "frontier"),
        ReportValue("wire_actually_lossy",
                    "fabric.reliable.wire_dropped", ">", 0),
        ReportValue("retransmits_recover",
                    "fabric.reliable.retransmits", ">", 0),
        ReportValue("nothing_dead_lettered",
                    "fabric.reliable.dead_lettered", "==", 0),
    ),
))


# -- partition.noisy_neighbor -------------------------------------------------

_NN_TASKS = 96
_NN_BURST = 48


def _nn_kernel(task, block_id, warp_id):
    inst = task.work / 4.0
    for _ in range(3):
        yield Phase(inst=inst)
    yield Phase(inst=inst, mem_bytes=256.0)


def _nn_tenants(seed: int, partitioned: bool) -> List[TenantSpec]:
    victim = TenantSpec(
        "victim",
        [TaskSpec(f"v{i}", 64, 1, _nn_kernel, work=2_000.0,
                  regs_per_thread=32) for i in range(_NN_TASKS)],
        PoissonArrivals(400_000.0, seed=seed + 1),
        partition="victim" if partitioned else None,
    )
    aggressor = TenantSpec(
        "aggressor",
        [TaskSpec(f"a{i}", 256, 1, _nn_kernel, work=40_000.0,
                  regs_per_thread=64) for i in range(_NN_TASKS)],
        BurstyArrivals(burst_size=_NN_BURST, gap_in_burst_ns=150.0,
                       idle_gap_ns=120_000.0, seed=seed + 2),
        partition="aggressor" if partitioned else None,
    )
    return [victim, aggressor]


def _noisy_neighbor_runner(params: ScenarioParams) -> ScenarioOutcome:
    shared = serve(
        _nn_tenants(params.seed, False),
        ServeConfig(pagoda=PagodaConfig(lane=params.lane),
                    label="shared"))
    plan = PartitionPlan.from_mode("DPX", oversubscribe=1.5,
                                   names=["victim", "aggressor"])
    parts = serve(
        _nn_tenants(params.seed, True),
        ServeConfig(pagoda=PagodaConfig(lane=params.lane,
                                        partition=plan),
                    label="static"))
    shared_p99 = shared.tenant_stats["victim"]["hist"].percentile(99)
    static_p99 = parts["victim"].tenant_stats["victim"][
        "hist"].percentile(99)
    report: Dict[str, dict] = {
        "shared": shared.to_dict(),
        "static": {name: rep.to_dict()
                   for name, rep in sorted(parts.items())},
    }
    return ScenarioOutcome(
        report=report,
        extra={
            "victim_p99_shared_us": round(shared_p99 / 1e3, 3),
            "victim_p99_static_us": round(static_p99 / 1e3, 3),
            "p99_shared_over_static":
                round(shared_p99 / static_p99, 3),
        },
    )


register(Scenario(
    name="partition.noisy_neighbor",
    version=1,
    layer="partition",
    description=("bursty aggressor vs steady victim on one device: a "
                 "static DPX split strictly improves the victim's p99 "
                 "over the shared stack"),
    runner=_noisy_neighbor_runner,
    detectors=(
        ExtraValue("isolation_improves_tail", "p99_shared_over_static",
                   ">", 1.0),
        Conservation("shared_conserved", "shared.totals"),
        Conservation("victim_conserved", "static.victim.totals"),
        Conservation("aggressor_conserved", "static.aggressor.totals"),
        ReportValue("victim_unharmed", "static.victim.totals.dropped",
                    "==", 0),
    ),
))
