"""Alibaba-style trace loading: rows -> seeded arrival schedules.

The GPU-cluster traces Alibaba published (and the AIOpsLab-style
replays built on them) describe work as *task groups*: a job row names
a task type (``xtensorflow``, ``PyTorchWorker``, ``ps``, ...), an
instance count, and a submission timestamp.  This module converts such
rows into the serve layer's native currency — strictly-increasing,
byte-stable arrival schedules, one
:class:`~repro.serve.arrivals.TraceArrivals` per task type — so serve
and cluster runs replay production-shaped traffic instead of
synthetic Poisson only.

Determinism discipline (same as :mod:`repro.faults`): every instant is
a pure function of the row's stable identity.  Instance arrivals
within a row are staggered by :func:`repro.faults.plan.hash01`
``(seed, job, task_type, instance)`` — not an RNG stream — so the
schedule is independent of row order, worker count, and interpreter
salt, and adding a row never reshuffles another row's instants.  All
times round to 1/1000 ns, the serve layer's schedule grid.

Row format (CSV, header required, extra columns ignored)::

    job_name,task_name,inst_num,status,start_time,end_time,plan_cpu,plan_mem,plan_gpu

``start_time``/``end_time`` are trace-relative seconds;
``time_scale_ns`` maps one trace second onto simulated nanoseconds
(traces span hours, simulations span milliseconds — the shape
survives, the wall time compresses).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.faults import hash01
from repro.serve.arrivals import TraceArrivals

#: the checked-in sample trace (golden-tested round trip).
SAMPLE_TRACE = Path(__file__).parent / "data" / "sample_trace.csv"

#: columns a trace file must carry (order-free; extras ignored).
REQUIRED_COLUMNS = ("job_name", "task_name", "inst_num", "start_time")


@dataclass(frozen=True)
class TraceRow:
    """One task group of one job."""

    job: str
    task_type: str
    instances: int
    start_s: float
    end_s: float
    plan_gpu: float


def load_trace(path=None) -> List[TraceRow]:
    """Parse a trace CSV into rows, sorted by
    ``(start_s, job, task_type)`` — the stable global order every
    downstream schedule derives from."""
    path = Path(path) if path is not None else SAMPLE_TRACE
    rows: List[TraceRow] = []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        missing = [c for c in REQUIRED_COLUMNS
                   if c not in (reader.fieldnames or [])]
        if missing:
            raise ValueError(
                f"trace {path} is missing columns {missing} "
                f"(have {reader.fieldnames})"
            )
        for lineno, rec in enumerate(reader, start=2):
            try:
                instances = int(rec["inst_num"])
                start_s = float(rec["start_time"])
                end_s = float(rec.get("end_time") or start_s)
                plan_gpu = float(rec.get("plan_gpu") or 0.0)
            except ValueError as exc:
                raise ValueError(
                    f"trace {path} line {lineno}: {exc}") from None
            if instances < 1:
                raise ValueError(
                    f"trace {path} line {lineno}: inst_num must be >= 1")
            if start_s < 0:
                raise ValueError(
                    f"trace {path} line {lineno}: start_time must be >= 0")
            rows.append(TraceRow(
                job=rec["job_name"], task_type=rec["task_name"],
                instances=instances, start_s=start_s, end_s=end_s,
                plan_gpu=plan_gpu,
            ))
    if not rows:
        raise ValueError(f"trace {path} holds no rows")
    rows.sort(key=lambda r: (r.start_s, r.job, r.task_type))
    return rows


def task_mix(rows: Sequence[TraceRow]) -> Dict[str, int]:
    """Task-type -> total instance count (the trace's workload mix)."""
    mix: Dict[str, int] = {}
    for row in rows:
        mix[row.task_type] = mix.get(row.task_type, 0) + row.instances
    return dict(sorted(mix.items()))


def trace_schedules(
    rows: Sequence[TraceRow],
    time_scale_ns: float = 1e6,
    stagger_ns: float = 2_000.0,
    seed: int = 0,
    task_types: Optional[Sequence[str]] = None,
) -> Dict[str, List[float]]:
    """Per-task-type arrival instants (ns), strictly increasing.

    Each row contributes ``instances`` arrivals at its scaled
    submission time, staggered inside ``stagger_ns`` by the hash of
    ``(seed, job, task_type, instance)``.  Collisions after rounding
    (two rows submitting the identical instant) are resolved by
    nudging the later arrival forward one grid step (0.001 ns) — a
    deterministic tiebreak that preserves the sorted order.
    """
    if time_scale_ns <= 0:
        raise ValueError("time_scale_ns must be > 0")
    if stagger_ns < 0:
        raise ValueError("stagger_ns must be >= 0")
    wanted = set(task_types) if task_types is not None else None
    raw: Dict[str, List[float]] = {}
    for row in rows:
        if wanted is not None and row.task_type not in wanted:
            continue
        base = row.start_s * time_scale_ns
        for instance in range(row.instances):
            jitter = hash01(seed, row.job, row.task_type,
                            instance) * stagger_ns
            raw.setdefault(row.task_type, []).append(
                round(base + jitter, 3))
    if wanted is not None:
        absent = sorted(wanted - set(raw))
        if absent:
            raise ValueError(f"trace has no rows for task types {absent}")
    schedules: Dict[str, List[float]] = {}
    for task_type in sorted(raw):
        instants = sorted(raw[task_type])
        out: List[float] = []
        prev = -1.0
        for t in instants:
            if t <= prev:
                t = round(prev + 0.001, 3)
            out.append(t)
            prev = t
        schedules[task_type] = out
    return schedules


def tenant_arrivals(
    rows: Sequence[TraceRow],
    time_scale_ns: float = 1e6,
    stagger_ns: float = 2_000.0,
    seed: int = 0,
    cycle_ns: float = 0.0,
    label: str = "trace",
) -> Dict[str, TraceArrivals]:
    """The loader's deliverable: task-type ->
    :class:`~repro.serve.arrivals.TraceArrivals`, ready to drop into
    :class:`~repro.serve.TenantSpec` (one tenant per task type, sized
    by :func:`task_mix`)."""
    schedules = trace_schedules(rows, time_scale_ns=time_scale_ns,
                                stagger_ns=stagger_ns, seed=seed)
    return {
        task_type: TraceArrivals(instants, cycle_ns=cycle_ns,
                                 label=f"{label}:{task_type}")
        for task_type, instants in schedules.items()
    }
