"""Reusable detectors: predicates over reports and obs snapshots.

Detectors are deliberately small and declarative — a dotted path into
the report digest, a comparison, a bound — so a scenario definition
reads like the incident postmortem it encodes ("token bucket holds
victim p99 under 2x overload", "quarantine readmits within 8 epochs
of the heal").  Anything a detector quotes in its detail string is a
virtual-time value, keeping verdict bytes identical across lanes and
worker counts.

The dotted-path convention: ``"totals.completed"`` walks nested dicts
in ``ctx.report``; integer segments index into lists
(``"health.events.0.kind"``).
"""

from __future__ import annotations

from typing import Tuple

from repro.scenarios.spec import Detector, ScenarioContext

#: comparison operators a bound detector may use.
_OPS = {
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def lookup(table, path: str):
    """Walk ``table`` along a dotted path; raises ``KeyError`` naming
    the first missing segment."""
    node = table
    walked = []
    for segment in path.split("."):
        walked.append(segment)
        if isinstance(node, (list, tuple)):
            try:
                node = node[int(segment)]
                continue
            except (ValueError, IndexError):
                raise KeyError(".".join(walked)) from None
        if not isinstance(node, dict) or segment not in node:
            raise KeyError(".".join(walked))
        node = node[segment]
    return node


class ReportValue(Detector):
    """``report[path] <op> bound`` — the workhorse detector."""

    def __init__(self, name: str, path: str, op: str, bound) -> None:
        super().__init__(name)
        if op not in _OPS:
            raise ValueError(f"unknown op {op!r} (have {sorted(_OPS)})")
        self.path = path
        self.op = op
        self.bound = bound

    def _value(self, ctx: ScenarioContext):
        return lookup(ctx.report, self.path)

    def check(self, ctx: ScenarioContext) -> Tuple[bool, str]:
        value = self._value(ctx)
        passed = _OPS[self.op](value, self.bound)
        return passed, f"{self.path}={value} {self.op} {self.bound}"


class ExtraValue(ReportValue):
    """``extra[key] <op> bound`` over the runner's derived scalars."""

    def _value(self, ctx: ScenarioContext):
        return lookup(ctx.extra, self.path)


class ObsValue(ReportValue):
    """``obs_snapshot[path] <op> bound`` — asserts on the ``repro.obs``
    snapshot (``counters.serve.offered`` style paths are looked up as
    section + instrument name, since instrument names themselves
    contain dots)."""

    def _value(self, ctx: ScenarioContext):
        if ctx.obs is None:
            raise KeyError("scenario runner attached no obs snapshot")
        section, _, rest = self.path.partition(".")
        table = ctx.obs[section]
        if rest in table:
            return table[rest]
        # instrument names contain dots themselves — peel trailing
        # record fields off until a registered name matches
        parts = rest.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            name = ".".join(parts[:cut])
            if name in table:
                return lookup(table[name], ".".join(parts[cut:]))
        raise KeyError(self.path)


class ObsCounterMatchesReport(Detector):
    """The obs layer and the report must tell the same story: a named
    obs counter equals a report-digest field (e.g. ``serve.completed``
    vs ``totals.completed``).  Catches instrumentation drift — the
    class of bug where the dashboard and the billing disagree."""

    def __init__(self, name: str, counter: str, report_path: str) -> None:
        super().__init__(name)
        self.counter = counter
        self.report_path = report_path

    def check(self, ctx: ScenarioContext) -> Tuple[bool, str]:
        if ctx.obs is None:
            raise KeyError("scenario runner attached no obs snapshot")
        observed = ctx.obs["counters"][self.counter]
        reported = lookup(ctx.report, self.report_path)
        return (observed == reported,
                f"obs counters.{self.counter}={observed} == "
                f"{self.report_path}={reported}")


class Conservation(Detector):
    """No request may vanish: ``completed + failed + dropped ==
    offered`` over a totals-shaped table (a serve/fleet ``totals``
    section or the reliable lane's answer-ledger ``frontier``)."""

    def __init__(self, name: str = "requests_conserved",
                 path: str = "totals") -> None:
        super().__init__(name)
        self.path = path

    def check(self, ctx: ScenarioContext) -> Tuple[bool, str]:
        totals = lookup(ctx.report, self.path)
        offered = totals["offered"]
        answered = (totals["completed"] + totals["failed"]
                    + totals["dropped"])
        return (offered == answered,
                f"{self.path}: completed+failed+dropped={answered} == "
                f"offered={offered}")


class ReadmitWithin(Detector):
    """Self-healing closes its loop: after a node is quarantined, a
    ``readmit`` event for the same node must land within ``epochs``
    barrier epochs of the ``quarantine`` event.  Reads the reliable
    fleet digest's ``health.events`` log and ``sync.epoch_ns``."""

    def __init__(self, name: str, node: str, epochs: int) -> None:
        super().__init__(name)
        self.node = node
        self.epochs = epochs

    def check(self, ctx: ScenarioContext) -> Tuple[bool, str]:
        epoch_ns = lookup(ctx.report, "sync.epoch_ns")
        events = [e for e in lookup(ctx.report, "health.events")
                  if e["node"] == self.node]
        quarantined = [e["when_ns"] for e in events
                       if e["kind"] == "quarantine"]
        if not quarantined:
            return False, f"node {self.node}: no quarantine event"
        start = quarantined[0]
        readmits = [e["when_ns"] for e in events
                    if e["kind"] == "readmit" and e["when_ns"] > start]
        if not readmits:
            return False, (f"node {self.node}: quarantined at "
                           f"{start:g} ns, never readmitted")
        waited = (readmits[0] - start) / epoch_ns
        return (waited <= self.epochs,
                f"node {self.node}: readmitted {waited:g} epochs after "
                f"quarantine (bound {self.epochs})")
