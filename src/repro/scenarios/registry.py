"""The scenario registry: names -> runnable incident experiments.

AIOpsLab's split, transplanted: the *problem registry* is the lookup
table the orchestrator consults, and running a problem is one call
away from its name.  Here :func:`register` is called at import time by
:mod:`repro.scenarios.catalog` (and by any out-of-tree module that
wants its scenarios runnable by name), and :func:`run_scenario` is the
orchestrator — build params, invoke the scenario's runner, evaluate
its detectors, hand back the :class:`ScenarioResult`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.scenarios.spec import (
    Scenario,
    ScenarioContext,
    ScenarioParams,
    ScenarioResult,
)

_REGISTRY: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (returns it, decorator-style)."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def _ensure_catalog() -> None:
    # the catalog registers itself on import; lazy so that spec/
    # detector definitions never depend on the (heavier) catalog
    import repro.scenarios.catalog  # noqa: F401


def names() -> List[str]:
    """All registered scenario names, sorted."""
    _ensure_catalog()
    return sorted(_REGISTRY)


def get(name: str) -> Scenario:
    """Look a scenario up by name."""
    _ensure_catalog()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no scenario {name!r} (have {sorted(_REGISTRY)})"
        ) from None


def run_scenario(name: str, seed: Optional[int] = None,
                 lane: str = "fast", workers: int = 0) -> ScenarioResult:
    """Run one scenario end to end: runner, then every detector.

    ``seed`` defaults to the scenario's ``default_seed``; ``lane`` and
    ``workers`` pick the execution strategy and must not change one
    byte of the result (``tests/scenarios`` holds the registry to
    that).
    """
    scenario = get(name)
    params = ScenarioParams(
        seed=scenario.default_seed if seed is None else seed,
        lane=lane, workers=workers,
    )
    outcome = scenario.runner(params)
    ctx = ScenarioContext(scenario=scenario, params=params,
                          report=outcome.report, obs=outcome.obs,
                          extra=outcome.extra)
    verdicts = [d.evaluate(ctx) for d in scenario.detectors]
    return ScenarioResult(scenario=scenario, params=params,
                          outcome=outcome, verdicts=verdicts)


def run_catalog(seed: Optional[int] = None, lane: str = "fast",
                workers: int = 0) -> List[ScenarioResult]:
    """Run every registered scenario, in name order."""
    return [run_scenario(n, seed=seed, lane=lane, workers=workers)
            for n in names()]
