"""``repro.scenarios`` — named, versioned incident scenarios.

The composition layer ROADMAP item 4 asked for: faults, load
generators, SLOs, partitions, and the obs layer already exist as
separate knobs; a :class:`Scenario` bundles them into one reproducible,
pass/fail-checkable experiment, and the registry runs any of them by
name.  ``python -m repro.bench scenarios --check`` runs the whole
catalog; the trace loader (:mod:`repro.scenarios.trace`) feeds
production-shaped arrival schedules into any of it.
"""

from repro.scenarios.detectors import (
    Conservation,
    ExtraValue,
    ObsCounterMatchesReport,
    ObsValue,
    ReadmitWithin,
    ReportValue,
    lookup,
)
from repro.scenarios.registry import (
    get,
    names,
    register,
    run_catalog,
    run_scenario,
)
from repro.scenarios.spec import (
    LAYERS,
    SCHEMA,
    Detector,
    Scenario,
    ScenarioContext,
    ScenarioOutcome,
    ScenarioParams,
    ScenarioResult,
    Verdict,
)
from repro.scenarios.trace import (
    SAMPLE_TRACE,
    TraceRow,
    load_trace,
    task_mix,
    tenant_arrivals,
    trace_schedules,
)

__all__ = [
    "SCHEMA",
    "LAYERS",
    "SAMPLE_TRACE",
    "Scenario",
    "ScenarioContext",
    "ScenarioOutcome",
    "ScenarioParams",
    "ScenarioResult",
    "Detector",
    "Verdict",
    "Conservation",
    "ExtraValue",
    "ObsCounterMatchesReport",
    "ObsValue",
    "ReadmitWithin",
    "ReportValue",
    "lookup",
    "TraceRow",
    "load_trace",
    "task_mix",
    "tenant_arrivals",
    "trace_schedules",
    "register",
    "get",
    "names",
    "run_scenario",
    "run_catalog",
]
