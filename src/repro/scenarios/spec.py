"""The scenario contract: named, versioned, pass/fail-checkable runs.

A :class:`Scenario` is a declarative bundle of everything one incident
experiment needs — a workload (tenants + arrival processes), a fault
plan, SLO/admission configuration, and **detectors**: predicates that
assert on the run's deliverables (the canonical report digest, the
``repro.obs`` snapshot, and any deterministic scalars the runner
computed).  The split mirrors AIOpsLab's orchestrator / problem
registry / detector design: the *scenario* says what to run, the
*registry* (:mod:`repro.scenarios.registry`) knows how to run it, and
the *detectors* turn the outcome into machine-checkable verdicts.

Determinism is the whole point.  A scenario run is a pure function of
``(name, seed)``: the runner builds every seeded input up front, the
simulation is deterministic by the engine's contract, and detector
details quote virtual-time values only — so the
:meth:`ScenarioResult.to_json` bytes are identical across repeated
runs, across engine lanes (the differential contract), and for any
cluster worker count (the fleet contract).  ``tests/scenarios``
asserts all three.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: result JSON schema tag (bump when the digest's shape changes).
SCHEMA = "repro.scenarios/1"

#: the stack layers a scenario may exercise (reported + CI-matrixed).
LAYERS = ("serve", "fault", "cluster", "partition")


@dataclass(frozen=True)
class ScenarioParams:
    """Per-run knobs a caller may vary without changing the verdicts.

    ``lane`` and ``workers`` select *how* the simulation executes, not
    what it computes — the result bytes must not depend on them.
    """

    seed: int
    lane: str = "fast"
    workers: int = 0


@dataclass
class ScenarioOutcome:
    """What a scenario runner hands back to the detectors."""

    #: canonical, JSON-ready report digest (a ``ServeReport.to_dict``,
    #: a ``FleetReport.to_dict``, or a scenario-shaped dict of them).
    report: dict
    #: ``repro.obs`` snapshot (``repro.obs/1`` or the aggregate
    #: schema), when the runner instrumented the run.
    obs: Optional[dict] = None
    #: deterministic virtual-time scalars the runner derived (ratios,
    #: calibrated capacities, trace mixes) for detectors to assert on.
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class ScenarioContext:
    """Everything a detector may look at."""

    scenario: "Scenario"
    params: ScenarioParams
    report: dict
    obs: Optional[dict]
    extra: Dict[str, float]


@dataclass(frozen=True)
class Verdict:
    """One detector's pass/fail with its (deterministic) evidence."""

    detector: str
    passed: bool
    detail: str

    def to_dict(self) -> dict:
        return {"detector": self.detector, "passed": self.passed,
                "detail": self.detail}


class Detector:
    """Base detector: a named predicate over a :class:`ScenarioContext`.

    Subclasses implement :meth:`check` returning ``(passed, detail)``;
    ``detail`` must be built from virtual-time values only so verdicts
    are byte-stable.  A detector that raises is reported as a failed
    verdict quoting the exception — a scenario must never crash the
    catalog run.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def check(self, ctx: ScenarioContext) -> Tuple[bool, str]:
        raise NotImplementedError

    def evaluate(self, ctx: ScenarioContext) -> Verdict:
        try:
            passed, detail = self.check(ctx)
        except Exception as exc:  # noqa: BLE001 - verdict, not crash
            return Verdict(self.name, False,
                           f"detector error: {type(exc).__name__}: {exc}")
        return Verdict(self.name, bool(passed), detail)


@dataclass(frozen=True)
class Scenario:
    """One named, versioned incident experiment."""

    name: str
    version: int
    #: which stack layer the incident exercises (one of :data:`LAYERS`).
    layer: str
    description: str
    #: builds the seeded inputs, runs the simulation, returns the
    #: outcome.  Must honor ``params.lane`` / ``params.workers``
    #: without letting either into the outcome's bytes.
    runner: Callable[[ScenarioParams], ScenarioOutcome]
    detectors: Tuple[Detector, ...]
    default_seed: int = 0

    def __post_init__(self) -> None:
        if self.layer not in LAYERS:
            raise ValueError(
                f"scenario {self.name!r} layer {self.layer!r} not in "
                f"{LAYERS}"
            )
        if not self.detectors:
            raise ValueError(f"scenario {self.name!r} has no detectors")
        if self.version < 1:
            raise ValueError(f"scenario {self.name!r} version must be >= 1")


def _canonical_sha256(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True,
                   separators=(",", ":")).encode("utf-8")
    ).hexdigest()


@dataclass
class ScenarioResult:
    """One scenario run's full deliverable: outcome + verdicts."""

    scenario: Scenario
    params: ScenarioParams
    outcome: ScenarioOutcome
    verdicts: List[Verdict]

    @property
    def passed(self) -> bool:
        return all(v.passed for v in self.verdicts)

    def summary_line(self) -> str:
        """One stable pass/fail line (the CI matrix row)."""
        ok = sum(1 for v in self.verdicts if v.passed)
        status = "PASS" if self.passed else "FAIL"
        return (f"{status} {self.scenario.name} v{self.scenario.version} "
                f"[{self.scenario.layer}] seed={self.params.seed} "
                f"detectors={ok}/{len(self.verdicts)}")

    def to_dict(self) -> dict:
        """The canonical digest.  Deliberately **excludes** the params
        that must not matter (lane, workers): identical bytes across
        execution strategies is the contract ``tests/scenarios``
        checks, and leaking either knob here would fake it."""
        digest = {
            "schema": SCHEMA,
            "scenario": self.scenario.name,
            "version": self.scenario.version,
            "layer": self.scenario.layer,
            "seed": self.params.seed,
            "passed": self.passed,
            "verdicts": [v.to_dict() for v in self.verdicts],
            "extra": {k: self.outcome.extra[k]
                      for k in sorted(self.outcome.extra)},
            "report": self.outcome.report,
            "report_sha256": _canonical_sha256(self.outcome.report),
        }
        if self.outcome.obs is not None:
            digest["obs_sha256"] = _canonical_sha256(self.outcome.obs)
        return digest

    def to_json(self) -> str:
        """Canonical serialization: byte-identical across lanes and
        worker counts (sorted keys, fixed separators, pre-rounded
        floats)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
