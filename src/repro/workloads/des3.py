"""3DES (Triple DES): packet encryption for network routers.

Table 4: "Network routers encrypt multiple packets as they arrive,
each of which is represented as a narrow task.  We use NetBench to
generate varied sizes of network packets."  One task encrypts one
packet (2 KB - 64 KB, Table 3) in ECB mode with EDE
(encrypt-decrypt-encrypt under three keys).

The cipher here is a complete FIPS 46-3 DES — validated against the
standard's published test vector — so the functional path really
encrypts; a matching :func:`des3_decrypt` proves round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.gpu.phases import Phase
from repro.tasks import TaskSpec
from repro.workloads import des_tables as T
from repro.workloads.base import REGISTRY, Workload

MIN_PACKET = 2 * 1024
MAX_PACKET = 64 * 1024
#: lane ops per DES round per 8-byte block: bitsliced table-lookup GPU
#: implementations are fast; calibrated so the HyperQ copy fraction
#: matches Table 3 (74%: 3DES is copy-bound)
INST_PER_ROUND = 0.27
ROUNDS_PER_3DES = 48  # 3 x 16


# ---------------------------------------------------------------------------
# Core DES on 64-bit integers
# ---------------------------------------------------------------------------

def _permute(value: int, table: Sequence[int], in_width: int) -> int:
    """Apply a 1-based DES permutation table to ``value``."""
    out = 0
    for pos in table:
        out = (out << 1) | ((value >> (in_width - pos)) & 1)
    return out


def key_schedule(key64: int) -> List[int]:
    """Derive the 16 48-bit round keys from a 64-bit key."""
    key56 = _permute(key64, T.PC1, 64)
    c = (key56 >> 28) & 0xFFFFFFF
    d = key56 & 0xFFFFFFF
    round_keys = []
    for shift in T.SHIFTS:
        c = ((c << shift) | (c >> (28 - shift))) & 0xFFFFFFF
        d = ((d << shift) | (d >> (28 - shift))) & 0xFFFFFFF
        round_keys.append(_permute((c << 28) | d, T.PC2, 56))
    return round_keys


def _feistel(half: int, round_key: int) -> int:
    """The DES round function f(R, K)."""
    expanded = _permute(half, T.E, 32) ^ round_key
    out = 0
    for box in range(8):
        six = (expanded >> (42 - 6 * box)) & 0x3F
        row = ((six >> 4) & 0b10) | (six & 1)
        col = (six >> 1) & 0xF
        out = (out << 4) | T.SBOXES[box][row][col]
    return _permute(out, T.P, 32)


def des_block(block: int, round_keys: Sequence[int],
              decrypt: bool = False) -> int:
    """Encrypt/decrypt one 64-bit block with a prepared key schedule."""
    keys = list(reversed(round_keys)) if decrypt else round_keys
    value = _permute(block, T.IP, 64)
    left = (value >> 32) & 0xFFFFFFFF
    right = value & 0xFFFFFFFF
    for rk in keys:
        left, right = right, left ^ _feistel(right, rk)
    return _permute((right << 32) | left, T.FP, 64)


def _blocks(data: bytes):
    if len(data) % 8 != 0:
        raise ValueError("packet length must be a multiple of 8 (ECB)")
    return [int.from_bytes(data[i:i + 8], "big") for i in range(0, len(data), 8)]


def _join(blocks: Sequence[int]) -> bytes:
    return b"".join(b.to_bytes(8, "big") for b in blocks)


def des3_encrypt(data: bytes, keys: Sequence[int]) -> bytes:
    """EDE triple-DES in ECB mode over a packet."""
    if len(keys) != 3:
        raise ValueError("3DES needs exactly 3 keys")
    ks = [key_schedule(k) for k in keys]
    out = []
    for block in _blocks(data):
        x = des_block(block, ks[0])
        x = des_block(x, ks[1], decrypt=True)
        x = des_block(x, ks[2])
        out.append(x)
    return _join(out)


def des3_decrypt(data: bytes, keys: Sequence[int]) -> bytes:
    """Inverse of :func:`des3_encrypt`."""
    if len(keys) != 3:
        raise ValueError("3DES needs exactly 3 keys")
    ks = [key_schedule(k) for k in keys]
    out = []
    for block in _blocks(data):
        x = des_block(block, ks[2], decrypt=True)
        x = des_block(x, ks[1])
        x = des_block(x, ks[0], decrypt=True)
        out.append(x)
    return _join(out)


# ---------------------------------------------------------------------------
# NetBench-style packet size generator
# ---------------------------------------------------------------------------

def netbench_packet_sizes(n: int, rng: np.random.Generator,
                          lo: int = MIN_PACKET, hi: int = MAX_PACKET
                          ) -> List[int]:
    """Varied packet sizes in [lo, hi], 8-byte aligned.

    NetBench traces are heavy-tailed: mostly small packets with a fat
    tail of large transfers; a log-uniform draw reproduces that mix.
    """
    sizes = np.exp(rng.uniform(np.log(lo), np.log(hi), n))
    return [int(s) // 8 * 8 for s in sizes]


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------

@dataclass
class Des3Work:
    """Per-task payload: one packet and the router's keys."""

    packet_bytes: int
    packet: bytes = None
    keys: tuple = (0x0123456789ABCDEF, 0x23456789ABCDEF01, 0x456789ABCDEF0123)
    out: bytearray = None


def des3_kernel(task: TaskSpec, block_id: int, warp_id: int):
    """Timing kernel: each thread encrypts its stripe of 8-byte blocks;
    irregular packet sizes make per-task work vary widely."""
    work: Des3Work = task.work
    blocks = work.packet_bytes // 8
    blocks_per_thread = max(1, -(-blocks // task.total_threads))
    inst = blocks_per_thread * ROUNDS_PER_3DES * INST_PER_ROUND
    mem_total = 2 * work.packet_bytes / task.total_warps  # read + write
    phases = 4
    for _ in range(phases):
        yield Phase(inst=inst / phases, mem_bytes=mem_total / phases)


def des3_func(ctx) -> None:
    """Functional kernel: 3DES-encrypt the packet."""
    work: Des3Work = ctx.args
    work.out[:] = des3_encrypt(work.packet, work.keys)


class Des3Workload(Workload):
    """3DES benchmark (Table 3: 2K-64K packets, 26 regs, irregular)."""

    def __init__(self) -> None:
        super().__init__(
            name="3des",
            description="Triple-DES packet encryption (NetBench sizes)",
            regs_per_thread=26,
        )

    def make_task(self, index, threads, rng, irregular, functional):
        # 3DES is inherently irregular: NetBench sizes vary regardless
        """Build one TaskSpec (see Workload.make_task)."""
        size = netbench_packet_sizes(1, rng)[0]
        if functional:
            # keep functional packets small enough for pure-Python DES
            size = min(size, 512)
        work = Des3Work(packet_bytes=size)
        if functional:
            work.packet = bytes(rng.integers(0, 256, size, dtype=np.uint8))
            work.out = bytearray(size)
        return TaskSpec(
            name=f"3des{index}",
            threads_per_block=threads,
            num_blocks=1,
            kernel=des3_kernel,
            regs_per_thread=self.regs_per_thread,
            # scalar CPU DES pays full-width permutations where the GPU
            # kernel uses warp-wide table lookups
            cpu_inst_factor=10.0,
            input_bytes=size,
            output_bytes=size,
            work=work,
            func=des3_func if functional else None,
        )

    def verify_task(self, task: TaskSpec) -> None:
        """Compare functional output with the reference."""
        work: Des3Work = task.work
        assert bytes(work.out) == des3_encrypt(work.packet, work.keys)
        assert des3_decrypt(bytes(work.out), work.keys) == work.packet


DES3 = REGISTRY.register(Des3Workload())
