"""MatrixMul (MM): small dense matrix products.

Table 4: refactored from the NVIDIA SDK, with small matrix sizes "to
simulate the behaviour seen in an earthquake engineering simulator...
concurrent simulation of various structures, each of which is
represented by different but small matrix sizes."  One task multiplies
two 64x64 matrices; the CUDA version tiles through shared memory with
barriers between tiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.phases import BLOCK_SYNC, Phase
from repro.tasks import TaskSpec
from repro.workloads.base import REGISTRY, Workload, lanes_per_thread

#: Table 3: 64 x 64 matrices
N = 64
TILE = 16
#: lane ops per MAC (load A, load B, fma)
INST_PER_MAC = 0.77
BYTES_PER_ELEM = 4
#: two staged tiles (A and B) of TILE x TILE floats
SMEM_BYTES = 2 * TILE * TILE * BYTES_PER_ELEM


@dataclass
class MatmulWork:
    """Per-task payload: one (n x n) @ (n x n) product."""

    n: int
    a: np.ndarray = None
    b: np.ndarray = None
    out: np.ndarray = None


def matmul_kernel(task: TaskSpec, block_id: int, warp_id: int):
    """Timing kernel: one barrier-separated phase per K-tile.

    With shared memory each tile of A/B is loaded once per block;
    without it every MAC streams operands from DRAM (Table 5's
    comparison).
    """
    work: MatmulWork = task.work
    n = work.n
    elems_per_thread = lanes_per_thread(n * n, task.total_threads)
    num_tiles = max(1, n // TILE)
    macs_per_tile = elems_per_thread * TILE
    inst_per_tile = macs_per_tile * INST_PER_MAC
    if task.shared_mem_bytes:
        # each tile: A-tile + B-tile staged once per block
        tile_traffic = 2 * TILE * TILE * BYTES_PER_ELEM / task.total_warps
        chunks_per_tile = 1
    else:
        # operands re-streamed per thread from DRAM: more traffic and
        # the access latency exposed on every operand chunk
        tile_traffic = macs_per_tile * 2 * BYTES_PER_ELEM / 8.0
        chunks_per_tile = 3
    for t in range(num_tiles):
        for _chunk in range(chunks_per_tile):
            yield Phase(inst=inst_per_tile / chunks_per_tile,
                        mem_bytes=tile_traffic / chunks_per_tile)
        if task.needs_sync and t + 1 < num_tiles:
            yield BLOCK_SYNC
    # write back C
    yield Phase(inst=elems_per_thread,
                mem_bytes=n * n * BYTES_PER_ELEM / task.total_warps)


def matmul_func(ctx) -> None:
    """Functional kernel: the matrix product."""
    work: MatmulWork = ctx.args
    work.out[:] = work.a @ work.b


class MatmulWorkload(Workload):
    """MM benchmark (Table 3: 64x64, 30 regs, smem + sync)."""

    def __init__(self) -> None:
        super().__init__(
            name="mm",
            description="Small dense matrix multiplication",
            regs_per_thread=30,
            needs_sync=True,
            uses_shared_mem=True,
            default_threads=256,  # Table 5: MM tasks contain 256 threads
        )

    def make_task(self, index, threads, rng, irregular, functional,
                  n: int = N, use_shared_mem: bool = True):
        """Build one TaskSpec (see Workload.make_task)."""
        if irregular:
            n = int(rng.choice([16, 24, 32, 48, 64]))
        work = MatmulWork(n=n)
        if functional:
            work.a = rng.standard_normal((n, n))
            work.b = rng.standard_normal((n, n))
            work.out = np.zeros((n, n))
        return TaskSpec(
            name=f"mm{index}",
            threads_per_block=threads,
            num_blocks=1,
            kernel=matmul_kernel,
            needs_sync=True,
            shared_mem_bytes=SMEM_BYTES if use_shared_mem else 0,
            regs_per_thread=self.regs_per_thread,
            input_bytes=2 * n * n * BYTES_PER_ELEM,
            output_bytes=n * n * BYTES_PER_ELEM,
            work=work,
            func=matmul_func if functional else None,
        )

    def verify_task(self, task: TaskSpec) -> None:
        """Compare functional output with the reference."""
        work: MatmulWork = task.work
        np.testing.assert_allclose(work.out, work.a @ work.b, rtol=1e-10)


MATMUL = REGISTRY.register(MatmulWorkload())
