"""Image Convolution (CONV): small blur/edge filters over image tiles.

Table 4: "Convolution filters are used in blur and edge detection
mechanisms in image processing.  Each filter operation represents a
task, which operates in parallel across pixels."  One task convolves
one 128x128 grayscale image with a 5x5 kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.phases import Phase
from repro.tasks import TaskSpec
from repro.workloads.base import REGISTRY, Workload, lanes_per_thread

#: Table 3: 128 x 128 images
IMG = 128
KSIZE = 5
#: lane ops per filter tap (load + MAC + bounds check)
INST_PER_TAP = 1.1
#: grayscale bytes per pixel
BYTES_PER_PIXEL = 1


@dataclass
class ConvWork:
    """Per-task payload: one image and its filter."""

    img: int  # image side length
    image: np.ndarray = None  # (img, img) float64 for exactness
    kernel2d: np.ndarray = None  # (KSIZE, KSIZE)
    out: np.ndarray = None


def reference_convolve(image: np.ndarray, kernel2d: np.ndarray) -> np.ndarray:
    """Zero-padded 'same' 2D correlation (the CUDA SDK filter)."""
    k = kernel2d.shape[0]
    pad = k // 2
    padded = np.pad(image, pad)
    out = np.zeros_like(image, dtype=np.float64)
    for dy in range(k):
        for dx in range(k):
            out += kernel2d[dy, dx] * padded[
                dy:dy + image.shape[0], dx:dx + image.shape[1]
            ]
    return out


def conv_kernel(task: TaskSpec, block_id: int, warp_id: int):
    """Timing kernel: pixels strided over threads, taps accumulated."""
    work: ConvWork = task.work
    total_px = work.img * work.img
    px_per_thread = lanes_per_thread(total_px, task.total_threads)
    total_inst = px_per_thread * KSIZE * KSIZE * INST_PER_TAP
    # reads the (cached) neighbourhood + writes the result
    mem_total = 2 * total_px * BYTES_PER_PIXEL / task.total_warps
    phases = 4
    for _ in range(phases):
        yield Phase(inst=total_inst / phases, mem_bytes=mem_total / phases)


def conv_func(ctx) -> None:
    """Functional kernel: 2-D convolution of the image."""
    work: ConvWork = ctx.args
    work.out[:] = reference_convolve(work.image, work.kernel2d)


class ConvolutionWorkload(Workload):
    """CONV benchmark (Table 3: 128x128 images, 25 regs, regular)."""

    def __init__(self) -> None:
        super().__init__(
            name="conv",
            description="5x5 image convolution filters",
            regs_per_thread=25,
        )

    def make_task(self, index, threads, rng, irregular, functional,
                  img: int = IMG):
        """Build one TaskSpec (see Workload.make_task)."""
        if irregular:
            img = int(rng.choice([32, 48, 64, 96, 128]))
        work = ConvWork(img=img)
        if functional:
            work.image = rng.standard_normal((img, img))
            work.kernel2d = rng.standard_normal((KSIZE, KSIZE))
            work.out = np.zeros((img, img))
        return TaskSpec(
            name=f"conv{index}",
            threads_per_block=threads,
            num_blocks=1,
            kernel=conv_kernel,
            regs_per_thread=self.regs_per_thread,
            input_bytes=img * img * BYTES_PER_PIXEL + KSIZE * KSIZE * 4,
            output_bytes=img * img * BYTES_PER_PIXEL,
            work=work,
            func=conv_func if functional else None,
        )

    def verify_task(self, task: TaskSpec) -> None:
        """Compare functional output with the reference."""
        work: ConvWork = task.work
        expected = reference_convolve(work.image, work.kernel2d)
        np.testing.assert_allclose(work.out, expected, rtol=1e-10)


CONVOLUTION = REGISTRY.register(ConvolutionWorkload())
