"""DCT8x8 (DCT): blockwise discrete cosine transform of images.

Table 4: surveillance streams pipe images from many cameras; each
128x128 image is one task, transformed in 8x8 blocks (the JPEG/MPEG
kernel from the CUDA SDK).  The CUDA version stages 8x8 tiles through
shared memory and synchronizes between the row and column passes —
Table 3 marks DCT as benefiting from shared memory and requiring
threadblock synchronization; it is also the most copy-bound benchmark
(81 % data copy under HyperQ).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.phases import BLOCK_SYNC, Phase
from repro.tasks import TaskSpec
from repro.workloads.base import REGISTRY, Workload, lanes_per_thread

#: Table 3: 128 x 128 images
IMG = 128
BLOCK = 8
#: lane ops per pixel per 1-D pass (8 MACs + staging); calibrated so
#: the HyperQ copy fraction matches Table 3 (81%: DCT is copy-bound)
INST_PER_PASS = 3.0
#: float32 pixels in and out (the SDK kernel operates on floats)
BYTES_PER_PIXEL = 4
#: shared memory: one tile row of 8x8 blocks staged per threadblock
SMEM_BYTES = 8 * 1024


def dct_matrix(n: int = BLOCK) -> np.ndarray:
    """Orthonormal DCT-II basis matrix."""
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    mat = np.cos(np.pi * (2 * i + 1) * k / (2 * n)) * np.sqrt(2.0 / n)
    mat[0] /= np.sqrt(2.0)
    return mat


_DCT_M = dct_matrix()


@dataclass
class DctWork:
    """Per-task payload: one image."""

    img: int
    image: np.ndarray = None
    out: np.ndarray = None


def reference_dct(image: np.ndarray) -> np.ndarray:
    """Blockwise 2-D DCT: D @ block @ D.T for every 8x8 block."""
    h, w = image.shape
    out = np.zeros_like(image, dtype=np.float64)
    for y in range(0, h, BLOCK):
        for x in range(0, w, BLOCK):
            blk = image[y:y + BLOCK, x:x + BLOCK]
            out[y:y + BLOCK, x:x + BLOCK] = _DCT_M @ blk @ _DCT_M.T
    return out


def dct_kernel(task: TaskSpec, block_id: int, warp_id: int):
    """Timing kernel: row pass, barrier, column pass.

    With shared memory the tile is staged once (one DRAM round trip);
    without it the column pass re-reads from DRAM (double traffic) —
    the effect Table 5 quantifies.
    """
    work: DctWork = task.work
    total_px = work.img * work.img
    px_per_thread = lanes_per_thread(total_px, task.total_threads)
    pass_inst = px_per_thread * INST_PER_PASS
    traffic = total_px * BYTES_PER_PIXEL / task.total_warps
    if task.shared_mem_bytes:
        yield Phase(inst=pass_inst, mem_bytes=traffic)  # load + row pass
        yield BLOCK_SYNC
        yield Phase(inst=pass_inst, mem_bytes=traffic)  # col pass + store
    else:
        # every 8x8 block's operands come back from DRAM: double the
        # traffic and expose the access latency on each sub-pass
        for _pass in range(2):
            for _chunk in range(4):
                yield Phase(inst=pass_inst / 4, mem_bytes=2 * traffic / 4)
            yield BLOCK_SYNC


def dct_func(ctx) -> None:
    """Functional kernel: blockwise DCT of the image."""
    work: DctWork = ctx.args
    work.out[:] = reference_dct(work.image)


class DctWorkload(Workload):
    """DCT benchmark (Table 3: 128x128, 33 regs, smem + sync)."""

    def __init__(self) -> None:
        super().__init__(
            name="dct",
            description="Blockwise 8x8 DCT of camera images",
            regs_per_thread=33,
            needs_sync=True,
            uses_shared_mem=True,
            default_threads=64,  # Table 5: DCT tasks have 64 threads
        )

    def make_task(self, index, threads, rng, irregular, functional,
                  use_shared_mem: bool = True):
        """Build one TaskSpec (see Workload.make_task)."""
        img = IMG
        if irregular:
            img = int(rng.choice([32, 64, 96, 128]))
        work = DctWork(img=img)
        if functional:
            work.image = rng.standard_normal((img, img))
            work.out = np.zeros((img, img))
        return TaskSpec(
            name=f"dct{index}",
            threads_per_block=threads,
            num_blocks=1,
            kernel=dct_kernel,
            needs_sync=True,
            shared_mem_bytes=SMEM_BYTES if use_shared_mem else 0,
            regs_per_thread=self.regs_per_thread,
            input_bytes=img * img * BYTES_PER_PIXEL,
            output_bytes=img * img * BYTES_PER_PIXEL,
            work=work,
            func=dct_func if functional else None,
        )

    def verify_task(self, task: TaskSpec) -> None:
        """Compare functional output with the reference."""
        work: DctWork = task.work
        np.testing.assert_allclose(work.out, reference_dct(work.image),
                                   rtol=1e-10)


DCT = REGISTRY.register(DctWorkload())
