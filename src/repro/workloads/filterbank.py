"""FilterBank (FB): multi-stage FIR signal processing with barriers.

Table 4: "separates input signals into multiple sub-signals with a set
of filters."  The device code is the paper's own Fig. 1c: convolve with
H, down-sample, up-sample, convolve with F — with ``syncBlock()``
between stages.  One task processes one radio's 2K-sample signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.phases import BLOCK_SYNC, Phase
from repro.tasks import TaskSpec
from repro.workloads.base import REGISTRY, Workload, lanes_per_thread

#: Table 3: signals of width 2K
N_SIM = 2048
#: filter taps (N_col in Fig. 1c)
N_COL = 32
#: down/up-sampling factor (N_samp)
N_SAMP = 8
#: lane ops per tap (multiply-accumulate + guard); calibrated so the
#: HyperQ copy fraction matches Table 3 (35%)
INST_PER_TAP = 2.0
BYTES_PER_SAMPLE = 4  # float32


@dataclass
class FilterBankWork:
    """Per-task payload: one signal and its two filters."""

    n_sim: int
    signal: np.ndarray = None
    h: np.ndarray = None
    f: np.ndarray = None
    out: np.ndarray = None


def reference_filterbank(signal: np.ndarray, h: np.ndarray,
                         f: np.ndarray) -> np.ndarray:
    """Reference pipeline matching Fig. 1c's kernel semantics.

    Vect_H[t] = sum_{k<=t} r[t-k] * H[k]  (causal convolve, guarded)
    down/up-sample by N_SAMP (zero-stuffed), then convolve with F.
    """
    n = len(signal)
    vect_h = np.zeros(n)
    # guard k < n: taps beyond the signal length contribute nothing
    # (Fig. 1c's `if ((tid-k) > 0)` bound)
    for k in range(min(len(h), n)):
        vect_h[k:] += signal[: n - k] * h[k]
    vect_dn = vect_h[::N_SAMP]
    vect_up = np.zeros(n)
    vect_up[: len(vect_dn)] = vect_dn  # Fig. 1c copies the first n/samp
    vect_f = np.zeros(n)
    for k in range(min(len(f), n)):
        vect_f[k:] += f[k] * vect_up[: n - k]
    return vect_f


def filterbank_kernel(task: TaskSpec, block_id: int, warp_id: int):
    """Timing kernel: the four Fig. 1c stages with barriers between."""
    work: FilterBankWork = task.work
    per_thread = lanes_per_thread(work.n_sim, task.total_threads)
    conv_inst = per_thread * N_COL * INST_PER_TAP
    sample_inst = per_thread * 2.0
    mem_per_warp = work.n_sim * BYTES_PER_SAMPLE / task.total_warps
    # stage 1: convolve H (reads the signal)
    yield Phase(inst=conv_inst, mem_bytes=mem_per_warp)
    yield BLOCK_SYNC
    # stage 2+3: down-sample then up-sample
    yield Phase(inst=sample_inst, mem_bytes=mem_per_warp / N_SAMP)
    yield BLOCK_SYNC
    # stage 4: convolve F (writes the result)
    yield Phase(inst=conv_inst, mem_bytes=mem_per_warp)


def filterbank_func(ctx) -> None:
    """Functional kernel: run the Fig. 1c pipeline."""
    work: FilterBankWork = ctx.args
    work.out[:] = reference_filterbank(work.signal, work.h, work.f)


class FilterBankWorkload(Workload):
    """FB benchmark (Table 3: width-2K signals, 21 regs, needs sync)."""

    def __init__(self) -> None:
        super().__init__(
            name="fb",
            description="FIR filter bank over radio signals",
            regs_per_thread=21,
            needs_sync=True,
        )

    def make_task(self, index, threads, rng, irregular, functional):
        """Build one TaskSpec (see Workload.make_task)."""
        n_sim = N_SIM
        if irregular:
            n_sim = int(rng.integers(N_SIM // 8, N_SIM + 1))
        work = FilterBankWork(n_sim=n_sim)
        if functional:
            work.signal = rng.standard_normal(n_sim)
            work.h = rng.standard_normal(N_COL) / N_COL
            work.f = rng.standard_normal(N_COL) / N_COL
            work.out = np.zeros(n_sim)
        return TaskSpec(
            name=f"fb{index}",
            threads_per_block=threads,
            num_blocks=1,
            kernel=filterbank_kernel,
            needs_sync=True,
            regs_per_thread=self.regs_per_thread,
            input_bytes=n_sim * BYTES_PER_SAMPLE + 2 * N_COL * 4,
            output_bytes=n_sim * BYTES_PER_SAMPLE,
            work=work,
            func=filterbank_func if functional else None,
        )

    def verify_task(self, task: TaskSpec) -> None:
        """Compare functional output with the reference."""
        work: FilterBankWork = task.work
        expected = reference_filterbank(work.signal, work.h, work.f)
        np.testing.assert_allclose(work.out, expected, rtol=1e-10)


FILTERBANK = REGISTRY.register(FilterBankWorkload())
