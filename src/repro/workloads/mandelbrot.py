"""Mandelbrot (MB): irregular per-pixel escape-time fractal tasks.

Table 4: "Each pixel value of the image is calculated in parallel;
however, the required computation per pixel is highly irregular."  One
task renders one 64x64 tile of the set; different tasks land on
regions of wildly different iteration depth, which is the paper's
canonical irregular workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.phases import Phase
from repro.tasks import TaskSpec
from repro.workloads.base import REGISTRY, Workload, lanes_per_thread

#: image tile per task (Table 3: 64 x 64 images)
TILE = 64
MAX_ITERS = 256
#: lane operations per escape-time iteration (complex mul + add + test);
#: calibrated so the HyperQ copy fraction matches Table 3 (24%)
INST_PER_ITER = 2.1
#: lockstep penalty: a warp runs as long as its deepest lane
DIVERGENCE_FACTOR = 1.5
#: bytes written per pixel (iteration count as uint16)
BYTES_PER_PIXEL = 2


@dataclass
class MandelWork:
    """Per-task payload: the viewport this tile renders."""

    x0: float
    y0: float
    scale: float
    #: expected mean iteration count (drives the cost model without
    #: rendering at timing time)
    mean_iters: float
    out: np.ndarray = None  # functional output (TILE*TILE uint16)


def reference_tile(work: MandelWork) -> np.ndarray:
    """Vectorized escape-time reference for one tile."""
    ys, xs = np.mgrid[0:TILE, 0:TILE]
    c = (work.x0 + xs * work.scale) + 1j * (work.y0 + ys * work.scale)
    z = np.zeros_like(c)
    iters = np.zeros(c.shape, dtype=np.uint16)
    alive = np.ones(c.shape, dtype=bool)
    for i in range(MAX_ITERS):
        z[alive] = z[alive] ** 2 + c[alive]
        escaped = alive & (np.abs(z) > 2.0)
        iters[escaped] = i + 1
        alive &= ~escaped
    iters[alive] = MAX_ITERS
    return iters.ravel()


def mandel_kernel(task: TaskSpec, block_id: int, warp_id: int):
    """Timing kernel: pixels strided across threads; warp cost is the
    per-task mean depth inflated by the lockstep divergence factor."""
    work: MandelWork = task.work
    px_per_thread = lanes_per_thread(TILE * TILE, task.total_threads)
    inst_per_px = work.mean_iters * INST_PER_ITER * DIVERGENCE_FACTOR
    mem_total = TILE * TILE * BYTES_PER_PIXEL / task.total_warps
    # four phases: iterate in chunks, write results as they retire
    phases = 4
    for _ in range(phases):
        yield Phase(
            inst=px_per_thread * inst_per_px / phases,
            mem_bytes=mem_total / phases,
        )


def mandel_func(ctx) -> None:
    """Functional kernel: each block renders the whole tile (tasks are
    single-block); stored for verification."""
    work: MandelWork = ctx.args
    work.out[:] = reference_tile(work)


class MandelbrotWorkload(Workload):
    """MB benchmark (Table 3: 64x64 images, 28 registers, no sync)."""

    def __init__(self) -> None:
        super().__init__(
            name="mb",
            description="Mandelbrot fractal tiles (irregular)",
            regs_per_thread=28,
        )

    def make_task(self, index, threads, rng, irregular, functional):
        # Table 3 classifies MB as irregular: viewport draws are
        # heavy-tailed in iteration depth even in the default mode
        # (deep-zoom boundary tiles vs fast-escaping exterior tiles)
        """Build one TaskSpec (see Workload.make_task)."""
        sigma = 1.3 if irregular else 1.0
        mean_iters = float(rng.lognormal(np.log(20), sigma))
        mean_iters = min(max(mean_iters, 2.0), MAX_ITERS)
        work = MandelWork(
            x0=float(rng.uniform(-2.0, 0.5)),
            y0=float(rng.uniform(-1.2, 1.2)),
            scale=float(rng.uniform(1e-4, 2e-2)),
            mean_iters=mean_iters,
            out=np.zeros(TILE * TILE, dtype=np.uint16) if functional else None,
        )
        return TaskSpec(
            name=f"mb{index}",
            threads_per_block=threads,
            num_blocks=1,
            kernel=mandel_kernel,
            regs_per_thread=self.regs_per_thread,
            input_bytes=64,  # viewport parameters only
            output_bytes=TILE * TILE * BYTES_PER_PIXEL,
            work=work,
            func=mandel_func if functional else None,
        )

    def verify_task(self, task: TaskSpec) -> None:
        """Compare functional output with the reference."""
        expected = reference_tile(task.work)
        np.testing.assert_array_equal(task.work.out, expected)


MANDELBROT = REGISTRY.register(MandelbrotWorkload())
