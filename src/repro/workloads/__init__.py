"""The paper's benchmark suite (Tables 3 & 4).

Nine workloads, each with a timing cost model and a real functional
implementation:

====== =============================================== ===========
name   description                                     source
====== =============================================== ===========
mb     Mandelbrot tiles (irregular per-pixel work)     Quinn
fb     FIR filter bank with barriers (Fig. 1c)         StreamIt
bf     delay-and-sum beamformer                        StreamIt
conv   5x5 image convolution                           CUDA SDK
dct    blockwise 8x8 DCT (smem + sync, copy-bound)     CUDA SDK
mm     64x64 matrix multiply (smem + sync)             CUDA SDK
slud   blocked sparse LU, dynamic fill-in task DAG     BOTS
3des   triple-DES packet encryption (NetBench sizes)   NIST
mpe    multi-programmed mix of 3des+mb+fb+mm           §6 (own)
====== =============================================== ===========

Use :data:`REGISTRY` (``REGISTRY.get("mb")``) or the module-level
singletons.
"""

from repro.workloads.base import REGISTRY, Workload, emit_phases, lanes_per_thread
from repro.workloads.beamformer import BEAMFORMER
from repro.workloads.convolution import CONVOLUTION
from repro.workloads.dct import DCT
from repro.workloads.des3 import DES3, des3_decrypt, des3_encrypt
from repro.workloads.filterbank import FILTERBANK
from repro.workloads.mandelbrot import MANDELBROT
from repro.workloads.matmul import MATMUL
from repro.workloads.mpe import MPE
from repro.workloads.sparse_lu import SPARSE_LU, SparseLuProblem, generate_waves

__all__ = [
    "REGISTRY",
    "Workload",
    "emit_phases",
    "lanes_per_thread",
    "MANDELBROT",
    "FILTERBANK",
    "BEAMFORMER",
    "CONVOLUTION",
    "DCT",
    "MATMUL",
    "SPARSE_LU",
    "DES3",
    "MPE",
    "SparseLuProblem",
    "generate_waves",
    "des3_encrypt",
    "des3_decrypt",
]
