"""Multi-Programmed Environment (MPE): heterogeneous task mix.

Table 4: "we built a multi-programmed benchmark of our own...  we
chose 1) 3DES and Mandelbrot, which contain irregular computations,
2) Filterbank, which requires threadblock-level synchronization, and
3) Matrix multiplication, which uses shared memory.  Each of the
benchmarks contained 8K tasks, totalling 32K tasks."

Tasks from the four applications are interleaved as they would arrive
from independent programs on one node.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.tasks import TaskSpec
from repro.workloads.base import REGISTRY, Workload
from repro.workloads.des3 import DES3
from repro.workloads.filterbank import FILTERBANK
from repro.workloads.mandelbrot import MANDELBROT
from repro.workloads.matmul import MATMUL

#: the four co-scheduled applications (Table 4's MPE recipe)
MPE_COMPONENTS = (DES3, MANDELBROT, FILTERBANK, MATMUL)


class MpeWorkload(Workload):
    """MPE benchmark: equal parts 3DES, MB, FB, MM, interleaved."""

    def __init__(self) -> None:
        super().__init__(
            name="mpe",
            description="Multi-programmed mix (3DES + MB + FB + MM)",
            regs_per_thread=max(w.regs_per_thread for w in MPE_COMPONENTS),
            needs_sync=True,
            uses_shared_mem=True,
        )

    def make_tasks(self, num_tasks: int, threads_per_task: Optional[int] = None,
                   seed: int = 0, irregular: bool = False,
                   functional: bool = False) -> List[TaskSpec]:
        """Build the task list (see Workload.make_tasks)."""
        per_app = max(1, num_tasks // len(MPE_COMPONENTS))
        rng = np.random.default_rng(seed)
        streams = [
            w.make_tasks(per_app, threads_per_task, seed=seed + 17 * k,
                         irregular=irregular, functional=functional)
            for k, w in enumerate(MPE_COMPONENTS)
        ]
        # interleave round-robin, as if four programs spawn concurrently
        mixed: List[TaskSpec] = []
        for i in range(per_app):
            for stream in streams:
                mixed.append(stream[i])
        # a little arrival jitter between programs: shuffle within
        # small windows so the global interleave is preserved
        window = 8
        for start in range(0, len(mixed) - window + 1, window):
            perm = rng.permutation(window)
            mixed[start:start + window] = [mixed[start + i] for i in perm]
        return mixed

    def make_task(self, index, threads, rng, irregular, functional):
        """Build one TaskSpec (see Workload.make_task)."""
        raise NotImplementedError("MPE tasks come from make_tasks")

    def verify_task(self, task: TaskSpec) -> None:
        """Compare functional output with the reference."""
        for component in MPE_COMPONENTS:
            if task.name.startswith(component.name):
                component.verify_task(task)
                return
        raise ValueError(f"unrecognized MPE task {task.name!r}")


MPE = REGISTRY.register(MpeWorkload())
