"""Sparse LU Decomposition (SLUD): task-parallel multifrontal solver.

Table 4: "a sparse matrix solver using [the] multifrontal method.  A
matrix is divided into multiple regular sub-matrices.  Sparse LUD is
represented as a task-based application owing to the irregularity in
the computation size among different iterations of a parallel loop."

This module implements a right-looking *blocked* sparse LU over 32x32
tiles (the Table 3 input unit).  Factoring tile column ``k`` spawns

- one ``lu`` task on the diagonal tile,
- ``trsm`` tasks for each present tile in row/column ``k``,
- ``gemm`` update tasks for every (i, j) with both factors present —
  and updates create **fill-in**, so the total task count is only
  discovered as factorization proceeds.  That is exactly why GeMTC
  (which "needs the number of tasks to be pre-defined", §6.2) and
  static fusion cannot run SLUD.

The functional path really factorizes: ``L @ U`` must reproduce the
original matrix, and the integration tests drive it wave-by-wave
through the simulated runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.gpu.phases import Phase
from repro.tasks import TaskSpec
from repro.workloads.base import REGISTRY, Workload

#: Table 3: 32 x 32 sub-matrices
TILE = 32
#: lane ops per multiply-accumulate in the tile kernels
INST_PER_MAC = 4.0
BYTES_PER_ELEM = 8  # float64 tiles


@dataclass
class SparseLuProblem:
    """A block-sparse matrix being factorized in place.

    ``tiles`` maps (i, j) -> TILE x TILE array.  After factorization,
    the lower triangle (including fill-in) holds L (unit diagonal
    implied) and the upper triangle holds U.
    """

    nb: int
    tiles: Dict[Tuple[int, int], np.ndarray] = field(default_factory=dict)

    @classmethod
    def generate(cls, nb: int, density: float = 0.3,
                 seed: int = 0, functional: bool = False) -> "SparseLuProblem":
        """Banded-plus-random block pattern, diagonally dominant so the
        pivot-free factorization is stable."""
        rng = np.random.default_rng(seed)
        problem = cls(nb=nb)
        for i in range(nb):
            for j in range(nb):
                present = (
                    i == j or abs(i - j) == 1
                    or rng.random() < density
                )
                if present:
                    if functional:
                        tile = rng.standard_normal((TILE, TILE))
                        if i == j:
                            tile += np.eye(TILE) * TILE * nb
                        problem.tiles[(i, j)] = tile
                    else:
                        problem.tiles[(i, j)] = None
        return problem

    def dense(self) -> np.ndarray:
        """Assemble the full matrix (functional problems only)."""
        n = self.nb * TILE
        full = np.zeros((n, n))
        for (i, j), tile in self.tiles.items():
            full[i * TILE:(i + 1) * TILE, j * TILE:(j + 1) * TILE] = tile
        return full


# ---------------------------------------------------------------------------
# Tile kernels (functional)
# ---------------------------------------------------------------------------

def lu_tile(a: np.ndarray) -> None:
    """In-place LU of one tile, no pivoting (diagonally dominant)."""
    n = a.shape[0]
    for k in range(n):
        a[k + 1:, k] /= a[k, k]
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])


def trsm_lower(lu: np.ndarray, b: np.ndarray) -> None:
    """Solve L X = B in place (unit-lower L from a factored tile)."""
    n = lu.shape[0]
    for k in range(n):
        b[k + 1:, :] -= np.outer(lu[k + 1:, k], b[k, :])


def trsm_upper(lu: np.ndarray, b: np.ndarray) -> None:
    """Solve X U = B in place (upper U from a factored tile)."""
    n = lu.shape[0]
    for k in range(n):
        b[:, k] /= lu[k, k]
        b[:, k + 1:] -= np.outer(b[:, k], lu[k, k + 1:])


def gemm_update(a: np.ndarray, lik: np.ndarray, ukj: np.ndarray) -> None:
    """A_ij -= L_ik @ U_kj."""
    a -= lik @ ukj


# ---------------------------------------------------------------------------
# Task generation (the dynamic DAG, emitted in dependency waves)
# ---------------------------------------------------------------------------

_OP_MACS = {
    "lu": TILE ** 3 / 3.0,
    "trsm": TILE ** 3 / 2.0,
    "gemm": float(TILE ** 3),
}


def _slud_kernel(task: TaskSpec, block_id: int, warp_id: int):
    """Timing kernel: the op's MAC count spread over the task threads,
    with the three operand tiles streamed from DRAM."""
    op = task.work["op"]
    macs = _OP_MACS[op]
    inst = macs * INST_PER_MAC / task.total_threads
    n_operands = {"lu": 1, "trsm": 2, "gemm": 3}[op]
    mem = n_operands * TILE * TILE * BYTES_PER_ELEM / task.total_warps
    phases = 2
    for _ in range(phases):
        yield Phase(inst=inst / phases, mem_bytes=mem / phases)


def _make_func(op: str, args: tuple):
    ops = {"lu": lu_tile, "trsm_l": trsm_lower, "trsm_u": trsm_upper,
           "gemm": gemm_update}

    def func(ctx):
        ops[op](*args)

    return func


def generate_waves(problem: SparseLuProblem, threads: int = 128,
                   functional: bool = False,
                   regs_per_thread: int = 17) -> List[List[TaskSpec]]:
    """Emit the factorization as dependency waves of TaskSpecs.

    Each wave's tasks are mutually independent; wave ``w`` may only run
    after wave ``w-1`` completes.  Fill-in tiles are materialized as
    the symbolic pattern evolves, so ``sum(len(w) for w in waves)`` is
    not predictable from the input pattern alone.
    """
    waves: List[List[TaskSpec]] = []
    tiles = problem.tiles
    counter = [0]

    def make(op: str, func_op: str, args: tuple) -> TaskSpec:
        counter[0] += 1
        return TaskSpec(
            name=f"slud-{op}{counter[0]}",
            threads_per_block=threads,
            num_blocks=1,
            kernel=_slud_kernel,
            regs_per_thread=regs_per_thread,
            # the sparse matrix is uploaded once up front and factored in
            # place on the device; per-task transfers are nil
            # (Table 3: SLUD spends just 3% in data copy)
            input_bytes=0,
            output_bytes=0,
            work={"op": op},
            func=_make_func(func_op, args) if functional else None,
        )

    for k in range(problem.nb):
        diag = tiles[(k, k)]
        waves.append([make("lu", "lu", (diag,))])
        panel: List[TaskSpec] = []
        rows = [i for i in range(k + 1, problem.nb) if (i, k) in tiles]
        cols = [j for j in range(k + 1, problem.nb) if (k, j) in tiles]
        for i in rows:
            panel.append(make("trsm", "trsm_u", (diag, tiles[(i, k)])))
        for j in cols:
            panel.append(make("trsm", "trsm_l", (diag, tiles[(k, j)])))
        if panel:
            waves.append(panel)
        updates: List[TaskSpec] = []
        for i in rows:
            for j in cols:
                if (i, j) not in tiles:  # fill-in discovered at runtime
                    tiles[(i, j)] = (
                        np.zeros((TILE, TILE)) if functional else None
                    )
                updates.append(
                    make("gemm", "gemm",
                         (tiles[(i, j)], tiles[(i, k)], tiles[(k, j)]))
                )
        if updates:
            waves.append(updates)
    return waves


def reference_lu_check(problem: SparseLuProblem, original: np.ndarray,
                       rtol: float = 1e-8) -> None:
    """Verify that the factored tiles reproduce the original matrix."""
    full = problem.dense()
    lower = np.tril(full, -1) + np.eye(full.shape[0])
    upper = np.triu(full)
    np.testing.assert_allclose(lower @ upper, original, rtol=rtol,
                               atol=1e-6 * np.abs(original).max())


class SparseLuWorkload(Workload):
    """SLUD benchmark (Table 3: 32x32 tiles, 17 regs, irregular,
    task count unknown statically)."""

    def __init__(self) -> None:
        super().__init__(
            name="slud",
            description="Blocked sparse LU with dynamic fill-in tasks",
            regs_per_thread=17,
            static_task_count=False,
        )

    def make_tasks(self, num_tasks, threads_per_task=None, seed=0,
                   irregular=False, functional=False):
        """Flattened wave order, sized to approximate ``num_tasks``.

        The exact count emerges from fill-in — callers must use
        ``len()`` of the result, never assume ``num_tasks``.
        """
        threads = threads_per_task or self.default_threads
        nb = max(3, round((3 * num_tasks) ** (1 / 3)))
        problem = SparseLuProblem.generate(nb, seed=seed,
                                           functional=functional)
        waves = generate_waves(problem, threads, functional,
                               self.regs_per_thread)
        return [task for wave in waves for task in wave]

    def make_task(self, index, threads, rng, irregular, functional):
        """Build one TaskSpec (see Workload.make_task)."""
        raise NotImplementedError("SLUD tasks come from generate_waves")

    def verify_task(self, task: TaskSpec) -> None:
        """Compare functional output with the reference."""
        raise NotImplementedError("verify via reference_lu_check")


SPARSE_LU = REGISTRY.register(SparseLuWorkload())
