"""Workload framework: cost-model conventions and the benchmark base.

Every benchmark (Table 4) provides:

- a **timing kernel**: per-warp generator of
  :class:`~repro.gpu.phases.Phase` / ``BLOCK_SYNC``, parameterized by
  the task's thread geometry so the *same total work* redistributes
  when the evaluation sweeps threads-per-task (Fig. 7) or static fusion
  reshapes blocks to 256 threads (Fig. 9);
- a **functional kernel**: real NumPy computation through the device
  API, validated against a pure reference implementation;
- **characteristics** mirroring Table 3 (registers, sync, shared
  memory, input set).

Cost-model conventions
----------------------
Work is counted in *lane operations* per thread; warps run in lockstep
so a warp's instruction count equals its busiest lane's.  A kernel
emits a handful of phases, each pairing an instruction burst with the
memory traffic it triggers — the per-phase DRAM stall is what makes
occupancy matter (see :class:`repro.gpu.timing.TimingModel`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.gpu.phases import BLOCK_SYNC, Phase
from repro.tasks import TaskSpec


def lanes_per_thread(total_elems: int, threads: int) -> int:
    """Elements each thread processes (grid-stride convention)."""
    return max(1, math.ceil(total_elems / threads))


def emit_phases(total_inst_per_thread: float, total_mem_bytes: float,
                warps: int, num_phases: int = 4):
    """Yield ``num_phases`` (inst, mem) phases for one warp.

    ``total_inst_per_thread`` is per-thread lane work (== warp
    instructions, lockstep); ``total_mem_bytes`` is the whole *block's*
    DRAM traffic, split evenly across its warps and phases.
    """
    if num_phases < 1:
        raise ValueError("num_phases must be >= 1")
    inst = total_inst_per_thread / num_phases
    mem = total_mem_bytes / (warps * num_phases)
    for _ in range(num_phases):
        yield Phase(inst=inst, mem_bytes=mem)


@dataclass
class Workload:
    """One benchmark: factory for its TaskSpecs plus metadata."""

    name: str
    description: str
    regs_per_thread: int
    needs_sync: bool = False
    uses_shared_mem: bool = False
    #: can the task count be known statically? (False for SLUD — which
    #: is why GeMTC and static fusion cannot run it, §6.2/§6.3)
    static_task_count: bool = True
    default_threads: int = 128

    def make_tasks(self, num_tasks: int, threads_per_task: Optional[int] = None,
                   seed: int = 0, irregular: bool = False,
                   functional: bool = False) -> List[TaskSpec]:
        """Build ``num_tasks`` task specs.

        ``irregular`` draws pseudo-random per-task input sizes (the
        §6.3 irregular-task methodology); ``functional`` attaches real
        input arrays and the functional kernel.
        """
        threads = threads_per_task or self.default_threads
        rng = np.random.default_rng(seed)
        return [
            self.make_task(i, threads, rng, irregular, functional)
            for i in range(num_tasks)
        ]

    def make_task(self, index: int, threads: int, rng: np.random.Generator,
                  irregular: bool, functional: bool) -> TaskSpec:
        """Build one TaskSpec (see Workload.make_task)."""
        raise NotImplementedError

    def verify_task(self, task: TaskSpec) -> None:
        """Check a functional task's outputs against the reference
        implementation; raises AssertionError on mismatch."""
        raise NotImplementedError


class WorkloadRegistry:
    """Name -> Workload lookup used by the benchmark harness."""

    def __init__(self) -> None:
        self._workloads: Dict[str, Workload] = {}

    def register(self, workload: Workload) -> Workload:
        """Register a workload under its unique name."""
        if workload.name in self._workloads:
            raise ValueError(f"duplicate workload {workload.name!r}")
        self._workloads[workload.name] = workload
        return workload

    def get(self, name: str) -> Workload:
        """Look a workload up by name."""
        try:
            return self._workloads[name]
        except KeyError:
            raise KeyError(
                f"unknown workload {name!r}; have {sorted(self._workloads)}"
            ) from None

    def names(self) -> List[str]:
        """Sorted names of all recorded series."""
        return sorted(self._workloads)


REGISTRY = WorkloadRegistry()
