"""Tables 3 and 4 of the paper, as queryable metadata.

Table 1 (the API) lives in :mod:`repro.core.api`, Table 2 (WarpTable
fields) in :mod:`repro.core.warptable`; this module renders the
benchmark-facing tables so the whole paper's tabular content is
embodied in code and cross-checked against the registry by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bench.reporting import format_table
from repro.workloads import REGISTRY


@dataclass(frozen=True)
class BenchmarkFacts:
    """One row of Tables 3 + 4."""

    name: str
    source: str
    task_type: str  # "Regular" | "Irregular"
    input_set: str
    paper_num_tasks: int
    paper_copy_pct: int
    paper_compute_pct: int
    benefits_shared_mem: bool
    requires_sync: bool
    default_regs: int
    description: str


TABLE34: Dict[str, BenchmarkFacts] = {
    "mb": BenchmarkFacts(
        "mb", "Quinn", "Irregular", "64 x 64 images", 32 * 1024,
        24, 76, False, False, 28,
        "Mandelbrot sets are used in fractal analysis; the computation "
        "per pixel is highly irregular, so each tile is a narrow task.",
    ),
    "fb": BenchmarkFacts(
        "fb", "StreamIt", "Regular", "Signals of width 2K", 32 * 1024,
        35, 65, False, True, 21,
        "Filterbank separates input signals into sub-signals with a "
        "set of filters; each radio's signal is one task.",
    ),
    "bf": BenchmarkFacts(
        "bf", "StreamIt", "Regular", "Signals of width 2K", 32 * 1024,
        13, 87, False, False, 34,
        "Beamformer controls the direction of signal reception; each "
        "beam's asynchronous input is a narrow task.",
    ),
    "conv": BenchmarkFacts(
        "conv", "CUDA SDK", "Regular", "128 x 128 images", 32 * 1024,
        30, 70, False, False, 25,
        "Convolution filters for blur/edge detection; each filter "
        "operation is a task parallel across pixels.",
    ),
    "dct": BenchmarkFacts(
        "dct", "CUDA SDK", "Regular", "128 x 128 images", 32 * 1024,
        81, 19, True, True, 33,
        "8x8 DCT as used by JPEG/MP3/MPEG; surveillance systems "
        "process images from many camera streams in parallel.",
    ),
    "mm": BenchmarkFacts(
        "mm", "CUDA SDK", "Regular", "64 x 64 matrix", 32 * 1024,
        51, 49, True, True, 30,
        "Small matrix multiplications as in an earthquake-engineering "
        "simulator concurrently simulating many structures.",
    ),
    "slud": BenchmarkFacts(
        "slud", "OpenMP Task Suite", "Irregular", "32 x 32 matrix",
        273 * 1024, 3, 97, False, False, 17,
        "Sparse LU via the multifrontal method; iteration-dependent "
        "computation sizes make it a task-based application.",
    ),
    "3des": BenchmarkFacts(
        "3des", "NIST", "Irregular", "Network packets sized 2K-64K",
        32 * 1024, 74, 26, False, False, 26,
        "Routers encrypt packets as they arrive; NetBench generates "
        "the varied packet sizes that 3DES encrypts.",
    ),
    "mpe": BenchmarkFacts(
        "mpe", "paper's own", "Irregular", "mix of 4 benchmarks",
        32 * 1024, -1, -1, True, True, 30,
        "Multi-programmed environment: 8K tasks each of 3DES and "
        "Mandelbrot (irregular), Filterbank (sync), and MatrixMul "
        "(shared memory).",
    ),
}


def print_table3() -> str:
    """Render Table 3 (benchmark characteristics)."""
    rows = []
    for name, facts in TABLE34.items():
        rows.append([
            name, facts.source, facts.task_type, facts.input_set,
            facts.paper_num_tasks,
            facts.paper_copy_pct if facts.paper_copy_pct >= 0 else "-",
            facts.paper_compute_pct if facts.paper_compute_pct >= 0 else "-",
            "yes" if facts.benefits_shared_mem else "no",
            "yes" if facts.requires_sync else "no",
            facts.default_regs,
        ])
    return format_table(
        ["bench", "source", "type", "input/task", "#tasks",
         "copy%", "compute%", "smem", "sync", "regs"],
        rows, title="Table 3: Benchmark Characteristics (paper values)",
    )


def print_table4() -> str:
    """Render Table 4 (benchmark descriptions)."""
    lines = ["Table 4: Benchmark Description", ""]
    for name, facts in TABLE34.items():
        lines.append(f"{name.upper():5s} {facts.description}")
    return "\n".join(lines)


def check_consistency() -> None:
    """Cross-check Table 3/4 facts against the live registry."""
    for name, facts in TABLE34.items():
        workload = REGISTRY.get(name)
        if workload.regs_per_thread != facts.default_regs:
            raise AssertionError(
                f"{name}: registry regs {workload.regs_per_thread} != "
                f"table {facts.default_regs}"
            )
        if workload.uses_shared_mem != facts.benefits_shared_mem:
            raise AssertionError(f"{name}: shared-memory flag mismatch")
        if workload.needs_sync != facts.requires_sync:
            raise AssertionError(f"{name}: sync flag mismatch")
