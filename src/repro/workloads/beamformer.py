"""BeamFormer (BF): delay-and-sum beamforming over sensor channels.

Table 4: "a signal processing method used to control the direction of
signal reception... Many independent signal beams receive inputs
asynchronously.  Processing individual inputs generates a narrow
task."  One task forms one beam from ``N_CHANNELS`` delayed, weighted
channel signals of width 2K.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.phases import Phase
from repro.tasks import TaskSpec
from repro.workloads.base import REGISTRY, Workload, lanes_per_thread

#: Table 3: signals of width 2K
N_SIM = 2048
N_CHANNELS = 64
MAX_DELAY = 16
#: lane ops per channel-sample (delayed load + weight MAC + index math);
#: calibrated so the HyperQ copy fraction matches Table 3 (13%)
INST_PER_CHANNEL = 7.5
BYTES_PER_SAMPLE = 4


@dataclass
class BeamFormerWork:
    """Per-task payload: one beam's channel data, delays, weights."""

    n_sim: int
    channels: np.ndarray = None  # (N_CHANNELS, n_sim)
    delays: np.ndarray = None  # int per channel
    weights: np.ndarray = None
    out: np.ndarray = None


def reference_beamform(channels: np.ndarray, delays: np.ndarray,
                       weights: np.ndarray) -> np.ndarray:
    """Delay-and-sum: out[t] = sum_c w[c] * x[c, t - d[c]] (guarded)."""
    n = channels.shape[1]
    out = np.zeros(n)
    for c in range(channels.shape[0]):
        d = int(delays[c])
        out[d:] += weights[c] * channels[c, : n - d]
    return out


def beamformer_kernel(task: TaskSpec, block_id: int, warp_id: int):
    """Timing kernel: each thread accumulates its samples over all
    channels; channel data streams from DRAM."""
    work: BeamFormerWork = task.work
    per_thread = lanes_per_thread(work.n_sim, task.total_threads)
    total_inst = per_thread * N_CHANNELS * INST_PER_CHANNEL
    mem_total = (work.n_sim * N_CHANNELS * BYTES_PER_SAMPLE) / task.total_warps
    phases = 4
    for _ in range(phases):
        yield Phase(inst=total_inst / phases, mem_bytes=mem_total / phases)


def beamformer_func(ctx) -> None:
    """Functional kernel: delay-and-sum the channels."""
    work: BeamFormerWork = ctx.args
    work.out[:] = reference_beamform(work.channels, work.delays, work.weights)


class BeamFormerWorkload(Workload):
    """BF benchmark (Table 3: width-2K signals, 34 regs, no sync)."""

    def __init__(self) -> None:
        super().__init__(
            name="bf",
            description="Delay-and-sum beamforming",
            regs_per_thread=34,
        )

    def make_task(self, index, threads, rng, irregular, functional):
        """Build one TaskSpec (see Workload.make_task)."""
        n_sim = N_SIM
        if irregular:
            n_sim = int(rng.integers(N_SIM // 8, N_SIM + 1))
        work = BeamFormerWork(n_sim=n_sim)
        if functional:
            work.channels = rng.standard_normal((N_CHANNELS, n_sim))
            work.delays = rng.integers(0, MAX_DELAY, N_CHANNELS)
            work.weights = rng.standard_normal(N_CHANNELS)
            work.out = np.zeros(n_sim)
        return TaskSpec(
            name=f"bf{index}",
            threads_per_block=threads,
            num_blocks=1,
            kernel=beamformer_kernel,
            regs_per_thread=self.regs_per_thread,
            # channel buffers are GPU-resident ring buffers; each task
            # ships only the beam's fresh input snapshot (keeps Table
            # 3's 13% copy share: BF is the most compute-bound GPU
            # benchmark)
            input_bytes=n_sim * BYTES_PER_SAMPLE,
            output_bytes=n_sim * BYTES_PER_SAMPLE,
            work=work,
            func=beamformer_func if functional else None,
        )

    def verify_task(self, task: TaskSpec) -> None:
        """Compare functional output with the reference."""
        work: BeamFormerWork = task.work
        expected = reference_beamform(work.channels, work.delays, work.weights)
        np.testing.assert_allclose(work.out, expected, rtol=1e-10)


BEAMFORMER = REGISTRY.register(BeamFormerWorkload())
