"""Static task fusion baseline (§6.3).

All tasks are fused into one monolithic kernel at build time: one
threadblock per task, every block shaped identically (the programmer
picks one thread count for all sub-tasks — the paper uses 256 — and the
kernel's resource allocation is dictated by the hungriest sub-task).
The fused kernel cannot finish until its slowest block does, which is
the latency behaviour Fig. 10 measures, and it needs the full task list
statically (no SLUD).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.cuda.runtime import CudaRuntime
from repro.gpu.device import Gpu
from repro.gpu.spec import GpuSpec, titan_x
from repro.gpu.timing import DEFAULT_TIMING, TimingModel
from repro.pcie.bus import Direction, PcieBus
from repro.sim import Engine
from repro.tasks import RunStats, TaskResult, TaskSpec

#: The paper's heuristic thread count per fused sub-task (§6.3).
DEFAULT_FUSED_THREADS = 256


def fuse_tasks(tasks: List[TaskSpec],
               fused_threads: int = DEFAULT_FUSED_THREADS) -> TaskSpec:
    """Build the monolithic fused kernel: one block per sub-task.

    Resource allocation is uniform: shared memory and registers are the
    max over sub-tasks (the static-fusion occupancy penalty the paper
    calls out in §1).
    """
    if not tasks:
        raise ValueError("nothing to fuse")
    for task in tasks:
        if task.num_blocks != 1:
            raise ValueError(
                f"static fusion maps one block per task; {task.name!r} "
                f"has {task.num_blocks} blocks"
            )

    def fused_kernel(fused_task, block_id, warp_id):
        """Block ``block_id`` executes sub-task ``block_id`` re-shaped
        to ``fused_threads`` threads."""
        sub = fused_task.work[block_id]
        yield from sub.kernel(sub, 0, warp_id)

    # re-shape every sub-task to the uniform thread count so its cost
    # model distributes the same total work over fused_threads lanes
    reshaped = [
        dataclasses.replace(t, threads_per_block=fused_threads)
        for t in tasks
    ]
    return TaskSpec(
        name=f"fused[{len(tasks)}]",
        threads_per_block=fused_threads,
        num_blocks=len(tasks),
        kernel=fused_kernel,
        shared_mem_bytes=max(t.shared_mem_bytes for t in tasks),
        needs_sync=any(t.needs_sync for t in tasks),
        regs_per_thread=max(t.regs_per_thread for t in tasks),
        input_bytes=sum(t.input_bytes for t in tasks),
        output_bytes=sum(t.output_bytes for t in tasks),
        work=reshaped,
    )


def run_static_fusion(tasks: List[TaskSpec],
                      spec: Optional[GpuSpec] = None,
                      timing: Optional[TimingModel] = None,
                      fused_threads: int = DEFAULT_FUSED_THREADS,
                      copy_inputs: bool = True,
                      copy_outputs: bool = True,
                      lane: str = "default") -> RunStats:
    """Execute ``tasks`` as one statically fused kernel."""
    timing = timing or DEFAULT_TIMING
    engine = Engine(lane=lane)
    gpu = Gpu(engine, spec or titan_x(), timing)
    bus = PcieBus(engine, timing)
    rt = CudaRuntime(engine, gpu, bus)
    fused = fuse_tasks(tasks, fused_threads)
    stream = rt.create_stream("fused")
    results = [TaskResult(i, t.name) for i, t in enumerate(tasks)]
    fused_result = TaskResult(0, fused.name)

    def host():
        # Marshal every sub-task's parameters and stage its inputs.
        # Nothing overlaps the fused kernel: all inputs must land
        # before the single launch, and no output can move until the
        # whole kernel retires — the §6.3 pipeline-less structure.
        in_copies = []
        for i, task in enumerate(tasks):
            results[i].spawn_time = engine.now
            yield timing.fusion_task_setup_ns
            if copy_inputs and task.input_bytes:
                in_copies.append(engine.spawn(
                    bus.transfer(task.input_bytes, Direction.H2D),
                    f"fusion.incopy.{i}",
                ))
        for proc in in_copies:
            yield proc
        ev = yield from rt.host_launch(fused, stream, fused_result)
        yield ev
        out_copies = []
        for i, task in enumerate(tasks):
            if copy_outputs and task.output_bytes:
                out_copies.append(engine.spawn(
                    bus.transfer(task.output_bytes, Direction.D2H),
                    f"fusion.outcopy.{i}",
                ))
        for proc in out_copies:
            yield proc

    host_proc = engine.spawn(host(), "fusion-host")
    engine.run()
    if host_proc.alive:
        raise RuntimeError("fused run did not complete (deadlock?)")
    makespan = engine.now
    # every task 'completes' only when the fused kernel does — the
    # Fig. 10 latency penalty of static fusion
    for res in results:
        res.sched_time = fused_result.sched_time
        res.start_time = fused_result.start_time
        res.end_time = fused_result.end_time
    return RunStats(
        runtime="static-fusion",
        makespan=makespan,
        results=results,
        copy_time=bus.total_busy_time(),
        compute_time=fused_result.end_time,
        mean_occupancy=gpu.mean_occupancy(makespan),
        meta={"fused_threads": fused_threads},
    )
