"""CUDA-HyperQ baseline: one kernel per task across 32 streams.

This is the strongest stock-CUDA contender (§6.2): the host enables 32
HyperQ connections (``CUDA_DEVICE_MAX_CONNECTIONS=32``), spreads tasks
round-robin over 32 streams, and lets concurrent kernel execution do
the rest.  Its limits are exactly the paper's: at most 32 narrow
kernels in flight (≤16.67 % occupancy for 256-thread tasks), per-launch
driver cost on the host, and threadblock-granularity residency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cuda.runtime import CudaRuntime
from repro.gpu.device import Gpu
from repro.gpu.spec import GpuSpec, titan_x
from repro.gpu.timing import DEFAULT_TIMING, TimingModel
from repro.pcie.bus import Direction, PcieBus
from repro.sim import Engine
from repro.tasks import RunStats, TaskResult, TaskSpec


@dataclass
class HyperQConfig:
    """Knobs for one CUDA-HyperQ run."""

    num_streams: int = 32
    copy_inputs: bool = True
    copy_outputs: bool = True
    spawn_gap_ns: float = 0.0
    #: open-loop arrivals (see PagodaConfig.open_loop)
    open_loop: bool = False
    functional: bool = False
    #: engine lane ("default" or "fast"; see PagodaConfig.lane)
    lane: str = "default"


def run_hyperq(tasks: List[TaskSpec],
               spec: Optional[GpuSpec] = None,
               timing: Optional[TimingModel] = None,
               config: Optional[HyperQConfig] = None) -> RunStats:
    """Execute ``tasks`` as individual kernels under HyperQ."""
    config = config or HyperQConfig()
    timing = timing or DEFAULT_TIMING
    engine = Engine(lane=config.lane)
    gpu = Gpu(engine, spec or titan_x(), timing)
    bus = PcieBus(engine, timing)
    rt = CudaRuntime(engine, gpu, bus, functional=config.functional)
    streams = [rt.create_stream(f"s{i}") for i in range(config.num_streams)]
    results = [TaskResult(i, t.name) for i, t in enumerate(tasks)]

    def host():
        completions = []
        for i, task in enumerate(tasks):
            if config.spawn_gap_ns and config.open_loop:
                arrival = (i + 1) * config.spawn_gap_ns
                if engine.now < arrival:
                    yield arrival - engine.now
                results[i].spawn_time = arrival
            elif config.spawn_gap_ns:
                yield config.spawn_gap_ns
                results[i].spawn_time = engine.now
            else:
                results[i].spawn_time = engine.now
            stream = streams[i % len(streams)]
            if config.copy_inputs and task.input_bytes:
                yield timing.memcpy_issue_ns  # cudaMemcpyAsync driver call
                rt.memcpy_async(task.input_bytes, Direction.H2D, stream)
            ev = yield from rt.host_launch(task, stream, results[i])
            if config.copy_outputs and task.output_bytes:
                yield timing.memcpy_issue_ns
                ev = rt.memcpy_async(task.output_bytes, Direction.D2H, stream)
            completions.append(ev)
        # cudaDeviceSynchronize: drain every stream
        for stream in streams:
            yield stream.synchronize()

    host_proc = engine.spawn(host(), "hyperq-host")
    engine.run()
    if host_proc.alive:
        raise RuntimeError("HyperQ run did not complete (deadlock?)")
    makespan = engine.now
    if rt.kernels_completed != len(tasks):
        raise RuntimeError(
            f"completed {rt.kernels_completed} of {len(tasks)} kernels"
        )
    return RunStats(
        runtime="cuda-hyperq",
        makespan=makespan,
        results=results,
        copy_time=bus.total_busy_time(),
        compute_time=max(r.end_time for r in results) if results else 0.0,
        mean_occupancy=gpu.mean_occupancy(makespan),
    )
