"""Every baseline the paper evaluates against (§6).

- :func:`~repro.baselines.hyperq.run_hyperq` — per-task CUDA kernels on
  32 streams (CUDA-HyperQ, §6.2).
- :func:`~repro.baselines.gemtc.run_gemtc` — the GeMTC SuperKernel:
  batch-launched tasks, one task per worker threadblock, a single FIFO
  queue, no shared memory (§1, §6.2, §7).
- :func:`~repro.baselines.fusion.run_static_fusion` — all tasks fused
  into one monolithic kernel, uniform per-task resources (§6.3).
- CPU baselines (PThreads / sequential) live in :mod:`repro.cpu`.
- The Pagoda-Batching ablation is ``run_pagoda(config=PagodaConfig(
  batch_size=...))`` (§6.6).
"""

from repro.baselines.fusion import run_static_fusion
from repro.baselines.gemtc import GemtcConfig, run_gemtc
from repro.baselines.hyperq import HyperQConfig, run_hyperq

__all__ = [
    "run_hyperq",
    "HyperQConfig",
    "run_gemtc",
    "GemtcConfig",
    "run_static_fusion",
]
