"""GeMTC baseline: SuperKernel with batch launching and one FIFO queue.

Re-implemented from the paper's description (§1, §6.2, §7):

- a persistent *SuperKernel* acquires a fixed pool of worker
  threadblocks (``worker_threads`` each; the paper's default of 32 gave
  50 % occupancy, the evaluation uses ≥64 for 100 %);
- every task executes as a **single threadblock** on one worker;
- workers pull from a **single FIFO queue**, serializing on a
  global-memory atomic per pop;
- tasks arrive in **batches**: no new batch is submitted until every
  task of the previous batch has finished, so a batch's completion time
  is set by its longest task (the load-imbalance §6.6 measures);
- **no shared-memory support** (tasks requesting it are rejected, as in
  the paper's evaluation which dropped shared memory from GeMTC
  versions);
- the task count must be known up front (why SLUD cannot run, §6.2) —
  inherent here since the batch schedule is precomputed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.cuda.barrier import WarpBarrier
from repro.device_api import run_functional
from repro.gpu.device import Gpu
from repro.gpu.occupancy import blocks_per_smm, registers_per_block
from repro.gpu.phases import BlockSync, Phase
from repro.gpu.spec import GpuSpec, titan_x
from repro.gpu.timing import DEFAULT_TIMING, TimingModel
from repro.pcie.bus import Direction, PcieBus
from repro.sim import Engine, Event, FifoResource, Store, TimeWeighted
from repro.tasks import RunStats, TaskResult, TaskSpec

#: Registers per thread the SuperKernel compiles to (same -maxrregcount
#: discipline as the MasterKernel).
WORKER_REGS = 32


@dataclass
class GemtcConfig:
    """Knobs for one GeMTC run."""

    #: threads per SuperKernel worker threadblock.
    worker_threads: int = 128
    #: tasks per batch; ``None`` uses one task per worker.
    batch_size: Optional[int] = None
    copy_inputs: bool = True
    copy_outputs: bool = True
    spawn_gap_ns: float = 0.0
    functional: bool = False
    #: engine lane ("default" or "fast"; see PagodaConfig.lane)
    lane: str = "default"


class _GemtcDevice:
    """The SuperKernel: worker pool + single FIFO queue."""

    def __init__(self, engine: Engine, gpu: Gpu, timing: TimingModel,
                 worker_threads: int, functional: bool) -> None:
        self.engine = engine
        self.gpu = gpu
        self.timing = timing
        self.functional = functional
        self.queue: Store = Store(engine, "gemtc.fifo")
        self.queue_lock = FifoResource(engine, 1, "gemtc.queue_lock")
        self.busy_warps = TimeWeighted()
        self.worker_warps = -(-worker_threads // 32)
        regs = registers_per_block(gpu.spec, worker_threads, WORKER_REGS)
        per_smm = blocks_per_smm(gpu.spec, worker_threads, WORKER_REGS, 0)
        self.num_workers = per_smm * gpu.spec.num_smms
        if self.num_workers == 0:
            raise ValueError("worker shape does not fit on the GPU")
        self._procs = []
        for smm in gpu.smms:
            for _ in range(per_smm):
                smm.reserve_block(self.worker_warps, regs, 0)
                self._procs.append(engine.spawn(
                    self._worker(smm), f"gemtc.worker.{len(self._procs)}"
                ))

    def shutdown(self) -> None:
        """Interrupt this component's daemon processes."""
        for proc in self._procs:
            proc.interrupt()

    def _worker(self, smm) -> Generator:
        while True:
            item = yield self.queue.get()
            task, block_id, result, on_done = item
            # serialize on the single FIFO queue's atomic pop
            yield self.queue_lock.acquire()
            yield self.timing.gemtc_pop_ns
            self.queue_lock.release()
            if result is not None and not result.start_time:
                result.start_time = self.engine.now
            yield from self._run_block(task, block_id, smm)
            on_done()

    def _run_block(self, task: TaskSpec, block_id: int, smm) -> Generator:
        warps = task.warps_per_block
        if warps > self.worker_warps:
            raise ValueError(
                f"task {task.name!r} needs {warps} warps; worker has "
                f"{self.worker_warps}"
            )
        self.busy_warps.add(self.engine.now, warps)
        barrier = WarpBarrier(warps)
        done = Event()
        remaining = [warps]

        def warp_proc(warp_id):
            for item in task.warp_phases(block_id, warp_id):
                if isinstance(item, Phase):
                    yield from smm.execute_phase(item, self.gpu.dram)
                elif isinstance(item, BlockSync):
                    yield self.timing.syncthreads_ns
                    yield barrier.arrive()
                else:
                    raise TypeError(f"kernel yielded {item!r}")
            remaining[0] -= 1
            if remaining[0] == 0:
                done.fire(None)

        for warp_id in range(warps):
            self.engine.spawn(warp_proc(warp_id),
                              f"gemtc.warp.{task.name}.{block_id}.{warp_id}")
        yield done
        self.busy_warps.add(self.engine.now, -warps)


def run_gemtc(tasks: List[TaskSpec],
              spec: Optional[GpuSpec] = None,
              timing: Optional[TimingModel] = None,
              config: Optional[GemtcConfig] = None) -> RunStats:
    """Execute ``tasks`` under the GeMTC model."""
    config = config or GemtcConfig()
    timing = timing or DEFAULT_TIMING
    for task in tasks:
        if task.shared_mem_bytes:
            raise ValueError(
                f"GeMTC has no shared-memory support (task {task.name!r})"
            )
    engine = Engine(lane=config.lane)
    gpu = Gpu(engine, spec or titan_x(), timing)
    bus = PcieBus(engine, timing)
    device = _GemtcDevice(engine, gpu, timing, config.worker_threads,
                          config.functional)
    results = [TaskResult(i, t.name) for i, t in enumerate(tasks)]
    batch_size = config.batch_size or device.num_workers

    def host():
        # one launch of the SuperKernel itself
        yield timing.kernel_launch_ns
        for start in range(0, len(tasks), batch_size):
            batch = list(range(start, min(start + batch_size, len(tasks))))
            if config.spawn_gap_ns:
                yield config.spawn_gap_ns * len(batch)
            batch_done = Event()
            pending = [sum(tasks[i].num_blocks for i in batch)]
            in_copies = []
            for i in batch:
                results[i].spawn_time = engine.now
                yield timing.gemtc_task_setup_ns  # per-task marshalling
                if config.copy_inputs and tasks[i].input_bytes:
                    yield timing.memcpy_issue_ns
                    in_copies.append(engine.spawn(
                        bus.transfer(tasks[i].input_bytes, Direction.H2D),
                        f"gemtc.incopy.{i}",
                    ))
            # the batch cannot launch until its inputs are resident
            for proc in in_copies:
                yield proc
            # submit the batch descriptor table in one transaction
            yield timing.gemtc_batch_submit_ns
            yield from bus.transfer(
                sum(tasks[i].param_bytes for i in batch), Direction.H2D
            )
            for i in batch:
                results[i].sched_time = engine.now
                task = tasks[i]

                def make_on_done(idx, blocks_left=None):
                    state = {"left": tasks[idx].num_blocks}

                    def on_done():
                        state["left"] -= 1
                        pending[0] -= 1
                        if state["left"] == 0:
                            results[idx].end_time = engine.now
                            if config.functional:
                                run_functional(tasks[idx])
                        if pending[0] == 0:
                            batch_done.fire(None)
                    return on_done

                on_done = make_on_done(i)
                for block_id in range(task.num_blocks):
                    device.queue.put((task, block_id, results[i], on_done))
            # batch barrier: wait for the longest task in the batch
            yield batch_done
            out_copies = []
            for i in batch:
                if config.copy_outputs and tasks[i].output_bytes:
                    yield timing.memcpy_issue_ns
                    out_copies.append(engine.spawn(
                        bus.transfer(tasks[i].output_bytes, Direction.D2H),
                        f"gemtc.outcopy.{i}",
                    ))
            for proc in out_copies:
                yield proc

    host_proc = engine.spawn(host(), "gemtc-host")
    engine.run()
    if host_proc.alive:
        raise RuntimeError("GeMTC run did not complete (deadlock?)")
    makespan = engine.now
    device.shutdown()
    missing = [r for r in results if r.end_time == 0]
    if missing:
        raise RuntimeError(f"{len(missing)} tasks never completed")
    total_warp_slots = gpu.spec.total_warp_slots
    return RunStats(
        runtime="gemtc",
        makespan=makespan,
        results=results,
        copy_time=bus.total_busy_time(),
        compute_time=max(r.end_time for r in results),
        mean_occupancy=device.busy_warps.average(makespan) / total_warp_slots,
        meta={"workers": device.num_workers, "batch_size": batch_size},
    )
