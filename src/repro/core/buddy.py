"""Pagoda's shared-memory buddy allocator (§5.1).

Each MTB statically reserves a 32 KB shared-memory arena and hands
pieces of it to task threadblocks at schedule time.  The allocator is
the paper's buddy-system variant:

- blocks are nodes of a complete binary tree laid out as an array in
  shared memory; the root is the whole arena, leaves are 512-byte
  granules (the smallest allocation);
- a *marked* node is allocated; the structural invariant is "if a node
  is marked, its parent is marked";
- allocation finds a free node on the level whose size fits, marks it,
  and its ancestors and descendants;
- deallocation unmarks the node and its descendants, then walks up
  unmarking each parent whose *other* child (the sibling) is free.

The implementation here keeps the tree *implicit*: instead of a
materialized mark array updated with per-node loops over
``range(first, last + 1)`` and whole subtrees, it stores one free-mask
integer per level.  Bit ``i`` of ``_free_mask[level]`` set means node
``(1 << level) + i`` is a **maximal free block** — fully free and not
coalescible with its buddy.  This is interval arithmetic over the
implicit tree:

- ``alloc`` looks at one lowest-set-bit per level (≤ ``levels`` words)
  to find the leftmost free interval that fits, then claims it by
  clearing one bit and setting one right-sibling bit per split — O(log
  n) with no subtree walks;
- ``free`` sets one bit and merges buddies upward bit-by-bit —
  O(log n);
- a node's paper-semantics *mark* state is derived on demand: a node is
  unmarked exactly when some ancestor-or-self is a maximal free block.

The observable behavior (returned offsets, byte accounting, per-node
mark state) is bit-identical to the materialized seed implementation,
now frozen as
:class:`repro.core.reference.ReferenceBuddyAllocator`; the
differential test in ``tests/core/test_buddy_differential.py`` drives
both through randomized operation sequences and compares every
observable after every step.

Deallocation is deferred (§4.3): executor warps cannot free shared
memory themselves (they would race the scheduler warp's allocations),
so the last warp of a threadblock *marks* the region for freeing and
the scheduler warp flushes all marked regions before its next
allocation (Algorithm 1 line 22).
"""

from __future__ import annotations

from typing import Dict, List, Optional


class BuddyAllocator:
    """Implicit buddy tree with per-level free-interval masks."""

    def __init__(self, capacity: int = 32 * 1024, granule: int = 512) -> None:
        if capacity <= 0 or granule <= 0:
            raise ValueError("capacity and granule must be positive")
        if capacity % granule != 0:
            raise ValueError("capacity must be a multiple of granule")
        leaves = capacity // granule
        if leaves & (leaves - 1):
            raise ValueError("capacity/granule must be a power of two")
        self.capacity = capacity
        self.granule = granule
        self.levels = leaves.bit_length()  # root level 0 .. leaves level-1
        #: per-level bitmask of maximal free blocks; level ``l`` bit
        #: ``i`` covers bytes [i * (capacity >> l), (i+1) * (capacity >> l)).
        self._free_mask: List[int] = [0] * self.levels
        self._free_mask[0] = 1  # the whole arena is one free interval
        self._live: Dict[int, int] = {}  # offset -> node index
        self._deferred: List[int] = []  # offsets marked for deallocation
        self.allocated_bytes = 0

    # -- geometry ----------------------------------------------------------

    def _level_of_size(self, size: int) -> int:
        """Shallowest level whose node size is >= size."""
        if size <= 0:
            raise ValueError("size must be positive")
        if size > self.capacity:
            raise ValueError(f"request {size} exceeds arena {self.capacity}")
        level = self.levels - 1
        node_size = self.granule
        while node_size < size:
            node_size *= 2
            level -= 1
        return level

    def node_size(self, node: int) -> int:
        """Byte size of the buddy-tree node."""
        level = node.bit_length() - 1
        return self.capacity >> level

    def node_offset(self, node: int) -> int:
        """Arena offset covered by the buddy-tree node."""
        level = node.bit_length() - 1
        index_in_level = node - (1 << level)
        return index_in_level * (self.capacity >> level)

    # -- allocation ----------------------------------------------------------

    def alloc(self, size: int) -> Optional[int]:
        """Allocate ``size`` bytes; returns the arena offset or ``None``.

        First fit, leftmost: the lowest arena offset whose free interval
        is large enough — the same node the seed implementation's
        left-to-right level scan would pick.  The scheduler warp retries
        after flushing deferred frees when this returns ``None``
        (Algorithm 1 lines 21-24).
        """
        level = self._level_of_size(size)
        best_off = -1
        best_level = -1
        for lv in range(level + 1):
            mask = self._free_mask[lv]
            if not mask:
                continue
            idx = (mask & -mask).bit_length() - 1
            off = idx * (self.capacity >> lv)
            if best_off < 0 or off < best_off:
                best_off = off
                best_level = lv
        if best_off < 0:
            return None
        # claim the covering free interval ...
        idx = best_off // (self.capacity >> best_level)
        self._free_mask[best_level] ^= 1 << idx
        # ... and split down to the target level: each split keeps the
        # left child (the leftmost descendant is the node the seed scan
        # returns) and free-lists the right sibling.
        node = (1 << best_level) + idx
        for lv in range(best_level + 1, level + 1):
            node <<= 1
            self._free_mask[lv] |= 1 << ((node | 1) - (1 << lv))
        self._live[best_off] = node
        self.allocated_bytes += self.capacity >> level
        return best_off

    # -- deallocation ---------------------------------------------------------

    def mark_for_dealloc(self, offset: int) -> None:
        """Executor-warp side: defer freeing of the block at ``offset``."""
        if offset not in self._live:
            raise ValueError(f"offset {offset} is not allocated")
        self._deferred.append(offset)

    def flush_deferred(self) -> int:
        """Scheduler-warp side: free everything marked; returns count."""
        count = len(self._deferred)
        if count:
            deferred, self._deferred = self._deferred, []
            for offset in deferred:
                self.free(offset)
        return count

    def free(self, offset: int) -> None:
        """Immediately free the allocation at ``offset`` (§5.1 Fig. 4)."""
        node = self._live.pop(offset, None)
        if node is None:
            raise ValueError(f"offset {offset} is not allocated")
        level = node.bit_length() - 1
        self.allocated_bytes -= self.capacity >> level
        # merge upward: while the buddy interval is also free, absorb it
        idx = node - (1 << level)
        while level > 0 and (self._free_mask[level] >> (idx ^ 1)) & 1:
            self._free_mask[level] &= ~(1 << (idx ^ 1))
            idx >>= 1
            level -= 1
        self._free_mask[level] |= 1 << idx

    # -- introspection ---------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        """Bytes currently free."""
        return self.capacity - self.allocated_bytes

    @property
    def live_count(self) -> int:
        """Outstanding allocations in the arena."""
        return len(self._live)

    @property
    def deferred_count(self) -> int:
        """Regions marked for deallocation, not yet flushed."""
        return len(self._deferred)

    def is_marked(self, node: int) -> bool:
        """Whether a tree node is marked allocated (paper semantics).

        A node is unmarked exactly when its interval is entirely free,
        i.e. some ancestor-or-self is a maximal free block.
        """
        n = node
        while n >= 1:
            level = n.bit_length() - 1
            if (self._free_mask[level] >> (n - (1 << level))) & 1:
                return False
            n >>= 1
        return True

    @property
    def _marked(self) -> List[bool]:
        """Materialized mark array (introspection/tests only; the seed
        implementation stored this, the indexed one derives it)."""
        total = 2 << (self.levels - 1)
        out = [False] * total
        for node in range(1, total):
            out[node] = self.is_marked(node)
        return out

    def check_invariants(self) -> None:
        """Free-interval structure + live/byte-accounting consistency."""
        free_total = 0
        for level, mask in enumerate(self._free_mask):
            if mask >> (1 << level):
                raise AssertionError(f"level {level} free mask overflows")
            m = mask
            while m:
                low = m & -m
                idx = low.bit_length() - 1
                m ^= low
                free_total += self.capacity >> level
                if level > 0 and (mask >> (idx ^ 1)) & 1 and idx & 1 == 0:
                    raise AssertionError(
                        f"uncoalesced buddies {idx},{idx ^ 1} at level {level}"
                    )
                # a free block's ancestors must not also be free
                n = ((1 << level) + idx) >> 1
                while n >= 1:
                    lv = n.bit_length() - 1
                    if (self._free_mask[lv] >> (n - (1 << lv))) & 1:
                        raise AssertionError(
                            f"free block at level {level} nested under a "
                            f"free ancestor at level {lv}"
                        )
                    n >>= 1
        if free_total != self.free_bytes:
            raise AssertionError(
                f"free intervals cover {free_total} bytes but accounting "
                f"says {self.free_bytes}"
            )
        live_total = 0
        for offset, node in self._live.items():
            if not self.is_marked(node):
                raise AssertionError(f"live node {node} not marked")
            if self.node_offset(node) != offset:
                raise AssertionError("offset/node mismatch")
            live_total += self.node_size(node)
        if live_total != self.allocated_bytes:
            raise AssertionError(
                f"live nodes cover {live_total} bytes but accounting "
                f"says {self.allocated_bytes}"
            )
        # live regions must be pairwise disjoint
        regions = sorted(
            (offset, self.node_size(node)) for offset, node in self._live.items()
        )
        prev_end = 0
        for offset, size in regions:
            if offset < prev_end:
                raise AssertionError("overlapping live allocations")
            prev_end = offset + size
