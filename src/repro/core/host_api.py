"""Pagoda's CPU-side API (Table 1): taskSpawn, wait, check, waitAll.

The host owns the CPU TaskTable mirror.  A spawn finds a free entry,
fills it, and fires one asynchronous H2D transaction; the ready field
carries the pipelining pointer (the previous spawn's taskID), so in
steady state each task costs exactly one cudamemcopy (§4.2.1).

Completions flow back only through lazy aggregate copy-backs (§4.2.2):
``wait``/``waitAll`` poll with a timeout and then *force* a copy-back;
when the spawner runs out of free entries it reclaims the same way.
"""

from __future__ import annotations

import sys
from typing import Generator, List, Optional

from repro.core.errors import (
    CudaLaunchError,
    GpuDeadError,
    RetryPolicy,
    TaskError,
    TaskErrorGroup,
)
from repro.core.tasktable import READY_COPIED, READY_SCHEDULING, TaskTable
from repro.gpu.timing import TimingModel
from repro.pcie.bus import Direction
from repro.sim import Engine
from repro.tasks import TaskResult, TaskSpec


def _caller_site(depth: int = 2) -> str:
    """``file:line`` of the frame ``depth`` levels up (the taskSpawn
    call site, recorded for TaskError diagnostics)."""
    frame = sys._getframe(depth)
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


#: spawn-protocol variants (§4.2.1): the pipelined taskID protocol is
#: Pagoda's; the other two exist as ablations/demonstrations.
PROTOCOLS = ("pipelined", "two-copies", "unsafe-single")


class PagodaHost:
    """Host-side runtime state for one Pagoda session."""

    def __init__(self, engine: Engine, table: TaskTable,
                 timing: TimingModel, protocol: str = "pipelined",
                 faults=None) -> None:
        if protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown spawn protocol {protocol!r}; have {PROTOCOLS}"
            )
        self.engine = engine
        self.table = table
        self.timing = timing
        self.protocol = protocol
        #: optional :class:`repro.faults.FaultInjector`; spawns draw
        #: ``cuda.launch_fail``.
        self.faults = faults
        #: set by multi-GPU failover when this host's device dies:
        #: spawn/wait loops raise :class:`GpuDeadError` instead of
        #: spinning on a device that will never answer.
        self.dead = False
        #: taskID of the most recent spawn not yet promoted by a
        #: successor or by idle finalization (pipelined protocol only).
        self._prev_unpromoted: Optional[int] = None
        self.spawn_count = 0

    def _check_dead(self) -> None:
        if self.dead:
            raise GpuDeadError("the GPU behind this host died mid-run")

    # -- taskSpawn -------------------------------------------------------------

    def task_spawn(self, spec: TaskSpec,
                   result: Optional[TaskResult] = None):
        """Non-blocking spawn; subroutine returns the taskID.

        Blocks only while *no TaskTable entry is free*, in which case it
        reclaims entries via copy-back exactly as the paper's spawner
        does.
        """
        # plain call (not yet a generator frame): grab the caller's
        # file:line before returning the coroutine that does the work
        return self._task_spawn(spec, result, _caller_site())

    def _task_spawn(self, spec: TaskSpec, result: Optional[TaskResult],
                    spawn_site: str) -> Generator:
        self._check_dead()
        if self.faults is not None:
            if self.faults.draw("cuda.launch_fail", spec.name) is not None:
                raise CudaLaunchError(
                    f"taskSpawn of {spec.name!r} failed "
                    "(injected cuda.launch_fail)"
                )
        yield self.timing.spawn_cpu_ns
        while True:
            self._check_dead()
            loc = self.table.take_free_entry()
            if loc is not None:
                break
            yield from self._reclaim_entries()
        col, row = loc
        if result is None:
            result = TaskResult(0, spec.name)
        if not result.spawn_time:
            result.spawn_time = self.engine.now
        result.spawn_site = spawn_site
        prev = (
            self._prev_unpromoted if self.protocol == "pipelined" else None
        )
        task_id = self.table.fill_cpu_entry(col, row, spec, result, prev)
        result.task_id = task_id
        self.spawn_count += 1
        # The posting store costs host time per transaction; delivery
        # (visibility latency) proceeds asynchronously and PCIe posted
        # writes keep spawn order.
        if self.protocol == "pipelined":
            self._prev_unpromoted = task_id
            yield self.table.post_cost(spec.param_bytes, transactions=1)
            # the posting store is done: the serve layer's latency
            # accountant splits queueing from PCIe post at this stamp
            result.post_time = self.engine.now
            # the landing is one timed callback, not a spawned process
            self.table.post_entry_to_gpu(col, row)
            return task_id
        elif self.protocol == "two-copies":
            yield self.table.post_cost(spec.param_bytes, transactions=2)
            copy = self.table.copy_entry_two_transactions(col, row)
        else:  # unsafe-single: the §4.2.1 hazard demonstration
            yield self.table.post_cost(spec.param_bytes, transactions=1)
            copy = self.table.copy_entry_unsafe_single(col, row)
        result.post_time = self.engine.now
        self.engine.spawn(copy, f"spawncopy.{task_id}")
        return task_id

    def _reclaim_entries(self) -> Generator:
        """All CPU-side ready fields are non-zero: finalize the pipeline
        tail, then pull completions back until an entry frees up."""
        yield from self.finalize_last()
        yield from self.table.copy_back()
        if self.table.free_queue_len == 0:
            yield self.timing.host_retry_ns

    # -- pipeline tail finalization ---------------------------------------------

    def finalize_last(self) -> Generator:
        """§4.2.2: with no new spawns arriving, the spawner promotes the
        last task itself — copy back its state and, if it is (-1, 0),
        set it to (1, 1) and push that to the GPU."""
        if self.protocol != "pipelined" or self._prev_unpromoted is None:
            return
        task_id = self._prev_unpromoted
        col, row = self.table.id_map[task_id]
        # copy back just this entry's state
        yield from self.table.bus.transfer(8, Direction.D2H)
        gpu = self.table.gpu[col][row]
        if gpu.task_id != task_id or gpu.ready > READY_SCHEDULING:
            # parameters still crossing the bus, or the GPU scheduler
            # has not resolved the entry's own pipelining pointer yet —
            # keep the pointer and retry on the next idle observation.
            return
        if gpu.protocol_state() == (READY_COPIED, 0):
            cpu = self.table.cpu[col][row]
            cpu.ready = READY_SCHEDULING
            cpu.sched = 1
            if self._prev_unpromoted == task_id:
                self._prev_unpromoted = None
            # guarded landing: the GPU scheduler can resolve a
            # successor's pipelining pointer while this promotion is
            # on the bus; the loser's write must not re-arm `sched`
            yield from self.table.push_state_to_gpu(
                col, row, expect_task_id=task_id)
        else:
            # already promoted (a successor arrived meanwhile) or done
            if self._prev_unpromoted == task_id:
                self._prev_unpromoted = None

    # -- wait / check / waitAll ----------------------------------------------

    def check(self, task_id: int) -> bool:
        """Table 1's check(): true once the host has *observed* the task
        finish (which requires a copy-back to have happened)."""
        return task_id in self.table.finished

    def wait(self, task_id: int) -> Generator:
        """Block until the given task is observed complete.

        Raises ``KeyError`` for a taskID that was never issued (waiting
        on it would otherwise spin forever), :class:`TaskError` if the
        task *failed* instead of completing (the error carries the task
        id, slot, and taskSpawn call site), and :class:`GpuDeadError`
        if the device dies while waiting — a failed task is always an
        error, never a hang."""
        if task_id not in self.table.id_map:
            raise KeyError(f"unknown taskID {task_id}")
        while not self.check(task_id):
            self._check_dead()
            yield from self.finalize_last()
            yield self.timing.wait_timeout_ns
            yield from self.table.copy_back()
        err = self.table.errors.get(task_id)
        if err is not None:
            raise err

    def task_errors(self) -> List[TaskError]:
        """Failures observed so far, in taskID order."""
        return [self.table.errors[tid] for tid in sorted(self.table.errors)]

    def wait_all(self) -> Generator:
        """Block until every spawned task is observed complete.

        Raises :class:`TaskError` (one failure) or
        :class:`TaskErrorGroup` (several) after *all* tasks have been
        observed — failures surface, they never wedge the wait."""
        while len(self.table.finished) < self.spawn_count:
            self._check_dead()
            yield from self.finalize_last()
            yield self.timing.wait_timeout_ns
            yield from self.table.copy_back()
        errs = self.task_errors()
        if errs:
            raise errs[0] if len(errs) == 1 else TaskErrorGroup(errs)

    # -- hardened spawn (retry with capped exponential backoff) ----------------

    def task_spawn_with_retry(self, spec: TaskSpec,
                              result: Optional[TaskResult] = None,
                              policy: Optional[RetryPolicy] = None):
        """Spawn, wait, and re-spawn on failure (capped exponential
        backoff); subroutine returns the taskID of the attempt that
        completed.  After ``policy.max_attempts`` failures the last
        error propagates."""
        return self._task_spawn_with_retry(spec, result, policy,
                                           _caller_site())

    def _task_spawn_with_retry(self, spec: TaskSpec,
                               result: Optional[TaskResult],
                               policy: Optional[RetryPolicy],
                               spawn_site: str) -> Generator:
        policy = policy or RetryPolicy()
        attempt = 0
        while True:
            try:
                res = result if result is not None else TaskResult(0, spec.name)
                task_id = yield from self._task_spawn(spec, res, spawn_site)
                yield from self.wait(task_id)
                return task_id
            except (TaskError, CudaLaunchError):
                attempt += 1
                if attempt >= policy.max_attempts:
                    raise
                yield policy.backoff_ns(attempt - 1)
