"""Named-barrier pool for sub-threadblock synchronization (§5.2).

PTX exposes 16 named barriers (``bar.sync <id>``) per threadblock.
Pagoda assigns one ID to each task threadblock that declared the sync
flag, so only that block's warps synchronize — no cross-task
interference.  IDs are recycled when the block finishes; the pool size
of 16 is a hard PTX limit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cuda.barrier import WarpBarrier

PTX_NAMED_BARRIERS = 16


class NamedBarrierPool:
    """Allocates PTX barrier IDs to threadblocks inside one MTB."""

    def __init__(self, count: int = PTX_NAMED_BARRIERS) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        self.count = count
        self._free: List[int] = list(range(count))
        self._barriers: Dict[int, WarpBarrier] = {}

    def acquire(self, parties: int) -> Optional[int]:
        """Take an ID and bind a ``parties``-warp barrier to it.

        Returns ``None`` when all 16 IDs are in use (the scheduler warp
        must retry after blocks retire).
        """
        if not self._free:
            return None
        bar_id = self._free.pop()
        self._barriers[bar_id] = WarpBarrier(parties, f"bar{bar_id}")
        return bar_id

    def barrier(self, bar_id: int) -> WarpBarrier:
        """The WarpBarrier bound to an acquired ID."""
        try:
            return self._barriers[bar_id]
        except KeyError:
            raise ValueError(f"barrier id {bar_id} is not acquired") from None

    def release(self, bar_id: int) -> None:
        """Recycle an ID once its threadblock has finished.

        Refuses while warps are still parked at the barrier — and the
        refusal leaves the ID *bound*, so the caller can retry after
        the stragglers arrive (popping first would leak the ID: neither
        free nor acquired).
        """
        bar = self._barriers.get(bar_id)
        if bar is None:
            raise ValueError(f"barrier id {bar_id} is not acquired")
        if bar.waiting:
            raise RuntimeError(
                f"releasing barrier {bar_id} with {bar.waiting} warps waiting"
            )
        del self._barriers[bar_id]
        self._free.append(bar_id)

    def force_release(self, bar_id: int) -> None:
        """Reclaim an ID whose threadblock was killed mid-flight.

        Unlike :meth:`release`, tolerates warps still parked at the
        barrier: the kill path interrupts them too, so the pending
        generation is discarded rather than completed.  Idempotent.
        """
        if self._barriers.pop(bar_id, None) is not None:
            self._free.append(bar_id)

    @property
    def available(self) -> int:
        """Barrier IDs currently free."""
        return len(self._free)

    @property
    def in_use(self) -> int:
        """Barrier IDs currently bound to threadblocks."""
        return self.count - len(self._free)
