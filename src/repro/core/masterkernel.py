"""The MasterKernel: Pagoda's resource-virtualizing daemon (§4.1).

The MasterKernel launches once and runs forever, acquiring **all**
GPU resources: on the Titan X it places two 32-warp threadblocks
(MTBs) on each of the 24 SMMs — 48 MTBs, each with a statically
reserved 32 KB shared-memory arena and registers capped at 32 per
thread, which is exactly 100 % occupancy (asserted in the tests).

Inside each MTB, warp 0 is the *scheduler warp* running Algorithm 1
over its TaskTable column, and warps 1–31 are *executor warps* that
sleep until their WarpTable slot's exec flag is set.  The scheduler's
per-warp placement function is Algorithm 2's ``pSched``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

import numpy as np

from repro.core.buddy import BuddyAllocator
from repro.core.errors import TaskError, WatchdogKill
from repro.core.named_barriers import NamedBarrierPool
from repro.core.tasktable import (
    READY_COPIED,
    READY_FREE,
    READY_SCHEDULING,
    TaskEntry,
    TaskTable,
)
from repro.core.warptable import WarpTable
from repro.device_api import BlockContext
from repro.gpu.device import Gpu
from repro.gpu.phases import BlockSync, Phase
from repro.gpu.smm import Smm
from repro.sim import Engine, Event, TimeWeighted
from repro.tasks import TaskSpec

#: Shared memory each MTB statically reserves for task use on the
#: Titan X (§4.1: two 32 KB arenas, the remaining 32 KB of the SMM's
#: 96 KB holds the scheduling data structures).
MTB_ARENA_BYTES = 32 * 1024
#: Warps per MTB (one 1024-thread threadblock).
MTB_WARPS = 32
#: MTBs per SMM (2 x 32 warps fill the 64 warp slots).
MTBS_PER_SMM = 2
#: Register budget: 32 regs/thread via -maxrregcount (§4.1); at the
#: 256-register warp allocation unit this is 1024 regs/warp.
MTB_REGISTERS = MTB_WARPS * 32 * 32


def mtb_arena_bytes(spec) -> int:
    """Per-MTB task arena for an arbitrary GPU: the largest power of
    two that still leaves roughly a third of the SMM's shared memory
    for the WarpTable and scheduling counters.

    Titan X (96 KB): 32 KB per MTB, the paper's layout.  Tesla K40
    (48 KB): 16 KB per MTB.
    """
    budget = spec.shared_mem_per_smm * 2 // 3 // MTBS_PER_SMM
    arena = 512  # buddy granule
    while arena * 2 <= budget:
        arena *= 2
    return arena


@dataclass(slots=True)
class ExecState:
    """Per-task execution bookkeeping attached to a TaskTable entry
    (the paper's ctr[]/doneCtr[] shared-memory counters).

    ``block_sm_offset`` / ``block_bar_id`` double as the task's live
    resource ledger: entries are recorded the instant a block's arena
    offset or barrier ID is acquired (before any further scheduler
    yield) and popped when the block releases them, so a mid-flight
    kill can free exactly what the task still holds.
    """

    done_ctr: int
    block_warps_left: Dict[int, int]
    block_sm_offset: Dict[int, Optional[int]] = field(default_factory=dict)
    block_bar_id: Dict[int, int] = field(default_factory=dict)
    started: bool = False
    #: set when the runtime killed the task (watchdog deadline,
    #: brown-out, kernel exception); placement loops abandon the task
    #: at their next wake instead of re-acquiring resources for it.
    killed: bool = False


class Mtb:
    """One MasterKernel threadblock: scheduler warp + 31 executors."""

    def __init__(self, engine: Engine, gpu: Gpu, smm: Smm, table: TaskTable,
                 column: int, functional: bool = False,
                 serial_psched: bool = False,
                 arena_bytes: int = MTB_ARENA_BYTES,
                 deferred_scheduling: bool = False,
                 trace=None, watchdog_deadline_ns: Optional[float] = None,
                 faults=None, obs=None, dram=None,
                 partition: Optional[str] = None) -> None:
        self.engine = engine
        self.gpu = gpu
        self.smm = smm
        self.table = table
        self.column = column
        self.timing = gpu.timing
        self.functional = functional
        #: DRAM bandwidth pool the executors charge memory phases to.
        #: The shared device pool by default; a compute partition hands
        #: each MasterKernel its own slice so one partition's memory
        #: traffic cannot perturb a sibling's timing.
        self.dram_pool = dram if dram is not None else gpu.dram
        #: owning partition name (``None`` outside partitioned mode);
        #: only used to label partition-scoped obs series.
        self.partition = partition
        #: ablation switch: place one warp per pSched pass instead of
        #: letting the scheduler warp's 32 threads search in parallel
        #: (what Algorithm 2 exists to avoid).
        self.serial_psched = serial_psched
        #: extension beyond Algorithm 1: when a task cannot start
        #: placement right now (no free executor warp / barrier ID /
        #: arena block), requeue it instead of blocking the scheduler
        #: warp — keeps promotions flowing and lets priorities reorder
        #: a deep backlog.
        self.deferred_scheduling = deferred_scheduling
        #: optional Recorder for scheduler-decision tracing
        self.trace = trace
        #: tasks still occupying GPU state this long after their
        #: scheduling started are presumed wedged and reclaimed (None
        #: disables the watchdog).
        self.watchdog_deadline_ns = watchdog_deadline_ns
        #: optional :class:`repro.faults.FaultInjector`; executor warps
        #: draw ``gpu.slow_warp`` / ``gpu.stuck_warp`` / ``task.*``.
        self.faults = faults
        #: optional :class:`repro.obs.Obs`.  Hooks: scheduler-decision
        #: counters + instant events (``schedule``/``promote``/``defer``
        #: /``task_done``/``task_fail``) and the per-SMM busy-executor
        #: utilization timeline (both MTBs of one SMM share the track).
        self.obs = obs
        if obs is not None:
            self._obs_busy = obs.timeline(f"gpu.smm{smm.index}.busy_warps")
            self._obs_sched = obs.counter("sched.decisions.schedule")
            self._obs_promote = obs.counter("sched.decisions.promote")
            self._obs_defer = obs.counter("sched.decisions.defer")
            self._obs_done = obs.counter("sched.tasks_done")
            self._obs_fail = obs.counter("sched.tasks_failed")
            self._obs_part_busy = (
                obs.timeline(f"gpu.partition.{partition}.busy_warps")
                if partition is not None else None
            )
        else:
            self._obs_busy = None
            self._obs_part_busy = None
        self.arena_bytes = arena_bytes
        self.warptable = WarpTable()
        self.buddy = BuddyAllocator(arena_bytes)
        self.barriers = NamedBarrierPool()
        self.arena = (
            np.zeros(arena_bytes, dtype=np.uint8) if functional else None
        )
        #: executor warps currently running task work (useful occupancy).
        self.busy_warps = TimeWeighted()
        self.tasks_executed = 0
        #: tasks killed instead of completing (watchdog, brown-out,
        #: kernel exception, injected fault).
        self.tasks_failed = 0
        self.watchdog_kills: List[WatchdogKill] = []
        self._procs = [engine.spawn(self._scheduler(), f"sched.mtb{column}",
                                    daemon=True)]
        #: executor warps are spawned lazily on the first dispatch of
        #: their slot (bit i set <=> slot i's process exists).  Idle
        #: warps in the real MasterKernel spin on their exec flag
        #: without observable effect, so a process that has never been
        #: handed work need not exist in the simulation — most
        #: workloads touch a handful of the 31 slots per MTB.
        self._exec_spawned = 0
        #: slot index -> live executor process, so a kill can interrupt
        #: exactly the warps running the dead task.
        self._exec_procs: Dict[int, object] = {}

    def shutdown(self) -> None:
        """Interrupt this component's daemon processes."""
        for proc in self._procs:
            proc.interrupt()

    # -- scheduler warp (Algorithm 1, lines 2-28) ---------------------------

    def _scheduler(self) -> Generator:
        table = self.table
        column = self.column
        signal = table.column_signals[column]
        col = table.gpu[column]
        while True:
            # Arm before scanning so changes made while we schedule are
            # not lost; the scan itself costs one warp-parallel poll.
            wakeup = signal.wait()
            yield self.timing.poll_iteration_ns
            # Drain the dirty-row queue in ascending row order — the
            # same visit order as the warp-parallel scan over the full
            # column, skipping the rows whose protocol words did not
            # change since the last wake.
            schedulable = []
            pass_mask = table.take_dirty_rows(column)
            while pass_mask:
                low = pass_mask & -pass_mask
                pass_mask ^= low
                row = low.bit_length() - 1
                entry = col[row]
                if entry.ready > READY_SCHEDULING:
                    self._handle_promotion(row, entry)
                    # a promotion may have made a *later* row of this
                    # column schedulable; the linear scan would still
                    # reach it this pass
                    pass_mask |= table.take_dirty_rows_above(column, row)
                if entry.sched:
                    entry.sched = 0
                    schedulable.append(row)
            if schedulable and len(schedulable) > 1:
                # priority extension: the warp-parallel scan has every
                # schedulable row in registers anyway; order by task
                # priority (stable, so priority 0 keeps row order —
                # the paper's behaviour)
                schedulable.sort(
                    key=lambda r: -(col[r].spec.priority
                                    if col[r].spec else 0)
                )
            for row in schedulable:
                entry = col[row]
                if self.deferred_scheduling and not self._can_start(entry):
                    entry.sched = 1  # requeue; retry on the next wake
                    self.table.mark_row_dirty(self.column, row)
                    if self.trace is not None:
                        self.trace.sample("defer", self.engine.now,
                                          entry.task_id)
                    if self.obs is not None:
                        self._obs_defer.inc()
                        self.obs.instant(f"sched.mtb{self.column}", "defer",
                                         self.engine.now,
                                         task_id=entry.task_id, row=row)
                    continue
                yield from self._schedule_task(row, entry)
            yield wakeup

    def _can_start(self, entry: TaskEntry) -> bool:
        """Deferred-scheduling probe: could placement begin right now?
        Conservative — only the first block's immediate needs."""
        task = entry.spec
        if task is None:
            return True  # let _schedule_task raise the corruption error
        # a whole first threadblock must be placeable, or pSched would
        # block the scheduler warp mid-placement
        if self.warptable.free_count < task.warps_per_block:
            return False
        if task.needs_sync and self.barriers.available == 0:
            return False
        if task.shared_mem_bytes:
            self.buddy.flush_deferred()
            probe = self.buddy.alloc(task.shared_mem_bytes)
            if probe is None:
                return False
            self.buddy.free(probe)
        return True

    def _handle_promotion(self, row: int, entry: TaskEntry) -> None:
        """Resolve a ready>1 pipelining pointer (Algorithm 1 lines 5-13)."""
        prev_id = entry.ready
        pcol, prow = self.table.id_map[prev_id]
        prev = self.table.gpu[pcol][prow]
        if prev.task_id == prev_id and prev.ready == READY_COPIED:
            prev.ready = READY_SCHEDULING
            prev.sched = 1
            if self.trace is not None:
                self.trace.sample("promote", self.engine.now, prev_id)
            if self.obs is not None:
                self._obs_promote.inc()
                self.obs.instant(f"sched.mtb{self.column}", "promote",
                                 self.engine.now, task_id=prev_id)
            self.table.mark_row_dirty(pcol, prow)
            self.table.column_signals[pcol].pulse()
        elif prev.task_id == prev_id and prev.ready > READY_SCHEDULING:
            # predecessor's own pointer not yet resolved by its
            # scheduler; keep this row queued and retry when the
            # predecessor reaches ready == -1.
            self.table.mark_row_dirty(self.column, row)
            self.table.register_promotion_waiter(pcol, prow, self.column)
            return
        elif (prev.task_id != prev_id
              and prev_id not in self.table.gpu_finished):
            # the slot holds some other task and the predecessor never
            # finished: its posted write has not landed yet (a delayed /
            # reordered mapped write), so OUR pointer overtook it.
            # Defer until the predecessor's entry lands.
            self.table.mark_row_dirty(self.column, row)
            self.table.register_promotion_waiter(pcol, prow, self.column)
            return
        # else: predecessor already promoted (host finalization) or
        # finished — nothing to promote.
        entry.ready = READY_COPIED
        self.table.notify_ready_copied(self.column, row)

    def _schedule_task(self, row: int, entry: TaskEntry) -> Generator:
        task = entry.spec
        if task is None:
            # Only reachable under the unsafe single-transaction spawn
            # (§4.2.1): the ready flag overtook the parameters, so the
            # scheduler is holding a garbage kernel pointer.
            raise RuntimeError(
                f"TaskTable corruption at column {self.column} row "
                f"{row}: sched flag set before parameters arrived "
                "(the unordered-PCIe hazard of §4.2.1)"
            )
        if task.warps_per_block > len(self.warptable):
            raise ValueError(
                f"task {task.name!r}: a threadblock of "
                f"{task.warps_per_block} warps exceeds the MTB's "
                f"{len(self.warptable)} executor warps"
            )
        if entry.result is not None:
            entry.result.sched_time = self.engine.now
        if self.trace is not None:
            self.trace.sample("schedule", self.engine.now, entry.task_id)
        if self.obs is not None:
            self._obs_sched.inc()
            self.obs.instant(f"sched.mtb{self.column}", "schedule",
                             self.engine.now, task_id=entry.task_id,
                             task=task.name, row=row)
        wpb = task.warps_per_block
        state = ExecState(
            done_ctr=task.total_warps,
            block_warps_left={b: wpb for b in range(task.num_blocks)},
        )
        entry.exec_state = state
        if self.watchdog_deadline_ns is not None:
            # one-shot deadline armed per task at schedule time; the
            # callback is generation-guarded (taskID + ready state) so
            # a completed task's stale callback is a no-op
            tid = entry.task_id
            self.engine.call_after(
                self.watchdog_deadline_ns,
                lambda: self._watchdog_check(row, tid),
            )
        if task.shared_mem_bytes > 0 or task.needs_sync:
            # per-threadblock placement (Algorithm 1 lines 17-26)
            for block in range(task.num_blocks):
                bar_id = -1
                if task.needs_sync:
                    while True:
                        # arm BEFORE trying: a warp retiring (and
                        # releasing its barrier ID) during this
                        # iteration must not be a lost wakeup
                        retry = self.warptable.free_signal.wait()
                        got = self.barriers.acquire(wpb)
                        if got is not None:
                            bar_id = got
                            break
                        yield retry
                        if state.killed:
                            return
                    # record before yielding: a kill during the
                    # management window must see (and free) this ID
                    state.block_bar_id[block] = bar_id
                    yield self.timing.barrier_mgmt_ns
                else:
                    state.block_bar_id[block] = bar_id
                offset: Optional[int] = None
                if task.shared_mem_bytes > 0:
                    while True:
                        # arm BEFORE the alloc attempt: the last warp
                        # can mark-and-retire inside the smem_alloc_ns
                        # window, and its pulse must still wake us
                        retry = self.warptable.free_signal.wait()
                        self.buddy.flush_deferred()  # line 22
                        offset = self.buddy.alloc(task.shared_mem_bytes)
                        if offset is not None:
                            # ledger update precedes the alloc-cost
                            # yield so a mid-window kill frees it
                            state.block_sm_offset[block] = offset
                        yield self.timing.smem_alloc_ns
                        if offset is not None:
                            break
                        yield retry
                        if state.killed:
                            return
                else:
                    state.block_sm_offset[block] = offset
                if state.killed:
                    return
                yield from self._psched(
                    row, base_warp=block * wpb, count=wpb,
                    sm_index=offset or 0, bar_id=bar_id, wpb=wpb,
                    state=state,
                )
                if state.killed:
                    return
        else:
            # schedule every warp of every block in one go (line 28)
            for block in range(task.num_blocks):
                state.block_sm_offset[block] = None
                state.block_bar_id[block] = -1
            yield from self._psched(
                row, base_warp=0, count=task.total_warps,
                sm_index=0, bar_id=-1, wpb=wpb, state=state,
            )

    def _psched(self, row: int, base_warp: int, count: int, sm_index: int,
                bar_id: int, wpb: int,
                state: Optional[ExecState] = None) -> Generator:
        """Algorithm 2: the scheduler warp's threads claim free executor
        warps in parallel; loop until ``count`` warps are placed."""
        wt = self.warptable
        placed = 0
        while placed < count:
            # arm before scanning so a retire during the pass is not a
            # lost wakeup
            retry = wt.free_signal.wait()
            yield self.timing.psched_pass_ns
            if state is not None and state.killed:
                # the task died during the scan window; dispatching its
                # remaining warps would hand executors a freed entry
                return
            take = min(wt.free_count, count - placed)
            if self.serial_psched:
                take = min(take, 1)  # ablation: one placement per pass
            dispatched = []
            for _ in range(take):
                # lowest-set-bit pick: the same slot the seed's
                # ascending free-list scan chose, without building it
                slot = wt.lowest_free()
                warp_id = base_warp + placed
                wt.dispatch(
                    slot, warp_id=warp_id, e_num=row, sm_index=sm_index,
                    bar_id=bar_id, block_id=warp_id // wpb,
                )
                self.busy_warps.add(self.engine.now, 1)
                if self._obs_busy is not None:
                    self._obs_busy.add(self.engine.now, 1)
                if self._obs_part_busy is not None:
                    self._obs_part_busy.add(self.engine.now, 1)
                placed += 1
                dispatched.append(slot)
            # wake only the dispatched executors, after the whole pass
            # (Algorithm 2 sets exec flags, then releases the warps)
            for slot in dispatched:
                bit = 1 << slot
                if not self._exec_spawned & bit:
                    self._exec_spawned |= bit
                    proc = self.engine.spawn(
                        self._executor(slot),
                        f"exec.mtb{self.column}.{slot}",
                        daemon=True,
                    )
                    self._procs.append(proc)
                    self._exec_procs[slot] = proc
                else:
                    wt.notify_work(slot)
            if placed < count:
                yield retry
                if state is not None and state.killed:
                    return

    # -- executor warps (Algorithm 1, lines 29-43) ----------------------------

    def _executor(self, slot_index: int) -> Generator:
        wt = self.warptable
        slot = wt.slots[slot_index]
        col = self.table.gpu[self.column]
        execute_phase = self.smm.execute_phase
        dram = self.dram_pool
        busy_warps = self.busy_warps
        obs_busy = self._obs_busy
        obs_part = self._obs_part_busy
        engine = self.engine
        while True:
            if not slot.exec_flag:
                yield wt.arm_work(slot_index)
                continue
            entry = col[slot.e_num]
            task: TaskSpec = entry.spec
            state: ExecState = entry.exec_state
            if not state.started:
                state.started = True
                if entry.result is not None:
                    entry.result.start_time = engine.now
            local_warp = slot.warp_id - slot.block_id * task.warps_per_block
            fail_reason: Optional[str] = None
            faults = self.faults
            if faults is not None:
                site = task.name
                slow = faults.draw("gpu.slow_warp", site)
                if slow is not None:
                    # a down-clocked warp: the whole warp body runs
                    # late by the injected stall
                    yield slow.magnitude_ns
                if (faults.draw("gpu.stuck_warp", site) is not None
                        or faults.draw("task.no_yield", site) is not None):
                    # wedged warp / kernel that never yields: nothing
                    # but the watchdog's interrupt reclaims this slot
                    yield Event()
                    continue  # pragma: no cover - only via force-wake
                spec = (faults.draw("task.poison", site)
                        or faults.draw("task.raise", site))
                if spec is not None:
                    fail_reason = f"injected fault {spec.kind}"
            if fail_reason is None:
                phases = task.warp_phases(slot.block_id, local_warp)
                while True:
                    try:
                        item = next(phases)
                    except StopIteration:
                        break
                    except Exception as exc:
                        # a kernel coroutine raised: convert to a
                        # structured TaskError carried in the TaskTable
                        # row instead of letting the exception escape
                        # into the engine loop
                        fail_reason = (f"kernel exception: "
                                       f"{type(exc).__name__}: {exc}")
                        break
                    if isinstance(item, Phase):
                        yield from execute_phase(item, dram)
                    elif isinstance(item, BlockSync):
                        if slot.bar_id < 0:
                            # a programming error in the *spawn*, not a
                            # kernel failure: diagnose loudly (tests
                            # rely on this propagating)
                            raise RuntimeError(
                                f"task {task.name!r} called syncBlock() "
                                "but was spawned without the sync flag "
                                "(Table 1: taskSpawn's sync flag "
                                "allocates the named barrier)"
                            )
                        yield self.timing.named_barrier_ns
                        yield self.barriers.barrier(slot.bar_id).arrive()
                    else:
                        raise TypeError(f"kernel yielded {item!r}")
            if fail_reason is not None:
                # this warp kills the whole task; its own slot is
                # excluded from the reclaim sweep (a generator cannot
                # interrupt itself) and retired on the normal path below
                self.fail_entry(slot.e_num, entry, fail_reason,
                                skip_slot=slot_index)
                busy_warps.add(engine.now, -1)
                if obs_busy is not None:
                    obs_busy.add(engine.now, -1)
                if obs_part is not None:
                    obs_part.add(engine.now, -1)
                wt.retire(slot_index)
                continue
            self._warp_epilogue(slot.e_num, slot.block_id,
                                entry, task, state)
            busy_warps.add(engine.now, -1)
            if obs_busy is not None:
                obs_busy.add(engine.now, -1)
            if obs_part is not None:
                obs_part.add(engine.now, -1)
            wt.retire(slot_index)
            if self.deferred_scheduling:
                # freed resources may unblock a deferred row
                self.table.column_signals[self.column].pulse()

    def _warp_epilogue(self, row: int, block_id: int, entry: TaskEntry,
                       task: TaskSpec, state: ExecState) -> None:
        """Lines 34-42: last warp of the block releases block resources,
        last warp of the task frees the TaskTable entry.  Pure counter
        updates — takes no simulated time."""
        state.block_warps_left[block_id] -= 1
        if state.block_warps_left[block_id] == 0:
            if self.functional and task.func is not None:
                self._run_block_functional(task, block_id, state)
            # pop (not get): the ledger must only list resources the
            # task still holds, so a later kill frees nothing twice
            offset = state.block_sm_offset.pop(block_id, None)
            if offset is not None:
                self.buddy.mark_for_dealloc(offset)  # line 37
            bar_id = state.block_bar_id.pop(block_id, -1)
            if bar_id >= 0:
                self.barriers.release(bar_id)  # line 39
        state.done_ctr -= 1  # line 41's atomicDec
        if state.done_ctr == 0:
            if entry.result is not None:
                entry.result.end_time = self.engine.now
            self.tasks_executed += 1
            if self.trace is not None:
                self.trace.sample("task_done", self.engine.now,
                                  entry.task_id)
            if self.obs is not None:
                self._obs_done.inc()
                self.obs.instant(f"sched.mtb{self.column}", "task_done",
                                 self.engine.now, task_id=entry.task_id,
                                 task=task.name)
            self.table.gpu_complete(self.column, row)  # line 42

    # -- hardening: kill / watchdog / brown-out --------------------------------

    def fail_entry(self, row: int, entry: TaskEntry, reason: str,
                   skip_slot: Optional[int] = None) -> Optional[TaskError]:
        """Kill a task mid-flight and free everything it holds.

        Reclaims the executor warps still running (or wedged on) the
        task, returns its arena blocks and barrier IDs from the
        ExecState ledger, and completes the TaskTable entry with a
        :class:`TaskError` so ``wait()`` raises instead of hanging.
        ``skip_slot`` names the calling executor's own slot (it retires
        itself after this returns).
        """
        state: Optional[ExecState] = entry.exec_state
        if state is not None and state.killed:
            return None  # already being torn down
        task = entry.spec
        err = TaskError(
            entry.task_id,
            task.name if task is not None else "?",
            reason,
            spawn_site=getattr(entry.result, "spawn_site", "") or "",
            column=self.column, row=row, when_ns=self.engine.now,
        )
        if state is not None:
            state.killed = True
        wt = self.warptable
        for idx, slot in enumerate(wt.slots):
            if not slot.exec_flag or slot.e_num != row or idx == skip_slot:
                continue
            proc = self._exec_procs.pop(idx, None)
            if proc is not None:
                proc.interrupt()
                self._exec_spawned &= ~(1 << idx)
            self.busy_warps.add(self.engine.now, -1)
            if self._obs_busy is not None:
                self._obs_busy.add(self.engine.now, -1)
            if self._obs_part_busy is not None:
                self._obs_part_busy.add(self.engine.now, -1)
            wt.retire(idx)
        if state is not None:
            for offset in state.block_sm_offset.values():
                if offset is not None:
                    self.buddy.mark_for_dealloc(offset)
            state.block_sm_offset.clear()
            for bar_id in state.block_bar_id.values():
                if bar_id >= 0:
                    self.barriers.force_release(bar_id)
            state.block_bar_id.clear()
        if entry.result is not None:
            entry.result.end_time = self.engine.now
        self.tasks_failed += 1
        if self.trace is not None:
            self.trace.sample("task_fail", self.engine.now, entry.task_id)
        if self.obs is not None:
            self._obs_fail.inc()
            self.obs.instant(f"sched.mtb{self.column}", "task_fail",
                             self.engine.now, task_id=entry.task_id,
                             reason=reason)
        self.table.gpu_complete(self.column, row, error=err)
        # freed warps / arena / barriers may unblock queued rows
        self.table.column_signals[self.column].pulse()
        return err

    def _watchdog_check(self, row: int, task_id: int) -> None:
        """One-shot deadline callback armed by ``_schedule_task``.

        Generation-guarded: if the slot finished (ready back to 0) or
        was reused by a later task (different taskID), this is a stale
        timer and does nothing.
        """
        entry = self.table.gpu[self.column][row]
        if entry.task_id != task_id or entry.ready == READY_FREE:
            return
        state: Optional[ExecState] = entry.exec_state
        if state is None or state.killed:
            return
        deadline = self.watchdog_deadline_ns or 0.0
        err = self.fail_entry(
            row, entry,
            f"watchdog: task exceeded its {deadline:.0f}ns deadline",
        )
        if err is not None:
            self.watchdog_kills.append(WatchdogKill(
                when_ns=self.engine.now, task_id=task_id, name=err.name,
                column=self.column, row=row, deadline_ns=deadline,
            ))

    def brownout(self, reason: str = "gpu.brownout") -> int:
        """An SMM brown-out evicts every task resident on this MTB.

        Queued-but-unscheduled entries survive (they hold no SMM
        state); each resident task dies with a :class:`TaskError` and
        its resources return to the pools, so the MTB keeps scheduling
        afterwards.  Returns the number of tasks killed.
        """
        col = self.table.gpu[self.column]
        killed = 0
        for row in range(self.table.rows):
            entry = col[row]
            if entry.ready == READY_FREE or entry.exec_state is None:
                continue
            if entry.exec_state.killed:
                continue
            if self.fail_entry(row, entry, reason) is not None:
                killed += 1
        return killed

    def _run_block_functional(self, task: TaskSpec, block_id: int,
                              state: ExecState) -> None:
        """Run the block's functional kernel against the *real* buddy
        arena view, so allocator bugs would corrupt results."""
        shared = None
        offset = state.block_sm_offset.get(block_id)
        if offset is not None and task.shared_mem_bytes:
            shared = self.arena[offset:offset + task.shared_mem_bytes]
            shared[:] = 0
        task.func(BlockContext(task, block_id, shared))


class MasterKernel:
    """All MTBs of one (sub)device plus their resource acquisition.

    The classic daemon owns every SMM — 48 MTBs on the Titan X.  A
    compute partition constructs one MasterKernel per partition with
    ``smm_indices`` naming its SMM subset; columns keep their global
    numbering (``smm_index * MTBS_PER_SMM + k``) so every partition
    shares one full-width TaskTable geometry and the elastic controller
    can move whole SMMs between sibling MasterKernels at runtime via
    :meth:`release_smm` / :meth:`adopt_smm`.
    """

    def __init__(self, engine: Engine, gpu: Gpu, table: TaskTable,
                 functional: bool = False,
                 serial_psched: bool = False,
                 deferred_scheduling: bool = False,
                 trace=None, watchdog_deadline_ns: Optional[float] = None,
                 faults=None, obs=None,
                 smm_indices: Optional[List[int]] = None,
                 dram=None, partition: Optional[str] = None) -> None:
        expected_columns = gpu.spec.num_smms * MTBS_PER_SMM
        if table.num_columns != expected_columns:
            raise ValueError(
                f"TaskTable has {table.num_columns} columns but the GPU "
                f"hosts {expected_columns} MTBs"
            )
        self.engine = engine
        self.gpu = gpu
        self.table = table
        self.arena_bytes = mtb_arena_bytes(gpu.spec)
        self._registers = min(MTB_REGISTERS,
                              gpu.spec.registers_per_smm // MTBS_PER_SMM)
        #: partition name (``None`` for the classic whole-device daemon).
        self.partition = partition
        #: DRAM pool override handed to every MTB (``None`` = device pool).
        self.dram = dram
        self._mtb_opts = dict(
            functional=functional, serial_psched=serial_psched,
            deferred_scheduling=deferred_scheduling, trace=trace,
            watchdog_deadline_ns=watchdog_deadline_ns,
            faults=faults, obs=obs,
        )
        #: SMM indices this MasterKernel currently owns (sorted).
        self.smm_indices: List[int] = []
        #: global column -> live Mtb, for columns this daemon owns.
        self.by_column: Dict[int, Mtb] = {}
        self.mtbs: List[Mtb] = []
        #: Mtbs shut down by :meth:`release_smm`; kept so cumulative
        #: counters and busy-warp integrals survive a shrink.
        self.retired: List[Mtb] = []
        indices = (range(gpu.spec.num_smms) if smm_indices is None
                   else sorted(smm_indices))
        for index in indices:
            self.adopt_smm(index)

    def adopt_smm(self, smm_index: int) -> List[int]:
        """Reserve both MTB slots on one SMM and start its schedulers.

        Used at construction for every owned SMM, and by the elastic
        controller when a partition grows.  Returns the global columns
        now owned.  Raises if the SMM's columns are already owned or
        the SMM cannot host the reservations (still reserved by a
        sibling that has not released them yet).
        """
        smm = self.gpu.smms[smm_index]
        columns: List[int] = []
        for k in range(MTBS_PER_SMM):
            column = smm_index * MTBS_PER_SMM + k
            if column in self.by_column:
                raise ValueError(f"column {column} already owned")
            smm.reserve_block(
                warps=MTB_WARPS, registers=self._registers,
                shared_mem=self.arena_bytes,
            )
            mtb = Mtb(self.engine, self.gpu, smm, self.table, column,
                      arena_bytes=self.arena_bytes, dram=self.dram,
                      partition=self.partition, **self._mtb_opts)
            self.mtbs.append(mtb)
            self.by_column[column] = mtb
            columns.append(column)
        if smm_index not in self.smm_indices:
            self.smm_indices.append(smm_index)
            self.smm_indices.sort()
        return columns

    def release_smm(self, smm_index: int) -> List[int]:
        """Stop both MTBs on one SMM and release their reservations.

        The caller must have drained the columns first (close them in
        the TaskTable and wait for residency to reach zero); resident
        tasks would otherwise be orphaned mid-flight.  Returns the
        global columns given up.
        """
        columns: List[int] = []
        for k in range(MTBS_PER_SMM):
            column = smm_index * MTBS_PER_SMM + k
            mtb = self.by_column.pop(column, None)
            if mtb is None:
                raise ValueError(f"column {column} not owned")
            mtb.shutdown()
            mtb.smm.release_block(
                warps=MTB_WARPS, registers=self._registers,
                shared_mem=self.arena_bytes,
            )
            self.mtbs.remove(mtb)
            self.retired.append(mtb)
            columns.append(column)
        self.smm_indices.remove(smm_index)
        return columns

    def shutdown(self) -> None:
        """Tear the daemon down at the end of an experiment."""
        for mtb in self.mtbs:
            mtb.shutdown()

    def tasks_executed(self) -> int:
        """Total tasks completed across all MTBs (retired included)."""
        return sum(mtb.tasks_executed for mtb in self.mtbs) + \
            sum(mtb.tasks_executed for mtb in self.retired)

    def tasks_failed(self) -> int:
        """Total tasks killed (watchdog, brown-out, kernel exception)."""
        return sum(mtb.tasks_failed for mtb in self.mtbs) + \
            sum(mtb.tasks_failed for mtb in self.retired)

    def watchdog_kills(self) -> List[WatchdogKill]:
        """Every watchdog reclamation, in kill-time order."""
        kills = [k for mtb in self.mtbs for k in mtb.watchdog_kills]
        kills += [k for mtb in self.retired for k in mtb.watchdog_kills]
        kills.sort(key=lambda k: k.when_ns)
        return kills

    def brownout(self, column: int, reason: str = "gpu.brownout") -> int:
        """Brown-out one MTB's SMM residency (see :meth:`Mtb.brownout`)."""
        return self.by_column[column].brownout(reason)

    def busy_integral(self, end: float) -> float:
        """Accumulated busy-executor warp·ns across live and retired
        MTBs — the numerator of a utilization window."""
        total = sum(m.busy_warps.integral(end) for m in self.mtbs)
        total += sum(m.busy_warps.integral(end) for m in self.retired)
        return total

    def useful_occupancy(self, end: Optional[float] = None) -> float:
        """Time-averaged fraction of executor warps running task work
        (over the currently owned MTBs)."""
        end = self.engine.now if end is None else end
        busy = sum(m.busy_warps.average(end) for m in self.mtbs)
        capacity = len(self.mtbs) * WarpTable.EXECUTOR_WARPS
        return busy / capacity
