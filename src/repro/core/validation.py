"""Runtime invariant checking for a live Pagoda session.

These are the conservation laws that make the schedule trustworthy;
stress tests call :func:`check_session` at arbitrary points mid-run
and after completion.  A violation raises :class:`InvariantViolation`
with a precise description.
"""

from __future__ import annotations

from repro.core.runtime import PagodaSession
from repro.core.tasktable import READY_FREE


class InvariantViolation(AssertionError):
    """A Pagoda conservation law was broken."""


def check_mtb(mtb, deep: bool = False) -> None:
    """Per-MTB invariants: WarpTable/buddy/barrier consistency.

    The default check reads only the maintained counters (free-mask
    popcounts, occupancy tracker, barrier pool arithmetic) so it can
    run inside timed benchmarks without distorting them; ``deep=True``
    additionally walks every WarpTable slot and the full buddy tree.
    """
    busy = mtb.warptable.busy_count
    if not 0 <= busy <= len(mtb.warptable):
        raise InvariantViolation(
            f"MTB {mtb.column}: busy_count {busy} out of range"
        )
    if abs(mtb.busy_warps.current - busy) > 0:
        raise InvariantViolation(
            f"MTB {mtb.column}: occupancy tracker says "
            f"{mtb.busy_warps.current} busy warps, WarpTable says {busy}"
        )
    if deep:
        # every executing slot must reference a live TaskTable entry
        for i, slot in enumerate(mtb.warptable.slots):
            if slot.exec_flag:
                entry = mtb.table.gpu[mtb.column][slot.e_num]
                if entry.spec is None:
                    raise InvariantViolation(
                        f"MTB {mtb.column} slot {i}: executing a task with "
                        "no parameters"
                    )
                if entry.ready == READY_FREE:
                    raise InvariantViolation(
                        f"MTB {mtb.column} slot {i}: executing warp of an "
                        "entry already marked free"
                    )
                if slot.block_id >= entry.spec.num_blocks:
                    raise InvariantViolation(
                        f"MTB {mtb.column} slot {i}: block_id "
                        f"{slot.block_id} out of range"
                    )
        # the buddy tree's structural invariants (full-tree walk)
        try:
            mtb.buddy.check_invariants()
        except AssertionError as exc:
            raise InvariantViolation(
                f"MTB {mtb.column}: buddy allocator corrupt: {exc}"
            ) from exc
    # barrier pool: in-use + available == capacity
    pool = mtb.barriers
    if pool.in_use + pool.available != pool.count:
        raise InvariantViolation(
            f"MTB {mtb.column}: barrier pool leak "
            f"({pool.in_use} + {pool.available} != {pool.count})"
        )


def check_table(table, deep: bool = False) -> None:
    """TaskTable invariants: id_map consistency, no double-free."""
    if deep:
        for task_id, (col, row) in table.id_map.items():
            if not (0 <= col < table.num_columns and 0 <= row < table.rows):
                raise InvariantViolation(
                    f"task {task_id}: id_map points outside the table"
                )
    # host-observed completions must be GPU-completed
    if len(table.finished) > table.gpu_done_signal.pulse_count:
        raise InvariantViolation(
            "host observed more completions than the GPU produced"
        )


def check_session(session: PagodaSession, deep: bool = False) -> None:
    """All invariants of a live (or finished) Pagoda stack."""
    for mtb in session.master.mtbs:
        check_mtb(mtb, deep=deep)
    check_table(session.table, deep=deep)
    # warp conservation across the whole device: busy executor warps
    # never exceed capacity
    total_busy = sum(m.warptable.busy_count for m in session.master.mtbs)
    capacity = len(session.master.mtbs) * len(session.master.mtbs[0].warptable)
    if total_busy > capacity:
        raise InvariantViolation(
            f"{total_busy} busy warps exceed capacity {capacity}"
        )


def check_quiescent(session: PagodaSession, deep: bool = False) -> None:
    """After a drained run: everything returned to the free state."""
    check_session(session, deep=deep)
    for mtb in session.master.mtbs:
        if mtb.warptable.busy_count != 0:
            raise InvariantViolation(
                f"MTB {mtb.column}: {mtb.warptable.busy_count} warps "
                "still executing after drain"
            )
        mtb.buddy.flush_deferred()
        if mtb.buddy.allocated_bytes != 0:
            raise InvariantViolation(
                f"MTB {mtb.column}: {mtb.buddy.allocated_bytes} bytes of "
                "shared memory leaked"
            )
        if mtb.barriers.in_use != 0:
            raise InvariantViolation(
                f"MTB {mtb.column}: {mtb.barriers.in_use} barrier IDs "
                "leaked"
            )
