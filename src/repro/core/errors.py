"""Structured failures and hardening policies for the Pagoda runtime.

The paper's protocol guarantees forward progress on healthy hardware;
this module is the vocabulary for everything else.  A task that dies —
kernel exception, wedged warp reclaimed by the watchdog, SMM brown-out,
GPU death — must surface as a :class:`TaskError` carried in its
TaskTable row and re-raised from ``wait()``; it must never hang
``wait``/``waitAll``.  The host can wrap spawns in a
:class:`RetryPolicy` (capped exponential backoff), the TaskTable
retires repeatedly-lethal slots (:class:`QuarantineEvent`), and a
multi-GPU node records :class:`DegradationEvent`\\ s when it fails
tasks over from a dead device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


class TaskError(RuntimeError):
    """A spawned task failed instead of completing.

    Recorded in the task's TaskTable row on the GPU side, propagated to
    the CPU mirror by the next aggregate copy-back, and re-raised from
    ``PagodaHost.wait()`` / surfaced by ``wait_all()`` — so a failed
    task is always an *error*, never a hang.
    """

    def __init__(self, task_id: int, name: str, reason: str,
                 spawn_site: str = "", column: int = -1,
                 row: int = -1, when_ns: float = 0.0) -> None:
        self.task_id = task_id
        self.name = name
        self.reason = reason
        #: ``file:line`` of the ``taskSpawn`` call that issued the task.
        self.spawn_site = spawn_site
        self.column = column
        self.row = row
        self.when_ns = when_ns
        site = f" spawned at {spawn_site}" if spawn_site else ""
        super().__init__(
            f"task {task_id} ({name!r}){site} failed at "
            f"t={when_ns:.1f}ns in TaskTable slot ({column},{row}): {reason}"
        )


class TaskErrorGroup(RuntimeError):
    """``waitAll`` observed several failed tasks."""

    def __init__(self, errors: List[TaskError]) -> None:
        self.errors = list(errors)
        ids = ", ".join(str(e.task_id) for e in self.errors[:8])
        more = "" if len(self.errors) <= 8 else f" (+{len(self.errors) - 8})"
        super().__init__(
            f"{len(self.errors)} task(s) failed: ids [{ids}{more}]; "
            f"first: {self.errors[0]}"
        )


class GpuDeadError(RuntimeError):
    """The GPU behind this host/session died mid-run.

    Raised out of ``task_spawn``/``wait`` loops instead of spinning on
    a device that will never answer; the multi-GPU failover path
    catches it and re-routes the task to a survivor.
    """


class CudaLaunchError(RuntimeError):
    """A simulated kernel launch failed (cudaErrorLaunchFailure)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for ``task_spawn_with_retry``.

    Attempt ``k`` (0-based) that fails sleeps
    ``min(backoff_base_ns * 2**k, backoff_cap_ns)`` before re-spawning;
    after ``max_attempts`` total attempts the last :class:`TaskError`
    propagates to the caller.
    """

    max_attempts: int = 3
    backoff_base_ns: float = 2_000.0
    backoff_cap_ns: float = 64_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_ns < 0 or self.backoff_cap_ns < 0:
            raise ValueError("backoff durations must be >= 0")

    def backoff_ns(self, attempt: int) -> float:
        """Sleep before retry number ``attempt + 1`` (capped)."""
        return min(self.backoff_base_ns * (2.0 ** attempt),
                   self.backoff_cap_ns)


@dataclass(frozen=True)
class QuarantineEvent:
    """A TaskTable slot was retired from the free list.

    Emitted when tasks die in the same ``(column, row)`` slot
    ``failures`` times — the software analogue of mapping out a bad
    page: a slot whose backing storage keeps corrupting tasks must
    stop being handed to new spawns.
    """

    when_ns: float
    column: int
    row: int
    failures: int


@dataclass(frozen=True)
class DegradationEvent:
    """A multi-GPU node lost a device and failed work over.

    ``resubmitted`` counts the in-flight tasks re-spawned onto the
    survivors; throughput degrades proportionally instead of the run
    deadlocking.
    """

    when_ns: float
    gpu_index: int
    resubmitted: int
    survivors: Tuple[int, ...]
    reason: str = "gpu.die"


@dataclass
class WatchdogKill:
    """One watchdog reclamation, for the session's incident log."""

    when_ns: float
    task_id: int
    name: str
    column: int
    row: int
    deadline_ns: float
    reason: str = "watchdog_deadline"
