"""Pagoda itself — the paper's primary contribution.

Layout mirrors the paper's §4-§5 structure:

- :mod:`~repro.core.tasktable` — the mirrored CPU/GPU TaskTable and its
  spawn-protocol state machine (§4.2, Fig. 2);
- :mod:`~repro.core.warptable` — per-MTB executor-warp bookkeeping
  (§4.1, Table 2);
- :mod:`~repro.core.masterkernel` — the persistent daemon kernel, MTBs,
  scheduler warps (Algorithm 1) and parallel pSched (Algorithm 2);
- :mod:`~repro.core.buddy` — software shared-memory buddy allocator
  (§5.1);
- :mod:`~repro.core.named_barriers` — sub-threadblock synchronization
  via PTX named barriers (§5.2);
- :mod:`~repro.core.host_api` — Table 1's CPU-side API;
- :mod:`~repro.core.runtime` — end-to-end runner / session.
"""

from repro.core.buddy import BuddyAllocator
from repro.core.errors import (
    CudaLaunchError,
    DegradationEvent,
    GpuDeadError,
    QuarantineEvent,
    RetryPolicy,
    TaskError,
    TaskErrorGroup,
    WatchdogKill,
)
from repro.core.host_api import PagodaHost
from repro.core.masterkernel import MasterKernel, Mtb, MTB_ARENA_BYTES
from repro.core.named_barriers import NamedBarrierPool, PTX_NAMED_BARRIERS
from repro.core.multigpu import MultiGpuPagoda, run_multi_gpu_pagoda
from repro.core.runtime import PagodaConfig, PagodaSession, run_pagoda
from repro.core.validation import (
    InvariantViolation,
    check_quiescent,
    check_session,
)
from repro.core.tasktable import (
    READY_COPIED,
    READY_FREE,
    READY_SCHEDULING,
    TaskEntry,
    TaskTable,
)
from repro.core.warptable import WarpSlot, WarpTable

__all__ = [
    "BuddyAllocator",
    "CudaLaunchError",
    "DegradationEvent",
    "GpuDeadError",
    "QuarantineEvent",
    "RetryPolicy",
    "TaskError",
    "TaskErrorGroup",
    "WatchdogKill",
    "PagodaHost",
    "MasterKernel",
    "Mtb",
    "MTB_ARENA_BYTES",
    "NamedBarrierPool",
    "PTX_NAMED_BARRIERS",
    "PagodaConfig",
    "PagodaSession",
    "run_pagoda",
    "MultiGpuPagoda",
    "run_multi_gpu_pagoda",
    "InvariantViolation",
    "check_session",
    "check_quiescent",
    "READY_COPIED",
    "READY_FREE",
    "READY_SCHEDULING",
    "TaskEntry",
    "TaskTable",
    "WarpSlot",
    "WarpTable",
]
