"""The per-MTB WarpTable (§4.1, Table 2).

Each MTB keeps one slot per executor warp (31 slots) in shared memory.
The scheduler warp writes a slot to hand a task warp to an executor;
the executor resets ``exec`` when done.  Fields follow Table 2 exactly.

Free-slot bookkeeping is a single integer bitmask — the software twin
of Algorithm 2's hardware ``__ballot`` of exec flags, where the
scheduler warp's 32 threads each read one slot and vote in one
register.  Bit ``i`` set means slot ``i`` is free, so:

- ``free_count`` / ``busy_count`` are one popcount (the seed rescanned
  every slot);
- the executor-slot pick in ``pSched`` is one lowest-set-bit
  extraction per placement instead of materializing the free list;
- wakeups are targeted: the scheduler fires the dispatched slot's own
  armed event, instead of broadcasting to all 31 executors and letting
  the 30 losers re-arm (the seed's dominant wasted work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim import Event, Signal


@dataclass(slots=True)
class WarpSlot:
    """One executor warp's bookkeeping entry (Table 2)."""

    #: warp ID of the warp *within the current task* — drives getTid().
    warp_id: int = 0
    #: TaskTable entry (row) being executed; lets the warp fetch args.
    e_num: int = -1
    #: shared-memory starting offset for the warp's threadblock.
    sm_index: int = 0
    #: named-barrier ID for the block (valid only if the task syncs).
    bar_id: int = -1
    #: block index within the task (derived; the real system derives it
    #: from warp_id and the task geometry).
    block_id: int = 0
    #: set by the scheduler to start execution; reset by the executor.
    exec_flag: bool = False
    #: armed by the idle executor warp; fired by the scheduler on
    #: dispatch (the targeted replacement for a broadcast work signal).
    work_event: Optional[Event] = field(default=None, repr=False)


class WarpTable:
    """31 slots + free-mask index + targeted wakeup signalling."""

    EXECUTOR_WARPS = 31

    def __init__(self, slots: int = EXECUTOR_WARPS) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.slots = [WarpSlot() for _ in range(slots)]
        #: bit i set <=> slot i free (the ballot word).
        self._free_mask = (1 << slots) - 1
        #: pulsed by executors when they free their slot; the scheduler
        #: blocks on it when pSched finds no free warps.
        self.free_signal = Signal()

    def __len__(self) -> int:
        return len(self.slots)

    # -- free-slot index ----------------------------------------------------

    @property
    def free_count(self) -> int:
        """Executor warps with a clear exec flag (one popcount)."""
        return self._free_mask.bit_count()

    @property
    def busy_count(self) -> int:
        """Executor warps currently running task work."""
        return len(self.slots) - self._free_mask.bit_count()

    def lowest_free(self) -> int:
        """Lowest-index free slot, or -1 when all are executing."""
        mask = self._free_mask
        if not mask:
            return -1
        return (mask & -mask).bit_length() - 1

    def free_slots(self):
        """Indices of executor warps with a clear exec flag (a
        materialized view of the free mask, ascending)."""
        out = []
        mask = self._free_mask
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    # -- executor-side wakeup ------------------------------------------------

    def arm_work(self, slot_index: int) -> Event:
        """Idle executor warp: arm a one-shot event the scheduler fires
        when it dispatches this slot."""
        ev = Event()
        self.slots[slot_index].work_event = ev
        return ev

    def notify_work(self, slot_index: int) -> None:
        """Scheduler side: wake the dispatched slot's executor (no-op
        when the executor saw the exec flag without sleeping)."""
        slot = self.slots[slot_index]
        ev = slot.work_event
        if ev is not None:
            slot.work_event = None
            ev.fire(slot_index)

    # -- dispatch / retire ----------------------------------------------------

    def dispatch(self, slot_index: int, warp_id: int, e_num: int,
                 sm_index: int, bar_id: int, block_id: int) -> None:
        """Scheduler-side: fill a slot and set its exec flag
        (Algorithm 2 lines 9-14; the threadfence is implicit in the
        simulator's sequential slot update)."""
        slot = self.slots[slot_index]
        if slot.exec_flag:
            raise RuntimeError(f"slot {slot_index} is already executing")
        slot.warp_id = warp_id
        slot.e_num = e_num
        slot.sm_index = sm_index
        slot.bar_id = bar_id
        slot.block_id = block_id
        slot.exec_flag = True
        self._free_mask &= ~(1 << slot_index)

    def retire(self, slot_index: int) -> None:
        """Executor-side: mark the warp free (Algorithm 1 line 43)."""
        slot = self.slots[slot_index]
        if not slot.exec_flag:
            raise RuntimeError(f"slot {slot_index} is not executing")
        slot.exec_flag = False
        slot.e_num = -1
        self._free_mask |= 1 << slot_index
        self.free_signal.pulse(slot_index)
