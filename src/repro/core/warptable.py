"""The per-MTB WarpTable (§4.1, Table 2).

Each MTB keeps one slot per executor warp (31 slots) in shared memory.
The scheduler warp writes a slot to hand a task warp to an executor;
the executor resets ``exec`` when done.  Fields follow Table 2 exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Signal


@dataclass
class WarpSlot:
    """One executor warp's bookkeeping entry (Table 2)."""

    #: warp ID of the warp *within the current task* — drives getTid().
    warp_id: int = 0
    #: TaskTable entry (row) being executed; lets the warp fetch args.
    e_num: int = -1
    #: shared-memory starting offset for the warp's threadblock.
    sm_index: int = 0
    #: named-barrier ID for the block (valid only if the task syncs).
    bar_id: int = -1
    #: block index within the task (derived; the real system derives it
    #: from warp_id and the task geometry).
    block_id: int = 0
    #: set by the scheduler to start execution; reset by the executor.
    exec_flag: bool = False


class WarpTable:
    """31 slots + wakeup signalling between scheduler and executors."""

    EXECUTOR_WARPS = 31

    def __init__(self, slots: int = EXECUTOR_WARPS) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.slots = [WarpSlot() for _ in range(slots)]
        #: pulsed by the scheduler after setting exec flags; executor
        #: warps block on it instead of spin-reading their slot.
        self.work_signal = Signal()
        #: pulsed by executors when they free their slot; the scheduler
        #: blocks on it when pSched finds no free warps.
        self.free_signal = Signal()

    def __len__(self) -> int:
        return len(self.slots)

    def free_slots(self):
        """Indices of executor warps with a clear exec flag."""
        return [i for i, s in enumerate(self.slots) if not s.exec_flag]

    @property
    def busy_count(self) -> int:
        """Executor warps currently running task work."""
        return sum(1 for s in self.slots if s.exec_flag)

    def dispatch(self, slot_index: int, warp_id: int, e_num: int,
                 sm_index: int, bar_id: int, block_id: int) -> None:
        """Scheduler-side: fill a slot and set its exec flag
        (Algorithm 2 lines 9-14; the threadfence is implicit in the
        simulator's sequential slot update)."""
        slot = self.slots[slot_index]
        if slot.exec_flag:
            raise RuntimeError(f"slot {slot_index} is already executing")
        slot.warp_id = warp_id
        slot.e_num = e_num
        slot.sm_index = sm_index
        slot.bar_id = bar_id
        slot.block_id = block_id
        slot.exec_flag = True

    def retire(self, slot_index: int) -> None:
        """Executor-side: mark the warp free (Algorithm 1 line 43)."""
        slot = self.slots[slot_index]
        if not slot.exec_flag:
            raise RuntimeError(f"slot {slot_index} is not executing")
        slot.exec_flag = False
        slot.e_num = -1
        self.free_signal.pulse(slot_index)
