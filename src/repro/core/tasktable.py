"""The TaskTable: mirrored CPU/GPU task-spawn structure (§4.2, Fig. 2).

One column per MTB, 32 rows per column.  Each entry carries the task's
launch parameters plus two protocol fields:

``ready``
    0  — entry free / task finished;
    -1 — parameters have been copied to the GPU table;
    1  — the task is being considered for scheduling;
    >1 — a *taskID*: the pipelining pointer naming the previously
    spawned task whose parameters are now known to be complete.

``sched``
    1 — the task may begin scheduling on its MTB; 0 otherwise.

The protocol's partition of authority makes simultaneous updates safe
without PCIe atomics: **the CPU only touches entries whose ready field
is 0; the GPU only touches entries with non-zero ready fields**
(Fig. 2a).  The CPU learns about completions lazily, via aggregate
copy-backs of the whole table (§4.2.2).

The CPU and GPU mirrors are distinct objects here, so tests can observe
the mismatching-values window Fig. 2b calls out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.core.errors import QuarantineEvent, TaskError
from repro.pcie.bus import Direction, PcieBus
from repro.sim import Engine, Signal
from repro.tasks import TaskResult, TaskSpec

READY_FREE = 0
READY_COPIED = -1
READY_SCHEDULING = 1
FIRST_TASK_ID = 2  # taskIDs are integers > 1 (§4.2.2)

#: Bytes of protocol state copied back per entry in a lazy aggregate
#: update (ready + sched words).
READBACK_BYTES_PER_ENTRY = 8


@dataclass(slots=True)
class TaskEntry:
    """One TaskTable slot (either mirror)."""

    ready: int = READY_FREE
    sched: int = 0
    task_id: int = 0
    spec: Optional[TaskSpec] = None
    result: Optional[TaskResult] = None
    #: runtime execution state attached by the MTB scheduler (done
    #: counters, barrier ids, shared-memory offsets).
    exec_state: object = None
    #: CPU-mirror only: parameters are still crossing the bus.  The
    #: host's copy-back skips such entries (it knows which spawns have
    #: completed their transaction from the pipelining pointer).
    inflight: bool = False
    #: structured failure attached when the task died instead of
    #: completing (watchdog kill, kernel exception, brown-out); copied
    #: to the CPU mirror by the next aggregate copy-back so ``wait()``
    #: can re-raise it.
    error: Optional[TaskError] = None

    def protocol_state(self) -> Tuple[int, int]:
        """(ready, sched) — the Fig. 2 state pair."""
        return (self.ready, self.sched)


class TaskTable:
    """Both mirrors plus the transfer machinery between them."""

    def __init__(self, engine: Engine, bus: PcieBus, num_columns: int,
                 rows: int = 32, faults=None,
                 quarantine_threshold: Optional[int] = 3,
                 obs=None, open_columns=None,
                 free_order: str = "lifo") -> None:
        if num_columns < 1 or rows < 1:
            raise ValueError("table must have at least one column and row")
        self.engine = engine
        self.bus = bus
        #: optional :class:`repro.obs.Obs`.  Hooks: the GPU-mirror slot
        #: occupancy gauge/timeline (entry lands -> +1, completion ->
        #: -1), dirty-row scan counters, and posted-write/copy-back
        #: counters.  ``None`` (default) leaves every path untouched.
        self.obs = obs
        if obs is not None:
            self._obs_slots = obs.gauge("table.slots_occupied")
            self._obs_slots_tl = obs.timeline("table.slots_occupied")
            self._obs_scans = obs.counter("table.dirty_row_scans")
            self._obs_rows_visited = obs.counter("table.dirty_rows_visited")
            self._obs_posts = obs.counter("table.entry_posts")
            self._obs_copy_backs = obs.counter("table.copy_backs")
        #: optional :class:`repro.faults.FaultInjector`; hook points
        #: draw ``pcie.reorder`` (entry posted-write lands late, out of
        #: order w.r.t. later writes) and ``pcie.stale_read`` (a lazy
        #: copy-back observes a completion one aggregate update late).
        self.faults = faults
        #: consecutive-failure count at which a slot is retired from
        #: the free list (None disables quarantine entirely).
        self.quarantine_threshold = quarantine_threshold
        self.timing = bus.timing
        self.num_columns = num_columns
        self.rows = rows
        self.cpu: List[List[TaskEntry]] = [
            [TaskEntry() for _ in range(rows)] for _ in range(num_columns)
        ]
        self.gpu: List[List[TaskEntry]] = [
            [TaskEntry() for _ in range(rows)] for _ in range(num_columns)
        ]
        #: per-column change notification on the GPU side (scheduler
        #: warps block here instead of burning poll loops).
        self.column_signals: List[Signal] = [Signal() for _ in range(num_columns)]
        #: per-column dirty-row bitmask: bit ``row`` set means the
        #: entry's protocol words (``ready``/``sched``) changed since
        #: the column's scheduler last visited it.  Every writer that
        #: pulses a column signal also sets the row's bit, so a
        #: scheduler wake drains exactly the changed rows instead of
        #: rescanning all 32 (Algorithm 1's warp-parallel scan reads
        #: the whole column in one warp-wide load; this mask is that
        #: load's one-word software equivalent).
        self._dirty_rows: List[int] = [0] * num_columns
        #: taskID -> (column, row); the indirection behind ready>1.
        self.id_map: Dict[int, Tuple[int, int]] = {}
        self._next_id = FIRST_TASK_ID
        #: columns the host may spawn into.  The legacy shared table
        #: opens every column; a partitioned table opens only the
        #: columns whose MTBs the partition owns, and the elastic
        #: controller moves columns between sibling tables with
        #: :meth:`close_column` / :meth:`open_column`.
        self.open_columns: Set[int] = (
            set(range(num_columns)) if open_columns is None
            else set(open_columns)
        )
        if not self.open_columns <= set(range(num_columns)):
            raise ValueError("open_columns out of range")
        # Host-side free-entry queue, interleaved across columns so
        # consecutive spawns land on different MTBs (load balance).
        self._cpu_free: List[Tuple[int, int]] = [
            (col, row) for row in range(rows) for col in range(num_columns)
            if col in self.open_columns
        ]
        self._cpu_free.reverse()  # pop() yields column-major order
        #: free-entry recycling order.  The legacy host pops the most
        #: recently freed slot (LIFO) — byte-exact with the golden
        #: schedules.  Partitioned tables use FIFO: freed slots go to
        #: the back of the rotation, so steady-state spawns keep the
        #: boot-time column interleave instead of converging onto
        #: whichever MTB completed last (whose single scheduler warp
        #: then serializes the whole pipelined spawn chain).
        if free_order not in ("lifo", "fifo"):
            raise ValueError(f"unknown free_order {free_order!r}")
        self._free_lifo = free_order == "lifo"
        #: taskIDs whose completion the CPU has observed via copy-back.
        self.finished: Set[int] = set()
        #: pulsed on the *GPU* side whenever a task finishes; the host
        #: model uses it to bound wait() timeouts, runtimes use it for
        #: makespan accounting.
        self.gpu_done_signal = Signal()
        self.posted_bytes = 0
        self.copy_backs = 0
        self.entry_copies = 0
        # completions the CPU has not yet pulled back; drained by
        # copy_back() (equivalent to scanning every entry for the
        # occupied -> free transition, without the O(entries) walk).
        self._completed_unreported: List[Tuple[int, int]] = []
        # taskIDs observed finished by copy_back() and not yet handed
        # to a consumer via drain_completions(); spares collectors the
        # per-poll ``finished - copied`` set difference.
        self._newly_finished: List[int] = []
        # columns whose scheduler deferred a promotion because the
        # target entry had not reached ready == -1 yet; keyed by the
        # target location.
        self._promotion_waiters: Dict[Tuple[int, int], List[int]] = {}
        #: taskIDs the GPU side has finished (success *or* failure).
        #: Schedulers consult this when a pipelining pointer names a
        #: task whose slot has already been reused — distinguishing
        #: "predecessor done, promote now" from "predecessor's posted
        #: write has not landed yet, defer" (only distinguishable once
        #: faults can delay posted writes).
        self.gpu_finished: Set[int] = set()
        #: structured failures by taskID, populated by copy-backs;
        #: ``wait()`` re-raises from here.
        self.errors: Dict[int, TaskError] = {}
        #: slots retired after repeated lethal failures (never returned
        #: to the free list again).
        self.quarantined: Set[Tuple[int, int]] = set()
        self.quarantine_events: List[QuarantineEvent] = []
        self._slot_failures: Dict[Tuple[int, int], int] = {}

    # -- geometry / ids ------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total number of TaskTable entries."""
        return self.num_columns * self.rows

    @property
    def free_queue_len(self) -> int:
        """Host-visible count of reclaimable entries (may include
        entries already popped conservatively; 0 means truly none)."""
        return len(self._cpu_free)

    def post_cost(self, param_bytes: int, transactions: int = 1) -> float:
        """Host-thread cost to issue the posted write(s) for one entry.

        Entry spawns are pipelined mapped-memory stores: the CPU pays
        the posting cost per transaction plus payload wire time; the
        §4.2.1 two-transaction strawman pays it twice — "doubling the
        parameter copying overhead"."""
        return (transactions * self.timing.entry_post_ns
                + param_bytes / self.timing.pcie_bandwidth_bpns)

    def allocate_id(self) -> int:
        """Hand out the next taskID (monotonic, > 1)."""
        tid = self._next_id
        self._next_id += 1
        return tid

    def entry_for(self, task_id: int, side: str = "gpu") -> TaskEntry:
        """Look an entry up by taskID on either mirror."""
        col, row = self.id_map[task_id]
        mirror = self.gpu if side == "gpu" else self.cpu
        return mirror[col][row]

    # -- GPU-side dirty-row queue ----------------------------------------------

    def mark_row_dirty(self, col: int, row: int) -> None:
        """Flag a GPU-mirror row for the column's next scheduler visit."""
        self._dirty_rows[col] |= 1 << row

    def dirty_row_count(self, col: int) -> int:
        """Rows currently flagged for the column's scheduler."""
        return self._dirty_rows[col].bit_count()

    def take_dirty_rows(self, col: int) -> int:
        """Claim-and-clear the column's dirty mask (one scheduler wake)."""
        mask = self._dirty_rows[col]
        if mask:
            self._dirty_rows[col] = 0
        if self.obs is not None:
            self._obs_scans.inc()
            if mask:
                self._obs_rows_visited.inc(mask.bit_count())
        return mask

    def take_dirty_rows_above(self, col: int, row: int) -> int:
        """Claim-and-clear only the dirty bits strictly above ``row``.

        Used mid-drain: a promotion resolved during the scan may mark a
        *later* row of the same column schedulable, and the paper's
        single linear pass would still reach that row this iteration.
        """
        mask = self._dirty_rows[col] & -(2 << row)
        if mask:
            self._dirty_rows[col] ^= mask
        return mask

    # -- CPU-side spawn path ---------------------------------------------------

    def take_free_entry(self) -> Optional[Tuple[int, int]]:
        """Pop a CPU-side entry known to be free (ready == 0).

        Quarantined slots are skipped: once a slot has killed
        ``quarantine_threshold`` tasks in a row it is presumed bad
        (stuck hardware warp, corrupted shared-memory line) and retired
        rather than handed to yet another victim.
        """
        while self._cpu_free:
            col, row = (self._cpu_free.pop() if self._free_lifo
                        else self._cpu_free.pop(0))
            if (col, row) in self.quarantined:
                continue
            if col not in self.open_columns:
                continue
            if self.cpu[col][row].ready == READY_FREE:
                return (col, row)
        return None

    def close_column(self, col: int) -> None:
        """Stop handing out entries of one column (partition shrink).

        In-flight tasks already occupying the column are unaffected;
        they drain normally, and their slots simply never re-enter the
        free queue while the column stays closed.
        """
        if col not in self.open_columns:
            return
        self.open_columns.discard(col)
        self._cpu_free = [slot for slot in self._cpu_free if slot[0] != col]

    def open_column(self, col: int) -> None:
        """Re-admit one column to the spawn path (partition grow).

        Free, non-quarantined rows of the column rejoin the free queue;
        completions observed while the column was closed are recovered
        here instead of being lost.
        """
        if col < 0 or col >= self.num_columns:
            raise ValueError(f"column {col} out of range")
        if col in self.open_columns:
            return
        self.open_columns.add(col)
        present = set(self._cpu_free)
        recovered = []
        for row in range(self.rows):
            slot = (col, row)
            if slot in self.quarantined or slot in present:
                continue
            if self.cpu[col][row].ready == READY_FREE and \
                    not self.cpu[col][row].inflight:
                recovered.append(slot)
        # Recovered rows must not all be the *next* slots handed out:
        # that funnels every spawn into the new column, whose single
        # scheduler warp then convoys the whole pipelined spawn chain
        # behind its (blocked-on-placement) scans.  Under LIFO they go
        # to the bottom of the stack.  Under FIFO, parking them at the
        # back would leave the column unused until the rotation wraps
        # all existing slots — instead the whole list is re-interleaved
        # across columns, restoring the boot-time invariant that
        # consecutive handouts land on different MTBs.
        if self._free_lifo:
            self._cpu_free[:0] = recovered
        else:
            by_col: Dict[int, List[Tuple[int, int]]] = {}
            for slot in self._cpu_free + recovered:
                by_col.setdefault(slot[0], []).append(slot)
            merged: List[Tuple[int, int]] = []
            queues = [by_col[c] for c in sorted(by_col)]
            while queues:
                queues = [q for q in queues if q]
                merged.extend(q.pop(0) for q in queues)
            self._cpu_free = merged

    def column_busy(self, col: int) -> bool:
        """Whether the column still has GPU-side residency: a posted
        entry in flight or a non-free GPU-mirror slot.  Used to decide
        when a closed column has drained.  The CPU mirror's lazily
        copied-back ``ready`` words are deliberately ignored — they are
        bookkeeping staleness, not residency, and waiting on them could
        outlive the last ``gpu_done_signal`` pulse."""
        for row in range(self.rows):
            if self.cpu[col][row].inflight:
                return True
            if self.gpu[col][row].ready != READY_FREE:
                return True
        return False

    def fill_cpu_entry(self, col: int, row: int, spec: TaskSpec,
                       result: TaskResult, prev_task_id: Optional[int]) -> int:
        """Write the task's parameters into the CPU mirror (taskSpawn).

        ``prev_task_id`` is the pipelining pointer; ``None`` marks a
        burst-first task (ready = -1 directly, Fig. 2b's TA).
        """
        entry = self.cpu[col][row]
        if entry.ready != READY_FREE:
            raise RuntimeError(
                f"CPU spawning into non-free entry ({col},{row}): "
                f"ready={entry.ready}"
            )
        task_id = self.allocate_id()
        entry.spec = spec
        entry.result = result
        entry.task_id = task_id
        entry.sched = 0
        entry.ready = prev_task_id if prev_task_id is not None else READY_COPIED
        entry.inflight = True
        self.id_map[task_id] = (col, row)
        return task_id

    def copy_entry_to_gpu(self, col: int, row: int) -> Generator:
        """One posted H2D write carrying the entry (§4.2.1's
        steady-state "1 copy per task table entry").

        Entries ride the zero-copy mapped path: back-to-back writes
        serialize only at the posting rate plus payload wire time, and
        become visible after the mapped-write latency.
        """
        yield self.timing.mapped_write_ns
        self._land_entry(col, row)

    def post_entry_to_gpu(self, col: int, row: int) -> None:
        """Timed-callback twin of :meth:`copy_entry_to_gpu`: the posted
        write lands after the mapped-write latency as a single engine
        callback instead of a full process lifecycle (the spawn path
        issues one of these per task, so the per-process overhead was
        pure simulator tax)."""
        delay = self.timing.mapped_write_ns
        faults = self.faults
        if faults is not None:
            spec = faults.draw("pcie.reorder", f"entry:{col}:{row}")
            if spec is not None:
                # the posted write is reordered past later stores: it
                # becomes visible magnitude_ns beyond the normal
                # mapped-write window, so a successor's pipelining
                # pointer can land first
                delay += spec.magnitude_ns
        self.engine.call_after(delay, lambda: self._land_entry(col, row))

    def _land_entry(self, col: int, row: int) -> None:
        """The posted write becomes visible in the GPU mirror."""
        src = self.cpu[col][row]
        nbytes = (src.spec.param_bytes if src.spec else 0) + READBACK_BYTES_PER_ENTRY
        self.posted_bytes += nbytes
        dst = self.gpu[col][row]
        dst.spec = src.spec
        dst.result = src.result
        dst.task_id = src.task_id
        dst.sched = src.sched
        dst.ready = src.ready
        src.inflight = False
        self.entry_copies += 1
        if self.obs is not None:
            self._obs_entry_landed()
        self.mark_row_dirty(col, row)
        self.notify_ready_copied(col, row)
        self.column_signals[col].pulse()

    def _obs_entry_landed(self) -> None:
        """Obs hook: an entry became occupied on the GPU mirror."""
        now = self.engine.now
        self._obs_posts.inc()
        self._obs_slots.add(now, 1)
        self._obs_slots_tl.add(now, 1)

    def copy_entry_two_transactions(self, col: int, row: int) -> Generator:
        """The §4.2.1 strawman the pipelined protocol replaces: params
        in one transaction, the ready flag in a second.

        Safe (posted writes stay ordered) but "doubles the parameter
        copying overhead" — the ablation benchmark quantifies it.  In
        this protocol the task needs no promotion: the second write
        delivers (1, 1) directly.
        """
        src = self.cpu[col][row]
        # transaction 1: the parameters
        yield self.timing.mapped_write_ns
        dst = self.gpu[col][row]
        dst.spec = src.spec
        dst.result = src.result
        dst.task_id = src.task_id
        dst.ready = READY_COPIED
        dst.sched = 0
        # transaction 2: the ready flag (ordered behind the first)
        yield self.timing.mapped_write_ns
        dst.ready = READY_SCHEDULING
        dst.sched = 1
        src.inflight = False
        self.entry_copies += 1
        if self.obs is not None:
            self._obs_entry_landed()
        self.mark_row_dirty(col, row)
        self.column_signals[col].pulse()

    def copy_entry_unsafe_single(self, col: int, row: int,
                                 hazard: bool = True) -> Generator:
        """The broken §4.2.1 variant: parameters and ready flag in ONE
        transaction.  "The PCIe bus does not guarantee that the
        parameters will arrive in the GPU memory before the ready
        flag" — with ``hazard`` the flag lands first, and the scheduler
        warp observes a schedulable entry whose kernel pointer and
        arguments are still stale.  Exists to demonstrate the failure
        mode; never used by the real protocol.
        """
        src = self.cpu[col][row]
        dst = self.gpu[col][row]

        def land_params() -> None:
            dst.spec = src.spec
            dst.result = src.result
            dst.task_id = src.task_id
            src.inflight = False
            self.column_signals[col].pulse()

        def land_flag() -> None:
            dst.ready = READY_SCHEDULING
            dst.sched = 1
            self.mark_row_dirty(col, row)
            self.column_signals[col].pulse()

        half = self.timing.mapped_write_ns / 2
        if hazard:
            # flag first: the scheduler can race ahead of the params
            self.engine.call_after(half, land_flag)
            self.engine.call_after(2 * half, land_params)
        else:
            self.engine.call_after(half, land_params)
            self.engine.call_after(2 * half, land_flag)
        yield 2 * half
        self.entry_copies += 1

    def push_state_to_gpu(self, col: int, row: int,
                          expect_task_id: Optional[int] = None) -> Generator:
        """Host update of just the protocol words of one entry (used by
        the idle-host finalization of the last task).

        ``expect_task_id`` guards the landing: while this write crosses
        the bus, the GPU scheduler may promote the same entry itself (a
        successor's pipelining pointer resolving concurrently with the
        idle-host promotion).  If by landing time the entry no longer
        holds that task at ``(READY_COPIED, 0)``, the write is dropped —
        re-arming a ``sched`` flag the device already consumed would
        schedule the task twice and corrupt its in-flight exec state.
        """
        src = self.cpu[col][row]
        yield self.timing.entry_post_ns  # the host's own posting store
        yield self.timing.mapped_write_ns
        dst = self.gpu[col][row]
        if expect_task_id is not None and (
                dst.task_id != expect_task_id
                or dst.protocol_state() != (READY_COPIED, 0)):
            return
        dst.ready = src.ready
        dst.sched = src.sched
        self.mark_row_dirty(col, row)
        self.column_signals[col].pulse()

    # -- CPU-side lazy aggregate copy-back (§4.2.2) -----------------------------

    def copy_back(self) -> Generator:
        """Bulk D2H copy of every entry's protocol state.

        Updates the CPU mirror, records finished tasks, and returns
        freed entries to the free queue.
        """
        nbytes = self.capacity * READBACK_BYTES_PER_ENTRY
        yield from self.bus.transfer(nbytes, Direction.D2H)
        self.copy_backs += 1
        if self.obs is not None:
            self._obs_copy_backs.inc()
        drained, self._completed_unreported = self._completed_unreported, []
        faults = self.faults
        for col, row in drained:
            gpu = self.gpu[col][row]
            cpu = self.cpu[col][row]
            if cpu.inflight:  # pragma: no cover - params precede completion
                # the GPU mirror does not yet reflect this spawn;
                # adopting its stale ready==0 would double-book the
                # entry.
                self._completed_unreported.append((col, row))
                continue
            if faults is not None and faults.draw(
                    "pcie.stale_read", f"entry:{col}:{row}") is not None:
                # the aggregate D2H read raced the GPU's protocol-word
                # store and returned the pre-completion value; the
                # completion is observed one copy-back late (it is
                # *not* lost — the next aggregate update sees it)
                self._completed_unreported.append((col, row))
                continue
            cpu.ready = gpu.ready
            cpu.sched = gpu.sched
            if gpu.error is not None:
                cpu.error = gpu.error
                self.errors[cpu.task_id] = gpu.error
            self.finished.add(cpu.task_id)
            self._newly_finished.append(cpu.task_id)
            if (col, row) not in self.quarantined and col in self.open_columns:
                self._cpu_free.append((col, row))

    def drain_completions(self) -> List[int]:
        """TaskIDs newly observed finished since the last drain.

        Completions accumulate as copy-backs observe them (in
        completion-observation order); draining hands them over exactly
        once.  Collector threads iterate this instead of recomputing
        the ``finished - copied`` set difference on every poll.
        """
        if not self._newly_finished:
            return []
        out = self._newly_finished
        self._newly_finished = []
        return out

    # -- GPU-side promotion coordination ---------------------------------------

    def register_promotion_waiter(self, target_col: int, target_row: int,
                                  waiting_col: int) -> None:
        """A scheduler found its entry's predecessor not yet at
        ready == -1; re-wake it when that predecessor gets there."""
        self._promotion_waiters.setdefault(
            (target_col, target_row), []
        ).append(waiting_col)

    def notify_ready_copied(self, col: int, row: int) -> None:
        """An entry just transitioned to ready == -1; wake deferred
        promoters targeting it."""
        waiters = self._promotion_waiters.pop((col, row), None)
        if waiters:
            for waiting_col in waiters:
                self.column_signals[waiting_col].pulse()

    # -- GPU-side completion ------------------------------------------------

    def gpu_complete(self, col: int, row: int,
                     error: Optional[TaskError] = None) -> None:
        """Last executor warp frees the entry (Algorithm 1 line 42).

        With ``error`` the task *failed*: the slot is still freed (the
        protocol words must not wedge the column), but the failure is
        recorded for the next copy-back, the slot's lethal-failure
        streak advances, and a streak past ``quarantine_threshold``
        retires the slot from the free list for good.
        """
        entry = self.gpu[col][row]
        entry.ready = READY_FREE
        entry.sched = 0
        # drop the execution bookkeeping: a brown-out sweeping the
        # column later must not mistake a reused slot's stale ExecState
        # for a resident task
        entry.exec_state = None
        if error is not None:
            error.column, error.row = col, row
            entry.error = error
            self.record_slot_failure(col, row)
        else:
            entry.error = None
            self._slot_failures.pop((col, row), None)
        self.gpu_finished.add(entry.task_id)
        if self.obs is not None:
            now = self.engine.now
            self._obs_slots.add(now, -1)
            self._obs_slots_tl.add(now, -1)
        self._completed_unreported.append((col, row))
        self.gpu_done_signal.pulse((col, row))

    def record_slot_failure(self, col: int, row: int) -> None:
        """Advance a slot's lethal-failure streak; quarantine on the
        configured threshold."""
        key = (col, row)
        count = self._slot_failures.get(key, 0) + 1
        self._slot_failures[key] = count
        threshold = self.quarantine_threshold
        if (threshold is not None and count >= threshold
                and key not in self.quarantined):
            self.quarantined.add(key)
            self.quarantine_events.append(
                QuarantineEvent(self.engine.now, col, row, count)
            )

    def gpu_finished_count(self) -> int:
        """Tasks whose completion the GPU side has recorded."""
        return self.gpu_done_signal.pulse_count
