"""Seed-faithful reference implementations of the runtime layer.

Frozen snapshots of the *original* (pre-indexing) runtime data
structures, kept solely so differential tests can prove the indexed
replacements are behaviorally identical:

- :class:`ReferenceBuddyAllocator` — the §5.1 buddy allocator as a
  fully materialized mark array: allocation scans the target level
  left-to-right for an unmarked node and then marks **every** ancestor
  and descendant with per-node loops; deallocation unmarks the subtree
  and merges upward.  The production
  :class:`~repro.core.buddy.BuddyAllocator` replaces the mark array
  with per-level free-interval masks; the two must agree on every
  observable (returned offsets, byte accounting, per-node mark state)
  for every operation sequence.

Do **not** use these classes outside tests: they are deliberately slow
and receive no new features.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class ReferenceBuddyAllocator:
    """Array-backed buddy tree over a shared-memory arena (seed impl)."""

    def __init__(self, capacity: int = 32 * 1024, granule: int = 512) -> None:
        if capacity <= 0 or granule <= 0:
            raise ValueError("capacity and granule must be positive")
        if capacity % granule != 0:
            raise ValueError("capacity must be a multiple of granule")
        leaves = capacity // granule
        if leaves & (leaves - 1):
            raise ValueError("capacity/granule must be a power of two")
        self.capacity = capacity
        self.granule = granule
        self.levels = leaves.bit_length()  # root level 0 .. leaves level-1
        # 1-indexed heap array: node n has children 2n, 2n+1.
        self._marked: List[bool] = [False] * (2 * leaves)
        self._live: Dict[int, int] = {}  # offset -> node index
        self._deferred: List[int] = []  # offsets marked for deallocation
        self.allocated_bytes = 0

    # -- geometry ----------------------------------------------------------

    def _level_of_size(self, size: int) -> int:
        """Shallowest level whose node size is >= size."""
        if size <= 0:
            raise ValueError("size must be positive")
        if size > self.capacity:
            raise ValueError(f"request {size} exceeds arena {self.capacity}")
        level = self.levels - 1
        node_size = self.granule
        while node_size < size:
            node_size *= 2
            level -= 1
        return level

    def node_size(self, node: int) -> int:
        """Byte size of the buddy-tree node."""
        level = node.bit_length() - 1
        return self.capacity >> level

    def node_offset(self, node: int) -> int:
        """Arena offset covered by the buddy-tree node."""
        level = node.bit_length() - 1
        index_in_level = node - (1 << level)
        return index_in_level * (self.capacity >> level)

    # -- allocation ----------------------------------------------------------

    def alloc(self, size: int) -> Optional[int]:
        """Allocate ``size`` bytes; returns the arena offset or ``None``."""
        level = self._level_of_size(size)
        first = 1 << level
        last = (1 << (level + 1)) - 1
        for node in range(first, last + 1):
            if not self._marked[node]:
                self._mark_alloc(node)
                offset = self.node_offset(node)
                self._live[offset] = node
                self.allocated_bytes += self.node_size(node)
                return offset
        return None

    def _mark_alloc(self, node: int) -> None:
        # ancestors
        n = node
        while n >= 1:
            self._marked[n] = True
            n //= 2
        # descendants (subtree)
        self._mark_subtree(node, True)

    def _mark_subtree(self, node: int, value: bool) -> None:
        stack = [node]
        size = len(self._marked)
        while stack:
            n = stack.pop()
            self._marked[n] = value
            child = 2 * n
            if child < size:
                stack.append(child)
                stack.append(child + 1)

    # -- deallocation ---------------------------------------------------------

    def mark_for_dealloc(self, offset: int) -> None:
        """Executor-warp side: defer freeing of the block at ``offset``."""
        if offset not in self._live:
            raise ValueError(f"offset {offset} is not allocated")
        self._deferred.append(offset)

    def flush_deferred(self) -> int:
        """Scheduler-warp side: free everything marked; returns count."""
        count = len(self._deferred)
        deferred, self._deferred = self._deferred, []
        for offset in deferred:
            self.free(offset)
        return count

    def free(self, offset: int) -> None:
        """Immediately free the allocation at ``offset`` (§5.1 Fig. 4)."""
        node = self._live.pop(offset, None)
        if node is None:
            raise ValueError(f"offset {offset} is not allocated")
        self.allocated_bytes -= self.node_size(node)
        # unmark descendants and the node itself
        self._mark_subtree(node, False)
        # walk up: unmark parent while sibling is free
        n = node
        while n > 1:
            sibling = n ^ 1
            if self._marked[sibling]:
                break
            n //= 2
            self._marked[n] = False

    # -- introspection ---------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        """Bytes currently free."""
        return self.capacity - self.allocated_bytes

    @property
    def live_count(self) -> int:
        """Outstanding allocations in the arena."""
        return len(self._live)

    @property
    def deferred_count(self) -> int:
        """Regions marked for deallocation, not yet flushed."""
        return len(self._deferred)

    def is_marked(self, node: int) -> bool:
        """Whether a tree node is marked allocated."""
        return self._marked[node]

    def check_invariants(self) -> None:
        """Marked-parent invariant + live/marked consistency."""
        for node in range(2, len(self._marked)):
            if self._marked[node] and not self._marked[node // 2]:
                raise AssertionError(
                    f"node {node} marked but parent {node // 2} is not"
                )
        for offset, node in self._live.items():
            if not self._marked[node]:
                raise AssertionError(f"live node {node} not marked")
            if self.node_offset(node) != offset:
                raise AssertionError("offset/node mismatch")
        # live regions must be pairwise disjoint
        regions = sorted(
            (offset, self.node_size(node)) for offset, node in self._live.items()
        )
        prev_end = 0
        for offset, size in regions:
            if offset < prev_end:
                raise AssertionError("overlapping live allocations")
            prev_end = offset + size
