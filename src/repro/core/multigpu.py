"""Multi-GPU Pagoda — the extension §8 leaves open.

The paper "virtualizes the compute resources of a *single* GPU at the
granularity of a warp" (§7's contrast with Sengupta et al.).  This
module extends the runtime across several GPUs on one node: each GPU
runs its own MasterKernel + TaskTable over its own PCIe link, and the
host load-balances ``taskSpawn`` calls by shortest observed queue.

Everything else is unchanged — the per-GPU stack is exactly
:class:`~repro.core.runtime.PagodaSession`, sharing one simulated
clock.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.runtime import PagodaConfig, PagodaSession
from repro.gpu.spec import GpuSpec
from repro.gpu.timing import TimingModel
from repro.pcie.bus import Direction
from repro.sim import Engine
from repro.tasks import RunStats, TaskResult, TaskSpec


class MultiGpuPagoda:
    """N independent Pagoda stacks behind one load-balancing host."""

    def __init__(self, num_gpus: int = 2,
                 spec: Optional[GpuSpec] = None,
                 timing: Optional[TimingModel] = None,
                 config: Optional[PagodaConfig] = None) -> None:
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        self.engine = Engine()
        self.config = config or PagodaConfig()
        self.sessions: List[PagodaSession] = [
            PagodaSession(spec, timing, self.config, engine=self.engine)
            for _ in range(num_gpus)
        ]
        #: host-side estimate of outstanding tasks per GPU
        self._outstanding = [0] * num_gpus

    @property
    def num_gpus(self) -> int:
        """Number of GPU stacks in this node."""
        return len(self.sessions)

    def pick_gpu(self) -> int:
        """Shortest-queue-first placement (host-visible estimate)."""
        return min(range(self.num_gpus), key=lambda i: self._outstanding[i])

    def shutdown(self) -> None:
        """Interrupt this component's daemon processes."""
        for session in self.sessions:
            session.shutdown()


def run_multi_gpu_pagoda(tasks: List[TaskSpec],
                         num_gpus: int = 2,
                         spec: Optional[GpuSpec] = None,
                         timing: Optional[TimingModel] = None,
                         config: Optional[PagodaConfig] = None) -> RunStats:
    """Execute ``tasks`` across ``num_gpus`` Pagoda stacks."""
    config = config or PagodaConfig()
    node = MultiGpuPagoda(num_gpus, spec, timing, config)
    engine = node.engine
    timing = node.sessions[0].timing
    results = [TaskResult(i, t.name) for i, t in enumerate(tasks)]
    placements: List[int] = [-1] * len(tasks)

    def spawner():
        for i, task in enumerate(tasks):
            if config.spawn_gap_ns:
                yield config.spawn_gap_ns
            gpu_idx = node.pick_gpu()
            placements[i] = gpu_idx
            node._outstanding[gpu_idx] += 1
            session = node.sessions[gpu_idx]
            results[i].spawn_time = engine.now
            if config.copy_inputs and task.input_bytes:
                yield timing.memcpy_issue_ns
                engine.spawn(
                    session.bus.transfer(task.input_bytes, Direction.H2D),
                    f"incopy.{i}",
                )
            yield from session.host.task_spawn(task, results[i])

    spawner_proc = engine.spawn(spawner(), "mg-spawner")

    def collector(gpu_idx: int):
        session = node.sessions[gpu_idx]
        host, table = session.host, session.table
        n_copied = 0
        transfers = []
        while True:
            done_spawning = not spawner_proc.alive
            if done_spawning:
                yield from host.finalize_last()
            yield timing.wait_timeout_ns
            yield from table.copy_back()
            # push-based completion reporting (no per-poll set diff)
            for task_id in table.drain_completions():
                n_copied += 1
                node._outstanding[gpu_idx] -= 1
                col, row = table.id_map[task_id]
                spec_done = table.cpu[col][row].spec
                if (config.copy_outputs and spec_done is not None
                        and spec_done.output_bytes):
                    yield timing.memcpy_issue_ns
                    transfers.append(engine.spawn(
                        session.bus.transfer(spec_done.output_bytes,
                                             Direction.D2H),
                        f"outcopy.{gpu_idx}.{task_id}",
                    ))
            if done_spawning and host.spawn_count == n_copied:
                break
        for proc in transfers:
            yield proc

    collectors = [engine.spawn(collector(i), f"mg-collector.{i}")
                  for i in range(num_gpus)]
    engine.run()
    for proc in collectors:
        if not proc._done:
            raise RuntimeError("multi-GPU run did not complete")
    makespan = engine.now
    node.shutdown()
    executed = sum(s.master.tasks_executed() for s in node.sessions)
    if executed != len(tasks):
        raise RuntimeError(f"executed {executed} of {len(tasks)} tasks")
    return RunStats(
        runtime=f"pagoda-x{num_gpus}",
        makespan=makespan,
        results=results,
        copy_time=sum(s.bus.total_busy_time() for s in node.sessions),
        compute_time=max(r.end_time for r in results) if results else 0.0,
        mean_occupancy=sum(
            s.master.useful_occupancy(makespan) for s in node.sessions
        ) / num_gpus,
        meta={"placements": placements},
    )
