"""Multi-GPU Pagoda — the extension §8 leaves open.

The paper "virtualizes the compute resources of a *single* GPU at the
granularity of a warp" (§7's contrast with Sengupta et al.).  This
module extends the runtime across several GPUs on one node: each GPU
runs its own MasterKernel + TaskTable over its own PCIe link, and the
host load-balances ``taskSpawn`` calls by shortest observed queue.

Everything else is unchanged — the per-GPU stack is exactly
:class:`~repro.core.runtime.PagodaSession`, sharing one simulated
clock.

**Graceful degradation**: a GPU can die mid-run (an injected
``gpu.die`` fault or an explicit :meth:`MultiGpuPagoda.kill_gpu`).
The node marks the device's host dead — its spawn/wait loops raise
:class:`~repro.core.errors.GpuDeadError` instead of spinning — and the
driver re-queues every task that was in flight on the dead device onto
the survivors.  Throughput degrades proportionally; the run never
deadlocks, and each failover is recorded as a
:class:`~repro.core.errors.DegradationEvent`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.core.errors import DegradationEvent, GpuDeadError
from repro.core.runtime import PagodaConfig, PagodaSession
from repro.gpu.spec import GpuSpec
from repro.gpu.timing import TimingModel
from repro.pcie.bus import Direction
from repro.sim import Engine
from repro.tasks import RunStats, TaskResult, TaskSpec


class MultiGpuPagoda:
    """N independent Pagoda stacks behind one load-balancing host."""

    def __init__(self, num_gpus: int = 2,
                 spec: Optional[GpuSpec] = None,
                 timing: Optional[TimingModel] = None,
                 config: Optional[PagodaConfig] = None) -> None:
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        self.config = config or PagodaConfig()
        self.engine = Engine(lane=self.config.lane)
        self.sessions: List[PagodaSession] = [
            PagodaSession(spec, timing, self.config, engine=self.engine)
            for _ in range(num_gpus)
        ]
        #: host-side estimate of outstanding tasks per GPU
        self._outstanding = [0] * num_gpus
        #: indices of GPUs that died mid-run.
        self.dead_gpus: set = set()
        #: one record per failover (see :meth:`kill_gpu`).
        self.degradation_events: List[DegradationEvent] = []
        #: node-level fault injector (owns ``gpu.die`` specs; per-GPU
        #: faults live in each session's own injector).
        self.faults = None
        if self.config.fault_plan is not None:
            from repro.faults import FaultInjector
            self.faults = FaultInjector(self.engine, self.config.fault_plan)

    @property
    def num_gpus(self) -> int:
        """Number of GPU stacks in this node."""
        return len(self.sessions)

    @property
    def survivors(self) -> List[int]:
        """Indices of GPUs still alive."""
        return [i for i in range(self.num_gpus) if i not in self.dead_gpus]

    def pick_gpu(self) -> int:
        """Shortest-queue-first placement over the *surviving* GPUs."""
        alive = self.survivors
        if not alive:
            raise GpuDeadError("every GPU in the node is dead")
        return min(alive, key=lambda i: self._outstanding[i])

    def kill_gpu(self, gpu_idx: int) -> bool:
        """Declare one GPU dead: its MasterKernel daemons stop and its
        host's spawn/wait loops raise :class:`GpuDeadError` from now
        on.  Refuses to kill the last surviving GPU (there would be
        nothing to fail over to).  Returns whether the kill happened.

        Re-queueing the dead device's in-flight tasks is the driver's
        job (it owns the task bookkeeping) — see
        :func:`run_multi_gpu_pagoda`.
        """
        if gpu_idx in self.dead_gpus or len(self.survivors) <= 1:
            return False
        self.dead_gpus.add(gpu_idx)
        session = self.sessions[gpu_idx]
        session.host.dead = True
        session.shutdown()
        self._outstanding[gpu_idx] = 0
        return True

    def shutdown(self) -> None:
        """Interrupt this component's daemon processes."""
        for session in self.sessions:
            session.shutdown()


def run_multi_gpu_pagoda(tasks: List[TaskSpec],
                         num_gpus: int = 2,
                         spec: Optional[GpuSpec] = None,
                         timing: Optional[TimingModel] = None,
                         config: Optional[PagodaConfig] = None) -> RunStats:
    """Execute ``tasks`` across ``num_gpus`` Pagoda stacks.

    Survives mid-run GPU death: in-flight tasks of a dead device are
    re-spawned on the survivors and the failover is recorded in
    ``stats.meta["degradation_events"]``.
    """
    config = config or PagodaConfig()
    node = MultiGpuPagoda(num_gpus, spec, timing, config)
    engine = node.engine
    timing = node.sessions[0].timing
    results = [TaskResult(i, t.name) for i, t in enumerate(tasks)]
    placements: List[int] = [-1] * len(tasks)
    #: task indices not yet (or no longer) handed to a GPU.
    pending = deque(range(len(tasks)))
    #: per-GPU map of live taskID -> task index, for failover.
    inflight: List[Dict[int, int]] = [{} for _ in range(num_gpus)]
    done = [False] * len(tasks)
    remaining = [len(tasks)]
    finish_time = [0.0]
    spawner_procs: List = []

    def spawner():
        while pending:
            i = pending.popleft()
            task = tasks[i]
            first_spawn = results[i].spawn_time == 0.0
            if config.spawn_gap_ns and first_spawn:
                yield config.spawn_gap_ns
            gpu_idx = node.pick_gpu()
            session = node.sessions[gpu_idx]
            if first_spawn:
                results[i].spawn_time = engine.now
            if config.copy_inputs and task.input_bytes:
                yield timing.memcpy_issue_ns
                engine.spawn(
                    session.bus.transfer(task.input_bytes, Direction.H2D),
                    f"incopy.{i}",
                )
            try:
                task_id = yield from session.host.task_spawn(task, results[i])
            except GpuDeadError:
                # the device died while this spawn was in flight —
                # put the task back and try a survivor
                pending.appendleft(i)
                continue
            placements[i] = gpu_idx
            node._outstanding[gpu_idx] += 1
            inflight[gpu_idx][task_id] = i

    def done_spawning() -> bool:
        return not pending and not any(p.alive for p in spawner_procs)

    spawner_procs.append(engine.spawn(spawner(), "mg-spawner"))

    def fail_over(gpu_idx: int, reason: str = "gpu.die") -> None:
        """Kill one GPU and re-queue its in-flight tasks."""
        if not node.kill_gpu(gpu_idx):
            return
        lost = inflight[gpu_idx]
        inflight[gpu_idx] = {}
        indices = sorted(lost.values())
        for i in indices:
            placements[i] = -1
            pending.append(i)
        node.degradation_events.append(DegradationEvent(
            when_ns=engine.now, gpu_index=gpu_idx,
            resubmitted=len(indices), survivors=tuple(node.survivors),
            reason=reason,
        ))
        if pending and not any(p.alive for p in spawner_procs):
            # the original spawner already finished; re-queue needs a
            # fresh one or the failed-over work would never be issued
            spawner_procs.append(
                engine.spawn(spawner(), f"mg-respawner.{gpu_idx}")
            )

    if node.faults is not None:
        for die in node.faults.time_triggered("gpu.die"):
            target = (die.target or 0) % num_gpus

            def fire(s=die, g=target):
                fail_over(g, reason=s.kind)
                node.faults.record_fired(s, f"gpu{g}")

            engine.call_at(die.at_ns, fire)

    def collector(gpu_idx: int):
        session = node.sessions[gpu_idx]
        host, table = session.host, session.table
        transfers = []
        while True:
            if host.dead:
                break  # fail_over re-queued this device's tasks
            if done_spawning():
                yield from host.finalize_last()
            yield timing.wait_timeout_ns
            if host.dead:
                break
            yield from table.copy_back()
            # push-based completion reporting (no per-poll set diff)
            for task_id in table.drain_completions():
                i = inflight[gpu_idx].pop(task_id, None)
                if i is None or done[i]:
                    continue
                done[i] = True
                remaining[0] -= 1
                node._outstanding[gpu_idx] -= 1
                col, row = table.id_map[task_id]
                spec_done = table.cpu[col][row].spec
                if (config.copy_outputs and spec_done is not None
                        and spec_done.output_bytes):
                    yield timing.memcpy_issue_ns
                    transfers.append(engine.spawn(
                        session.bus.transfer(spec_done.output_bytes,
                                             Direction.D2H),
                        f"outcopy.{gpu_idx}.{task_id}",
                    ))
            if done_spawning() and remaining[0] == 0:
                break
        for proc in transfers:
            yield proc
        finish_time[0] = max(finish_time[0], engine.now)

    collectors = [engine.spawn(collector(i), f"mg-collector.{i}")
                  for i in range(num_gpus)]
    engine.run(raise_on_deadlock=True)
    for proc in collectors:
        if not proc._done:
            raise RuntimeError("multi-GPU run did not complete")
    makespan = finish_time[0]
    node.shutdown()
    executed = sum(s.master.tasks_executed() for s in node.sessions)
    failed = sum(s.master.tasks_failed() for s in node.sessions)
    clean = config.fault_plan is None and not node.degradation_events
    if clean and executed != len(tasks):
        raise RuntimeError(f"executed {executed} of {len(tasks)} tasks")
    meta = {"placements": placements}
    if not clean:
        meta.update({
            "tasks_failed": failed,
            "degradation_events": [
                {"when_ns": e.when_ns, "gpu_index": e.gpu_index,
                 "resubmitted": e.resubmitted, "survivors": list(e.survivors),
                 "reason": e.reason}
                for e in node.degradation_events
            ],
            "dead_gpus": sorted(node.dead_gpus),
        })
    return RunStats(
        runtime=f"pagoda-x{num_gpus}",
        makespan=makespan,
        results=results,
        copy_time=sum(s.bus.total_busy_time() for s in node.sessions),
        compute_time=max(r.end_time for r in results) if results else 0.0,
        mean_occupancy=sum(
            s.master.useful_occupancy(makespan) for s in node.sessions
        ) / num_gpus,
        meta=meta,
    )
