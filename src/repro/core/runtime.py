"""End-to-end Pagoda runner: assemble the stack and execute a task set.

This is the reproduction's equivalent of "link against libpagoda and
run": it brings up a GPU, a PCIe bus, the TaskTable, the MasterKernel
daemon, and a host, then plays a task list through the Table 1 API.

Two host threads mirror Fig. 1a's structure: a *spawner* issuing input
copies and ``taskSpawn`` calls, and a *collector* waiting on
completions and pulling output data back.  A ``batch_size`` turns the
runner into the **Pagoda-Batching** ablation of Fig. 11 (spawn a batch,
wait for it to drain, spawn the next — concurrent scheduling but no
continuous spawning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.host_api import PagodaHost
from repro.core.masterkernel import MTBS_PER_SMM, MasterKernel
from repro.core.tasktable import TaskTable
from repro.gpu.device import Gpu
from repro.gpu.spec import GpuSpec, titan_x
from repro.gpu.timing import DEFAULT_TIMING, TimingModel
from repro.pcie.bus import Direction, PcieBus
from repro.sim import Engine
from repro.tasks import RunStats, TaskResult, TaskSpec


@dataclass
class PagodaConfig:
    """Knobs for one Pagoda run."""

    #: run functional kernels (validated outputs) alongside timing.
    functional: bool = False
    #: spacing between task arrivals at the host (0 = all available).
    spawn_gap_ns: float = 0.0
    #: open-loop arrivals: task i *arrives* at i x spawn_gap_ns on the
    #: wall clock regardless of host progress (a sensor feed); latency
    #: is then measured from arrival, so host-side queueing shows up.
    #: Closed-loop (default) spaces spawns relative to host progress.
    open_loop: bool = False
    #: Pagoda-Batching mode: wait for each batch to finish before
    #: spawning the next (Fig. 11 ablation).  None = continuous.
    batch_size: Optional[int] = None
    #: move per-task input/output payloads over PCIe.
    copy_inputs: bool = True
    copy_outputs: bool = True
    #: TaskTable rows per MTB column (§4.2: Pagoda uses 32).
    rows: int = 32
    #: spawn protocol (§4.2.1): "pipelined" (Pagoda's), "two-copies"
    #: (safe strawman, doubles copy overhead), or "unsafe-single"
    #: (demonstrates the PCIe ordering hazard — may corrupt entries).
    protocol: str = "pipelined"
    #: number of host spawner threads (Fig. 1a uses 2 CPU threads; the
    #: collector is always a separate thread on top of these).
    spawner_threads: int = 1
    #: ablation: disable Algorithm 2's warp-parallel search — the
    #: scheduler places one warp per pass.
    serial_psched: bool = False
    #: extension: requeue tasks that cannot start placement instead of
    #: blocking the scheduler warp (Algorithm 1 blocks).  Required for
    #: priorities to reorder a deep backlog.
    deferred_scheduling: bool = False
    #: record scheduler decisions (promote/schedule/defer/task_done)
    #: into ``session.scheduler_trace`` (a Recorder).
    trace_scheduler: bool = False
    #: extension: merge back-to-back same-direction PCIe transactions
    #: (skip the per-transaction setup when the stream never idled).
    #: Off by default so figure numbers match the paper's cost model.
    pcie_coalesce: bool = False


class PagodaSession:
    """A live Pagoda stack, for API-level use (examples, tests)."""

    def __init__(self, spec: Optional[GpuSpec] = None,
                 timing: Optional[TimingModel] = None,
                 config: Optional[PagodaConfig] = None,
                 engine: Optional[Engine] = None) -> None:
        self.spec = spec or titan_x()
        self.timing = timing or DEFAULT_TIMING
        self.config = config or PagodaConfig()
        # a shared engine lets several sessions (e.g. one per GPU of a
        # multi-GPU node) advance on one simulated clock
        self.engine = engine or Engine()
        self.gpu = Gpu(self.engine, self.spec, self.timing)
        self.bus = PcieBus(self.engine, self.timing,
                           coalesce=self.config.pcie_coalesce)
        num_columns = self.spec.num_smms * MTBS_PER_SMM
        self.table = TaskTable(self.engine, self.bus, num_columns,
                               rows=self.config.rows)
        from repro.sim import Recorder
        self.scheduler_trace = (
            Recorder() if self.config.trace_scheduler else None
        )
        self.master = MasterKernel(
            self.engine, self.gpu, self.table,
            functional=self.config.functional,
            serial_psched=self.config.serial_psched,
            deferred_scheduling=self.config.deferred_scheduling,
            trace=self.scheduler_trace,
        )
        self.host = PagodaHost(self.engine, self.table, self.timing,
                               protocol=self.config.protocol)

    def shutdown(self) -> None:
        """Interrupt this component's daemon processes."""
        self.master.shutdown()


def run_pagoda(tasks: List[TaskSpec],
               spec: Optional[GpuSpec] = None,
               timing: Optional[TimingModel] = None,
               config: Optional[PagodaConfig] = None) -> RunStats:
    """Execute ``tasks`` under Pagoda; returns RunStats."""
    config = config or PagodaConfig()
    session = PagodaSession(spec, timing, config)
    engine, host, table, bus = (
        session.engine, session.host, session.table, session.bus
    )
    timing = session.timing
    results = [TaskResult(i, t.name) for i, t in enumerate(tasks)]
    id_to_task = {}

    if config.batch_size and config.spawner_threads != 1:
        raise ValueError("batching mode requires a single spawner thread")

    def spawner(indices):
        for count, i in enumerate(indices):
            task = tasks[i]
            if config.spawn_gap_ns and config.open_loop:
                arrival = (i + 1) * config.spawn_gap_ns
                if engine.now < arrival:
                    yield arrival - engine.now
                results[i].spawn_time = arrival
            elif config.spawn_gap_ns:
                yield config.spawn_gap_ns
                results[i].spawn_time = engine.now
            else:
                results[i].spawn_time = engine.now
            if config.copy_inputs and task.input_bytes:
                yield timing.memcpy_issue_ns  # cudaMemcpyAsync driver call
                engine.spawn(
                    bus.transfer(task.input_bytes, Direction.H2D),
                    f"incopy.{i}",
                )
            task_id = yield from host.task_spawn(task, results[i])
            id_to_task[task_id] = task
            if config.batch_size and (count + 1) % config.batch_size == 0:
                yield from host.wait_all()

    n_spawners = max(1, config.spawner_threads)
    spawner_procs = [
        engine.spawn(spawner(range(k, len(tasks), n_spawners)),
                     f"spawner{k}")
        for k in range(n_spawners)
    ]

    def collector():
        transfers = []
        while True:
            done_spawning = not any(p.alive for p in spawner_procs)
            if done_spawning:
                yield from host.finalize_last()
            yield timing.wait_timeout_ns
            yield from table.copy_back()
            # push-based completion reporting: the copy-back already
            # recorded which tasks newly finished, so drain that list
            # instead of diffing the whole ``finished`` set each poll
            for task_id in table.drain_completions():
                task = id_to_task.get(task_id)
                if (config.copy_outputs and task is not None
                        and task.output_bytes):
                    yield timing.memcpy_issue_ns  # issued by 2nd thread
                    transfers.append(engine.spawn(
                        bus.transfer(task.output_bytes, Direction.D2H),
                        f"outcopy.{task_id}",
                    ))
            if done_spawning and len(table.finished) >= len(tasks):
                break
        for proc in transfers:
            yield proc

    collector_proc = engine.spawn(collector(), "collector")
    engine.run()
    if not collector_proc._done:
        raise RuntimeError("Pagoda run did not complete (deadlock?)")
    makespan = engine.now
    session.shutdown()

    executed = session.master.tasks_executed()
    if executed != len(tasks):
        raise RuntimeError(
            f"executed {executed} of {len(tasks)} tasks"
        )
    return RunStats(
        runtime="pagoda" if not config.batch_size else "pagoda-batching",
        makespan=makespan,
        results=results,
        copy_time=bus.total_busy_time(),
        compute_time=max(r.end_time for r in results) if results else 0.0,
        mean_occupancy=session.master.useful_occupancy(makespan),
        meta={
            "entry_copies": table.entry_copies,
            "copy_backs": table.copy_backs,
        },
    )
