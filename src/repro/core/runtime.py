"""End-to-end Pagoda runner: assemble the stack and execute a task set.

This is the reproduction's equivalent of "link against libpagoda and
run": it brings up a GPU, a PCIe bus, the TaskTable, the MasterKernel
daemon, and a host, then plays a task list through the Table 1 API.

Two host threads mirror Fig. 1a's structure: a *spawner* issuing input
copies and ``taskSpawn`` calls, and a *collector* waiting on
completions and pulling output data back.  A ``batch_size`` turns the
runner into the **Pagoda-Batching** ablation of Fig. 11 (spawn a batch,
wait for it to drain, spawn the next — concurrent scheduling but no
continuous spawning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.errors import CudaLaunchError, RetryPolicy
from repro.core.host_api import PagodaHost
from repro.core.masterkernel import MTBS_PER_SMM, MasterKernel
from repro.core.tasktable import TaskTable
from repro.gpu.device import Gpu
from repro.gpu.spec import GpuSpec, titan_x
from repro.gpu.timing import DEFAULT_TIMING, TimingModel
from repro.pcie.bus import Direction, PcieBus
from repro.sim import Engine
from repro.tasks import RunStats, TaskResult, TaskSpec


@dataclass
class PagodaConfig:
    """Knobs for one Pagoda run."""

    #: run functional kernels (validated outputs) alongside timing.
    functional: bool = False
    #: spacing between task arrivals at the host (0 = all available).
    spawn_gap_ns: float = 0.0
    #: open-loop arrivals: task i *arrives* at i x spawn_gap_ns on the
    #: wall clock regardless of host progress (a sensor feed); latency
    #: is then measured from arrival, so host-side queueing shows up.
    #: Closed-loop (default) spaces spawns relative to host progress.
    open_loop: bool = False
    #: Pagoda-Batching mode: wait for each batch to finish before
    #: spawning the next (Fig. 11 ablation).  None = continuous.
    batch_size: Optional[int] = None
    #: move per-task input/output payloads over PCIe.
    copy_inputs: bool = True
    copy_outputs: bool = True
    #: TaskTable rows per MTB column (§4.2: Pagoda uses 32).
    rows: int = 32
    #: spawn protocol (§4.2.1): "pipelined" (Pagoda's), "two-copies"
    #: (safe strawman, doubles copy overhead), or "unsafe-single"
    #: (demonstrates the PCIe ordering hazard — may corrupt entries).
    protocol: str = "pipelined"
    #: number of host spawner threads (Fig. 1a uses 2 CPU threads; the
    #: collector is always a separate thread on top of these).
    spawner_threads: int = 1
    #: ablation: disable Algorithm 2's warp-parallel search — the
    #: scheduler places one warp per pass.
    serial_psched: bool = False
    #: extension: requeue tasks that cannot start placement instead of
    #: blocking the scheduler warp (Algorithm 1 blocks).  Required for
    #: priorities to reorder a deep backlog.
    deferred_scheduling: bool = False
    #: record scheduler decisions (promote/schedule/defer/task_done)
    #: into ``session.scheduler_trace`` (a Recorder).
    trace_scheduler: bool = False
    #: extension: merge back-to-back same-direction PCIe transactions
    #: (skip the per-transaction setup when the stream never idled).
    #: Off by default so figure numbers match the paper's cost model.
    pcie_coalesce: bool = False
    #: optional :class:`repro.faults.FaultPlan`; attaching one wires a
    #: seeded FaultInjector into every layer of the stack.  ``None``
    #: (and a zero-fault plan) leaves scheduling bit-identical to the
    #: fault-free run.
    fault_plan: Optional[object] = None
    #: kill-and-reclaim tasks still on the GPU this long after their
    #: scheduling started (None disables the MasterKernel watchdog).
    watchdog_deadline_ns: Optional[float] = None
    #: consecutive lethal failures before a TaskTable slot is retired
    #: from the free list (None disables quarantine).
    quarantine_threshold: Optional[int] = 3
    #: optional :class:`repro.obs.Obs`; attaching one instruments every
    #: layer of the stack (engine profiler, PCIe counters, TaskTable
    #: occupancy, scheduler decisions, per-SMM utilization timelines)
    #: and puts a ``stats_snapshot`` into ``RunStats.meta``.  ``None``
    #: (the default) leaves the run bit-identical and unslowed.
    obs: Optional[object] = None
    #: engine lane: "default" (per-record heap pops) or "fast"
    #: (same-timestamp batch drain).  Bit-identical schedules either
    #: way (docs/INTERNALS.md §10); ignored when an explicit ``engine``
    #: is handed to :class:`PagodaSession`.
    lane: str = "default"
    #: optional :class:`repro.partition.PartitionPlan`: split the GPU
    #: into isolated compute partitions (SPX/DPX/QPX or arbitrary SMM
    #: masks), each with its own MasterKernel/TaskTable/host.  A plain
    #: :class:`PagodaSession` cannot host partitions — build a
    #: :class:`repro.partition.PartitionedStack` (or let
    #: ``repro.partition.serve.serve_partitioned`` do it); the serve
    #: frontend dispatches there automatically when this is set.
    partition: Optional[object] = None


class PagodaSession:
    """A live Pagoda stack, for API-level use (examples, tests)."""

    def __init__(self, spec: Optional[GpuSpec] = None,
                 timing: Optional[TimingModel] = None,
                 config: Optional[PagodaConfig] = None,
                 engine: Optional[Engine] = None) -> None:
        self.spec = spec or titan_x()
        self.timing = timing or DEFAULT_TIMING
        self.config = config or PagodaConfig()
        if self.config.partition is not None:
            raise ValueError(
                "PagodaConfig.partition is set: a PagodaSession owns the "
                "whole device; build a repro.partition.PartitionedStack "
                "for partitioned runs"
            )
        # a shared engine lets several sessions (e.g. one per GPU of a
        # multi-GPU node) advance on one simulated clock
        self.engine = engine or Engine(lane=self.config.lane)
        #: seeded fault injector shared by every layer (None when the
        #: config carries no fault plan).
        self.faults = None
        if self.config.fault_plan is not None:
            from repro.faults import FaultInjector
            self.faults = FaultInjector(self.engine, self.config.fault_plan)
        #: optional Obs shared by every layer (None = no instrumentation).
        self.obs = self.config.obs
        if self.obs is not None and getattr(self.obs, "profiler", None):
            self.engine.profiler = self.obs.profiler
        if self.obs is not None:
            # start the occupancy memo from a clean slate so the
            # snapshot's hit/miss counters are per-run deterministic
            # (the lru_caches are process-global otherwise)
            from repro.gpu.occupancy import reset_memo_counters
            reset_memo_counters()
        self.gpu = Gpu(self.engine, self.spec, self.timing, obs=self.obs)
        self.bus = PcieBus(self.engine, self.timing,
                           coalesce=self.config.pcie_coalesce,
                           faults=self.faults, obs=self.obs)
        num_columns = self.spec.num_smms * MTBS_PER_SMM
        self.table = TaskTable(
            self.engine, self.bus, num_columns, rows=self.config.rows,
            faults=self.faults,
            quarantine_threshold=self.config.quarantine_threshold,
            obs=self.obs,
        )
        from repro.sim import Recorder
        self.scheduler_trace = (
            Recorder() if self.config.trace_scheduler else None
        )
        self.master = MasterKernel(
            self.engine, self.gpu, self.table,
            functional=self.config.functional,
            serial_psched=self.config.serial_psched,
            deferred_scheduling=self.config.deferred_scheduling,
            trace=self.scheduler_trace,
            watchdog_deadline_ns=self.config.watchdog_deadline_ns,
            faults=self.faults,
            obs=self.obs,
        )
        self.host = PagodaHost(self.engine, self.table, self.timing,
                               protocol=self.config.protocol,
                               faults=self.faults)
        if self.faults is not None:
            self._arm_timed_faults(num_columns)

    def _arm_timed_faults(self, num_columns: int) -> None:
        """Schedule the plan's time-triggered faults (SMM brown-outs)
        as engine callbacks.  ``gpu.die`` specs are left to the
        multi-GPU node, which owns device lifetime."""
        for spec in self.faults.time_triggered("gpu.brownout"):
            column = (spec.target or 0) % num_columns

            def fire(s=spec, c=column):
                self.master.brownout(c, reason=s.kind)
                self.faults.record_fired(s, f"mtb{c}")

            self.engine.call_at(spec.at_ns, fire)

    def shutdown(self) -> None:
        """Interrupt this component's daemon processes."""
        self.master.shutdown()


def run_pagoda(tasks: List[TaskSpec],
               spec: Optional[GpuSpec] = None,
               timing: Optional[TimingModel] = None,
               config: Optional[PagodaConfig] = None) -> RunStats:
    """Execute ``tasks`` under Pagoda; returns RunStats."""
    config = config or PagodaConfig()
    session = PagodaSession(spec, timing, config)
    engine, host, table, bus = (
        session.engine, session.host, session.table, session.bus
    )
    timing = session.timing
    results = [TaskResult(i, t.name) for i, t in enumerate(tasks)]
    id_to_task = {}

    if config.batch_size and config.spawner_threads != 1:
        raise ValueError("batching mode requires a single spawner thread")
    retry_policy = RetryPolicy()
    # the watchdog's stale one-shot timers outlive the workload and
    # inflate engine.now; the makespan is the instant the collector
    # finished, not when the queue drained
    finish_time = [0.0]

    def spawner(indices):
        for count, i in enumerate(indices):
            task = tasks[i]
            if config.spawn_gap_ns and config.open_loop:
                arrival = (i + 1) * config.spawn_gap_ns
                if engine.now < arrival:
                    yield arrival - engine.now
                results[i].spawn_time = arrival
            elif config.spawn_gap_ns:
                yield config.spawn_gap_ns
                results[i].spawn_time = engine.now
            else:
                results[i].spawn_time = engine.now
            if config.copy_inputs and task.input_bytes:
                yield timing.memcpy_issue_ns  # cudaMemcpyAsync driver call
                engine.spawn(
                    bus.transfer(task.input_bytes, Direction.H2D),
                    f"incopy.{i}",
                )
            attempt = 0
            while True:
                try:
                    task_id = yield from host.task_spawn(task, results[i])
                    break
                except CudaLaunchError:
                    # injected cudaErrorLaunchFailure: back off and
                    # re-issue (capped exponential) instead of dying
                    attempt += 1
                    if attempt >= retry_policy.max_attempts:
                        raise
                    yield retry_policy.backoff_ns(attempt - 1)
            id_to_task[task_id] = task
            if config.batch_size and (count + 1) % config.batch_size == 0:
                yield from host.wait_all()

    n_spawners = max(1, config.spawner_threads)
    spawner_procs = [
        engine.spawn(spawner(range(k, len(tasks), n_spawners)),
                     f"spawner{k}")
        for k in range(n_spawners)
    ]

    def collector():
        transfers = []
        while True:
            done_spawning = not any(p.alive for p in spawner_procs)
            if done_spawning:
                yield from host.finalize_last()
            yield timing.wait_timeout_ns
            yield from table.copy_back()
            # push-based completion reporting: the copy-back already
            # recorded which tasks newly finished, so drain that list
            # instead of diffing the whole ``finished`` set each poll
            for task_id in table.drain_completions():
                task = id_to_task.get(task_id)
                if (config.copy_outputs and task is not None
                        and task.output_bytes):
                    yield timing.memcpy_issue_ns  # issued by 2nd thread
                    transfers.append(engine.spawn(
                        bus.transfer(task.output_bytes, Direction.D2H),
                        f"outcopy.{task_id}",
                    ))
            if done_spawning and len(table.finished) >= len(tasks):
                break
        for proc in transfers:
            yield proc
        finish_time[0] = engine.now

    collector_proc = engine.spawn(collector(), "collector")
    engine.run(raise_on_deadlock=True)
    if not collector_proc._done:
        raise RuntimeError("Pagoda run did not complete (deadlock?)")
    makespan = finish_time[0]
    session.shutdown()

    executed = session.master.tasks_executed()
    failed = session.master.tasks_failed()
    if executed != len(tasks) and session.faults is None:
        raise RuntimeError(
            f"executed {executed} of {len(tasks)} tasks"
        )
    meta = {
        "entry_copies": table.entry_copies,
        "copy_backs": table.copy_backs,
    }
    if session.faults is not None:
        meta.update({
            "faults_injected": session.faults.injected_count,
            "tasks_failed": failed,
            "task_errors": {e.task_id: e.reason
                            for e in session.host.task_errors()},
            "watchdog_kills": len(session.master.watchdog_kills()),
            "quarantined_slots": sorted(table.quarantined),
        })
    if session.obs is not None:
        from repro.gpu.occupancy import memo_stats
        memo = memo_stats()
        session.obs.counter("gpu.occupancy.memo_hits").inc(memo["hits"])
        session.obs.counter("gpu.occupancy.memo_misses").inc(memo["misses"])
        meta["stats_snapshot"] = session.obs.snapshot(engine)
    return RunStats(
        runtime="pagoda" if not config.batch_size else "pagoda-batching",
        makespan=makespan,
        results=results,
        copy_time=bus.total_busy_time(),
        compute_time=max(r.end_time for r in results) if results else 0.0,
        mean_occupancy=session.master.useful_occupancy(makespan),
        meta=meta,
    )
