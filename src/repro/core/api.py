"""Table 1's Pagoda Programming API, under the paper's exact names.

The reproduction's native interface is Pythonic
(:class:`~repro.core.host_api.PagodaHost`,
:class:`~repro.device_api.BlockContext`); this façade exposes the
paper's camelCase functions so code can be ported one-to-one from the
paper's listings:

==================  ======  ==========================================
Pagoda function     caller  here
==================  ======  ==========================================
``taskSpawn``       CPU     :meth:`PagodaApi.taskSpawn`
``wait``            CPU     :meth:`PagodaApi.wait`
``check``           CPU     :meth:`PagodaApi.check`
``waitAll``         CPU     :meth:`PagodaApi.waitAll`
``getTid``          GPU     :func:`getTid`
``syncBlock``       GPU     :func:`syncBlock`
``getSMPtr``        GPU     :func:`getSMPtr`
==================  ======  ==========================================

CPU-side functions are generator subroutines (call with ``yield
from`` inside a host process) since the host runs on the simulated
clock.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.runtime import PagodaSession
from repro.device_api import BlockContext
from repro.tasks import TaskResult, TaskSpec


class PagodaApi:
    """CPU-side Table 1 functions bound to one session."""

    def __init__(self, session: PagodaSession) -> None:
        self.session = session
        self._results = {}

    def taskSpawn(self, numThreads: int, numThreadblocks: int,
                  sharedMemory: int, syncFlag: bool, kernel,
                  kernelArgs=None, func=None) -> Generator:
        """Spawn a task from the CPU onto Pagoda; returns the taskId.

        Signature follows Table 1's argument list: #threads,
        #threadblocks, shared memory, sync flag, kernel pointer,
        kernel args.
        """
        spec = TaskSpec(
            name=getattr(kernel, "__name__", "task"),
            threads_per_block=numThreads,
            num_blocks=numThreadblocks,
            kernel=kernel,
            shared_mem_bytes=sharedMemory,
            needs_sync=syncFlag,
            work=kernelArgs,
            func=func,
        )
        result = TaskResult(0, spec.name)
        task_id = yield from self.session.host.task_spawn(spec, result)
        self._results[task_id] = result
        return task_id

    def wait(self, taskId: int) -> Generator:
        """Wait until the specified task is over."""
        yield from self.session.host.wait(taskId)

    def check(self, taskId: int) -> bool:
        """True if the task is done, else False."""
        return self.session.host.check(taskId)

    def waitAll(self) -> Generator:
        """Wait until all tasks in Pagoda are over."""
        yield from self.session.host.wait_all()

    def result(self, taskId: int) -> Optional[TaskResult]:
        """Timestamps of a spawned task (reproduction convenience)."""
        return self._results.get(taskId)


# -- GPU-side functions (Table 1's device API) ---------------------------

def getTid(ctx: BlockContext):
    """Get the thread Id of this thread (vector over the block)."""
    return ctx.tid()


def syncBlock(ctx: BlockContext) -> None:
    """Synchronize all threads in the block."""
    ctx.sync_block()


def getSMPtr(ctx: BlockContext):
    """Get the shared mem pointer for the threadblock (32-byte
    aligned)."""
    return ctx.get_sm_ptr()
