#!/usr/bin/env bash
# End-to-end reproduction driver.
#
#   scripts/reproduce_all.sh            # scaled (CI-speed) pass
#   PAGODA_FULL=1 scripts/reproduce_all.sh   # paper-scale (hours)
#   PAGODA_JOBS=8 scripts/reproduce_all.sh   # worker count for the sweep
#
# Produces test_output.txt, sweep_output.txt, bench_output.txt, and
# per-artefact reports under benchmarks/results/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== unit / property / integration tests"
python -m pytest tests/ 2>&1 | tee test_output.txt | tail -2

echo "== every table & figure, fanned across worker processes"
# Each artefact is an independent deterministic sim, so the sweep is
# embarrassingly parallel and produces the same result tables as a
# serial run (repro.bench.parallel's determinism contract).
python -m repro.bench all --parallel "${PAGODA_JOBS:-$(nproc)}" 2>&1 \
    | tee sweep_output.txt | tail -3

echo "== every table & figure of the paper's evaluation (timed suite)"
python -m pytest benchmarks/ --benchmark-only 2>&1 \
    | tee bench_output.txt | tail -5

echo "== simulator-core perf trajectory (BENCH_simcore.json)"
python scripts/bench.py

echo "== examples"
for example in examples/*.py; do
    echo "-- $example"
    python "$example" > /dev/null
done

echo "== calibration drift check (constants should still match Table 3)"
python scripts/calibrate.py --tasks 256

echo "done; see benchmarks/results/ and EXPERIMENTS.md"
