#!/usr/bin/env python
"""Simulator-core perf trajectory: measure, record, and guard.

Runs the hot-path scenarios of ``benchmarks/test_simulator_throughput.py``
(engine ping-pong, processor-sharing churn, end-to-end Pagoda stack),
the wide-fan lane comparison (the same many-tickers scenario on the
default and fast engine lanes; their ratio is ``engine_lane_speedup``,
guarded by an absolute >=2x floor), microbenchmarks of the indexed
runtime structures (scheduler dirty-row wakes, WarpTable
dispatch/retire), the serving frontend end-to-end (arrivals through
latency accounting), the cluster fleet sequentially vs sharded across
worker processes (``cluster_speedup``, guarded by an absolute >=2x
floor on hosts with >= 4 cores), the same fleet over a 1%-lossy
fabric (``fleet_degraded_throughput``, deterministic virtual-time
goodput under the reliability lane), the partitioned noisy-neighbor
scenario (``partition_p99_ratio`` / ``partition_elastic_recovery``,
deterministic virtual-time shape metrics of the SR-IOV-style compute
partitioning), the full incident-scenario catalog (``scenarios`` in
the record: per-scenario pass/fail from ``repro.scenarios`` — every
catalog scenario must pass, an absolute deterministic guard), plus a
small Fig. 5 slice on each lane, and writes ``BENCH_simcore.json`` at
the repo root so every PR leaves a perf data point behind.  Guards
that stand down on this host (for example the cluster speedup floor
on small machines) are listed under ``skipped`` in the record *and*
printed on exit, so silent skips are visible in CI logs as well as to
``--json`` consumers.

If a committed ``BENCH_simcore.json`` already exists, the fresh
throughputs are compared against it first: any metric that regresses
by more than ``REGRESSION_TOLERANCE`` (20 %) prints a warning and the
script exits non-zero (pass ``--no-fail`` to downgrade to a warning
only).  A missing or schema-mismatched baseline is not an error — the
script records a fresh one and exits 0 ("no baseline, recording
fresh"), so first runs and record-format changes never fail a guard
that has nothing to guard against.  Wall-clock numbers are machine-dependent; the guard is meant
to catch order-of-magnitude hot-path regressions, not scheduler noise
— hence the generous tolerance and best-of-N timing.

Usage::

    python scripts/bench.py             # measure, check, rewrite JSON
    python scripts/bench.py --no-fail   # never exit non-zero
    python scripts/bench.py --check     # compare without rewriting
    python scripts/bench.py --json      # machine-readable record on
                                        # stdout, human output on stderr
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import platform
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.bench import cluster as bench_cluster_mod  # noqa: E402
from repro.bench import fig5  # noqa: E402
# re-exported at module level: tests and sibling scripts import the
# conda-silencing helper from here by name
from repro.bench.subproc import clean_subprocess_env  # noqa: E402,F401
from repro.core import PagodaConfig, run_pagoda  # noqa: E402
from repro.gpu.phases import Phase  # noqa: E402
from repro.sim import Engine, ProcessorSharing  # noqa: E402
from repro.tasks import TaskSpec  # noqa: E402

OUTPUT = ROOT / "BENCH_simcore.json"
REGRESSION_TOLERANCE = 0.20
FIG5_SLICE_TASKS = 48
#: hard floor on instrumented/uninstrumented pagoda throughput: obs-on
#: is allowed to cost (profiler wrapping is per-event), but if a full
#: Obs context ever costs more than 4x it stopped being "observability"
#: and became the workload.
OBS_OVERHEAD_FLOOR = 0.25
#: hard floor on the fast-lane/default-lane throughput ratio of the
#: wide-fan scenario (the regime the batch drain exists for): if the
#: fast lane stops paying at least 2x on its home turf it has become
#: dead weight and the guard should say so.
LANE_SPEEDUP_FLOOR = 2.0
#: wide-fan scenario shape: many identical tickers colliding on every
#: instant -> FAN_TICKERS * FAN_TICKS timer events per run.
FAN_TICKERS = 64
FAN_TICKS = 3_125
#: hard floor on the sequential/sharded wall-time ratio of the cluster
#: fleet scenario at CLUSTER_WORKERS workers.  Only enforced on hosts
#: with at least that many cores: a 1-core container cannot
#: demonstrate parallel speedup, so there the ratio is recorded
#: unguarded (the byte-identity assertion inside the measurement still
#: applies everywhere).
CLUSTER_SPEEDUP_FLOOR = 2.0
CLUSTER_WORKERS = 4
#: hard floors on the partitioned noisy-neighbor scenario, absolute
#: and deterministic (virtual time): static partitioning must keep the
#: victim's p99 strictly below the shared-device run, and the elastic
#: rebalancer must win back at least half the utilization gap static
#: isolation opens against the shared device.
PARTITION_P99_RATIO_FLOOR = 1.0
PARTITION_RECOVERY_FLOOR = 0.5

#: Seed-commit throughputs measured on the machine that recorded the
#: first BENCH_simcore.json (best-of-run minima of the pytest-benchmark
#: suite at the pre-optimization seed).  Kept so the recorded speedup
#: of the simulation-core overhaul stays visible in the trajectory.
SEED_BASELINE = {
    "engine_events_per_s": 1_334_000.0,   # 20k ping-pong events / 15.0 ms
    "ps_jobs_per_s": 19_470.0,            # 2k churn jobs / 102.7 ms
    "pagoda_tasks_per_s": 5_535.0,        # 500 tasks / 90.3 ms
}


def _best_of(fn, repeats):
    """(result, best wall seconds) over ``repeats`` timed calls.

    The cyclic collector is drained before and paused during each
    timed call: scenarios run back-to-back in one process, and without
    this the garbage of one scenario is collected inside the timing
    window of the next (observed as a spurious ~25% slowdown of the
    Pagoda stack when measured after the PS churn).
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
    return result, best


def bench_engine_events(repeats: int = 5):
    """Ping-pong of timers: pure event-loop overhead -> events/s."""
    def run():
        eng = Engine()

        def ticker():
            for _ in range(20_000):
                yield 1.0

        eng.spawn(ticker())
        eng.run()
        return eng.event_count

    events, wall = _best_of(run, repeats)
    return events / wall, wall


def bench_engine_fan(lane: str, repeats: int = 5):
    """Wide fan of identical tickers -> events/s on the chosen lane.

    Every instant carries ``FAN_TICKERS`` simultaneous timer firings —
    the same-timestamp regime the fast lane's batch drain targets.  The
    scenario is run on both lanes with identical inputs; the ratio is
    the ``engine_lane_speedup`` guard metric (a like-for-like compare,
    unlike ``engine_events_per_s`` whose single-ticker ping-pong never
    forms a batch).
    """
    def run():
        eng = Engine(lane=lane)

        def ticker():
            for _ in range(FAN_TICKS):
                yield 1.0

        for _ in range(FAN_TICKERS):
            eng.spawn(ticker())
        eng.run()
        return eng.event_count

    events, wall = _best_of(run, repeats)
    return events / wall, wall


def bench_ps_churn(repeats: int = 5):
    """Arrival/departure churn on one PS pool -> jobs/s."""
    def run():
        eng = Engine()
        ps = ProcessorSharing(eng, rate=4.0, per_job_cap=1.0)
        done = []

        def job(i):
            yield ps.consume(10.0 + (i % 7))
            done.append(i)

        for i in range(2_000):
            eng.spawn(job(i))
        eng.run()
        return len(done)

    jobs, wall = _best_of(run, repeats)
    return jobs / wall, wall


def bench_pagoda_stack(repeats: int = 3):
    """End-to-end tasks/s through MasterKernel + TaskTable + host."""
    def kernel(task, block_id, warp_id):
        yield Phase(inst=2_000, mem_bytes=256)

    def run():
        tasks = [TaskSpec(f"t{i}", 128, 1, kernel) for i in range(500)]
        stats = run_pagoda(tasks, config=PagodaConfig(
            copy_inputs=False, copy_outputs=False))
        return len(stats.results)

    completed, wall = _best_of(run, repeats)
    return completed / wall, wall


def bench_obs_overhead(repeats: int = 3):
    """The pagoda-stack scenario again with a full Obs attached.

    Returns ``(tasks/s, wall, snapshot)``; the ratio against the
    uninstrumented run is the ``obs_on_off_ratio`` guard metric, and
    the (deterministic) snapshot rides in the bench record so every PR
    leaves a stats digest behind alongside its perf numbers.
    """
    from repro.obs import Obs

    def kernel(task, block_id, warp_id):
        yield Phase(inst=2_000, mem_bytes=256)

    snapshots = []

    def run():
        tasks = [TaskSpec(f"t{i}", 128, 1, kernel) for i in range(500)]
        obs = Obs()
        stats = run_pagoda(tasks, config=PagodaConfig(
            copy_inputs=False, copy_outputs=False, obs=obs))
        snapshots.append(stats.meta["stats_snapshot"])
        return len(stats.results)

    completed, wall = _best_of(run, repeats)
    return completed / wall, wall, snapshots[-1]


def bench_scheduler_wakes(repeats: int = 5):
    """Dirty-row mark/drain churn on a TaskTable -> wakes/s.

    Models the scheduler-warp wake path: writers flag random rows of a
    column, one wake claims the column's whole mask and walks only the
    set bits — the O(changed) replacement for the seed's 32-row rescan.
    """
    from repro.core.tasktable import TaskTable
    from repro.gpu.timing import TimingModel
    from repro.pcie.bus import PcieBus

    WAKES = 20_000
    ROWS = 32

    def run():
        eng = Engine()
        table = TaskTable(eng, PcieBus(eng, TimingModel()), 48, rows=ROWS)
        mark = table.mark_row_dirty
        take = table.take_dirty_rows
        visited = 0
        # a deterministic pseudo-random row stream (LCG; no RNG dep)
        state = 0x2545F491
        for wake in range(WAKES):
            col = wake % 48
            for _ in range(3):  # three writers per wake, typical load
                state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                mark(col, state % ROWS)
            mask = take(col)
            while mask:
                mask &= mask - 1
                visited += 1
        return WAKES

    wakes, wall = _best_of(run, repeats)
    return wakes / wall, wall


def bench_warptable_churn(repeats: int = 5):
    """Dispatch/retire churn on one WarpTable -> dispatches/s.

    Models pSched's inner loop: pick the lowest free slot from the
    ballot word, fill it, retire another — the O(1) replacement for the
    seed's materialized free-list rebuild per placement.
    """
    from repro.core.warptable import WarpTable

    OPS = 50_000

    def run():
        wt = WarpTable()
        dispatch = wt.dispatch
        retire = wt.retire
        lowest = wt.lowest_free
        busy = []
        for op in range(OPS):
            if busy and (op & 3) == 3 or wt.free_count == 0:
                retire(busy.pop())
            else:
                slot = lowest()
                dispatch(slot, warp_id=op & 31, e_num=op & 31,
                         sm_index=0, bar_id=-1, block_id=0)
                busy.append(slot)
        return OPS

    ops, wall = _best_of(run, repeats)
    return ops / wall, wall


def bench_serve_stack(repeats: int = 3):
    """End-to-end requests/s through the serving frontend (arrivals ->
    admission -> spawn -> latency accounting) -> requests/s."""
    from repro.serve import PoissonArrivals, TenantSpec, serve

    def kernel(task, block_id, warp_id):
        yield Phase(inst=2_000, mem_bytes=256)

    def run():
        tasks = [TaskSpec(f"t{i}", 128, 1, kernel) for i in range(500)]
        rep = serve([TenantSpec("bench", tasks,
                                PoissonArrivals(200_000.0, seed=1))])
        return rep.completed

    completed, wall = _best_of(run, repeats)
    return completed / wall, wall


def bench_cluster():
    """Fleet scenario sequentially vs process-sharded -> speedup ratio.

    The measurement asserts byte-identity of the two runs' fleet
    reports before returning any number, so the recorded
    ``cluster_speedup`` is always a ratio of two identical
    simulations.  Not best-of-N: one sharded run forks a worker pool,
    and the pool setup cost is part of what the number should reflect.
    """
    workers = min(CLUSTER_WORKERS, max(1, os.cpu_count() or 1))
    measured = bench_cluster_mod.measure_speedup(workers)
    return measured


def bench_cluster_degraded():
    """Fleet goodput over a 1%-lossy fabric -> virtual throughput.

    ``fleet_degraded_throughput`` is completions per *simulated*
    second under the reliability lane (retransmits, hedging), so it is
    deterministic: it tracks how much goodput the self-healing layer
    preserves, not host speed — and is therefore excluded from the
    generic wall-clock regression comparison.
    """
    return bench_cluster_mod.measure_degraded()


def bench_partition():
    """Noisy-neighbor scenario through shared/static/elastic modes.

    ``partition_p99_ratio`` (shared victim p99 over static victim p99
    — isolation must keep it > 1) and ``partition_elastic_recovery``
    (fraction of the shared-vs-static utilization gap the elastic
    rebalancer wins back) are virtual-time and deterministic, so they
    are excluded from the generic wall-clock regression comparison;
    any change is a semantic change in the partition manager.
    """
    from repro.bench import partition as bench_partition_mod

    start = time.perf_counter()
    results = bench_partition_mod.run(num_tasks=96)
    wall = time.perf_counter() - start
    return {
        "partition_p99_ratio": round(results["p99_shared_over_static"], 2),
        "partition_elastic_recovery":
            round(results["elastic_util_recovery"], 3),
        "partition_wall_s": round(wall, 4),
    }


def bench_scenarios():
    """The incident-scenario catalog, every scenario at its default
    seed.  Verdicts are virtual-time and deterministic; the guard is
    absolute (all must pass) and the per-scenario lines ride in the
    record so ``--json`` consumers see which scenario broke."""
    from repro.bench import scenarios as bench_scenarios_mod

    start = time.perf_counter()
    results = bench_scenarios_mod.run()
    wall = time.perf_counter() - start
    return {
        "passed": results["passed"],
        "total": results["total"],
        "all_passed": results["all_passed"],
        "lines": [row["line"] for row in results["scenarios"]],
        "failures": [f for row in results["scenarios"]
                     for f in row["failures"]],
        "wall_s": round(wall, 4),
    }


def bench_fig5_slice(repeats: int = 1, lane: str = "default"):
    """Small Fig. 5 slice: full multi-runtime sweep wall time."""
    _, wall = _best_of(
        lambda: fig5.run(num_tasks=FIG5_SLICE_TASKS, lane=lane), repeats)
    return wall


def measure() -> dict:
    """Run every scenario and assemble the record."""
    events_per_s, events_wall = bench_engine_events()
    fan_per_s, fan_wall = bench_engine_fan("default")
    fast_per_s, fast_wall = bench_engine_fan("fast")
    jobs_per_s, ps_wall = bench_ps_churn()
    tasks_per_s, pagoda_wall = bench_pagoda_stack()
    obs_tasks_per_s, obs_wall, stats_snapshot = bench_obs_overhead()
    wakes_per_s, wakes_wall = bench_scheduler_wakes()
    warp_ops_per_s, warp_wall = bench_warptable_churn()
    serve_per_s, serve_wall = bench_serve_stack()
    cluster_measured = bench_cluster()
    cluster_degraded = bench_cluster_degraded()
    partition_measured = bench_partition()
    scenarios_measured = bench_scenarios()
    fig5_wall = bench_fig5_slice()
    fig5_fast_wall = bench_fig5_slice(lane="fast")
    metrics = {
        "engine_events_per_s": round(events_per_s, 1),
        "engine_events_per_s_fan": round(fan_per_s, 1),
        "engine_events_per_s_fast": round(fast_per_s, 1),
        "engine_lane_speedup": round(fast_per_s / fan_per_s, 2),
        "ps_jobs_per_s": round(jobs_per_s, 1),
        "pagoda_tasks_per_s": round(tasks_per_s, 1),
        "pagoda_tasks_per_s_obs": round(obs_tasks_per_s, 1),
        "obs_on_off_ratio": round(obs_tasks_per_s / tasks_per_s, 3),
        "scheduler_wakes_per_s": round(wakes_per_s, 1),
        "warptable_ops_per_s": round(warp_ops_per_s, 1),
        "serve_requests_per_s": round(serve_per_s, 1),
        "cluster_speedup": cluster_measured["cluster_speedup"],
        "fleet_degraded_throughput":
            cluster_degraded["fleet_degraded_throughput"],
        "partition_p99_ratio": partition_measured["partition_p99_ratio"],
        "partition_elastic_recovery":
            partition_measured["partition_elastic_recovery"],
    }
    return {
        "metrics": metrics,
        "wall_s": {
            "engine_ping_pong": round(events_wall, 4),
            "engine_fan_default": round(fan_wall, 4),
            "engine_fan_fast": round(fast_wall, 4),
            "ps_churn": round(ps_wall, 4),
            "pagoda_stack": round(pagoda_wall, 4),
            "pagoda_stack_obs": round(obs_wall, 4),
            "scheduler_wakes": round(wakes_wall, 4),
            "warptable_churn": round(warp_wall, 4),
            "serve_stack": round(serve_wall, 4),
            "cluster_seq": cluster_measured["seq_wall_s"],
            "cluster_sharded": cluster_measured["par_wall_s"],
            "cluster_degraded": cluster_degraded["degraded_wall_s"],
            "partition_isolation": partition_measured["partition_wall_s"],
            "scenario_catalog": scenarios_measured["wall_s"],
            f"fig5_slice_{FIG5_SLICE_TASKS}_tasks": round(fig5_wall, 2),
            f"fig5_slice_fast_{FIG5_SLICE_TASKS}_tasks":
                round(fig5_fast_wall, 2),
        },
        "stats_snapshot": stats_snapshot,
        "scenarios": {k: v for k, v in scenarios_measured.items()
                      if k != "wall_s"},
        "cluster_workers": cluster_measured["workers"],
        # metrics introduced after the seed commit have no seed number
        # to compare against and are simply absent here
        "speedup_vs_seed": {
            key: round(metrics[key] / seed, 2)
            for key, seed in SEED_BASELINE.items()
            if key in metrics
        },
        "seed_baseline": SEED_BASELINE,
        "python": platform.python_version(),
        "recorded_unix_time": int(time.time()),
    }


def load_baseline(baseline_path: pathlib.Path):
    """The committed baseline's metrics, or ``None`` when unusable.

    Missing file, unparsable JSON, a record without a ``metrics``
    mapping, or non-numeric metric values all count as "no baseline" —
    the caller records a fresh one instead of crashing, so a first run
    (or a schema change in the record format) never breaks ``--check``.
    """
    if not baseline_path.exists():
        return None
    try:
        metrics = json.loads(baseline_path.read_text())["metrics"]
    except (ValueError, KeyError, TypeError):
        return None
    if not isinstance(metrics, dict) or not all(
            isinstance(v, (int, float)) for v in metrics.values()):
        return None
    return metrics


# Guard metrics with their own dedicated checks (the obs overhead
# ratio and the lane speedup have hard floors above) are excluded from
# the generic >20% throughput comparison: a ratio of two noisy timings
# swings far more run-to-run than either timing alone.
# ``fleet_degraded_throughput`` is excluded for the opposite reason —
# it is *virtual-time* throughput, deterministic by construction, so
# any change is a semantic change in the reliability lane, not a host
# perf regression the generic wall-clock guard should judge.
_NON_THROUGHPUT_METRICS = frozenset({"obs_on_off_ratio",
                                     "engine_lane_speedup",
                                     "cluster_speedup",
                                     "fleet_degraded_throughput",
                                     "partition_p99_ratio",
                                     "partition_elastic_recovery"})


def check_regression(record: dict, baseline: dict) -> list:
    """Metrics that regressed >tolerance vs the committed baseline."""
    regressed = []
    for key, old in baseline.items():
        if key in _NON_THROUGHPUT_METRICS:
            continue
        new = record["metrics"].get(key)
        if new is None or old <= 0:
            continue
        if new < old * (1.0 - REGRESSION_TOLERANCE):
            regressed.append((key, old, new))
    return regressed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--no-fail", action="store_true",
                        help="warn on regression but exit 0")
    parser.add_argument("--check", "--check-only", dest="check_only",
                        action="store_true",
                        help="compare against the baseline without rewriting it")
    parser.add_argument("--output", type=pathlib.Path, default=OUTPUT,
                        help=f"record path (default: {OUTPUT})")
    parser.add_argument("--json", action="store_true",
                        help="emit the record as JSON on stdout; all "
                             "human-readable output moves to stderr so "
                             "the stream stays machine-parsable")
    args = parser.parse_args(argv)

    if args.json:
        def say(*a, **kw):
            print(*a, file=sys.stderr, **kw)
    else:
        say = print

    record = measure()
    #: guards that stood down on this host, with the reason — so a
    #: --json consumer can tell "passed" from "not run"
    record["skipped"] = []

    def finish(rc: int) -> int:
        # skipped guards are printed, not just recorded: a silent
        # stand-down in CI reads as "passed" when it was "not run"
        for item in record["skipped"]:
            say(f"skipped check: {item['check']} ({item['reason']})")
        if args.json:
            print(json.dumps(record, indent=2))
        return rc

    for key, value in record["metrics"].items():
        speedup = record["speedup_vs_seed"].get(key)
        vs_seed = f"({speedup:.2f}x vs seed)" if speedup else "(no seed ref)"
        say(f"{key:>24}: {value:>14,.1f}  {vs_seed}")
    for key, value in record["wall_s"].items():
        say(f"{key:>24}: {value:>12.3f} s")

    # the obs guard is absolute, not baseline-relative: instrumentation
    # overhead is a contract, so the floor applies from the first run
    ratio = record["metrics"].get("obs_on_off_ratio")
    if ratio is not None and ratio < OBS_OVERHEAD_FLOOR:
        say(f"\nWARNING: obs_on_off_ratio {ratio:.3f} is below the "
            f"{OBS_OVERHEAD_FLOOR} floor: observability costs more "
            "than its budget")
        if not args.no_fail:
            return finish(1)

    # likewise absolute: the fast lane's whole reason to exist is the
    # wide-fan win, so the floor applies from the first run
    lane_speedup = record["metrics"].get("engine_lane_speedup")
    if lane_speedup is not None and lane_speedup < LANE_SPEEDUP_FLOOR:
        say(f"\nWARNING: engine_lane_speedup {lane_speedup:.2f}x is "
            f"below the {LANE_SPEEDUP_FLOOR}x floor: the fast lane "
            "stopped paying for itself on the wide-fan scenario")
        if not args.no_fail:
            return finish(1)

    # the cluster floor is also absolute, but conditional on hardware:
    # one engine per worker process can only beat one process when the
    # host actually has the cores — on smaller machines the ratio is
    # recorded for the trajectory and the guard stands down
    cluster_speedup = record["metrics"].get("cluster_speedup")
    cores = os.cpu_count() or 1
    if cluster_speedup is not None and cores >= CLUSTER_WORKERS:
        if cluster_speedup < CLUSTER_SPEEDUP_FLOOR:
            say(f"\nWARNING: cluster_speedup {cluster_speedup:.2f}x at "
                f"{record.get('cluster_workers')} workers is below the "
                f"{CLUSTER_SPEEDUP_FLOOR}x floor: process sharding "
                "stopped paying for itself")
            if not args.no_fail:
                return finish(1)
    elif cluster_speedup is not None:
        say(f"\ncluster_speedup {cluster_speedup:.2f}x recorded "
            f"unguarded ({cores} cores < {CLUSTER_WORKERS} needed "
            "to demonstrate parallel speedup)")
        record["skipped"].append({
            "check": "cluster_speedup_floor",
            "reason": f"{cores} cores < {CLUSTER_WORKERS} needed to "
                      "demonstrate parallel speedup",
        })

    # the partition floors are absolute and deterministic: virtual-time
    # shape properties of the partition manager, guarded from run one
    p99_ratio = record["metrics"].get("partition_p99_ratio")
    if p99_ratio is not None and p99_ratio <= PARTITION_P99_RATIO_FLOOR:
        say(f"\nWARNING: partition_p99_ratio {p99_ratio:.2f} is not "
            f"above {PARTITION_P99_RATIO_FLOOR}: static partitioning "
            "stopped isolating the victim's tail from the aggressor")
        if not args.no_fail:
            return finish(1)
    recovery = record["metrics"].get("partition_elastic_recovery")
    if recovery is not None and recovery < PARTITION_RECOVERY_FLOOR:
        say(f"\nWARNING: partition_elastic_recovery {recovery:.3f} is "
            f"below the {PARTITION_RECOVERY_FLOOR} floor: the elastic "
            "rebalancer no longer wins back half the utilization gap")
        if not args.no_fail:
            return finish(1)

    # the scenario catalog is an absolute deterministic guard: every
    # incident scenario must pass its detectors on every run
    scen = record.get("scenarios") or {}
    say(f"\nscenario catalog: {scen.get('passed', 0)}/"
        f"{scen.get('total', 0)} passed")
    for line in scen.get("lines", []):
        say(f"  {line}")
    if scen and not scen.get("all_passed"):
        say("\nWARNING: incident-scenario catalog failed:")
        for failure in scen.get("failures", []):
            say(f"  FAIL {failure['detector']}: {failure['detail']}")
        if not args.no_fail:
            return finish(1)

    baseline = load_baseline(args.output)
    if baseline is None:
        # first run on this machine, or the record schema changed:
        # nothing comparable to guard against — record and succeed,
        # even under --check (a guard with no baseline must not fail)
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        say(f"no baseline, recording fresh: wrote {args.output}")
        return finish(0)

    regressed = check_regression(record, baseline)
    if not args.check_only:
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        say(f"wrote {args.output}")

    if regressed:
        say(f"\nWARNING: throughput regressed >"
            f"{REGRESSION_TOLERANCE:.0%} vs committed baseline:")
        for key, old, new in regressed:
            say(f"  {key}: {old:,.1f} -> {new:,.1f} "
                f"({new / old - 1.0:+.1%})")
        if not args.no_fail:
            return finish(1)
    else:
        say("perf check ok: no metric regressed "
            f">{REGRESSION_TOLERANCE:.0%} vs baseline")
    return finish(0)


if __name__ == "__main__":
    sys.exit(main())
