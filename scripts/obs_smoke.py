#!/usr/bin/env python
"""Observability smoke: instrument a serve run end-to-end, then prove
the artifacts hold their contracts.

One instrumented serving run (multi-tenant, zero-gap arrivals so t=0
tasks are exercised), then:

- the Perfetto export parses back as JSON and carries per-SMM
  utilization counter tracks, serve counter tracks, per-task spans
  (including the zero-duration queued spans of t=0 tasks), and
  scheduler-decision instants;
- the stats snapshot validates against the ``repro.obs/1`` schema and
  its counters agree with the report's request accounting;
- the same run without an Obs attached produces a byte-identical
  ``ServeReport.to_json()`` — the overhead contract, checked on every
  CI run, not just in the test suite.

Exit 0 on success; any broken contract raises.
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.core import PagodaConfig  # noqa: E402
from repro.gpu.phases import Phase  # noqa: E402
from repro.obs import Obs, export_serve_trace, validate_snapshot  # noqa: E402
from repro.serve import (  # noqa: E402
    DeterministicArrivals,
    PoissonArrivals,
    ServeConfig,
    TenantSpec,
    serve,
)
from repro.tasks import TaskSpec  # noqa: E402


def kernel(task, block_id, warp_id):
    yield Phase(inst=2_000, mem_bytes=256)


def tenants(n=40):
    return [
        TenantSpec("burst", [TaskSpec(f"b{i}", 64, 1, kernel)
                             for i in range(n)],
                   DeterministicArrivals(0.0)),
        TenantSpec("steady", [TaskSpec(f"s{i}", 128, 1, kernel)
                              for i in range(n)],
                   PoissonArrivals(400_000.0, seed=7)),
    ]


def run(obs):
    return serve(tenants(), ServeConfig(pagoda=PagodaConfig(obs=obs)))


def main() -> int:
    obs = Obs()
    report = run(obs)

    # -- Perfetto trace round-trips and carries every layer ------------
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "serve_trace.json"
        count = export_serve_trace(report, str(path), obs=obs)
        events = json.loads(path.read_text())["traceEvents"]
    assert len(events) == count, "event count mismatch"
    names = {e["name"] for e in events}
    for required in ("ingress queue", "queued", "exec",
                     "gpu.smm0.busy_warps", "serve.queue_depth"):
        assert required in names, f"missing trace track {required!r}"
    instants = {e["name"] for e in events if e["ph"] == "i"}
    assert "schedule" in instants and "task_done" in instants, \
        "scheduler decisions missing from the event stream"
    queued = [e for e in events if e["name"] == "queued"]
    assert any(e["ts"] == 0.0 for e in queued), \
        "t=0 tasks lost their queued spans"

    # -- snapshot validates and agrees with the report -----------------
    snap = validate_snapshot(obs.snapshot())
    counters = snap["counters"]
    assert counters["serve.offered"] == report.offered
    assert counters["serve.completed"] == report.completed
    assert counters["sched.tasks_done"] == report.completed
    assert snap["profile"]["top"], "profiler recorded nothing"

    # -- obs on/off: byte-identical report -----------------------------
    assert run(None).to_json() == report.to_json(), \
        "attaching Obs changed the report"

    print(f"obs smoke ok: {count} trace events, "
          f"{len(snap['counters'])} counters, "
          f"{report.completed} requests served, report byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
