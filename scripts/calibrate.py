#!/usr/bin/env python
"""Re-derive each workload's instruction-cost constant (DESIGN.md §4).

The per-workload knobs in ``repro/workloads/*.py`` were solved so the
CUDA-HyperQ *copy fraction* matches Table 3's published "% time spent
in data copy" column.  This script re-runs that fixed-point search —
use it after changing structural timing constants, then paste the
calibrated values back into the workload modules and re-run the
benchmark suite.

Usage:  python scripts/calibrate.py [--tasks 512] [--workloads mb,fb]
"""

import argparse
import sys

import repro.workloads.beamformer as bf
import repro.workloads.convolution as conv
import repro.workloads.dct as dct
import repro.workloads.des3 as des3
import repro.workloads.filterbank as fb
import repro.workloads.mandelbrot as mb
import repro.workloads.matmul as mm
from repro.bench.harness import copy_fraction, run_benchmark
from repro.bench.tab3 import PAPER_COPY_PCT

#: workload -> (module, constant attribute) — the single knob each
KNOBS = {
    "mb": (mb, "INST_PER_ITER"),
    "fb": (fb, "INST_PER_TAP"),
    "bf": (bf, "INST_PER_CHANNEL"),
    "conv": (conv, "INST_PER_TAP"),
    "dct": (dct, "INST_PER_PASS"),
    "mm": (mm, "INST_PER_MAC"),
    "3des": (des3, "INST_PER_ROUND"),
}


def calibrate_one(name: str, num_tasks: int, tolerance: float = 0.05,
                  max_iters: int = 8) -> dict:
    """Fixed-point search on one workload's instruction constant.

    The copy fraction behaves like C/(C + K*value); each step solves
    that model for the value that would land on target, damped to keep
    the iteration stable against the launch-overhead floor.
    """
    module, attr = KNOBS[name]
    target = PAPER_COPY_PCT[name] / 100.0
    original = value = getattr(module, attr)
    measured = None
    for _ in range(max_iters):
        setattr(module, attr, value)
        stats = run_benchmark(name, "hyperq", num_tasks=num_tasks,
                              threads=128)
        measured = copy_fraction(stats)
        if abs(measured - target) / target < tolerance:
            break
        clipped = min(measured, 0.995)
        ratio = (clipped / (1 - clipped)) * ((1 - target) / target)
        value = max(value * ratio ** 0.9, 0.05)
    setattr(module, attr, original)  # leave the library untouched
    return {
        "workload": name,
        "constant": attr,
        "shipped": original,
        "calibrated": value,
        "copy_pct": 100 * measured,
        "target_pct": 100 * target,
    }


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=512)
    parser.add_argument("--workloads", default=",".join(KNOBS),
                        help="comma-separated subset")
    args = parser.parse_args(argv)
    names = [n for n in args.workloads.split(",") if n]
    unknown = set(names) - set(KNOBS)
    if unknown:
        parser.error(f"unknown workloads: {sorted(unknown)}")
    print(f"{'workload':6s} {'constant':18s} {'shipped':>9s} "
          f"{'calibrated':>11s} {'copy%':>6s} {'target%':>8s}")
    for name in names:
        row = calibrate_one(name, args.tasks)
        drift = abs(row["calibrated"] - row["shipped"]) / row["shipped"]
        flag = "  <-- drifted" if drift > 0.15 else ""
        print(f"{row['workload']:6s} {row['constant']:18s} "
              f"{row['shipped']:9.3f} {row['calibrated']:11.3f} "
              f"{row['copy_pct']:6.1f} {row['target_pct']:8.1f}{flag}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
