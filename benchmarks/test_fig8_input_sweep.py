"""Fig. 8 — input size x thread count sweep (MM, CONV) vs HyperQ.

Paper shapes: Pagoda wins at small thread counts for every input size;
the benefit diminishes past ~512 threads per task; warp-level
scheduling can make Pagoda win again at the largest shapes.
"""

from repro.bench import fig8


def test_fig8_input_size_thread_sweep(benchmark, report_sink):
    results = benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    report_sink("fig8_input_sweep", fig8.report(results))

    threads = results["threads"]
    small_t = threads[0]
    mid_t = threads[len(threads) // 2]
    sizes = results["sizes"]
    for workload, per_size in results["speedups"].items():
        # small thread counts: Pagoda ahead for most input sizes
        small_wins = sum(
            per_size[size][small_t] > 0.95 for size in sizes
        )
        assert small_wins >= len(sizes) - 1, workload
        # the advantage diminishes toward the middle of the sweep
        # (HyperQ fills the GPU itself once tasks stop being narrow)
        mid_size = sizes[len(sizes) // 2]
        assert per_size[mid_size][mid_t] < max(
            per_size[mid_size][t] for t in threads[:2]
        ) + 0.3
    # warp-level vs threadblock-level scheduling: at the largest shape
    # CONV swings back above 1 (the paper's CONV 256^2/64K observation)
    conv = results["speedups"]["conv"]
    assert conv[sizes[-1]][threads[-1]] > 1.0
