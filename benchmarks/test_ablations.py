"""Ablation benchmarks for Pagoda's individual design choices
(beyond the paper's own figures; see DESIGN.md §4)."""

from conftest import bench_tasks

from repro.bench import ablations


def test_design_choice_ablations(benchmark, report_sink):
    n = bench_tasks(384)
    results = benchmark.pedantic(
        lambda: ablations.run(num_tasks=n), rounds=1, iterations=1
    )
    report_sink("ablations", ablations.report(results))

    # §4.2.1: the two-transaction strawman is measurably slower
    assert results["protocol"]["overhead"] > 1.05

    # §4.2: deeper TaskTables never hurt; a 1-row table throttles the
    # spawner (it must reclaim entries constantly)
    rows = results["rows"]
    assert rows[1]["makespan"] >= rows[32]["makespan"]
    assert rows[1]["copy_backs"] > rows[32]["copy_backs"]

    # Algorithm 2: serial placement latency grows with warp count,
    # warp-parallel placement stays near-flat
    psched = results["psched"]
    for warps, v in psched.items():
        assert v["serial"] >= v["parallel"]
    serial_growth = psched[16]["serial"] - psched[4]["serial"]
    parallel_growth = psched[16]["parallel"] - psched[4]["parallel"]
    assert serial_growth > parallel_growth

    # §4.2.2: a longer timeout means fewer copy-backs (less D2H
    # traffic) at the cost of later completion observation
    cb = results["copyback"]
    timeouts = sorted(cb)
    assert cb[timeouts[0]]["copy_backs"] > cb[timeouts[-1]]["copy_backs"]
