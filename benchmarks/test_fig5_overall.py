"""Fig. 5 — overall performance: PThreads vs HyperQ vs GeMTC vs Pagoda.

Paper headline: Pagoda geomean 5.70x over 20-core PThreads, 1.51x over
CUDA-HyperQ, 1.69x over GeMTC.
"""

from conftest import bench_tasks

from repro.bench import fig5


def test_fig5_overall_performance(benchmark, report_sink):
    n = bench_tasks(384)
    results = benchmark.pedantic(
        lambda: fig5.run(num_tasks=n), rounds=1, iterations=1
    )
    report_sink("fig5_overall", fig5.report(results))

    geomeans = results["geomeans"]
    # Shape assertions: Pagoda wins every comparison, by factors in the
    # paper's neighbourhood.
    assert geomeans["pthreads"] > 3.0
    assert 1.2 < geomeans["hyperq"] < 2.5
    assert 1.2 < geomeans["gemtc"] < 3.0
    # PThreads is by far the weakest contender, as in the paper.
    assert geomeans["pthreads"] > geomeans["hyperq"]
    # Pagoda beats HyperQ on every benchmark except the copy-bound DCT,
    # where all GPU schemes collapse to the PCIe floor (§6.2).
    for workload, speeds in results["per_workload"].items():
        if workload == "dct":
            assert speeds["pagoda"] >= 0.9 * speeds["hyperq"]
        else:
            assert speeds["pagoda"] > speeds["hyperq"]
