"""Fig. 6 — weak scaling with the number of tasks.

Paper shapes: HyperQ/GeMTC hold their own at low task counts; Pagoda
pulls ahead beyond ~512 tasks; Pagoda time scales ~linearly in tasks.
"""

from conftest import bench_tasks

from repro.bench import fig6


def test_fig6_weak_scaling(benchmark, report_sink):
    counts = fig6.task_counts()
    results = benchmark.pedantic(
        lambda: fig6.run(counts=counts), rounds=1, iterations=1
    )
    report_sink("fig6_weak_scaling", fig6.report(results))

    small, big = counts[0], counts[-1]
    ahead_at_big = 0
    for workload, per_rt in results["times"].items():
        # Pagoda scales ~linearly: time grows within ~2x of the task
        # ratio (sub-linear growth allowed; super-linear is a failure)
        growth = per_rt["pagoda"][big] / per_rt["pagoda"][small]
        assert growth < 2.0 * (big / small)
        if per_rt["pagoda"][big] < per_rt["hyperq"][big]:
            ahead_at_big += 1
        # at the largest count Pagoda also beats GeMTC
        assert per_rt["pagoda"][big] < per_rt["gemtc"][big]
    # beyond the crossover Pagoda leads HyperQ on at least 4/5 benchmarks
    assert ahead_at_big >= len(results["times"]) - 1
