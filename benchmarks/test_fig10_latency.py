"""Fig. 10 — average task latency: static fusion vs Pagoda.

Paper shapes: fused average latency grows with task count (every task
"finishes" when the whole fused kernel does); Pagoda's per-task
latency stays flat at any count.
"""

from repro.bench import fig10


def test_fig10_latency_vs_task_count(benchmark, report_sink):
    counts = fig10.task_counts()
    results = benchmark.pedantic(
        lambda: fig10.run(counts=counts), rounds=1, iterations=1
    )
    report_sink("fig10_latency", fig10.report(results))

    checks = fig10.run_and_check(results)
    count_ratio = counts[-1] / counts[0]
    for workload, c in checks.items():
        # fused latency grows roughly with the task count
        assert c["fused_growth"] > count_ratio / 4, workload
        # Pagoda latency is flat by comparison (well under the count
        # ratio, and far below fusion's growth)
        assert c["pagoda_growth"] < c["fused_growth"] / 2, workload
        # and at the largest count Pagoda's absolute latency is orders
        # of magnitude lower
        big = counts[-1]
        lat = results["latency"][workload]
        assert lat["pagoda"][big] < lat["fusion"][big] / 10
