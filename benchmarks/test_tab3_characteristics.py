"""Table 3 — % time in data copy vs computation under CUDA-HyperQ."""

from conftest import bench_tasks

from repro.bench import tab3


def test_tab3_copy_compute_split(benchmark, report_sink):
    n = bench_tasks(384)
    results = benchmark.pedantic(
        lambda: tab3.run(num_tasks=n), rounds=1, iterations=1
    )
    report_sink("tab3_characteristics", tab3.report(results))

    measured = results["copy_pct"]
    # every benchmark's copy fraction lands near its Table 3 column
    for workload, paper_pct in tab3.PAPER_COPY_PCT.items():
        got = measured[workload]
        assert abs(got - paper_pct) <= max(10, 0.4 * paper_pct), (
            workload, got, paper_pct
        )
    # the qualitative ordering the paper leans on: DCT and 3DES are
    # copy-bound, BF and SLUD are compute-bound
    assert measured["dct"] > 55
    assert measured["3des"] > 50
    assert measured["bf"] < 25
    assert measured["slud"] < 10
