"""Priority + deferred-scheduling extension benchmark
(see DESIGN.md and EXPERIMENTS.md 'Extensions')."""

from conftest import bench_tasks

from repro.bench import priorities


def test_priorities_protect_urgent_tail(benchmark, report_sink):
    n = max(bench_tasks(1200), 1200)
    results = benchmark.pedantic(
        lambda: priorities.run(num_tasks=n), rounds=1, iterations=1
    )
    report_sink("priorities", priorities.report(results))

    fifo = results["fifo-blocking"]
    prio = results["deferred+priority"]
    # priorities cut the urgent tail by a large factor...
    assert prio["urgent_p99_us"] < fifo["urgent_p99_us"] / 2
    # ...without sacrificing overall throughput
    assert prio["makespan_ms"] < fifo["makespan_ms"] * 1.15
