"""Fig. 9 — irregular tasks: static fusion vs dynamic schemes.

Paper headline: Pagoda achieves a geomean of 1.79x over static fusion
when per-task input sizes vary pseudo-randomly.
"""

from conftest import bench_tasks

from repro.bench import fig9


def test_fig9_static_fusion_irregular(benchmark, report_sink):
    n = bench_tasks(256)
    results = benchmark.pedantic(
        lambda: fig9.run(num_tasks=n), rounds=1, iterations=1
    )
    report_sink("fig9_static_fusion", fig9.report(results))

    # Pagoda's geomean advantage over fusion in the paper's range
    assert 1.3 < results["pagoda_over_fusion"] < 3.0

    # Pagoda beats static fusion on every irregular benchmark
    for workload, speeds in results["per_workload"].items():
        assert speeds["pagoda"] > speeds["fusion"], workload
