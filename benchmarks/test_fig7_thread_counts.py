"""Fig. 7 — compute time vs threads per task (no shared memory).

Paper headline: at 128 threads per task Pagoda's compute-only geomean
is 2.29x over HyperQ and 2.26x over GeMTC; the HyperQ gap narrows as
threads per task grow.
"""

from conftest import bench_tasks

from repro.bench import fig7
from repro.sim.trace import geometric_mean


def test_fig7_thread_count_sweep(benchmark, report_sink):
    n = bench_tasks(256)
    results = benchmark.pedantic(
        lambda: fig7.run(num_tasks=n), rounds=1, iterations=1
    )
    report_sink("fig7_thread_counts", fig7.report(results))

    # headline geomeans at 128 threads, in the paper's neighbourhood
    assert 1.3 < results["geomeans_128"]["hyperq"] < 3.5
    assert 1.3 < results["geomeans_128"]["gemtc"] < 3.5

    # Pagoda outperforms HyperQ and GeMTC in (almost) all configurations
    wins = total = 0
    for per_rt in results["times"].values():
        for threads, pagoda_t in per_rt["pagoda"].items():
            total += 1
            if pagoda_t <= per_rt["hyperq"][threads]:
                wins += 1
    assert wins / total > 0.85

    # the Pagoda-over-HyperQ advantage shrinks with thread count
    def adv_at(threads):
        ratios = [
            per_rt["hyperq"][threads] / per_rt["pagoda"][threads]
            for per_rt in results["times"].values()
        ]
        return geometric_mean(ratios)

    counts = results["thread_counts"]
    assert adv_at(counts[0]) > adv_at(counts[-1])
