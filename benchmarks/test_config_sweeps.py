"""Configuration sweeps from the paper's prose (§6.1, §6.2)."""

from conftest import bench_tasks

from repro.bench import config_sweeps


def test_gemtc_and_hyperq_config_sweeps(benchmark, report_sink):
    n = bench_tasks(384)
    results = benchmark.pedantic(
        lambda: config_sweeps.run(num_tasks=n), rounds=1, iterations=1
    )
    report_sink("config_sweeps", config_sweeps.report(results))

    g = results["gemtc_workers"]["sweep"]
    # §6.2: 32-thread workers cap at 50% occupancy; 64+ reach 100%
    assert g[32]["occupancy_pct"] == 50.0
    for threads in (64, 128, 256):
        assert g[threads]["occupancy_pct"] == 100.0
    # §6.3: GeMTC performance does not change much with thread count
    spans = [v["makespan_ms"] for t, v in g.items() if t >= 64]
    assert max(spans) / min(spans) < 1.5

    f = results["fusion_threads"]["sweep"]
    # the 256-thread heuristic is within ~2x of the best choice — the
    # point being that no single choice is far from another (so the
    # heuristic is defensible) while Pagoda sidesteps the choice
    best = min(f.values())
    assert f[256] <= 2.0 * best

    h = results["hyperq_connections"]["sweep"]
    # a single connection serializes kernels; 32 is much better
    assert h[1] > 2 * h[32]
    # diminishing returns: 16 -> 32 buys little for narrow tasks
    assert h[16] / h[32] < 1.6
