"""Table 5 — Pagoda software shared-memory management (DCT, MM)."""

from conftest import bench_tasks

from repro.bench import tab5


def test_tab5_shared_memory_analysis(benchmark, report_sink):
    n = bench_tasks(256)
    results = benchmark.pedantic(
        lambda: tab5.run(num_tasks=n), rounds=1, iterations=1
    )
    report_sink("tab5_shared_memory", tab5.report(results))

    measured = results["measured"]
    for workload in ("dct", "mm"):
        # shared memory offers considerable benefits (Table 5's
        # conclusion): the staged kernel runs measurably faster per
        # task than its DRAM-round-trip counterpart...
        with_sm = measured[(workload, True)]["kernel_us"]
        without = measured[(workload, False)]["kernel_us"]
        assert with_sm < without, workload
        # ...and Pagoda still beats HyperQ end-to-end in both variants
        assert measured[(workload, True)]["speedup"] > 1.0, workload
        assert measured[(workload, False)]["speedup"] > 1.0, workload

    # occupancy: DCT's 8KB blocks limit the MTB arena to 25%; the other
    # three configurations reach the executor-warp ceiling (97%)
    assert round(measured[("dct", True)]["occupancy"]) == 25
    assert round(measured[("dct", False)]["occupancy"]) == 97
    assert round(measured[("mm", True)]["occupancy"]) == 97
    assert round(measured[("mm", False)]["occupancy"]) == 97
