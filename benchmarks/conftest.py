"""Shared benchmark plumbing.

Each benchmark runs one paper experiment end-to-end, records its
paper-vs-measured report under ``benchmarks/results/``, and surfaces
every report in the terminal summary so ``pytest benchmarks/
--benchmark-only`` output doubles as the reproduction log.

Scale: experiments default to scaled-down task counts (the simulator
is pure Python); ``PAGODA_FULL=1`` restores paper scale (32K tasks).
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_REPORTS = []


def record_report(name: str, text: str) -> None:
    """Persist an experiment report and queue it for the summary."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    _REPORTS.append((name, text))


@pytest.fixture
def report_sink():
    return record_report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("Pagoda reproduction: paper-vs-measured")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"===== {name} =====")
        for line in text.splitlines():
            terminalreporter.write_line(line)


def bench_tasks(default: int) -> int:
    """Task count for one benchmark cell (env-scalable)."""
    if os.environ.get("PAGODA_FULL", "") not in ("", "0"):
        return 32 * 1024
    override = os.environ.get("PAGODA_BENCH_TASKS", "")
    return int(override) if override else default
