"""Fig. 11 — continuous spawning / concurrent pipelined processing.

Paper shapes: Pagoda > Pagoda-Batching > GeMTC in all cases; the
Batching gap isolates concurrent scheduling, the continuous-spawning
gap isolates pipelined task processing; MPE benefits most from
continuous spawning (unbalanced mix).
"""

from conftest import bench_tasks

from repro.bench import fig11


def test_fig11_spawning_ablation(benchmark, report_sink):
    n = bench_tasks(384)
    results = benchmark.pedantic(
        lambda: fig11.run(num_tasks=n), rounds=1, iterations=1
    )
    report_sink("fig11_spawning", fig11.report(results))

    for workload, speeds in results["speedups"].items():
        # Pagoda outperforms GeMTC in all cases (paper's Fig. 11 text)
        assert speeds["pagoda"] > 1.0, workload
        # continuous spawning never loses to batching
        assert speeds["pagoda"] >= 0.95 * speeds["pagoda-batching"], workload
        # concurrent scheduling alone already helps vs GeMTC
        assert speeds["pagoda-batching"] > 0.8, workload
