"""Open-loop latency under load (the §1 real-time motivation;
extension experiment, see DESIGN.md §4)."""

from conftest import bench_tasks

from repro.bench import latency_under_load as lul


def test_pagoda_sustains_higher_task_rates(benchmark, report_sink):
    n = bench_tasks(384)
    results = benchmark.pedantic(
        lambda: lul.run(num_tasks=n), rounds=1, iterations=1
    )
    report_sink("latency_under_load", lul.report(results))

    table = results["results"]
    gaps = results["gaps_ns"]
    # at the lightest load everyone meets the deadline
    lightest = gaps[0]
    for rt in table:
        assert table[rt][lightest]["deadline_met_pct"] > 95.0, rt
    # there is a rate Pagoda sustains (>95% deadlines) where HyperQ
    # has already collapsed (<50%)
    crossover = any(
        table["pagoda"][g]["deadline_met_pct"] > 95.0
        and table["hyperq"][g]["deadline_met_pct"] < 50.0
        for g in gaps
    )
    assert crossover
    # batching inflates the tail before continuous Pagoda does
    worst_gap = gaps[-2]
    assert (table["pagoda-batching"][worst_gap]["p99_us"]
            > table["pagoda"][worst_gap]["p99_us"])
