"""Performance of the simulator itself (pytest-benchmark's natural
use): events/second through the engine and end-to-end tasks/second
through the full Pagoda stack.

These guard against performance regressions that would make the
paper-scale (PAGODA_FULL=1) runs impractical.
"""

from repro.core import PagodaConfig, run_pagoda
from repro.gpu.phases import Phase
from repro.sim import Engine, ProcessorSharing
from repro.tasks import TaskSpec


def test_engine_event_throughput(benchmark):
    """A ping-pong of timers: pure event-loop overhead."""
    def run_events():
        eng = Engine()

        def ticker():
            for _ in range(20_000):
                yield 1.0

        eng.spawn(ticker())
        eng.run()
        return eng.event_count

    events = benchmark(run_events)
    assert events >= 20_000


def test_processor_sharing_churn(benchmark):
    """Arrival/departure churn on one PS pool (the hot path under
    every SMM)."""
    def run_ps():
        eng = Engine()
        ps = ProcessorSharing(eng, rate=4.0, per_job_cap=1.0)
        done = []

        def job(i):
            yield ps.consume(10.0 + (i % 7))
            done.append(i)

        for i in range(2_000):
            eng.spawn(job(i))
        eng.run()
        return len(done)

    completed = benchmark(run_ps)
    assert completed == 2_000


def test_pagoda_task_throughput(benchmark):
    """End-to-end simulated tasks per wall-second through the whole
    stack (MasterKernel + TaskTable + host)."""
    def kernel(task, block_id, warp_id):
        yield Phase(inst=2_000, mem_bytes=256)

    tasks = [TaskSpec(f"t{i}", 128, 1, kernel) for i in range(500)]

    def run_stack():
        stats = run_pagoda(tasks, config=PagodaConfig(
            copy_inputs=False, copy_outputs=False))
        return len(stats.results)

    completed = benchmark(run_stack)
    assert completed == 500
