"""The examples must stay runnable — each is executed as a script."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "completed and verified" in out
    assert "after waitAll: True" in out


def test_packet_router():
    out = run_example("packet_router.py")
    assert "decrypt(encrypt(p)) == p  OK" in out
    assert "pagoda" in out and "static-fusion" in out


def test_sparse_solver():
    out = run_example("sparse_solver.py")
    assert "L @ U == A verified" in out
    assert "fill-in" in out


def test_multiprogramming():
    out = run_example("multiprogramming.py")
    assert "speedup over GeMTC" in out
    assert "'mb':" in out and "'3des':" in out


def test_multi_gpu_scaling():
    out = run_example("multi_gpu_scaling.py")
    assert "2 GPU(s)" in out and "4 GPU(s)" in out
    assert "multi_gpu_trace.json" in out


def test_sensor_stream():
    out = run_example("sensor_stream.py")
    assert "deadlines met" in out
    assert "pagoda + priority" in out
