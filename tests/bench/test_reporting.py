"""Reporting helpers."""

from repro.bench.reporting import (
    format_table,
    ns_to_ms,
    ns_to_us,
    paper_vs_measured,
)


def test_format_table_alignment():
    text = format_table(["name", "val"], [["a", 1.5], ["bb", 20.25]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "val" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "1.50" in text and "20.25" in text


def test_format_table_no_title():
    text = format_table(["x"], [[1]])
    assert not text.startswith("\n")
    assert text.splitlines()[0].strip() == "x"


def test_paper_vs_measured_ratio():
    text = paper_vs_measured(
        "CMP", [{"k": "w", "paper": 2.0, "measured": 3.0}], keys=["k"]
    )
    assert "1.50" in text  # measured/paper
    assert "CMP" in text


def test_paper_vs_measured_handles_missing():
    text = paper_vs_measured(
        "CMP", [{"k": "w", "paper": None, "measured": 3.0}], keys=["k"]
    )
    assert "-" in text


def test_unit_helpers():
    assert ns_to_ms(2_000_000.0) == 2.0
    assert ns_to_us(2_000.0) == 2.0
