"""`scripts/bench.py --check` baseline handling.

The perf guard must fail on a genuine regression — and *only* then.
A missing or schema-mismatched baseline (first run on a machine, or a
record-format change) records a fresh baseline and exits 0.
"""

import importlib.util
import json
import pathlib

import pytest

ROOT = pathlib.Path(__file__).parents[2]

_spec = importlib.util.spec_from_file_location(
    "bench_script", ROOT / "scripts" / "bench.py")
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)

FAKE_RECORD = {
    "metrics": {"pagoda_tasks_per_s": 1000.0, "engine_events_per_s": 5e6,
                "engine_lane_speedup": 3.0},
    "wall_s": {},
    "speedup_vs_seed": {},
}


@pytest.fixture
def fast_bench(monkeypatch):
    """bench.py with the (slow) measurement phase stubbed out."""
    monkeypatch.setattr(bench, "measure", lambda: json.loads(
        json.dumps(FAKE_RECORD)))
    return bench


def test_load_baseline_missing_file(tmp_path):
    assert bench.load_baseline(tmp_path / "nope.json") is None


def test_load_baseline_rejects_garbage_and_schema_mismatch(tmp_path):
    path = tmp_path / "b.json"
    for bad in ["not json {", json.dumps([1, 2, 3]),
                json.dumps({"no_metrics_key": 1}),
                json.dumps({"metrics": "a string, not a mapping"}),
                json.dumps({"metrics": {"tasks": "fast"}})]:
        path.write_text(bad)
        assert bench.load_baseline(path) is None, bad


def test_load_baseline_accepts_valid_record(tmp_path):
    path = tmp_path / "b.json"
    path.write_text(json.dumps(FAKE_RECORD))
    assert bench.load_baseline(path) == FAKE_RECORD["metrics"]


def test_check_with_no_baseline_records_fresh_and_passes(
        fast_bench, tmp_path, capsys):
    out = tmp_path / "BENCH.json"
    rc = fast_bench.main(["--check", "--output", str(out)])
    assert rc == 0
    assert "no baseline, recording fresh" in capsys.readouterr().out
    assert json.loads(out.read_text())["metrics"] == FAKE_RECORD["metrics"]


def test_check_with_mismatched_baseline_recovers(
        fast_bench, tmp_path, capsys):
    out = tmp_path / "BENCH.json"
    out.write_text(json.dumps({"metrics": {"tasks": "fast"}}))
    rc = fast_bench.main(["--check", "--output", str(out)])
    assert rc == 0
    assert "no baseline, recording fresh" in capsys.readouterr().out
    # the unusable baseline was replaced by a well-formed record
    assert fast_bench.load_baseline(out) == FAKE_RECORD["metrics"]


def test_obs_ratio_excluded_from_throughput_comparison(tmp_path):
    """obs_on_off_ratio has its own floor guard; a run-to-run swing in
    the ratio must not trip the generic >20% throughput check."""
    record = {"metrics": {"pagoda_tasks_per_s": 1000.0,
                          "obs_on_off_ratio": 0.8}}
    baseline = {"pagoda_tasks_per_s": 1000.0, "obs_on_off_ratio": 1.2}
    assert bench.check_regression(record, baseline) == []


def test_obs_overhead_floor_fails_check(fast_bench, tmp_path, monkeypatch,
                                        capsys):
    """A ratio below OBS_OVERHEAD_FLOOR fails --check (and only warns
    with --no-fail), independent of the baseline comparison."""
    slow = json.loads(json.dumps(FAKE_RECORD))
    slow["metrics"]["obs_on_off_ratio"] = bench.OBS_OVERHEAD_FLOOR / 2
    monkeypatch.setattr(bench, "measure",
                        lambda: json.loads(json.dumps(slow)))
    out = tmp_path / "BENCH.json"
    assert bench.main(["--check", "--output", str(out)]) == 1
    assert "obs_on_off_ratio" in capsys.readouterr().out
    assert bench.main(["--check", "--no-fail", "--output", str(out)]) == 0


def test_lane_speedup_excluded_from_throughput_comparison():
    """engine_lane_speedup has its own floor guard; a run-to-run swing
    in the ratio must not trip the generic >20% throughput check."""
    record = {"metrics": {"pagoda_tasks_per_s": 1000.0,
                          "engine_lane_speedup": 2.1}}
    baseline = {"pagoda_tasks_per_s": 1000.0, "engine_lane_speedup": 4.0}
    assert bench.check_regression(record, baseline) == []


def test_lane_speedup_floor_fails_check(fast_bench, tmp_path, monkeypatch,
                                        capsys):
    """A fast/default ratio below LANE_SPEEDUP_FLOOR fails --check
    (and only warns with --no-fail)."""
    slow = json.loads(json.dumps(FAKE_RECORD))
    slow["metrics"]["engine_lane_speedup"] = bench.LANE_SPEEDUP_FLOOR / 2
    monkeypatch.setattr(bench, "measure",
                        lambda: json.loads(json.dumps(slow)))
    out = tmp_path / "BENCH.json"
    assert bench.main(["--check", "--output", str(out)]) == 1
    assert "engine_lane_speedup" in capsys.readouterr().out
    assert bench.main(["--check", "--no-fail", "--output", str(out)]) == 0


def test_json_mode_keeps_stdout_machine_parsable(fast_bench, tmp_path,
                                                 capsys):
    """With --json the whole stdout stream is one JSON document; the
    human-readable report moves to stderr."""
    out = tmp_path / "BENCH.json"
    rc = fast_bench.main(["--check", "--json", "--output", str(out)])
    captured = capsys.readouterr()
    assert rc == 0
    assert json.loads(captured.out)["metrics"] == FAKE_RECORD["metrics"]
    assert "no baseline, recording fresh" in captured.err


def test_clean_subprocess_env_silences_condarc(monkeypatch):
    import os

    monkeypatch.setenv("CONDARC", "/nonexistent/.condarc")
    monkeypatch.setenv("CONDA_PROMPT_MODIFIER", "(base) ")
    monkeypatch.setenv("CONDA_PREFIX", "/opt/conda")
    env = bench.clean_subprocess_env()
    assert env["CONDARC"] == os.devnull
    assert "CONDA_PROMPT_MODIFIER" not in env
    # the interpreter-resolution variables survive
    assert env["CONDA_PREFIX"] == "/opt/conda"
    assert os.environ["CONDARC"] == "/nonexistent/.condarc"  # untouched


def test_check_still_fails_on_genuine_regression(fast_bench, tmp_path):
    out = tmp_path / "BENCH.json"
    good = json.loads(json.dumps(FAKE_RECORD))
    good["metrics"]["pagoda_tasks_per_s"] = 10_000.0  # 10x the fresh run
    out.write_text(json.dumps(good))
    assert fast_bench.main(["--check", "--output", str(out)]) == 1
    # --check never rewrites an existing, usable baseline
    assert json.loads(out.read_text()) == good
    # --no-fail downgrades to a warning
    assert fast_bench.main(["--check", "--no-fail",
                            "--output", str(out)]) == 0
