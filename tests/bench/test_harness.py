"""Bench harness behaviour: routing, scaling, shared-mem stripping."""

import pytest

from repro.bench.harness import (
    RUNTIMES,
    copy_fraction,
    default_num_tasks,
    make_tasks,
    run_benchmark,
    run_tasks,
    speedups_vs,
    strip_shared_mem,
)
from repro.tasks import RunStats, TaskResult


def test_runtime_registry_is_complete():
    assert set(RUNTIMES) == {
        "pagoda", "pagoda-batching", "hyperq", "gemtc", "fusion",
        "pthreads", "sequential",
    }


def test_unknown_runtime_raises():
    tasks = make_tasks("mb", 2)
    with pytest.raises(KeyError):
        run_tasks(tasks, "nope")


def test_default_num_tasks_scaled(monkeypatch):
    monkeypatch.delenv("PAGODA_FULL", raising=False)
    assert default_num_tasks("mb") == 768
    monkeypatch.setenv("PAGODA_FULL", "1")
    assert default_num_tasks("mb") == 32 * 1024
    assert default_num_tasks("slud") == 273 * 1024


def test_make_tasks_honours_threads():
    tasks = make_tasks("fb", 4, threads=64)
    assert all(t.threads_per_block == 64 for t in tasks)


def test_strip_shared_mem():
    tasks = make_tasks("mm", 3)
    assert all(t.shared_mem_bytes for t in tasks)
    stripped = strip_shared_mem(tasks)
    assert all(t.shared_mem_bytes == 0 for t in stripped)
    # originals untouched
    assert all(t.shared_mem_bytes for t in tasks)


def test_gemtc_gets_shared_mem_stripped_automatically():
    tasks = make_tasks("mm", 8)
    stats = run_tasks(tasks, "gemtc")  # would raise if not stripped
    assert stats.runtime == "gemtc"


def test_run_benchmark_end_to_end():
    stats = run_benchmark("mb", "pagoda", num_tasks=16, threads=64)
    assert stats.makespan > 0
    assert len(stats.results) == 16


def test_speedups_vs_baseline():
    stats = {
        "a": RunStats(runtime="a", makespan=100.0),
        "b": RunStats(runtime="b", makespan=50.0),
    }
    speeds = speedups_vs(stats, "a")
    assert speeds == {"a": 1.0, "b": 2.0}


def test_copy_fraction_bounds():
    stats = run_benchmark("dct", "hyperq", num_tasks=32, threads=64)
    frac = copy_fraction(stats)
    assert 0.0 < frac < 1.0


def test_copy_fraction_small_without_payload_copies():
    """With payload copies off, only TaskTable copy-back traffic
    remains on the bus."""
    with_copies = run_benchmark("mb", "pagoda", num_tasks=8)
    without = run_benchmark("mb", "pagoda", num_tasks=8, copies=False)
    assert without.copy_time < with_copies.copy_time
