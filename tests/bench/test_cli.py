"""The `python -m repro.bench` command-line runner."""

import subprocess
import sys

import pytest

from repro.bench.__main__ import EXPERIMENTS, TASK_SIZED, run_one


def test_registry_covers_every_paper_artefact():
    assert {"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "tab3", "tab5"} <= set(EXPERIMENTS)
    assert {"ablations", "load", "priorities", "sweeps"} <= set(EXPERIMENTS)
    assert TASK_SIZED <= set(EXPERIMENTS)


def test_run_one_small_tab3():
    text = run_one("tab3", num_tasks=32)
    assert "TAB3" in text
    assert "wall]" in text


def test_cli_subprocess_end_to_end():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "tab3", "--tasks", "24"],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-1500:]
    assert "TAB3" in proc.stdout


def test_cli_rejects_unknown_experiment():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "nope"],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode != 0
    assert "invalid choice" in proc.stderr


def test_bench_script_json_stream_is_clean(tmp_path):
    """scripts/bench.py --json run under the conda-silenced environment
    must put exactly one parsable JSON record on stdout (no condarc
    warnings or other chatter interleaved) carrying the lane metrics."""
    import json
    import pathlib

    from tests.bench.test_bench_baseline import bench

    script = pathlib.Path(__file__).parents[2] / "scripts" / "bench.py"
    proc = subprocess.run(
        [sys.executable, str(script), "--json", "--no-fail",
         "--output", str(tmp_path / "BENCH.json")],
        capture_output=True, text=True, timeout=600,
        env=bench.clean_subprocess_env(),
    )
    assert proc.returncode == 0, proc.stderr[-1500:]
    record = json.loads(proc.stdout)  # the *entire* stream is the record
    for key in ("engine_events_per_s", "engine_events_per_s_fan",
                "engine_events_per_s_fast", "engine_lane_speedup"):
        assert key in record["metrics"], key
    assert record["metrics"]["engine_lane_speedup"] > 0
    assert f"fig5_slice_fast_{bench.FIG5_SLICE_TASKS}_tasks" in record["wall_s"]


def test_calibrate_script_reports_on_target():
    """scripts/calibrate.py must confirm the shipped constants still
    land near their Table 3 targets (and not mutate the library)."""
    import pathlib

    import repro.workloads.mandelbrot as mb

    script = pathlib.Path(__file__).parents[2] / "scripts" / "calibrate.py"
    before = mb.INST_PER_ITER
    proc = subprocess.run(
        [sys.executable, str(script), "--tasks", "96", "--workloads", "mb"],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-1500:]
    assert "INST_PER_ITER" in proc.stdout
    assert "drifted" not in proc.stdout
    assert mb.INST_PER_ITER == before
