"""Smoke tests for every experiment module at tiny scale.

The real shape assertions live in ``benchmarks/``; these verify that
each experiment runs end-to-end, returns the documented structure, and
renders a report, quickly enough for the unit-test suite.
"""

import pytest

from repro.bench import fig5, fig6, fig7, fig8, fig9, fig10, fig11, tab3, tab5


def test_fig5_structure():
    results = fig5.run(num_tasks=24)
    assert set(results["geomeans"]) == {"pthreads", "hyperq", "gemtc",
                                        "pagoda"}
    assert len(results["per_workload"]) == 9
    assert "gemtc" not in results["per_workload"]["slud"]  # §6.2
    report = fig5.report(results)
    assert "FIG5" in report and "5.7" in report


def test_fig6_structure():
    results = fig6.run(counts=[8, 16])
    assert results["counts"] == [8, 16]
    for per_rt in results["times"].values():
        for series in per_rt.values():
            assert set(series) == {8, 16}
    assert "FIG6" in fig6.report(results)


def test_fig7_structure():
    results = fig7.run(num_tasks=16, thread_counts=[64, 128])
    assert set(results["geomeans_128"]) == {"hyperq", "gemtc"}
    assert "FIG7" in fig7.report(results)


def test_fig8_structure(monkeypatch):
    monkeypatch.setattr(
        fig8, "sweep_points", lambda: ([16], [256, 1024], 8)
    )
    results = fig8.run()
    assert set(results["speedups"]) == {"mm", "conv"}
    assert "FIG8" in fig8.report(results)


def test_fig9_structure():
    results = fig9.run(num_tasks=16)
    assert results["pagoda_over_fusion"] > 0
    assert len(results["per_workload"]) == 8  # no SLUD (§6.3)
    assert "slud" not in results["per_workload"]
    assert "FIG9" in fig9.report(results)


def test_fig10_structure():
    results = fig10.run(counts=[16, 64])
    checks = fig10.run_and_check(results)
    assert set(checks) == {"3des", "mm"}
    assert "FIG10" in fig10.report(results)


def test_fig10_flatness_helper():
    assert fig10.flatness({1: 10.0, 2: 20.0}) == 2.0


def test_fig11_structure():
    results = fig11.run(num_tasks=32)
    for speeds in results["speedups"].values():
        assert speeds["gemtc"] == 1.0
    assert "FIG11" in fig11.report(results)


def test_fig11_batch_scaling():
    assert fig11.batch_size_for(32 * 1024) == 384
    assert fig11.batch_size_for(256) == 32
    assert fig11.batch_size_for(2048) == 256


def test_tab3_structure():
    results = tab3.run(num_tasks=24)
    assert set(results["copy_pct"]) == set(tab3.PAPER_COPY_PCT)
    assert "TAB3" in tab3.report(results)


def test_tab5_structure():
    results = tab5.run(num_tasks=16)
    assert set(results["measured"]) == set(tab5.PAPER)
    report = tab5.report(results)
    assert "TAB5" in report and "25%" in report


def test_tab5_occupancy_bound_math():
    import numpy as np
    from repro.bench.tab5 import achieved_occupancy_bound, make_variant
    dct_smem = make_variant("dct", 1, 64, True, 0)[0]
    assert achieved_occupancy_bound(dct_smem) == pytest.approx(25.0)
    dct_plain = make_variant("dct", 1, 64, False, 0)[0]
    assert achieved_occupancy_bound(dct_plain) == pytest.approx(
        100 * 31 / 32)


def test_latency_under_load_structure():
    from repro.bench import latency_under_load as lul
    results = lul.run(num_tasks=48, gaps_ns=[20_000.0, 5_000.0])
    assert set(results["results"]) == {"pagoda", "pagoda-batching",
                                       "hyperq"}
    for per_gap in results["results"].values():
        for metrics in per_gap.values():
            assert set(metrics) == {"p50_us", "p99_us",
                                    "deadline_met_pct"}
    assert "LOAD" in lul.report(results)


def test_priorities_structure():
    from repro.bench import priorities
    results = priorities.run(num_tasks=96)
    assert set(results) >= {"fifo-blocking", "deferred",
                            "deferred+priority"}
    assert "PRIORITIES" in priorities.report(results)


def test_config_sweeps_structure():
    from repro.bench import config_sweeps
    results = config_sweeps.run(num_tasks=32)
    assert set(results["gemtc_workers"]["sweep"]) == {32, 64, 128, 256}
    assert set(results["hyperq_connections"]["sweep"]) == {1, 4, 8, 16, 32}
    assert set(results["fusion_threads"]["sweep"]) == {64, 128, 256, 512}
    assert "SWEEP" in config_sweeps.report(results)


def test_ablations_structure():
    from repro.bench import ablations
    results = ablations.run(num_tasks=64)
    assert set(results) == {"protocol", "rows", "psched", "copyback"}
    assert "ABLATION" in ablations.report(results)
