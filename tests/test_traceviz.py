"""Chrome-trace export tests."""

import json

import pytest

from repro.tasks import RunStats, TaskResult
from repro.traceviz import (
    chrome_trace_events,
    export_chrome_trace,
    export_serve_trace,
    serve_counter_events,
)


def make_stats(n=3):
    results = [
        TaskResult(i, f"t{i}", spawn_time=i * 100.0,
                   sched_time=i * 100.0 + 50.0,
                   start_time=i * 100.0 + 60.0,
                   end_time=i * 100.0 + 160.0)
        for i in range(n)
    ]
    return RunStats(runtime="pagoda", makespan=1000.0, results=results)


def test_events_contain_metadata_and_spans():
    events = chrome_trace_events(make_stats())
    kinds = {e["name"] for e in events}
    assert {"process_name", "thread_name", "queued", "exec"} <= kinds
    execs = [e for e in events if e["name"] == "exec"]
    assert len(execs) == 3
    assert execs[0]["dur"] == 0.1  # 100 ns in us
    assert execs[0]["ph"] == "X"


def test_queued_span_measures_spawn_to_sched():
    events = chrome_trace_events(make_stats(1))
    queued = next(e for e in events if e["name"] == "queued")
    assert queued["dur"] == 0.05


def test_t0_task_gets_zero_duration_queued_span():
    """Regression: a task spawned at t=0 and scheduled at t=0 *was*
    queued (for zero time); the seed's predicate dropped its span,
    making t=0 tasks look like they skipped the queue entirely."""
    results = [TaskResult(0, "t0", spawn_time=0.0, sched_time=0.0,
                          start_time=5.0, end_time=105.0)]
    stats = RunStats(runtime="pagoda", makespan=105.0, results=results)
    events = chrome_trace_events(stats)
    queued = [e for e in events if e["name"] == "queued"]
    assert len(queued) == 1
    assert queued[0]["ts"] == 0.0
    assert queued[0]["dur"] == 0.0


def test_unscheduled_task_emits_no_queued_span():
    """A record whose sched_time precedes spawn_time never got a real
    scheduling stamp (e.g. the default 0.0 on a task that died first);
    no span beats a negative- or clamp-faked one."""
    results = [TaskResult(0, "dead", spawn_time=300.0, sched_time=0.0,
                          start_time=0.0, end_time=0.0)]
    stats = RunStats(runtime="pagoda", makespan=300.0, results=results)
    events = chrome_trace_events(stats)
    assert not [e for e in events if e["name"] == "queued"]
    assert not [e for e in events if e["name"] == "exec"]


def test_max_tasks_caps_output_and_warns():
    with pytest.warns(UserWarning, match="trace truncated: 10 tasks"):
        events = chrome_trace_events(make_stats(10), max_tasks=2)
    execs = [e for e in events if e["name"] == "exec"]
    assert len(execs) == 2


def test_no_warning_when_under_cap(recwarn):
    chrome_trace_events(make_stats(3), max_tasks=3)
    assert not recwarn.list


def test_export_writes_valid_json(tmp_path):
    path = tmp_path / "trace.json"
    count = export_chrome_trace(make_stats(), str(path))
    data = json.loads(path.read_text())
    assert len(data["traceEvents"]) == count
    assert data["displayTimeUnit"] == "ms"


def test_export_from_real_run(tmp_path):
    from repro.core import run_pagoda
    from repro.gpu.phases import Phase
    from repro.tasks import TaskSpec

    def kernel(task, block_id, warp_id):
        yield Phase(inst=500)

    tasks = [TaskSpec(f"t{i}", 64, 1, kernel) for i in range(10)]
    stats = run_pagoda(tasks)
    path = tmp_path / "run.json"
    count = export_chrome_trace(stats, str(path))
    assert count > 20
    json.loads(path.read_text())


def _serve_report(n=20):
    from repro.gpu.phases import Phase
    from repro.serve import DeterministicArrivals, TenantSpec, serve
    from repro.tasks import TaskSpec

    def kernel(task, block_id, warp_id):
        yield Phase(inst=500)

    tasks = [TaskSpec(f"t{i}", 64, 1, kernel) for i in range(n)]
    return serve([TenantSpec("a", tasks, DeterministicArrivals(500.0))])


def test_serve_counter_events_track_queue_and_drops():
    report = _serve_report()
    events = serve_counter_events(report)
    names = {e["name"] for e in events}
    assert {"ingress queue", "in flight", "drops/s"} <= names
    counters = [e for e in events if e["ph"] == "C"]
    assert len(counters) == 3 * len(report.timeline)
    # timestamps must be non-decreasing for the viewer
    ts = [e["ts"] for e in counters]
    assert ts == sorted(ts)
    # no drops in this run: the rate track stays at zero
    assert all(e["args"]["rate"] == 0.0
               for e in counters if e["name"] == "drops/s")


def test_export_serve_trace_combines_counters_and_spans(tmp_path):
    report = _serve_report()
    path = tmp_path / "serve.json"
    count = export_serve_trace(report, str(path))
    data = json.loads(path.read_text())
    assert len(data["traceEvents"]) == count
    names = {e["name"] for e in data["traceEvents"]}
    assert {"ingress queue", "exec", "queued"} <= names
