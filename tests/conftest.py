"""Suite-wide fixtures.

A finished Pagoda session is a large cyclic object graph (48 MTBs x 32
suspended coroutines, signal waiters back-referencing their processes),
and several hundred tests each build fresh ones.  CPython's cycle
collector gets there eventually, but under pytest the garbage can pile
up to gigabytes before a threshold collection triggers — so sweep
explicitly after each test to keep the suite's footprint flat.
"""

import gc

import pytest


@pytest.fixture(autouse=True)
def _collect_session_garbage():
    yield
    gc.collect()
