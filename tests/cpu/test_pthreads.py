"""Tests for the PThreads and sequential CPU baselines."""

import pytest

from repro.cpu import run_pthreads, run_sequential
from repro.gpu.phases import Phase
from repro.gpu.timing import TimingModel
from repro.tasks import TaskSpec

TIMING = TimingModel(
    cpu_core_warpinst_per_ns=1.0,
    cpu_mem_bandwidth_bpns=1000.0,
    pthread_dispatch_ns=0.0,
    pthread_create_ns=0.0,
)


def fixed_kernel(task, block_id, warp_id):
    yield Phase(inst=1000)


def make_tasks(n):
    return [
        TaskSpec(name=f"t{i}", threads_per_block=32, num_blocks=1,
                 kernel=fixed_kernel)
        for i in range(n)
    ]


def test_sequential_makespan_is_sum():
    stats = run_sequential(make_tasks(10), timing=TIMING)
    assert stats.makespan == pytest.approx(10_000.0)
    assert len(stats.results) == 10
    assert stats.runtime == "sequential"


def test_pthreads_scales_with_cores():
    tasks = make_tasks(20)
    seq = run_sequential(tasks, timing=TIMING)
    par = run_pthreads(tasks, num_cores=20, timing=TIMING)
    assert par.speedup_over(seq) == pytest.approx(20.0)


def test_pthreads_dispatch_overhead_charged():
    timing = TimingModel(
        cpu_core_warpinst_per_ns=1.0,
        cpu_mem_bandwidth_bpns=1000.0,
        pthread_dispatch_ns=500.0,
        pthread_create_ns=0.0,
    )
    stats = run_pthreads(make_tasks(4), num_cores=1, timing=timing)
    assert stats.makespan == pytest.approx(4 * (1000 + 500))


def test_pthreads_results_have_latencies():
    stats = run_pthreads(make_tasks(4), num_cores=2, timing=TIMING)
    lats = sorted(r.latency for r in stats.results)
    # two waves of two tasks: first wave 1000ns latency, second 2000ns
    assert lats == [pytest.approx(1000.0)] * 2 + [pytest.approx(2000.0)] * 2


def test_pthreads_spawn_gap_spaces_arrivals():
    stats = run_pthreads(make_tasks(3), num_cores=3, timing=TIMING,
                         spawn_gap_ns=100.0)
    spawns = sorted(r.spawn_time for r in stats.results)
    assert spawns == [100.0, 200.0, 300.0]


def test_irregular_tasks_load_balance():
    """A pool keeps cores busy despite skewed task sizes."""
    def skewed_kernel_factory(n):
        def kernel(task, block_id, warp_id):
            yield Phase(inst=float(n))
        return kernel

    tasks = [
        TaskSpec(name=f"t{i}", threads_per_block=32, num_blocks=1,
                 kernel=skewed_kernel_factory(100 if i % 2 else 1900))
        for i in range(20)
    ]
    stats = run_pthreads(tasks, num_cores=2, timing=TIMING)
    total_work = 10 * 100 + 10 * 1900
    # perfect balance would be total/2; allow some slack for FIFO order
    assert stats.makespan <= total_work / 2 + 1900
