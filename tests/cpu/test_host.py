"""Tests for the host CPU core model."""

import pytest

from repro.cpu import HostCpu
from repro.gpu.phases import Phase
from repro.gpu.timing import TimingModel
from repro.sim import Engine

TIMING = TimingModel(cpu_core_warpinst_per_ns=0.5, cpu_mem_bandwidth_bpns=10.0)


def test_num_cores_validation():
    with pytest.raises(ValueError):
        HostCpu(Engine(), TIMING, num_cores=0)


def test_service_time_compute_bound():
    cpu = HostCpu(Engine(), TIMING, 4)
    # 100 inst at 0.5/ns -> 200 ns; memory 100/10=10ns -> max is 200
    assert cpu.service_time(Phase(100, 100)) == pytest.approx(200.0)


def test_service_time_memory_bound():
    cpu = HostCpu(Engine(), TIMING, 4)
    # 10 inst -> 20 ns compute; 10_000 bytes -> 1000 ns memory
    assert cpu.service_time(Phase(10, 10_000)) == pytest.approx(1000.0)


def test_run_task_holds_one_core():
    eng = Engine()
    cpu = HostCpu(eng, TIMING, 1)
    done = []

    def proc(tag):
        yield from cpu.run_task(Phase(50, 0))
        done.append((tag, eng.now))

    eng.spawn(proc("a"))
    eng.spawn(proc("b"))
    eng.run()
    assert dict(done) == {"a": pytest.approx(100.0), "b": pytest.approx(200.0)}


def test_run_task_dispatch_overhead():
    eng = Engine()
    cpu = HostCpu(eng, TIMING, 1)
    done = []

    def proc():
        yield from cpu.run_task(Phase(50, 0), dispatch_overhead=25.0)
        done.append(eng.now)

    eng.spawn(proc())
    eng.run()
    assert done == [pytest.approx(125.0)]


def test_parallel_speedup_matches_core_count():
    def run(cores, n_tasks):
        eng = Engine()
        cpu = HostCpu(eng, TIMING, cores)

        def proc():
            yield from cpu.run_task(Phase(100, 0))

        for _ in range(n_tasks):
            eng.spawn(proc())
        return eng.run()

    serial = run(1, 8)
    parallel = run(4, 8)
    assert serial / parallel == pytest.approx(4.0)
