"""The paper's CPU-scheme bake-off (§6.2): PThreads must win."""

import pytest

from repro.cpu import (
    run_openmp,
    run_os_scheduler,
    run_pthreads,
    run_python_pool,
    run_sequential,
)
from repro.gpu.phases import Phase
from repro.tasks import TaskSpec
from repro.workloads import REGISTRY


def const_kernel(inst):
    def kernel(task, block_id, warp_id):
        yield Phase(inst=float(inst))
    return kernel


def make_tasks(n, inst=20_000):
    return [TaskSpec(f"t{i}", 128, 1, const_kernel(inst)) for i in range(n)]


def test_all_schemes_complete():
    tasks = make_tasks(40)
    for runner in (run_openmp, run_os_scheduler, run_python_pool):
        stats = runner(tasks)
        assert len(stats.results) == 40
        assert all(r.end_time > 0 for r in stats.results)


def test_openmp_fork_join_dominates_narrow_tasks():
    """A narrow task's work / 20 cores is below the fork-join cost, so
    OpenMP data parallelism underuses the machine."""
    tasks = make_tasks(50, inst=5_000)
    omp = run_openmp(tasks)
    seq = run_sequential(tasks)
    # barely faster than sequential despite 20 cores
    assert seq.makespan / omp.makespan < 4.0


def test_os_scheduler_pays_kernel_dispatch():
    tasks = make_tasks(50, inst=1_000)
    os_sched = run_os_scheduler(tasks)
    pthreads = run_pthreads(tasks)
    # heavier per-task dispatch than a user-level pool... but both are
    # dispatch-bound here; OS dispatch must show up in latencies
    mean_lat_os = os_sched.mean_latency
    assert mean_lat_os > 8_000  # at least the dispatch cost


def test_python_pool_is_serialized_by_the_gil():
    tasks = make_tasks(30)
    pool = run_python_pool(tasks, num_threads=20)
    seq = run_sequential(tasks)
    # 20 threads, no speedup at all — slower than sequential C
    assert pool.makespan > seq.makespan


def test_pthreads_wins_the_bakeoff_on_paper_workloads():
    """§6.2: 'PThreads obtained the best results.'"""
    wins = 0
    for name in ("mb", "fb", "mm"):
        tasks = REGISTRY.get(name).make_tasks(48, seed=2)
        contenders = {
            "pthreads": run_pthreads(tasks),
            "openmp": run_openmp(tasks),
            "os": run_os_scheduler(tasks),
            "python": run_python_pool(tasks),
        }
        best = min(contenders, key=lambda k: contenders[k].makespan)
        if best == "pthreads":
            wins += 1
    assert wins >= 2  # PThreads wins the bake-off overall
