"""PCIe bus model tests."""

import pytest

from repro.gpu.timing import TimingModel
from repro.pcie import Direction, PcieBus
from repro.sim import Engine

TIMING = TimingModel(pcie_transaction_ns=1000.0, pcie_bandwidth_bpns=10.0)


def make_bus():
    eng = Engine()
    return eng, PcieBus(eng, TIMING)


def test_transfer_time_formula():
    _eng, bus = make_bus()
    assert bus.transfer_time(0) == 1000.0
    assert bus.transfer_time(10_000) == pytest.approx(2000.0)


def test_transfer_time_rejects_negative():
    _eng, bus = make_bus()
    with pytest.raises(ValueError):
        bus.transfer_time(-1)


def test_single_transfer_completes():
    eng, bus = make_bus()
    done = []

    def proc():
        yield from bus.transfer(10_000, Direction.H2D)
        done.append(eng.now)

    eng.spawn(proc())
    eng.run()
    assert done == [pytest.approx(2000.0)]
    assert bus.bytes_moved[Direction.H2D] == 10_000
    assert bus.transactions[Direction.H2D] == 1


def test_same_direction_transfers_serialize():
    eng, bus = make_bus()
    done = []

    def proc(tag):
        yield from bus.transfer(0, Direction.H2D)
        done.append((tag, eng.now))

    eng.spawn(proc("a"))
    eng.spawn(proc("b"))
    eng.run()
    assert dict(done) == {"a": pytest.approx(1000.0),
                          "b": pytest.approx(2000.0)}


def test_opposite_directions_overlap():
    eng, bus = make_bus()
    done = []

    def proc(tag, direction):
        yield from bus.transfer(0, direction)
        done.append((tag, eng.now))

    eng.spawn(proc("h2d", Direction.H2D))
    eng.spawn(proc("d2h", Direction.D2H))
    eng.run()
    assert dict(done) == {"h2d": pytest.approx(1000.0),
                          "d2h": pytest.approx(1000.0)}


def test_batching_beats_many_small_copies():
    """The economics behind lazy aggregate TaskTable updates (§4.2.2)."""
    _eng, bus = make_bus()
    many_small = 32 * bus.transfer_time(256)
    one_big = bus.transfer_time(32 * 256)
    assert one_big < many_small / 10


def test_busy_time_accounting():
    eng, bus = make_bus()

    def proc():
        yield from bus.transfer(10_000, Direction.H2D)
        yield from bus.transfer(5_000, Direction.H2D)
        yield from bus.transfer(2_000, Direction.D2H)

    eng.spawn(proc())
    eng.run()
    # two H2D transactions: 2 * 1000 overhead + 15000 bytes / 10 B/ns
    assert bus.busy_time(Direction.H2D) == pytest.approx(2000 + 1500)
    assert bus.busy_time(Direction.D2H) == pytest.approx(1200.0)
    assert bus.total_busy_time() == pytest.approx(3500 + 1200)


def test_recorder_samples_transfers():
    eng, bus = make_bus()

    def proc():
        yield from bus.transfer(64, Direction.H2D)

    eng.spawn(proc())
    eng.run()
    assert bus.recorder.count("transfer.host_to_device") == 1


def test_fifo_order_preserved_under_random_sizes():
    """Same-direction transfers complete in issue order regardless of
    size (posted/DMA FIFO semantics the TaskTable protocol relies on)."""
    import numpy as np

    rng = np.random.default_rng(5)
    eng, bus = make_bus()
    completions = []

    def proc(i, nbytes):
        yield from bus.transfer(nbytes, Direction.H2D)
        completions.append(i)

    for i in range(30):
        eng.spawn(proc(i, int(rng.integers(0, 100_000))))
    eng.run()
    assert completions == list(range(30))


# -- transaction coalescing (opt-in extension) ------------------------------


def run_transfers(bus, eng, jobs):
    """Drive (start_time, nbytes, direction) jobs; return finish times."""
    finished = {}

    def proc(i, start, nbytes, direction):
        if start:
            yield start
        yield from bus.transfer(nbytes, direction)
        finished[i] = eng.now

    for i, (start, nbytes, direction) in enumerate(jobs):
        eng.spawn(proc(i, start, nbytes, direction))
    eng.run()
    return finished


def test_coalesce_off_matches_seed_cost_model():
    """Default-off: every transaction pays setup, coalesced stays 0,
    and the numbers are exactly the per-transaction model's."""
    eng = Engine()
    bus = PcieBus(eng, TIMING)  # coalesce defaults to False
    finished = run_transfers(bus, eng, [
        (0.0, 10_000, Direction.H2D),
        (0.0, 10_000, Direction.H2D),
        (0.0, 10_000, Direction.H2D),
    ])
    assert finished == {0: pytest.approx(2000.0),
                       1: pytest.approx(4000.0),
                       2: pytest.approx(6000.0)}
    assert bus.coalesced[Direction.H2D] == 0
    assert bus.busy_time(Direction.H2D) == pytest.approx(3 * 2000.0)


def test_coalesce_merges_back_to_back_transfers():
    """Queued same-direction transfers ride the open stream: only the
    first pays pcie_transaction_ns."""
    eng = Engine()
    bus = PcieBus(eng, TIMING, coalesce=True)
    finished = run_transfers(bus, eng, [
        (0.0, 10_000, Direction.H2D),
        (0.0, 10_000, Direction.H2D),
        (0.0, 10_000, Direction.H2D),
    ])
    # 1000 setup + 3 x 1000 wire
    assert finished == {0: pytest.approx(2000.0),
                       1: pytest.approx(3000.0),
                       2: pytest.approx(4000.0)}
    assert bus.coalesced[Direction.H2D] == 2
    assert bus.busy_time(Direction.H2D) == pytest.approx(1000 + 3000)


def test_coalesce_requires_no_idle_gap():
    """A transfer arriving after the engine went idle pays full setup:
    the stream closed."""
    eng = Engine()
    bus = PcieBus(eng, TIMING, coalesce=True)
    finished = run_transfers(bus, eng, [
        (0.0, 10_000, Direction.H2D),    # done at 2000
        (2500.0, 10_000, Direction.H2D),  # 500 ns idle gap
    ])
    assert finished == {0: pytest.approx(2000.0),
                       1: pytest.approx(4500.0)}
    assert bus.coalesced[Direction.H2D] == 0


def test_coalesce_directions_are_independent_streams():
    """A D2H transfer finishing at the same instant must not open the
    H2D stream — each direction tracks its own last-end time."""
    eng = Engine()
    bus = PcieBus(eng, TIMING, coalesce=True)
    finished = run_transfers(bus, eng, [
        (0.0, 0, Direction.D2H),       # done at 1000
        (1000.0, 0, Direction.H2D),    # starts exactly then: new stream
    ])
    assert finished == {0: pytest.approx(1000.0),
                       1: pytest.approx(2000.0)}
    assert bus.coalesced[Direction.H2D] == 0
    assert bus.coalesced[Direction.D2H] == 0


def test_coalesce_busy_time_counts_setup_once_per_stream():
    eng = Engine()
    bus = PcieBus(eng, TIMING, coalesce=True)
    run_transfers(bus, eng, [
        (0.0, 5_000, Direction.H2D),
        (0.0, 5_000, Direction.H2D),
        (5000.0, 5_000, Direction.H2D),  # gap -> second stream
        (5000.0, 5_000, Direction.H2D),
    ])
    assert bus.transactions[Direction.H2D] == 4
    assert bus.coalesced[Direction.H2D] == 2
    # 2 setups + 20000 bytes / 10 B/ns
    assert bus.busy_time(Direction.H2D) == pytest.approx(2 * 1000 + 2000)


def test_coalesce_off_is_default_in_pagoda_config():
    """Figure numbers must come from the paper's cost model unless the
    user opts in."""
    from repro.core import PagodaConfig
    from repro.core.runtime import PagodaSession

    assert PagodaConfig().pcie_coalesce is False
    session = PagodaSession()
    assert session.bus.coalesce is False
    session.shutdown()
    on = PagodaSession(config=PagodaConfig(pcie_coalesce=True))
    assert on.bus.coalesce is True
    on.shutdown()


def test_concurrent_directions_do_not_reorder_within_direction():
    import numpy as np

    rng = np.random.default_rng(6)
    eng, bus = make_bus()
    h2d, d2h = [], []

    def proc(i, direction, log):
        yield from bus.transfer(int(rng.integers(0, 50_000)), direction)
        log.append(i)

    for i in range(10):
        eng.spawn(proc(i, Direction.H2D, h2d))
        eng.spawn(proc(i, Direction.D2H, d2h))
    eng.run()
    assert h2d == sorted(h2d)
    assert d2h == sorted(d2h)
