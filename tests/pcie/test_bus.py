"""PCIe bus model tests."""

import pytest

from repro.gpu.timing import TimingModel
from repro.pcie import Direction, PcieBus
from repro.sim import Engine

TIMING = TimingModel(pcie_transaction_ns=1000.0, pcie_bandwidth_bpns=10.0)


def make_bus():
    eng = Engine()
    return eng, PcieBus(eng, TIMING)


def test_transfer_time_formula():
    _eng, bus = make_bus()
    assert bus.transfer_time(0) == 1000.0
    assert bus.transfer_time(10_000) == pytest.approx(2000.0)


def test_transfer_time_rejects_negative():
    _eng, bus = make_bus()
    with pytest.raises(ValueError):
        bus.transfer_time(-1)


def test_single_transfer_completes():
    eng, bus = make_bus()
    done = []

    def proc():
        yield from bus.transfer(10_000, Direction.H2D)
        done.append(eng.now)

    eng.spawn(proc())
    eng.run()
    assert done == [pytest.approx(2000.0)]
    assert bus.bytes_moved[Direction.H2D] == 10_000
    assert bus.transactions[Direction.H2D] == 1


def test_same_direction_transfers_serialize():
    eng, bus = make_bus()
    done = []

    def proc(tag):
        yield from bus.transfer(0, Direction.H2D)
        done.append((tag, eng.now))

    eng.spawn(proc("a"))
    eng.spawn(proc("b"))
    eng.run()
    assert dict(done) == {"a": pytest.approx(1000.0),
                          "b": pytest.approx(2000.0)}


def test_opposite_directions_overlap():
    eng, bus = make_bus()
    done = []

    def proc(tag, direction):
        yield from bus.transfer(0, direction)
        done.append((tag, eng.now))

    eng.spawn(proc("h2d", Direction.H2D))
    eng.spawn(proc("d2h", Direction.D2H))
    eng.run()
    assert dict(done) == {"h2d": pytest.approx(1000.0),
                          "d2h": pytest.approx(1000.0)}


def test_batching_beats_many_small_copies():
    """The economics behind lazy aggregate TaskTable updates (§4.2.2)."""
    _eng, bus = make_bus()
    many_small = 32 * bus.transfer_time(256)
    one_big = bus.transfer_time(32 * 256)
    assert one_big < many_small / 10


def test_busy_time_accounting():
    eng, bus = make_bus()

    def proc():
        yield from bus.transfer(10_000, Direction.H2D)
        yield from bus.transfer(5_000, Direction.H2D)
        yield from bus.transfer(2_000, Direction.D2H)

    eng.spawn(proc())
    eng.run()
    # two H2D transactions: 2 * 1000 overhead + 15000 bytes / 10 B/ns
    assert bus.busy_time(Direction.H2D) == pytest.approx(2000 + 1500)
    assert bus.busy_time(Direction.D2H) == pytest.approx(1200.0)
    assert bus.total_busy_time() == pytest.approx(3500 + 1200)


def test_recorder_samples_transfers():
    eng, bus = make_bus()

    def proc():
        yield from bus.transfer(64, Direction.H2D)

    eng.spawn(proc())
    eng.run()
    assert bus.recorder.count("transfer.host_to_device") == 1


def test_fifo_order_preserved_under_random_sizes():
    """Same-direction transfers complete in issue order regardless of
    size (posted/DMA FIFO semantics the TaskTable protocol relies on)."""
    import numpy as np

    rng = np.random.default_rng(5)
    eng, bus = make_bus()
    completions = []

    def proc(i, nbytes):
        yield from bus.transfer(nbytes, Direction.H2D)
        completions.append(i)

    for i in range(30):
        eng.spawn(proc(i, int(rng.integers(0, 100_000))))
    eng.run()
    assert completions == list(range(30))


def test_concurrent_directions_do_not_reorder_within_direction():
    import numpy as np

    rng = np.random.default_rng(6)
    eng, bus = make_bus()
    h2d, d2h = [], []

    def proc(i, direction, log):
        yield from bus.transfer(int(rng.integers(0, 50_000)), direction)
        log.append(i)

    for i in range(10):
        eng.spawn(proc(i, Direction.H2D, h2d))
        eng.spawn(proc(i, Direction.D2H, d2h))
    eng.run()
    assert h2d == sorted(h2d)
    assert d2h == sorted(d2h)
