"""Mapped (zero-copy volatile) memory semantics, incl. the §4.2.1 hazard."""

import pytest

from repro.gpu.timing import TimingModel
from repro.pcie import MappedRegion
from repro.sim import Engine

TIMING = TimingModel(mapped_write_ns=100.0)


def make_region(hazard=False):
    eng = Engine()
    return eng, MappedRegion(eng, TIMING, "tasktable", hazard_reorder=hazard)


def test_write_visible_after_latency():
    eng, region = make_region()
    region.write("ready", 1)
    assert region.read("ready") is None
    eng.run()
    assert eng.now == pytest.approx(100.0)
    assert region.read("ready") == 1


def test_write_local_immediate():
    _eng, region = make_region()
    region.write_local("x", 5)
    assert region.read("x") == 5


def test_posted_writes_keep_program_order():
    eng, region = make_region()
    observed = []
    region.write("params", "payload",
                 on_visible=lambda: observed.append(("params", region.read("ready"))))
    region.write("ready", 1,
                 on_visible=lambda: observed.append(("ready", region.read("params"))))
    eng.run()
    # When 'ready' landed, 'params' were already there.
    assert observed == [("params", None), ("ready", "payload")]


def test_on_change_signal_pulses_per_landing():
    eng, region = make_region()
    region.write("a", 1)
    region.write("b", 2)
    seen = []

    def poller():
        while len(seen) < 2:
            key = yield region.on_change.wait()
            seen.append((key, eng.now))

    eng.spawn(poller())
    eng.run()
    assert [k for k, _ in seen] == ["a", "b"]


def test_unordered_hazard_flag_lands_first():
    """§4.2.1: one cudamemcopy cannot order parameters before the flag."""
    eng, region = make_region(hazard=True)
    region.write_unordered({"params": "payload"}, "ready", 1)
    states = []

    def poller():
        while True:
            yield region.on_change.wait()
            states.append((region.read("ready"), region.read("params")))
            if region.read("params") is not None:
                return

    eng.spawn(poller())
    eng.run()
    # The GPU observes ready==1 while params are still missing: the bug.
    assert states[0] == (1, None)


def test_unordered_benign_case_masks_the_bug():
    eng, region = make_region(hazard=False)
    region.write_unordered({"params": "payload"}, "ready", 1)
    eng.run()
    assert region.read("ready") == 1 and region.read("params") == "payload"


def test_contains_and_snapshot():
    eng, region = make_region()
    region.write_local("k", 7)
    assert "k" in region
    assert "missing" not in region
    assert region.snapshot() == {"k": 7}


def test_write_count_tracks_transactions():
    eng, region = make_region()
    region.write("a", 1)
    region.write_unordered({"b": 2}, "flag", 1)
    assert region.write_count == 2
