"""WarpTable tests (§4.1, Table 2)."""

import pytest

from repro.core import WarpTable


def test_default_has_31_executor_slots():
    """§4.1: one scheduler warp + 31 executor warps per 32-warp MTB."""
    assert len(WarpTable()) == 31


def test_slots_validation():
    with pytest.raises(ValueError):
        WarpTable(0)


def test_dispatch_fills_table2_fields():
    wt = WarpTable(4)
    wt.dispatch(2, warp_id=5, e_num=7, sm_index=1024, bar_id=3, block_id=1)
    slot = wt.slots[2]
    assert slot.warp_id == 5
    assert slot.e_num == 7
    assert slot.sm_index == 1024
    assert slot.bar_id == 3
    assert slot.block_id == 1
    assert slot.exec_flag


def test_dispatch_to_busy_slot_raises():
    wt = WarpTable(2)
    wt.dispatch(0, 0, 0, 0, -1, 0)
    with pytest.raises(RuntimeError):
        wt.dispatch(0, 1, 0, 0, -1, 0)


def test_retire_frees_slot_and_pulses():
    wt = WarpTable(2)
    wt.dispatch(1, 0, 3, 0, -1, 0)
    assert wt.busy_count == 1
    pulses = []
    wt.free_signal.wait()._add_waiter(pulses.append)
    wt.retire(1)
    assert wt.busy_count == 0
    assert pulses == [1]
    assert wt.slots[1].e_num == -1


def test_retire_idle_slot_raises():
    wt = WarpTable(2)
    with pytest.raises(RuntimeError):
        wt.retire(0)


def test_free_slots_listing():
    wt = WarpTable(3)
    assert wt.free_slots() == [0, 1, 2]
    wt.dispatch(1, 0, 0, 0, -1, 0)
    assert wt.free_slots() == [0, 2]


def test_warptable_random_dispatch_retire_fuzz():
    """Conservation under random traffic: busy_count always equals
    dispatched-minus-retired, and no slot is double-booked."""
    import numpy as np

    rng = np.random.default_rng(12)
    wt = WarpTable(8)
    busy = set()
    for _ in range(500):
        if busy and (len(busy) == 8 or rng.random() < 0.5):
            slot = int(rng.choice(sorted(busy)))
            wt.retire(slot)
            busy.discard(slot)
        else:
            free = wt.free_slots()
            slot = int(rng.choice(free))
            wt.dispatch(slot, warp_id=0, e_num=1, sm_index=0,
                        bar_id=-1, block_id=0)
            busy.add(slot)
        assert wt.busy_count == len(busy)
        assert set(wt.free_slots()) == set(range(8)) - busy
